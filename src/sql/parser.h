#ifndef AQP_SQL_PARSER_H_
#define AQP_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/ast.h"

namespace aqp {
namespace sql {

/// Parses one SELECT statement from `input` (optional trailing ';').
///
/// Supported grammar (case-insensitive keywords):
///   SELECT item [, item ...]
///   FROM table [AS alias] [TABLESAMPLE {BERNOULLI|SYSTEM} (pct)]
///   [ [LEFT] JOIN table [AS alias] [TABLESAMPLE ...] ON a = b [AND c = d]* ]*
///   [WHERE predicate]
///   [GROUP BY expr [, expr ...]]
///   [HAVING predicate]
///   [ORDER BY name [ASC|DESC] [, ...]]
///   [LIMIT n]
///   [WITH ERROR x% CONFIDENCE y%]
///
/// Items are scalar expressions over columns, literals, arithmetic,
/// comparisons, AND/OR/NOT, IN, BETWEEN, LIKE, and aggregate calls
/// COUNT(*) / COUNT(x) / COUNT(DISTINCT x) / SUM / AVG / MIN / MAX /
/// VAR / STDDEV, with optional "AS alias".
Result<SelectStmt> Parse(std::string_view input);

}  // namespace sql
}  // namespace aqp

#endif  // AQP_SQL_PARSER_H_
