#ifndef AQP_SQL_AST_H_
#define AQP_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/aggregate.h"
#include "engine/plan.h"
#include "expr/expr.h"
#include "storage/value.h"

namespace aqp {
namespace sql {

struct SqlExpr;
using SqlExprPtr = std::shared_ptr<SqlExpr>;

/// Parser-level expression: the engine Expr grammar plus aggregate calls
/// (which only the binder knows how to place in the plan).
struct SqlExpr {
  enum class Kind {
    kColumn,
    kLiteral,
    kUnary,
    kBinary,
    kIn,
    kBetween,
    kLike,
    kFunction,
    kAggCall,
  };

  Kind kind = Kind::kLiteral;
  // kColumn.
  std::string column;
  // kLiteral.
  Value literal;
  // kUnary / kBinary.
  OpKind op = OpKind::kAdd;
  std::vector<SqlExprPtr> children;
  // kIn.
  std::vector<Value> in_list;
  // kLike.
  std::string like_pattern;
  // kFunction.
  std::string function_name;
  // kAggCall: children[0] is the argument (absent for COUNT(*)).
  AggKind agg_kind = AggKind::kCountStar;

  /// True iff an aggregate call appears anywhere in this tree.
  bool ContainsAggregate() const;

  /// SQL-ish rendering (used for derived output column names).
  std::string ToString() const;
};

/// The user's accuracy contract: "WITH ERROR 5% CONFIDENCE 95%".
/// Semantics (joint, per §2.4 of the AQP literature): with probability at
/// least `confidence`, ALL returned aggregates simultaneously have relative
/// error at most `relative_error`.
struct ErrorSpec {
  double relative_error = 0.0;  // e.g. 0.05.
  double confidence = 0.0;      // e.g. 0.95.
};

/// FROM/JOIN table reference with optional alias and TABLESAMPLE clause.
struct TableRef {
  std::string table;
  std::string alias;  // Empty -> use table name as qualifier.
  SampleSpec sample;

  const std::string& qualifier() const {
    return alias.empty() ? table : alias;
  }
};

/// One "JOIN t ON a = b [AND c = d ...]" clause. Conditions are raw column
/// pairs; the binder works out which side each column belongs to.
struct JoinClause {
  TableRef table;
  JoinType type = JoinType::kInner;
  std::vector<std::pair<std::string, std::string>> conditions;
};

/// One SELECT-list item.
struct SelectItem {
  SqlExprPtr expr;
  std::string alias;  // Empty -> derived from the expression text.
};

/// One ORDER BY key (references an output column name or alias).
struct OrderItem {
  std::string column;
  bool ascending = true;
};

/// A parsed SELECT statement.
struct SelectStmt {
  bool distinct = false;  // SELECT DISTINCT.
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  SqlExprPtr where;                // May be null.
  std::vector<SqlExprPtr> group_by;
  SqlExprPtr having;               // May be null.
  std::vector<OrderItem> order_by;
  std::optional<uint64_t> limit;
  std::optional<ErrorSpec> error_spec;
};

}  // namespace sql
}  // namespace aqp

#endif  // AQP_SQL_AST_H_
