#include "sql/parser.h"

#include "common/check.h"
#include "sql/lexer.h"

namespace aqp {
namespace sql {
namespace {

SqlExprPtr MakeColumn(std::string name) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExpr::Kind::kColumn;
  e->column = std::move(name);
  return e;
}

SqlExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExpr::Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

SqlExprPtr MakeUnary(OpKind op, SqlExprPtr operand) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExpr::Kind::kUnary;
  e->op = op;
  e->children = {std::move(operand)};
  return e;
}

SqlExprPtr MakeBinary(OpKind op, SqlExprPtr lhs, SqlExprPtr rhs) {
  auto e = std::make_shared<SqlExpr>();
  e->kind = SqlExpr::Kind::kBinary;
  e->op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> ParseSelect();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }
  bool MatchKeyword(std::string_view kw) {
    if (!Peek().IsKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  Status Expect(TokenKind kind, std::string_view what) {
    if (Match(kind)) return Status::OK();
    return Status::InvalidArgument("expected " + std::string(what) +
                                   " near offset " +
                                   std::to_string(Peek().position));
  }
  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Status::InvalidArgument("expected " + std::string(kw) +
                                   " near offset " +
                                   std::to_string(Peek().position));
  }

  Result<std::string> ParseIdentifier(std::string_view what);
  Result<std::string> ParseQualifiedName();
  Result<double> ParsePercentOrFraction();
  Result<TableRef> ParseTableRef();
  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }
  Result<SqlExprPtr> ParseOr();
  Result<SqlExprPtr> ParseAnd();
  Result<SqlExprPtr> ParseNot();
  Result<SqlExprPtr> ParseComparison();
  Result<SqlExprPtr> ParseAdditive();
  Result<SqlExprPtr> ParseTerm();
  Result<SqlExprPtr> ParseUnary();
  Result<SqlExprPtr> ParsePrimary();
  Result<Value> ParseLiteralValue();

  // Hard ceiling on expression recursion: hostile input (thousands of nested
  // parens / NOTs / unary minuses) must come back as a parse error, not
  // exhaust the stack. Guards sit on every self-recursive production.
  static constexpr int kMaxExprDepth = 1000;
  struct DepthGuard {
    explicit DepthGuard(Parser* p) : parser(p) { ++parser->depth_; }
    ~DepthGuard() { --parser->depth_; }
    Parser* parser;
  };
  Status CheckDepth() const {
    if (depth_ > kMaxExprDepth) {
      return Status::InvalidArgument("expression nesting too deep");
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

Result<std::string> Parser::ParseIdentifier(std::string_view what) {
  if (Peek().kind != TokenKind::kIdentifier) {
    return Status::InvalidArgument("expected " + std::string(what) +
                                   " near offset " +
                                   std::to_string(Peek().position));
  }
  return Advance().text;
}

Result<std::string> Parser::ParseQualifiedName() {
  AQP_ASSIGN_OR_RETURN(std::string name, ParseIdentifier("column name"));
  if (Match(TokenKind::kDot)) {
    AQP_ASSIGN_OR_RETURN(std::string member, ParseIdentifier("column name"));
    name += "." + member;
  }
  return name;
}

Result<double> Parser::ParsePercentOrFraction() {
  double v;
  if (Peek().kind == TokenKind::kIntLiteral) {
    v = static_cast<double>(Advance().int_value);
  } else if (Peek().kind == TokenKind::kDoubleLiteral) {
    v = Advance().double_value;
  } else {
    return Status::InvalidArgument("expected number near offset " +
                                   std::to_string(Peek().position));
  }
  if (Match(TokenKind::kPercent)) v /= 100.0;
  if (v <= 0.0 || v >= 1.0) {
    return Status::InvalidArgument("rate/probability out of (0,1): " +
                                   std::to_string(v));
  }
  return v;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  AQP_ASSIGN_OR_RETURN(ref.table, ParseIdentifier("table name"));
  if (MatchKeyword("AS")) {
    AQP_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier("alias"));
  } else if (Peek().kind == TokenKind::kIdentifier) {
    ref.alias = Advance().text;
  }
  if (MatchKeyword("TABLESAMPLE")) {
    SampleSpec spec;
    if (MatchKeyword("BERNOULLI")) {
      spec.method = SampleSpec::Method::kBernoulliRow;
    } else if (MatchKeyword("SYSTEM")) {
      spec.method = SampleSpec::Method::kSystemBlock;
    } else {
      return Status::InvalidArgument(
          "expected BERNOULLI or SYSTEM near offset " +
          std::to_string(Peek().position));
    }
    AQP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    // SQL TABLESAMPLE takes a percentage.
    double pct;
    if (Peek().kind == TokenKind::kIntLiteral) {
      pct = static_cast<double>(Advance().int_value);
    } else if (Peek().kind == TokenKind::kDoubleLiteral) {
      pct = Advance().double_value;
    } else {
      return Status::InvalidArgument("expected sampling percentage");
    }
    if (pct <= 0.0 || pct > 100.0) {
      return Status::InvalidArgument("sampling percentage out of (0,100]");
    }
    spec.rate = pct / 100.0;
    AQP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    ref.sample = spec;
  }
  return ref;
}

Result<Value> Parser::ParseLiteralValue() {
  DepthGuard guard(this);
  AQP_RETURN_IF_ERROR(CheckDepth());
  const Token& t = Peek();
  if (t.kind == TokenKind::kIntLiteral) {
    Advance();
    return Value(t.int_value);
  }
  if (t.kind == TokenKind::kDoubleLiteral) {
    Advance();
    return Value(t.double_value);
  }
  if (t.kind == TokenKind::kStringLiteral) {
    Advance();
    return Value(t.text);
  }
  if (t.IsKeyword("TRUE")) {
    Advance();
    return Value(true);
  }
  if (t.IsKeyword("FALSE")) {
    Advance();
    return Value(false);
  }
  if (t.IsKeyword("NULL")) {
    Advance();
    return Value::Null();
  }
  if (t.kind == TokenKind::kMinus) {
    Advance();
    AQP_ASSIGN_OR_RETURN(Value inner, ParseLiteralValue());
    if (inner.is_int64()) return Value(-inner.int64());
    if (inner.is_double()) return Value(-inner.dbl());
    return Status::InvalidArgument("cannot negate non-numeric literal");
  }
  return Status::InvalidArgument("expected literal near offset " +
                                 std::to_string(t.position));
}

Result<SqlExprPtr> Parser::ParseOr() {
  AQP_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    AQP_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseAnd());
    lhs = MakeBinary(OpKind::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<SqlExprPtr> Parser::ParseAnd() {
  AQP_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseNot());
  while (MatchKeyword("AND")) {
    AQP_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseNot());
    lhs = MakeBinary(OpKind::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<SqlExprPtr> Parser::ParseNot() {
  DepthGuard guard(this);
  AQP_RETURN_IF_ERROR(CheckDepth());
  if (MatchKeyword("NOT")) {
    AQP_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseNot());
    return MakeUnary(OpKind::kNot, std::move(inner));
  }
  return ParseComparison();
}

Result<SqlExprPtr> Parser::ParseComparison() {
  AQP_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseAdditive());
  // NOT IN / NOT BETWEEN / NOT LIKE.
  bool negated = false;
  if (Peek().IsKeyword("NOT") &&
      (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("BETWEEN") ||
       Peek(1).IsKeyword("LIKE"))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("IN")) {
    AQP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    auto e = std::make_shared<SqlExpr>();
    e->kind = SqlExpr::Kind::kIn;
    e->children = {std::move(lhs)};
    while (true) {
      AQP_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      e->in_list.push_back(std::move(v));
      if (!Match(TokenKind::kComma)) break;
    }
    AQP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    SqlExprPtr result = e;
    if (negated) result = MakeUnary(OpKind::kNot, std::move(result));
    return result;
  }
  if (MatchKeyword("BETWEEN")) {
    AQP_ASSIGN_OR_RETURN(SqlExprPtr low, ParseAdditive());
    AQP_RETURN_IF_ERROR(ExpectKeyword("AND"));
    AQP_ASSIGN_OR_RETURN(SqlExprPtr high, ParseAdditive());
    auto e = std::make_shared<SqlExpr>();
    e->kind = SqlExpr::Kind::kBetween;
    e->children = {std::move(lhs), std::move(low), std::move(high)};
    SqlExprPtr result = e;
    if (negated) result = MakeUnary(OpKind::kNot, std::move(result));
    return result;
  }
  if (MatchKeyword("LIKE")) {
    if (Peek().kind != TokenKind::kStringLiteral) {
      return Status::InvalidArgument("LIKE requires a string pattern");
    }
    auto e = std::make_shared<SqlExpr>();
    e->kind = SqlExpr::Kind::kLike;
    e->children = {std::move(lhs)};
    e->like_pattern = Advance().text;
    SqlExprPtr result = e;
    if (negated) result = MakeUnary(OpKind::kNot, std::move(result));
    return result;
  }
  if (negated) {
    return Status::InvalidArgument("dangling NOT near offset " +
                                   std::to_string(Peek().position));
  }
  OpKind op;
  switch (Peek().kind) {
    case TokenKind::kEq:
      op = OpKind::kEq;
      break;
    case TokenKind::kNe:
      op = OpKind::kNe;
      break;
    case TokenKind::kLt:
      op = OpKind::kLt;
      break;
    case TokenKind::kLe:
      op = OpKind::kLe;
      break;
    case TokenKind::kGt:
      op = OpKind::kGt;
      break;
    case TokenKind::kGe:
      op = OpKind::kGe;
      break;
    default:
      return lhs;
  }
  Advance();
  AQP_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseAdditive());
  return MakeBinary(op, std::move(lhs), std::move(rhs));
}

Result<SqlExprPtr> Parser::ParseAdditive() {
  AQP_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseTerm());
  while (true) {
    OpKind op;
    if (Peek().kind == TokenKind::kPlus) {
      op = OpKind::kAdd;
    } else if (Peek().kind == TokenKind::kMinus) {
      op = OpKind::kSub;
    } else {
      return lhs;
    }
    Advance();
    AQP_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseTerm());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<SqlExprPtr> Parser::ParseTerm() {
  AQP_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseUnary());
  while (true) {
    OpKind op;
    if (Peek().kind == TokenKind::kStar) {
      op = OpKind::kMul;
    } else if (Peek().kind == TokenKind::kSlash) {
      op = OpKind::kDiv;
    } else if (Peek().kind == TokenKind::kPercent) {
      op = OpKind::kMod;
    } else {
      return lhs;
    }
    Advance();
    AQP_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseUnary());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<SqlExprPtr> Parser::ParseUnary() {
  DepthGuard guard(this);
  AQP_RETURN_IF_ERROR(CheckDepth());
  if (Match(TokenKind::kMinus)) {
    AQP_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseUnary());
    return MakeUnary(OpKind::kNeg, std::move(inner));
  }
  Match(TokenKind::kPlus);  // Unary plus is a no-op.
  return ParsePrimary();
}

Result<SqlExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  // Aggregate call?
  AggKind agg_kind;
  bool is_agg = true;
  if (t.IsKeyword("COUNT")) {
    agg_kind = AggKind::kCount;
  } else if (t.IsKeyword("SUM")) {
    agg_kind = AggKind::kSum;
  } else if (t.IsKeyword("AVG")) {
    agg_kind = AggKind::kAvg;
  } else if (t.IsKeyword("MIN")) {
    agg_kind = AggKind::kMin;
  } else if (t.IsKeyword("MAX")) {
    agg_kind = AggKind::kMax;
  } else if (t.IsKeyword("VAR")) {
    agg_kind = AggKind::kVar;
  } else if (t.IsKeyword("STDDEV")) {
    agg_kind = AggKind::kStddev;
  } else {
    is_agg = false;
  }
  if (is_agg) {
    Advance();
    AQP_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "( after aggregate"));
    auto e = std::make_shared<SqlExpr>();
    e->kind = SqlExpr::Kind::kAggCall;
    if (agg_kind == AggKind::kCount && Match(TokenKind::kStar)) {
      e->agg_kind = AggKind::kCountStar;
    } else {
      if (agg_kind == AggKind::kCount && MatchKeyword("DISTINCT")) {
        e->agg_kind = AggKind::kCountDistinct;
      } else {
        e->agg_kind = agg_kind;
      }
      AQP_ASSIGN_OR_RETURN(SqlExprPtr arg, ParseExpr());
      if (arg->ContainsAggregate()) {
        return Status::InvalidArgument("nested aggregate calls not allowed");
      }
      e->children = {std::move(arg)};
    }
    AQP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ") after aggregate"));
    return SqlExprPtr(e);
  }
  if (t.kind == TokenKind::kIdentifier) {
    // Scalar function call: IDENT '(' args ')'.
    if (Peek(1).kind == TokenKind::kLParen) {
      std::string name = Advance().text;
      Advance();  // '('.
      auto e = std::make_shared<SqlExpr>();
      e->kind = SqlExpr::Kind::kFunction;
      e->function_name = name;
      if (!Match(TokenKind::kRParen)) {
        while (true) {
          AQP_ASSIGN_OR_RETURN(SqlExprPtr arg, ParseExpr());
          e->children.push_back(std::move(arg));
          if (!Match(TokenKind::kComma)) break;
        }
        AQP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ") after arguments"));
      }
      return SqlExprPtr(e);
    }
    AQP_ASSIGN_OR_RETURN(std::string name, ParseQualifiedName());
    return MakeColumn(std::move(name));
  }
  if (t.kind == TokenKind::kLParen) {
    Advance();
    AQP_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
    AQP_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    return inner;
  }
  AQP_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
  return MakeLiteral(std::move(v));
}

Result<SelectStmt> Parser::ParseSelect() {
  SelectStmt stmt;
  AQP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  stmt.distinct = MatchKeyword("DISTINCT");
  while (true) {
    SelectItem item;
    AQP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (MatchKeyword("AS")) {
      AQP_ASSIGN_OR_RETURN(item.alias, ParseIdentifier("alias"));
    }
    stmt.items.push_back(std::move(item));
    if (!Match(TokenKind::kComma)) break;
  }
  AQP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  AQP_ASSIGN_OR_RETURN(stmt.from, ParseTableRef());

  while (true) {
    JoinType type = JoinType::kInner;
    if (MatchKeyword("LEFT")) {
      MatchKeyword("OUTER");
      AQP_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
      type = JoinType::kLeftOuter;
    } else if (MatchKeyword("INNER")) {
      AQP_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
    } else if (!MatchKeyword("JOIN")) {
      break;
    }
    JoinClause clause;
    clause.type = type;
    AQP_ASSIGN_OR_RETURN(clause.table, ParseTableRef());
    AQP_RETURN_IF_ERROR(ExpectKeyword("ON"));
    while (true) {
      AQP_ASSIGN_OR_RETURN(std::string a, ParseQualifiedName());
      AQP_RETURN_IF_ERROR(Expect(TokenKind::kEq, "= in join condition"));
      AQP_ASSIGN_OR_RETURN(std::string b, ParseQualifiedName());
      clause.conditions.emplace_back(std::move(a), std::move(b));
      if (!MatchKeyword("AND")) break;
    }
    stmt.joins.push_back(std::move(clause));
  }

  if (MatchKeyword("WHERE")) {
    AQP_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    if (stmt.where->ContainsAggregate()) {
      return Status::InvalidArgument("aggregates not allowed in WHERE");
    }
  }
  if (MatchKeyword("GROUP")) {
    AQP_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      AQP_ASSIGN_OR_RETURN(SqlExprPtr e, ParseExpr());
      if (e->ContainsAggregate()) {
        return Status::InvalidArgument("aggregates not allowed in GROUP BY");
      }
      stmt.group_by.push_back(std::move(e));
      if (!Match(TokenKind::kComma)) break;
    }
  }
  if (MatchKeyword("HAVING")) {
    AQP_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
  }
  if (MatchKeyword("ORDER")) {
    AQP_RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      OrderItem item;
      AQP_ASSIGN_OR_RETURN(item.column, ParseQualifiedName());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(item));
      if (!Match(TokenKind::kComma)) break;
    }
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().kind != TokenKind::kIntLiteral || Peek().int_value < 0) {
      return Status::InvalidArgument("LIMIT requires a non-negative integer");
    }
    stmt.limit = static_cast<uint64_t>(Advance().int_value);
  }
  if (MatchKeyword("WITH")) {
    AQP_RETURN_IF_ERROR(ExpectKeyword("ERROR"));
    ErrorSpec spec;
    AQP_ASSIGN_OR_RETURN(spec.relative_error, ParsePercentOrFraction());
    AQP_RETURN_IF_ERROR(ExpectKeyword("CONFIDENCE"));
    AQP_ASSIGN_OR_RETURN(spec.confidence, ParsePercentOrFraction());
    stmt.error_spec = spec;
  }
  Match(TokenKind::kSemicolon);
  if (Peek().kind != TokenKind::kEnd) {
    return Status::InvalidArgument("unexpected trailing input near offset " +
                                   std::to_string(Peek().position));
  }
  return stmt;
}

}  // namespace

Result<SelectStmt> Parse(std::string_view input) {
  AQP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  Parser parser(std::move(tokens));
  return parser.ParseSelect();
}

}  // namespace sql
}  // namespace aqp
