#ifndef AQP_SQL_BINDER_H_
#define AQP_SQL_BINDER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/catalog.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "sql/ast.h"

namespace aqp {
namespace sql {

/// One aggregate call discovered in the SELECT list / HAVING, as placed in
/// the plan's Aggregate node.
struct BoundAggregate {
  AggKind kind;
  ExprPtr arg;                 // nullptr for COUNT(*).
  std::string internal_alias;  // Output column name in the aggregate node.
  std::string display;         // SQL text, e.g. "SUM(price)".
};

/// A SELECT statement lowered to an executable plan, plus the AQP-relevant
/// structure (the aggregate inventory and the scanned tables) that the
/// approximate executor needs to plan sampling.
struct BoundQuery {
  PlanPtr plan;
  std::optional<ErrorSpec> error_spec;
  bool has_aggregates = false;
  std::vector<BoundAggregate> aggregates;
  std::vector<std::string> group_names;    // Aggregate-node group columns.
  std::vector<std::string> output_names;   // Final projected column names.
  std::vector<TableRef> tables;            // FROM then JOIN order.
};

/// Resolves names against the catalog, places aggregates, and lowers the
/// statement to a plan:
///   Scan -> (rename) -> Join* -> Filter(WHERE) -> Aggregate -> Filter(HAVING)
///   -> Project -> Sort -> Limit.
/// Every scanned column is renamed to "<qualifier>.<base>" so multi-table
/// queries never collide; unqualified references resolve by suffix.
Result<BoundQuery> Bind(const SelectStmt& stmt, const Catalog& catalog);

/// Parse + bind in one step.
Result<BoundQuery> BindSql(std::string_view sql, const Catalog& catalog);

/// Lowers a parser-level expression (no aggregate calls) to an engine
/// expression. Exposed for executors that evaluate pieces of a statement
/// outside a bound plan (e.g. the offline executor's predicate pushdown).
Result<ExprPtr> LowerSqlExpr(const SqlExprPtr& e);

/// Parse, bind, and execute exactly (ignores any WITH ERROR clause — that is
/// the approximate executor's job in core/). `trace`, when non-null,
/// receives parse/bind/execute lifecycle spans with per-operator detail.
Result<Table> ExecuteSql(std::string_view sql, const Catalog& catalog,
                         ExecStats* stats = nullptr,
                         obs::QueryTrace* trace = nullptr);

/// Builds the post-aggregation tail of `stmt` — SELECT-item projection, then
/// ORDER BY / LIMIT — over a scan of `agg_table`, whose schema must be the
/// aggregate node's output (bound.group_names columns followed by the
/// aggregates' internal aliases). The approximate executor materializes its
/// estimated aggregates into such a table and runs this plan to give the
/// user the exact output shape of the original query.
///
/// When `append_row_id` is true, a passthrough of column "__row_id" (which
/// must exist in `agg_table`) is appended as the last output column so the
/// caller can map output rows back to groups after sorting/limiting.
/// HAVING is not supported here (callers fall back to exact execution).
Result<PlanPtr> BindPostAggregation(const SelectStmt& stmt,
                                    const BoundQuery& bound,
                                    const std::string& agg_table,
                                    const Catalog& catalog,
                                    bool append_row_id);

}  // namespace sql
}  // namespace aqp

#endif  // AQP_SQL_BINDER_H_
