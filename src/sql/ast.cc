#include "sql/ast.h"

namespace aqp {
namespace sql {

bool SqlExpr::ContainsAggregate() const {
  if (kind == Kind::kAggCall) return true;
  for (const SqlExprPtr& c : children) {
    if (c != nullptr && c->ContainsAggregate()) return true;
  }
  return false;
}

std::string SqlExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return column;
    case Kind::kLiteral:
      if (literal.is_string()) return "'" + literal.str() + "'";
      return literal.ToString();
    case Kind::kUnary:
      if (op == OpKind::kNot) return "NOT (" + children[0]->ToString() + ")";
      return "-(" + children[0]->ToString() + ")";
    case Kind::kBinary:
      return "(" + children[0]->ToString() + " " + std::string(OpName(op)) +
             " " + children[1]->ToString() + ")";
    case Kind::kIn: {
      std::string out = children[0]->ToString() + " IN (";
      for (size_t i = 0; i < in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_list[i].is_string() ? "'" + in_list[i].str() + "'"
                                      : in_list[i].ToString();
      }
      return out + ")";
    }
    case Kind::kBetween:
      return children[0]->ToString() + " BETWEEN " +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case Kind::kLike:
      return children[0]->ToString() + " LIKE '" + like_pattern + "'";
    case Kind::kFunction: {
      std::string out = function_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kAggCall: {
      if (agg_kind == AggKind::kCountStar) return "COUNT(*)";
      std::string name;
      switch (agg_kind) {
        case AggKind::kCount:
          name = "COUNT";
          break;
        case AggKind::kCountDistinct:
          name = "COUNT(DISTINCT";
          break;
        case AggKind::kSum:
          name = "SUM";
          break;
        case AggKind::kAvg:
          name = "AVG";
          break;
        case AggKind::kMin:
          name = "MIN";
          break;
        case AggKind::kMax:
          name = "MAX";
          break;
        case AggKind::kVar:
          name = "VAR";
          break;
        case AggKind::kStddev:
          name = "STDDEV";
          break;
        case AggKind::kCountStar:
          break;
      }
      if (agg_kind == AggKind::kCountDistinct) {
        return name + " " + children[0]->ToString() + ")";
      }
      return name + "(" + children[0]->ToString() + ")";
    }
  }
  return "?";
}

}  // namespace sql
}  // namespace aqp
