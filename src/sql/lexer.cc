#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/str_util.h"

namespace aqp {
namespace sql {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",  "GROUP",      "BY",       "HAVING",
      "ORDER",  "LIMIT",  "JOIN",   "INNER",      "LEFT",     "OUTER",
      "ON",     "AS",     "AND",    "OR",         "NOT",      "IN",
      "BETWEEN", "LIKE",  "TABLESAMPLE", "BERNOULLI", "SYSTEM", "WITH",
      "ERROR",  "CONFIDENCE", "COUNT", "SUM",     "AVG",      "MIN",
      "MAX",    "VAR",    "STDDEV", "DISTINCT",   "TRUE",     "FALSE",
      "NULL",   "UNION",  "ALL",    "ASC",        "DESC",     "IS",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  auto push = [&](TokenKind kind, std::string text, size_t pos) {
    tokens.push_back(Token{kind, std::move(text), 0, 0.0, pos});
  };
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      std::string word(input.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        push(TokenKind::kKeyword, upper, start);
      } else {
        push(TokenKind::kIdentifier, word, start);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        if (i >= n || !std::isdigit(static_cast<unsigned char>(input[i]))) {
          return Status::InvalidArgument("malformed exponent at offset " +
                                         std::to_string(start));
        }
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      std::string spelling(input.substr(start, i - start));
      Token t;
      t.position = start;
      t.text = spelling;
      if (is_double) {
        AQP_ASSIGN_OR_RETURN(t.double_value, ParseDouble(spelling));
        t.kind = TokenKind::kDoubleLiteral;
      } else {
        AQP_ASSIGN_OR_RETURN(t.int_value, ParseInt64(spelling));
        t.kind = TokenKind::kIntLiteral;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // Escaped quote.
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += input[i++];
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string at offset " +
                                       std::to_string(start));
      }
      push(TokenKind::kStringLiteral, std::move(value), start);
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, "(", start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, ")", start);
        ++i;
        break;
      case ',':
        push(TokenKind::kComma, ",", start);
        ++i;
        break;
      case '.':
        push(TokenKind::kDot, ".", start);
        ++i;
        break;
      case '*':
        push(TokenKind::kStar, "*", start);
        ++i;
        break;
      case '+':
        push(TokenKind::kPlus, "+", start);
        ++i;
        break;
      case '-':
        push(TokenKind::kMinus, "-", start);
        ++i;
        break;
      case '/':
        push(TokenKind::kSlash, "/", start);
        ++i;
        break;
      case '%':
        push(TokenKind::kPercent, "%", start);
        ++i;
        break;
      case ';':
        push(TokenKind::kSemicolon, ";", start);
        ++i;
        break;
      case '=':
        push(TokenKind::kEq, "=", start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kNe, "!=", start);
          i += 2;
        } else {
          return Status::InvalidArgument("stray '!' at offset " +
                                         std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kLe, "<=", start);
          i += 2;
        } else if (i + 1 < n && input[i + 1] == '>') {
          push(TokenKind::kNe, "<>", start);
          i += 2;
        } else {
          push(TokenKind::kLt, "<", start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kGe, ">=", start);
          i += 2;
        } else {
          push(TokenKind::kGt, ">", start);
          ++i;
        }
        break;
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' at offset " +
            std::to_string(start));
    }
  }
  push(TokenKind::kEnd, "", n);
  return tokens;
}

}  // namespace sql
}  // namespace aqp
