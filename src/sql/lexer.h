#ifndef AQP_SQL_LEXER_H_
#define AQP_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace sql {

/// Token kinds produced by the SQL lexer. Keywords are recognized
/// case-insensitively and carry their canonical upper-case text.
enum class TokenKind {
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kComma,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kSemicolon,
  kEnd,
};

/// One lexed token with its source position (for error messages).
struct Token {
  TokenKind kind;
  std::string text;     // Identifier/keyword text or literal spelling.
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  // Byte offset in the input.

  /// True iff this is the keyword `kw` (canonical upper-case).
  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
};

/// Tokenizes a SQL string. Fails on unterminated strings or stray characters.
Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace sql
}  // namespace aqp

#endif  // AQP_SQL_LEXER_H_
