#include "sql/binder.h"

#include <unordered_map>

#include "common/check.h"
#include "sql/parser.h"

namespace aqp {
namespace sql {
namespace {

// Base column name: the part after the last '.'.
std::string BaseName(const std::string& name) {
  size_t pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

// Wraps `scan` in a Project renaming each column to "<qualifier>.<base>".
Result<PlanPtr> QualifiedScan(const TableRef& ref, const Catalog& catalog,
                              Schema* schema_out) {
  AQP_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                       catalog.Get(ref.table));
  PlanPtr scan = PlanNode::Scan(ref.table, ref.sample);
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  Schema schema;
  for (const Field& f : table->schema().fields()) {
    std::string qualified = ref.qualifier() + "." + BaseName(f.name);
    exprs.push_back(Col(f.name));
    names.push_back(qualified);
    schema.AddField({qualified, f.type});
  }
  *schema_out = std::move(schema);
  return PlanNode::Project(scan, std::move(exprs), std::move(names));
}

// Lowers a SqlExpr (with no aggregate calls remaining) to an engine Expr.
Result<ExprPtr> Lower(const SqlExprPtr& e) {
  AQP_CHECK(e != nullptr);
  switch (e->kind) {
    case SqlExpr::Kind::kColumn:
      return Col(e->column);
    case SqlExpr::Kind::kLiteral:
      return Expr::MakeLiteral(e->literal);
    case SqlExpr::Kind::kUnary: {
      AQP_ASSIGN_OR_RETURN(ExprPtr inner, Lower(e->children[0]));
      return Expr::MakeUnary(e->op, std::move(inner));
    }
    case SqlExpr::Kind::kBinary: {
      AQP_ASSIGN_OR_RETURN(ExprPtr lhs, Lower(e->children[0]));
      AQP_ASSIGN_OR_RETURN(ExprPtr rhs, Lower(e->children[1]));
      return Expr::MakeBinary(e->op, std::move(lhs), std::move(rhs));
    }
    case SqlExpr::Kind::kIn: {
      AQP_ASSIGN_OR_RETURN(ExprPtr operand, Lower(e->children[0]));
      return Expr::MakeIn(std::move(operand), e->in_list);
    }
    case SqlExpr::Kind::kBetween: {
      AQP_ASSIGN_OR_RETURN(ExprPtr operand, Lower(e->children[0]));
      AQP_ASSIGN_OR_RETURN(ExprPtr low, Lower(e->children[1]));
      AQP_ASSIGN_OR_RETURN(ExprPtr high, Lower(e->children[2]));
      return Expr::MakeBetween(std::move(operand), std::move(low),
                               std::move(high));
    }
    case SqlExpr::Kind::kLike: {
      AQP_ASSIGN_OR_RETURN(ExprPtr operand, Lower(e->children[0]));
      return Expr::MakeLike(std::move(operand), e->like_pattern);
    }
    case SqlExpr::Kind::kFunction: {
      std::vector<ExprPtr> args;
      for (const SqlExprPtr& c : e->children) {
        AQP_ASSIGN_OR_RETURN(ExprPtr arg, Lower(c));
        args.push_back(std::move(arg));
      }
      return Expr::MakeFunction(e->function_name, std::move(args));
    }
    case SqlExpr::Kind::kAggCall:
      return Status::InvalidArgument(
          "aggregate call in scalar context: " + e->ToString());
  }
  return Status::Internal("unreachable");
}

// Rewrites `e`, replacing (a) any subtree structurally equal (by SQL text) to
// a key of `replacements` with a column reference to the mapped name, and
// (b) leaving everything else intact. Used to turn post-aggregation
// expressions into expressions over the aggregate node's output columns.
SqlExprPtr Substitute(
    const SqlExprPtr& e,
    const std::unordered_map<std::string, std::string>& replacements) {
  auto it = replacements.find(e->ToString());
  if (it != replacements.end()) {
    auto col = std::make_shared<SqlExpr>();
    col->kind = SqlExpr::Kind::kColumn;
    col->column = it->second;
    return col;
  }
  auto copy = std::make_shared<SqlExpr>(*e);
  for (SqlExprPtr& c : copy->children) {
    if (c != nullptr) c = Substitute(c, replacements);
  }
  return copy;
}

// Collects aggregate calls in `e` into `aggs`, deduplicating by SQL text.
void CollectAggregates(const SqlExprPtr& e,
                       std::vector<SqlExprPtr>* aggs,
                       std::unordered_map<std::string, size_t>* index) {
  if (e == nullptr) return;
  if (e->kind == SqlExpr::Kind::kAggCall) {
    std::string key = e->ToString();
    if (index->count(key) == 0) {
      (*index)[key] = aggs->size();
      aggs->push_back(e);
    }
    return;  // No nested aggregates (parser enforces).
  }
  for (const SqlExprPtr& c : e->children) CollectAggregates(c, aggs, index);
}

}  // namespace

Result<BoundQuery> Bind(const SelectStmt& stmt, const Catalog& catalog) {
  BoundQuery bound;
  bound.error_spec = stmt.error_spec;
  bound.tables.push_back(stmt.from);

  // FROM + JOINs, building the qualified running schema.
  Schema schema;
  AQP_ASSIGN_OR_RETURN(PlanPtr plan, QualifiedScan(stmt.from, catalog, &schema));
  for (const JoinClause& join : stmt.joins) {
    bound.tables.push_back(join.table);
    Schema right_schema;
    AQP_ASSIGN_OR_RETURN(PlanPtr right,
                         QualifiedScan(join.table, catalog, &right_schema));
    std::vector<std::string> left_keys;
    std::vector<std::string> right_keys;
    for (const auto& [a, b] : join.conditions) {
      Result<size_t> a_left = schema.FieldIndex(a);
      Result<size_t> b_right = right_schema.FieldIndex(b);
      if (a_left.ok() && b_right.ok()) {
        left_keys.push_back(schema.field(a_left.value()).name);
        right_keys.push_back(right_schema.field(b_right.value()).name);
        continue;
      }
      Result<size_t> b_left = schema.FieldIndex(b);
      Result<size_t> a_right = right_schema.FieldIndex(a);
      if (b_left.ok() && a_right.ok()) {
        left_keys.push_back(schema.field(b_left.value()).name);
        right_keys.push_back(right_schema.field(a_right.value()).name);
        continue;
      }
      return Status::InvalidArgument("cannot resolve join condition " + a +
                                     " = " + b);
    }
    plan = PlanNode::Join(plan, right, join.type, std::move(left_keys),
                          std::move(right_keys));
    for (const Field& f : right_schema.fields()) schema.AddField(f);
  }

  if (stmt.where != nullptr) {
    AQP_ASSIGN_OR_RETURN(ExprPtr predicate, Lower(stmt.where));
    AQP_ASSIGN_OR_RETURN(DataType t, predicate->TypeCheck(schema));
    if (t != DataType::kBool) {
      return Status::InvalidArgument("WHERE predicate is not boolean");
    }
    plan = PlanNode::Filter(plan, std::move(predicate));
  }

  bool has_agg = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (item.expr->ContainsAggregate()) has_agg = true;
  }
  if (stmt.having != nullptr && !has_agg) {
    return Status::InvalidArgument("HAVING without aggregation");
  }
  bound.has_aggregates = has_agg;

  // Names of the final projected outputs.
  auto output_name = [](const SelectItem& item) {
    return item.alias.empty() ? item.expr->ToString() : item.alias;
  };

  if (has_agg && stmt.distinct) {
    return Status::Unimplemented("SELECT DISTINCT with aggregates");
  }
  if (!has_agg) {
    // Plain projection query; DISTINCT dedupes via a keys-only aggregation.
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const SelectItem& item : stmt.items) {
      AQP_ASSIGN_OR_RETURN(ExprPtr e, Lower(item.expr));
      AQP_RETURN_IF_ERROR(e->TypeCheck(schema).status());
      exprs.push_back(std::move(e));
      names.push_back(output_name(item));
      bound.output_names.push_back(names.back());
    }
    if (stmt.distinct) {
      plan = PlanNode::Aggregate(plan, std::move(exprs), std::move(names), {});
    } else {
      plan = PlanNode::Project(plan, std::move(exprs), std::move(names));
    }
  } else {
    // Aggregation query. Group keys first.
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    std::unordered_map<std::string, std::string> replacements;
    for (size_t g = 0; g < stmt.group_by.size(); ++g) {
      const SqlExprPtr& ge = stmt.group_by[g];
      AQP_ASSIGN_OR_RETURN(ExprPtr lowered, Lower(ge));
      AQP_RETURN_IF_ERROR(lowered->TypeCheck(schema).status());
      std::string name = ge->kind == SqlExpr::Kind::kColumn
                             ? ge->column
                             : "__group_" + std::to_string(g);
      group_exprs.push_back(std::move(lowered));
      group_names.push_back(name);
      replacements[ge->ToString()] = name;
    }

    // Aggregate calls from SELECT items and HAVING, deduplicated.
    std::vector<SqlExprPtr> agg_calls;
    std::unordered_map<std::string, size_t> agg_index;
    for (const SelectItem& item : stmt.items) {
      CollectAggregates(item.expr, &agg_calls, &agg_index);
    }
    CollectAggregates(stmt.having, &agg_calls, &agg_index);

    std::vector<AggSpec> agg_specs;
    for (size_t a = 0; a < agg_calls.size(); ++a) {
      const SqlExprPtr& call = agg_calls[a];
      std::string internal = "__agg_" + std::to_string(a);
      ExprPtr arg;
      if (call->agg_kind != AggKind::kCountStar) {
        AQP_ASSIGN_OR_RETURN(arg, Lower(call->children[0]));
        AQP_ASSIGN_OR_RETURN(DataType arg_type, arg->TypeCheck(schema));
        AQP_RETURN_IF_ERROR(
            AggResultType(call->agg_kind, arg_type).status());
      }
      agg_specs.push_back({call->agg_kind, arg, internal});
      bound.aggregates.push_back(
          {call->agg_kind, arg, internal, call->ToString()});
      replacements[call->ToString()] = internal;
    }
    bound.group_names = group_names;
    plan = PlanNode::Aggregate(plan, std::move(group_exprs), group_names,
                               std::move(agg_specs));

    // Post-aggregation schema for validation.
    Schema agg_schema;
    {
      // Group columns keep their (possibly qualified) source types; we can't
      // easily recompute types here without executing, so validate via the
      // substituted expressions' own TypeCheck against a synthesized schema.
      // Synthesize: group columns -> type from base schema lookup when
      // possible; aggregates -> DOUBLE/INT64 per kind.
      for (size_t g = 0; g < group_names.size(); ++g) {
        DataType t = DataType::kDouble;
        Result<size_t> idx = schema.FieldIndex(group_names[g]);
        if (idx.ok()) {
          t = schema.field(idx.value()).type;
        } else {
          // Expression group key: re-derive its type.
          Result<ExprPtr> lowered = Lower(stmt.group_by[g]);
          if (lowered.ok()) {
            Result<DataType> dt = lowered.value()->TypeCheck(schema);
            if (dt.ok()) t = dt.value();
          }
        }
        agg_schema.AddField({group_names[g], t});
      }
      for (const BoundAggregate& ba : bound.aggregates) {
        DataType t = DataType::kDouble;
        if (ba.kind == AggKind::kCountStar || ba.kind == AggKind::kCount ||
            ba.kind == AggKind::kCountDistinct) {
          t = DataType::kInt64;
        } else if (ba.kind == AggKind::kMin || ba.kind == AggKind::kMax) {
          Result<DataType> dt = ba.arg->TypeCheck(schema);
          if (dt.ok()) t = dt.value();
        }
        agg_schema.AddField({ba.internal_alias, t});
      }
    }

    // HAVING over the aggregate output.
    if (stmt.having != nullptr) {
      SqlExprPtr substituted = Substitute(stmt.having, replacements);
      AQP_ASSIGN_OR_RETURN(ExprPtr predicate, Lower(substituted));
      AQP_ASSIGN_OR_RETURN(DataType t, predicate->TypeCheck(agg_schema));
      if (t != DataType::kBool) {
        return Status::InvalidArgument("HAVING predicate is not boolean");
      }
      plan = PlanNode::Filter(plan, std::move(predicate));
    }

    // Final projection of the SELECT items.
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const SelectItem& item : stmt.items) {
      SqlExprPtr substituted = Substitute(item.expr, replacements);
      if (substituted->ContainsAggregate()) {
        return Status::Internal("unsubstituted aggregate in select item");
      }
      AQP_ASSIGN_OR_RETURN(ExprPtr e, Lower(substituted));
      Result<DataType> t = e->TypeCheck(agg_schema);
      if (!t.ok()) {
        return Status::InvalidArgument(
            "select item references column outside GROUP BY: " +
            item.expr->ToString());
      }
      exprs.push_back(std::move(e));
      names.push_back(output_name(item));
      bound.output_names.push_back(names.back());
    }
    plan = PlanNode::Project(plan, std::move(exprs), std::move(names));
  }

  // ORDER BY over output names.
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const OrderItem& item : stmt.order_by) {
      bool known = false;
      for (const std::string& name : bound.output_names) {
        if (name == item.column) known = true;
      }
      if (!known) {
        return Status::InvalidArgument("ORDER BY references unknown output: " +
                                       item.column);
      }
      keys.push_back({item.column, item.ascending});
    }
    plan = PlanNode::Sort(plan, std::move(keys));
  }
  if (stmt.limit.has_value()) {
    plan = PlanNode::Limit(plan, *stmt.limit);
  }
  bound.plan = std::move(plan);
  return bound;
}

Result<BoundQuery> BindSql(std::string_view sql, const Catalog& catalog) {
  AQP_ASSIGN_OR_RETURN(SelectStmt stmt, Parse(sql));
  return Bind(stmt, catalog);
}

Result<ExprPtr> LowerSqlExpr(const SqlExprPtr& e) { return Lower(e); }

Result<Table> ExecuteSql(std::string_view sql, const Catalog& catalog,
                         ExecStats* stats, obs::QueryTrace* trace) {
  obs::TraceSpan bind_span = obs::MaybeSpan(trace, "parse+bind");
  AQP_ASSIGN_OR_RETURN(BoundQuery bound, BindSql(sql, catalog));
  bind_span.End();
  obs::TraceSpan exec_span = obs::MaybeSpan(trace, "execute");
  return Execute(bound.plan, catalog, stats, trace);
}

Result<PlanPtr> BindPostAggregation(const SelectStmt& stmt,
                                    const BoundQuery& bound,
                                    const std::string& agg_table,
                                    const Catalog& catalog,
                                    bool append_row_id) {
  if (stmt.having != nullptr) {
    return Status::Unimplemented("HAVING is not supported post-aggregation");
  }
  AQP_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                       catalog.Get(agg_table));
  const Schema& schema = table->schema();

  // Rebuild the same substitution map the main binder used.
  std::unordered_map<std::string, std::string> replacements;
  for (size_t g = 0; g < stmt.group_by.size(); ++g) {
    replacements[stmt.group_by[g]->ToString()] = bound.group_names[g];
  }
  for (const BoundAggregate& agg : bound.aggregates) {
    replacements[agg.display] = agg.internal_alias;
  }

  PlanPtr plan = PlanNode::Scan(agg_table);
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (const SelectItem& item : stmt.items) {
    SqlExprPtr substituted = Substitute(item.expr, replacements);
    if (substituted->ContainsAggregate()) {
      return Status::Internal("unsubstituted aggregate in select item");
    }
    AQP_ASSIGN_OR_RETURN(ExprPtr e, Lower(substituted));
    AQP_RETURN_IF_ERROR(e->TypeCheck(schema).status());
    exprs.push_back(std::move(e));
    names.push_back(item.alias.empty() ? item.expr->ToString() : item.alias);
  }
  if (append_row_id) {
    exprs.push_back(Col("__row_id"));
    names.push_back("__row_id");
  }
  plan = PlanNode::Project(plan, std::move(exprs), std::move(names));

  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const OrderItem& item : stmt.order_by) {
      keys.push_back({item.column, item.ascending});
    }
    plan = PlanNode::Sort(plan, std::move(keys));
  }
  if (stmt.limit.has_value()) {
    plan = PlanNode::Limit(plan, *stmt.limit);
  }
  return plan;
}

}  // namespace sql
}  // namespace aqp
