#include "gov/governed_executor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/offline_executor.h"
#include "core/online_aggregation.h"
#include "obs/metrics.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace aqp {
namespace gov {
namespace {

void BumpCounter(const char* name) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry::Global().GetCounter(name)->Increment();
}

// Widens `ci` about its point estimate by half-width factor `f` (>= 1).
void WidenCi(stats::ConfidenceInterval* ci, double f) {
  ci->low = ci->estimate - f * (ci->estimate - ci->low);
  ci->high = ci->estimate + f * (ci->high - ci->estimate);
}

void WidenAllCis(core::ApproxResult* result, double f) {
  for (auto& row : result->cis) {
    for (auto& ci : row) WidenCi(&ci, f);
  }
}

}  // namespace

bool IsDegradable(const Status& s) {
  switch (s.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:  // Runtime faults, injected or real.
      return true;
    default:
      return false;
  }
}

GovernedExecutor::GovernedExecutor(const Catalog* catalog,
                                   const core::SampleCatalog* samples,
                                   GovernedOptions options)
    : catalog_(catalog), samples_(samples), options_(std::move(options)) {}

Result<core::ApproxResult> GovernedExecutor::Execute(std::string_view sql) {
  QueryContext ctx(Limits{options_.deadline_ms, options_.memory_budget_bytes});
  ctx.Start();
  return ExecuteWithContext(sql, ctx);
}

Result<core::ApproxResult> GovernedExecutor::ExecuteWithContext(
    std::string_view sql, QueryContext& ctx, obs::QueryTrace* trace) {
  BumpCounter("gov.queries");

  core::AqpOptions governed = options_.aqp;
  ctx.Bind(&governed.exec);
  core::ApproxExecutor rung0(catalog_, governed);
  Result<core::ApproxResult> preferred = [&] {
    // The rung span's End() closes any spans the executor left open when it
    // failed mid-stage, so a later rung's spans never nest under rung 0's.
    obs::TraceSpan rung_span = obs::MaybeSpan(trace, "rung-0");
    Result<core::ApproxResult> r = rung0.Execute(sql, trace);
    rung_span.AddAttr("ok", r.ok() ? "true" : "false");
    return r;
  }();
  if (preferred.ok()) {
    core::ApproxResult result = std::move(preferred).value();
    FinishProfile(&result, ctx, /*rung=*/0, /*degraded_reason=*/"");
    return result;
  }

  Status failure = preferred.status();
  if (failure.code() == StatusCode::kCancelled) {
    // The caller asked the query to stop; a substitute answer would be
    // exactly what they did not want.
    BumpCounter("gov.cancelled");
    return failure;
  }
  if (!IsDegradable(failure)) return failure;
  return RunLadder(sql, ctx, std::move(failure), trace);
}

Result<core::ApproxResult> GovernedExecutor::RunLadder(std::string_view sql,
                                                       QueryContext& ctx,
                                                       Status failure,
                                                       obs::QueryTrace* trace) {
  // Rung 1: a pre-computed offline sample answers at cost proportional to
  // the (small) stored sample, no base-table scan. A synopsis the
  // DriftMonitor scored past the decline threshold is refused outright —
  // rung 2 reads current data, and a wrong-but-confident answer is worse
  // than a wider honest one.
  const bool drift_declined =
      options_.synopsis_drift_score >= options_.drift_decline_threshold &&
      options_.drift_decline_threshold > 0.0;
  if (drift_declined) BumpCounter("gov.drift_declined");
  if (samples_ != nullptr && !drift_declined) {
    Result<core::ApproxResult> offline = [&] {
      obs::TraceSpan rung_span = obs::MaybeSpan(trace, "rung-1");
      Result<core::ApproxResult> r = RunOfflineRung(sql, ctx, trace);
      rung_span.AddAttr("ok", r.ok() ? "true" : "false");
      return r;
    }();
    if (offline.ok()) {
      core::ApproxResult result = std::move(offline).value();
      double raw_error = core::MaxRelativeCiHalfWidth(result.cis);
      // Drift-dependent inflation: measured staleness buys wider intervals.
      const double inflation =
          options_.degraded_ci_inflation *
          (1.0 + options_.drift_inflation_gain *
                     std::max(0.0, options_.synopsis_drift_score));
      WidenAllCis(&result, inflation);
      FinishProfile(&result, ctx, /*rung=*/1,
                    "degraded to stored offline sample: " + failure.message(),
                    raw_error);
      BumpCounter("gov.degraded_rung1");
      return result;
    }
  }

  // Rung 2: an online-aggregation early answer over one bounded grace chunk.
  Result<core::ApproxResult> ola = [&] {
    obs::TraceSpan rung_span = obs::MaybeSpan(trace, "rung-2");
    Result<core::ApproxResult> r = RunOlaRung(sql, ctx);
    rung_span.AddAttr("ok", r.ok() ? "true" : "false");
    return r;
  }();
  if (ola.ok()) {
    core::ApproxResult result = std::move(ola).value();
    double raw_error = core::MaxRelativeCiHalfWidth(result.cis);
    WidenAllCis(&result, options_.degraded_ci_inflation);
    FinishProfile(&result, ctx, /*rung=*/2,
                  "degraded to online-aggregation early answer: " +
                      failure.message(),
                  raw_error);
    BumpCounter("gov.degraded_rung2");
    return result;
  }

  BumpCounter("gov.exhausted");
  return Status::ResourceExhausted(
      "no rung of the degradation ladder could answer: " + failure.message());
}

Result<core::ApproxResult> GovernedExecutor::RunOfflineRung(
    std::string_view sql, QueryContext& ctx, obs::QueryTrace* trace) {
  // The context's token has already tripped (that is why we are here);
  // rung 1 runs without it but keeps the memory budget honest — the stored
  // sample is small, and if even it does not fit the ladder descends.
  ExecOptions exec = options_.aqp.exec;
  exec.cancel = nullptr;
  exec.memory = &ctx.memory();
  core::OfflineExecutor offline(catalog_, samples_, exec);
  return offline.Execute(sql, options_.confidence, trace);
}

Result<core::ApproxResult> GovernedExecutor::RunOlaRung(std::string_view sql,
                                                        QueryContext& ctx) {
  AQP_ASSIGN_OR_RETURN(sql::SelectStmt stmt, sql::Parse(sql));
  if (!stmt.joins.empty() || !stmt.group_by.empty() ||
      stmt.having != nullptr || stmt.distinct || stmt.items.size() != 1) {
    return Status::Unimplemented(
        "online-aggregation rung answers single-aggregate single-table "
        "queries only");
  }
  const sql::SelectItem& item = stmt.items[0];
  if (item.expr == nullptr || item.expr->kind != sql::SqlExpr::Kind::kAggCall) {
    return Status::Unimplemented("online-aggregation rung needs an aggregate");
  }
  AggKind kind = item.expr->agg_kind;
  if (kind != AggKind::kSum && kind != AggKind::kAvg &&
      kind != AggKind::kCountStar) {
    return Status::Unimplemented(
        "online-aggregation rung supports SUM/AVG/COUNT(*) only");
  }

  ExprPtr measure;
  if (kind == AggKind::kCountStar) {
    measure = Expr::MakeLiteral(Value(1.0));
  } else {
    AQP_ASSIGN_OR_RETURN(measure, sql::LowerSqlExpr(item.expr->children[0]));
  }
  ExprPtr predicate;
  if (stmt.where != nullptr) {
    AQP_ASSIGN_OR_RETURN(predicate, sql::LowerSqlExpr(stmt.where));
  }
  AQP_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                       catalog_->Get(stmt.from.table));

  // No token: the grace chunk is the bounded cost we accept after the
  // deadline. The memory budget stays bound so the OLA working set (order,
  // measures, mask) is still accounted.
  ExecOptions exec = options_.aqp.exec;
  exec.cancel = nullptr;
  exec.memory = &ctx.memory();
  AQP_ASSIGN_OR_RETURN(
      core::OnlineAggregator agg,
      core::OnlineAggregator::Create(*table, measure, predicate,
                                     options_.aqp.seed, exec));
  core::OlaProgress progress =
      agg.Step(options_.ola_grace_rows, options_.confidence);

  stats::ConfidenceInterval ci;
  switch (kind) {
    case AggKind::kSum:
      ci = progress.sum_ci;
      break;
    case AggKind::kAvg:
      ci = progress.avg_ci;
      break;
    default:
      ci = progress.count_ci;
      break;
  }

  std::string name =
      item.alias.empty() ? item.expr->ToString() : item.alias;
  core::ApproxResult result;
  if (kind == AggKind::kCountStar) {
    Column col(DataType::kInt64);
    col.AppendInt64(static_cast<int64_t>(std::llround(ci.estimate)));
    AQP_ASSIGN_OR_RETURN(
        result.table,
        Table::Make(Schema({Field{name, DataType::kInt64}}), {std::move(col)}));
  } else {
    Column col(DataType::kDouble);
    col.AppendDouble(ci.estimate);
    AQP_ASSIGN_OR_RETURN(
        result.table,
        Table::Make(Schema({Field{name, DataType::kDouble}}),
                    {std::move(col)}));
  }
  result.approximated = true;
  result.sampled_table = stmt.from.table;
  result.final_rate = progress.fraction;
  result.cis = {{ci}};
  result.profile = agg.Profile();
  result.profile.query = std::string(sql);
  result.profile.executor = "online-aggregation";
  result.profile.approximated = true;
  result.profile.sampled_table = stmt.from.table;
  result.profile.sampled_fraction = progress.fraction;
  return result;
}

void GovernedExecutor::FinishProfile(core::ApproxResult* result,
                                     const QueryContext& ctx, int rung,
                                     std::string degraded_reason,
                                     double pre_inflation_error) const {
  obs::ExecutionProfile& profile = result->profile;
  profile.degradation_rung = rung;
  profile.degraded_reason = std::move(degraded_reason);
  // For degraded answers the CIs have already been widened; recompute so the
  // profile reports the error the caller actually received, and keep the raw
  // estimator half-width alongside it so coverage misses can be attributed
  // to estimation error vs. insufficient inflation.
  profile.estimated_error = core::MaxRelativeCiHalfWidth(result->cis);
  profile.pre_inflation_error = pre_inflation_error;
  profile.memory_peak_bytes = ctx.memory().peak();
  profile.memory_leaked_bytes = ctx.memory().used();
  profile.synopsis_drift_score = options_.synopsis_drift_score;
  profile.synopsis_age_seconds = options_.synopsis_age_seconds;
}

}  // namespace gov
}  // namespace aqp
