#include "gov/governed_executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/str_util.h"
#include "core/offline_executor.h"
#include "core/online_aggregation.h"
#include "obs/metrics.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace aqp {
namespace gov {
namespace {

void BumpCounter(const char* name) {
  if (!obs::Enabled()) return;
  obs::MetricsRegistry::Global().GetCounter(name)->Increment();
}

/// Backoff before retry `attempt` (0-based): exponential with a
/// deterministic jitter in [0.5, 1.0) keyed on (seed, attempt) — seeded runs
/// replay with identical waits, so fault-matrix failures stay reproducible.
int64_t BackoffMs(const RetryOptions& retry, uint64_t seed, uint64_t attempt) {
  double base = static_cast<double>(std::max<int64_t>(1, retry.base_backoff_ms));
  for (uint64_t i = 0; i < attempt; ++i) {
    base *= std::max(1.0, retry.backoff_multiplier);
    if (base >= static_cast<double>(retry.max_backoff_ms)) break;
  }
  base = std::min(base, static_cast<double>(std::max<int64_t>(1, retry.max_backoff_ms)));
  uint64_t h = Mix64(seed ^ (0x9e3779b97f4a7c15ull * (attempt + 1)));
  double jitter = 0.5 + 0.5 * (static_cast<double>(h >> 11) * 0x1.0p-53);
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(base * jitter)));
}

/// Sleeps `ms` in small slices, bailing early once the query's token fires —
/// a backoff must never outlive the deadline it is spending.
void SleepWithToken(int64_t ms, const CancellationToken& token) {
  constexpr int64_t kSliceMs = 5;
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < end) {
    if (token.IsCancelled()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(kSliceMs));
  }
}

// Widens `ci` about its point estimate by half-width factor `f` (>= 1).
void WidenCi(stats::ConfidenceInterval* ci, double f) {
  ci->low = ci->estimate - f * (ci->estimate - ci->low);
  ci->high = ci->estimate + f * (ci->high - ci->estimate);
}

void WidenAllCis(core::ApproxResult* result, double f) {
  for (auto& row : result->cis) {
    for (auto& ci : row) WidenCi(&ci, f);
  }
}

}  // namespace

bool IsDegradable(const Status& s) {
  switch (s.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:  // Runtime faults, injected or real.
      return true;
    default:
      return false;
  }
}

bool IsLadderExhausted(const Status& s) {
  return s.code() == StatusCode::kResourceExhausted &&
         s.message().rfind("no rung of the degradation ladder", 0) == 0;
}

RetryOptions RetryOptions::FromEnv(RetryOptions base) {
  auto load_i64 = [](const char* name, int64_t* out) {
    const char* env = std::getenv(name);
    if (env == nullptr || *env == '\0') return;
    auto parsed = ParseInt64(env);
    if (parsed.ok()) *out = *parsed;
  };
  auto load_f64 = [](const char* name, double* out) {
    const char* env = std::getenv(name);
    if (env == nullptr || *env == '\0') return;
    auto parsed = ParseDouble(env);
    if (parsed.ok()) *out = *parsed;
  };
  int64_t max_attempts = base.max_attempts;
  load_i64("AQP_RETRY_MAX", &max_attempts);
  base.max_attempts = static_cast<int>(
      std::clamp<int64_t>(max_attempts, 0, 1000));
  load_i64("AQP_RETRY_BASE_MS", &base.base_backoff_ms);
  load_f64("AQP_RETRY_MULTIPLIER", &base.backoff_multiplier);
  load_i64("AQP_RETRY_MAX_BACKOFF_MS", &base.max_backoff_ms);
  return base;
}

GovernedExecutor::GovernedExecutor(const Catalog* catalog,
                                   const core::SampleCatalog* samples,
                                   GovernedOptions options)
    : catalog_(catalog), samples_(samples), options_(std::move(options)) {}

Result<core::ApproxResult> GovernedExecutor::Execute(std::string_view sql) {
  QueryContext ctx(Limits{options_.deadline_ms, options_.memory_budget_bytes});
  ctx.Start();
  return ExecuteWithContext(sql, ctx);
}

Result<core::ApproxResult> GovernedExecutor::ExecuteWithContext(
    std::string_view sql, QueryContext& ctx, obs::QueryTrace* trace) {
  BumpCounter("gov.queries");

  RetryState retry;
  retry.attempts_left = std::max(0, options_.retry.max_attempts);

  core::AqpOptions governed = options_.aqp;
  ctx.Bind(&governed.exec);
  core::ApproxExecutor rung0(catalog_, governed);
  Result<core::ApproxResult> preferred = [&]() -> Result<core::ApproxResult> {
    if (!GateAllow(0, retry).allow) {
      // A denied rung behaves exactly like a failed one: kInternal sends the
      // query down the ladder without recording a breaker outcome.
      return Status::Internal("circuit open: rung 0 denied for table '" +
                              options_.gate_table + "'");
    }
    return AttemptWithRetry(0, ctx, retry, [&] {
      // The rung span's End() closes any spans the executor left open when it
      // failed mid-stage, so a later rung's spans never nest under rung 0's.
      obs::TraceSpan rung_span = obs::MaybeSpan(trace, "rung-0");
      Result<core::ApproxResult> r = rung0.Execute(sql, trace);
      rung_span.AddAttr("ok", r.ok() ? "true" : "false");
      return r;
    });
  }();
  if (preferred.ok()) {
    core::ApproxResult result = std::move(preferred).value();
    FinishProfile(&result, ctx, retry, /*rung=*/0, /*degraded_reason=*/"");
    return result;
  }

  Status failure = preferred.status();
  if (failure.code() == StatusCode::kCancelled) {
    // The caller asked the query to stop; a substitute answer would be
    // exactly what they did not want.
    BumpCounter("gov.cancelled");
    return failure;
  }
  if (!IsDegradable(failure)) return failure;
  return RunLadder(sql, ctx, std::move(failure), retry, trace);
}

template <typename Fn>
Result<core::ApproxResult> GovernedExecutor::AttemptWithRetry(
    int rung, QueryContext& ctx, RetryState& retry, Fn&& attempt) {
  const bool gated =
      options_.rung_gate != nullptr && !options_.gate_table.empty();
  bool retried_here = false;
  for (;;) {
    Result<core::ApproxResult> r = attempt();
    const bool internal =
        !r.ok() && r.status().code() == StatusCode::kInternal;
    if (!internal || retry.attempts_left <= 0 || ctx.cancelled()) {
      // Conclusive: success, a non-transient failure, or no budget left.
      // Only success and kInternal are rung health signals — deadline /
      // memory / unimplemented failures say nothing about the rung itself.
      if (gated && (r.ok() || internal)) {
        options_.rung_gate->RecordOutcome(options_.gate_table, rung, r.ok());
      }
      if (r.ok() && retried_here) BumpCounter("gov.retry.recovered");
      return r;
    }
    const int64_t backoff =
        BackoffMs(options_.retry, options_.aqp.seed, retry.count);
    const int64_t remaining = ctx.remaining_deadline_ms();
    if (remaining >= 0 && backoff >= remaining) {
      // Not enough deadline left to both wait and re-run; spend what is left
      // on the ladder instead.
      if (gated) {
        options_.rung_gate->RecordOutcome(options_.gate_table, rung, false);
      }
      return r;
    }
    --retry.attempts_left;
    ++retry.count;
    retried_here = true;
    BumpCounter("gov.retry.attempts");
    SleepWithToken(backoff, ctx.token());
    retry.wait_seconds += static_cast<double>(backoff) / 1000.0;
  }
}

RungGate::Decision GovernedExecutor::GateAllow(int rung,
                                               RetryState& retry) const {
  if (options_.rung_gate == nullptr || options_.gate_table.empty()) return {};
  RungGate::Decision d = options_.rung_gate->Allow(options_.gate_table, rung);
  if (!d.allow) {
    BumpCounter("gov.breaker_skipped");
    retry.retry_after_ms = std::max(retry.retry_after_ms, d.retry_after_ms);
  }
  return d;
}

Result<core::ApproxResult> GovernedExecutor::RunLadder(std::string_view sql,
                                                       QueryContext& ctx,
                                                       Status failure,
                                                       RetryState& retry,
                                                       obs::QueryTrace* trace) {
  // Rung 1: a pre-computed offline sample answers at cost proportional to
  // the (small) stored sample, no base-table scan. A synopsis the
  // DriftMonitor scored past the decline threshold is refused outright —
  // rung 2 reads current data, and a wrong-but-confident answer is worse
  // than a wider honest one.
  const bool drift_declined =
      options_.synopsis_drift_score >= options_.drift_decline_threshold &&
      options_.drift_decline_threshold > 0.0;
  if (drift_declined) BumpCounter("gov.drift_declined");
  if (samples_ != nullptr && !drift_declined && GateAllow(1, retry).allow) {
    Result<core::ApproxResult> offline = AttemptWithRetry(1, ctx, retry, [&] {
      obs::TraceSpan rung_span = obs::MaybeSpan(trace, "rung-1");
      Result<core::ApproxResult> r = RunOfflineRung(sql, ctx, trace);
      rung_span.AddAttr("ok", r.ok() ? "true" : "false");
      return r;
    });
    if (offline.ok()) {
      core::ApproxResult result = std::move(offline).value();
      double raw_error = core::MaxRelativeCiHalfWidth(result.cis);
      // Drift-dependent inflation: measured staleness buys wider intervals.
      const double inflation =
          options_.degraded_ci_inflation *
          (1.0 + options_.drift_inflation_gain *
                     std::max(0.0, options_.synopsis_drift_score));
      WidenAllCis(&result, inflation);
      FinishProfile(&result, ctx, retry, /*rung=*/1,
                    "degraded to stored offline sample: " + failure.message(),
                    raw_error);
      BumpCounter("gov.degraded_rung1");
      return result;
    }
  }

  // Rung 2: an online-aggregation early answer over one bounded grace chunk.
  if (GateAllow(2, retry).allow) {
    Result<core::ApproxResult> ola = AttemptWithRetry(2, ctx, retry, [&] {
      obs::TraceSpan rung_span = obs::MaybeSpan(trace, "rung-2");
      Result<core::ApproxResult> r = RunOlaRung(sql, ctx);
      rung_span.AddAttr("ok", r.ok() ? "true" : "false");
      return r;
    });
    if (ola.ok()) {
      core::ApproxResult result = std::move(ola).value();
      double raw_error = core::MaxRelativeCiHalfWidth(result.cis);
      WidenAllCis(&result, options_.degraded_ci_inflation);
      FinishProfile(&result, ctx, retry, /*rung=*/2,
                    "degraded to online-aggregation early answer: " +
                        failure.message(),
                    raw_error);
      BumpCounter("gov.degraded_rung2");
      return result;
    }
  }

  BumpCounter("gov.exhausted");
  std::string message =
      "no rung of the degradation ladder could answer: " + failure.message();
  // A fast-fail caused (at least partly) by open circuits carries the gate's
  // worst retry-after hint in the parseable form clients already understand.
  if (retry.retry_after_ms > 0) {
    message += " (retry_after_ms=" + std::to_string(retry.retry_after_ms) + ")";
  }
  return Status::ResourceExhausted(std::move(message));
}

Result<core::ApproxResult> GovernedExecutor::RunOfflineRung(
    std::string_view sql, QueryContext& ctx, obs::QueryTrace* trace) {
  // The context's token has already tripped (that is why we are here);
  // rung 1 runs without it but keeps the memory budget honest — the stored
  // sample is small, and if even it does not fit the ladder descends.
  ExecOptions exec = options_.aqp.exec;
  exec.cancel = nullptr;
  exec.memory = &ctx.memory();
  core::OfflineExecutor offline(catalog_, samples_, exec);
  return offline.Execute(sql, options_.confidence, trace);
}

Result<core::ApproxResult> GovernedExecutor::RunOlaRung(std::string_view sql,
                                                        QueryContext& ctx) {
  AQP_ASSIGN_OR_RETURN(sql::SelectStmt stmt, sql::Parse(sql));
  if (!stmt.joins.empty() || !stmt.group_by.empty() ||
      stmt.having != nullptr || stmt.distinct || stmt.items.size() != 1) {
    return Status::Unimplemented(
        "online-aggregation rung answers single-aggregate single-table "
        "queries only");
  }
  const sql::SelectItem& item = stmt.items[0];
  if (item.expr == nullptr || item.expr->kind != sql::SqlExpr::Kind::kAggCall) {
    return Status::Unimplemented("online-aggregation rung needs an aggregate");
  }
  AggKind kind = item.expr->agg_kind;
  if (kind != AggKind::kSum && kind != AggKind::kAvg &&
      kind != AggKind::kCountStar) {
    return Status::Unimplemented(
        "online-aggregation rung supports SUM/AVG/COUNT(*) only");
  }

  ExprPtr measure;
  if (kind == AggKind::kCountStar) {
    measure = Expr::MakeLiteral(Value(1.0));
  } else {
    AQP_ASSIGN_OR_RETURN(measure, sql::LowerSqlExpr(item.expr->children[0]));
  }
  ExprPtr predicate;
  if (stmt.where != nullptr) {
    AQP_ASSIGN_OR_RETURN(predicate, sql::LowerSqlExpr(stmt.where));
  }
  AQP_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                       catalog_->Get(stmt.from.table));

  // No token: the grace chunk is the bounded cost we accept after the
  // deadline. The memory budget stays bound so the OLA working set (order,
  // measures, mask) is still accounted.
  ExecOptions exec = options_.aqp.exec;
  exec.cancel = nullptr;
  exec.memory = &ctx.memory();
  AQP_ASSIGN_OR_RETURN(
      core::OnlineAggregator agg,
      core::OnlineAggregator::Create(*table, measure, predicate,
                                     options_.aqp.seed, exec));
  core::OlaProgress progress =
      agg.Step(options_.ola_grace_rows, options_.confidence);

  stats::ConfidenceInterval ci;
  switch (kind) {
    case AggKind::kSum:
      ci = progress.sum_ci;
      break;
    case AggKind::kAvg:
      ci = progress.avg_ci;
      break;
    default:
      ci = progress.count_ci;
      break;
  }

  std::string name =
      item.alias.empty() ? item.expr->ToString() : item.alias;
  core::ApproxResult result;
  if (kind == AggKind::kCountStar) {
    Column col(DataType::kInt64);
    col.AppendInt64(static_cast<int64_t>(std::llround(ci.estimate)));
    AQP_ASSIGN_OR_RETURN(
        result.table,
        Table::Make(Schema({Field{name, DataType::kInt64}}), {std::move(col)}));
  } else {
    Column col(DataType::kDouble);
    col.AppendDouble(ci.estimate);
    AQP_ASSIGN_OR_RETURN(
        result.table,
        Table::Make(Schema({Field{name, DataType::kDouble}}),
                    {std::move(col)}));
  }
  result.approximated = true;
  result.sampled_table = stmt.from.table;
  result.final_rate = progress.fraction;
  result.cis = {{ci}};
  result.profile = agg.Profile();
  result.profile.query = std::string(sql);
  result.profile.executor = "online-aggregation";
  result.profile.approximated = true;
  result.profile.sampled_table = stmt.from.table;
  result.profile.sampled_fraction = progress.fraction;
  return result;
}

void GovernedExecutor::FinishProfile(core::ApproxResult* result,
                                     const QueryContext& ctx,
                                     const RetryState& retry, int rung,
                                     std::string degraded_reason,
                                     double pre_inflation_error) const {
  obs::ExecutionProfile& profile = result->profile;
  profile.degradation_rung = rung;
  profile.degraded_reason = std::move(degraded_reason);
  // For degraded answers the CIs have already been widened; recompute so the
  // profile reports the error the caller actually received, and keep the raw
  // estimator half-width alongside it so coverage misses can be attributed
  // to estimation error vs. insufficient inflation.
  profile.estimated_error = core::MaxRelativeCiHalfWidth(result->cis);
  profile.pre_inflation_error = pre_inflation_error;
  profile.memory_peak_bytes = ctx.memory().peak();
  profile.memory_leaked_bytes = ctx.memory().used();
  profile.synopsis_drift_score = options_.synopsis_drift_score;
  profile.synopsis_age_seconds = options_.synopsis_age_seconds;
  profile.retry_count = retry.count;
  profile.retry_wait_seconds = retry.wait_seconds;
}

}  // namespace gov
}  // namespace aqp
