#ifndef AQP_GOV_QUERY_CONTEXT_H_
#define AQP_GOV_QUERY_CONTEXT_H_

#include <cstdint>

#include "common/cancellation.h"
#include "common/memory_tracker.h"
#include "engine/exec_options.h"

namespace aqp {
namespace gov {

/// Per-query resource limits. Zero/negative sentinels mean "unlimited" so a
/// default-constructed Limits governs nothing.
struct Limits {
  /// Wall-clock deadline in milliseconds from Start(); < 0 = none. 0 is
  /// legal and means "already expired" — the degradation ladder then answers
  /// from whatever costs (almost) nothing.
  int64_t deadline_ms = -1;
  /// Byte budget for live query memory; 0 = unlimited.
  uint64_t memory_budget_bytes = 0;
};

/// Bundles the per-query governance state: one CancellationSource (deadline +
/// user cancel + memory/fault trips all funnel into it) and one MemoryTracker
/// charged by the operators this query runs. Create one per query, call
/// Start() when execution begins (arms the deadline), and Bind() it into the
/// ExecOptions handed to any executor.
///
/// The context must outlive every executor borrowing its token/tracker —
/// executors only hold pointers.
class QueryContext {
 public:
  /// `session_memory`, when given, is a session-wide tracker charged in
  /// parallel with this query's own: a query then fails when EITHER its own
  /// budget or its session's is exhausted, which is how the service tier
  /// caps what one session can hold across concurrent queries. Must outlive
  /// the context.
  explicit QueryContext(Limits limits = {},
                        MemoryTracker* session_memory = nullptr);

  /// Arms the deadline relative to now. Idempotent re-arming is not
  /// supported; call once per context.
  void Start();

  /// Requests user cancellation (first cause wins).
  void Cancel(std::string reason = "cancelled by caller");

  /// Points `opts` at this context's token and tracker.
  void Bind(ExecOptions* opts) {
    opts->cancel = &token_;
    opts->memory = &memory_;
  }

  const Limits& limits() const { return limits_; }
  const CancellationToken& token() const { return token_; }
  CancellationSource& source() { return source_; }
  MemoryTracker& memory() { return memory_; }
  const MemoryTracker& memory() const { return memory_; }

  bool cancelled() const { return token_.IsCancelled(); }
  StopCause cause() const { return token_.cause(); }

  /// Milliseconds of deadline budget left (-1 = no deadline, 0 = expired).
  int64_t remaining_deadline_ms() const {
    return source_.RemainingDeadlineMs();
  }

 private:
  Limits limits_;
  CancellationSource source_;
  CancellationToken token_;
  MemoryTracker memory_;
};

}  // namespace gov
}  // namespace aqp

#endif  // AQP_GOV_QUERY_CONTEXT_H_
