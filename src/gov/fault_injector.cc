#include "gov/fault_injector.h"

#include <cstdlib>

#include "common/hash.h"
#include "common/str_util.h"
#include "common/thread_pool.h"

namespace aqp {
namespace gov {
namespace {

// True iff hit `hit` at `site` under `seed` should fail with probability `p`.
// Pure function of its arguments: the schedule is independent of thread
// interleavings and of how many *other* sites fired in between.
bool ScheduleFires(uint64_t seed, std::string_view site, uint64_t hit,
                   double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  uint64_t h = HashString(site, seed);
  h = Mix64(h ^ hit);
  // Map the top 53 bits to [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p;
}

// One-time environment arming so the CI fault matrix can drive unmodified
// test binaries: AQP_FAULT_SEED=<u64> [AQP_FAULT_P=<prob, default 0.01>].
void ArmFromEnvOnce(FaultInjector& inj) {
  static bool done = [&inj]() {
    const char* seed_env = std::getenv("AQP_FAULT_SEED");
    if (seed_env == nullptr || *seed_env == '\0') return true;
    auto seed = ParseInt64(seed_env);
    if (!seed.ok() || *seed < 0) return true;
    double p = 0.01;
    const char* p_env = std::getenv("AQP_FAULT_P");
    if (p_env != nullptr && *p_env != '\0') {
      auto parsed = ParseDouble(p_env);
      if (parsed.ok() && *parsed >= 0.0 && *parsed <= 1.0) p = *parsed;
    }
    inj.Arm(static_cast<uint64_t>(*seed), p);
    return true;
  }();
  (void)done;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = []() {
    auto* inj = new FaultInjector();
    ArmFromEnvOnce(*inj);
    return inj;
  }();
  return *instance;
}

void FaultInjector::Arm(uint64_t seed, double probability) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    seed_ = seed;
    probability_ = probability;
  }
  armed_.store(true, std::memory_order_release);
  // Route pool-dispatch decisions through the same schedule. The hook takes
  // the helper slot index but the schedule key is the per-site hit counter,
  // so seeds replay identically whatever slots the pool picks.
  ThreadPool::SetDispatchFaultHook(
      [](size_t) { return !Global().MaybeFail("pool.dispatch").ok(); });
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_release);
  ThreadPool::SetDispatchFaultHook(nullptr);
}

Status FaultInjector::MaybeFail(std::string_view site) {
  if (!armed_.load(std::memory_order_acquire)) return Status::OK();
  uint64_t seed;
  double p;
  uint64_t hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seed = seed_;
    p = probability_;
    auto it = hits_.find(site);
    if (it == hits_.end()) {
      it = hits_.emplace(std::string(site), 0).first;
    }
    hit = it->second++;
  }
  evaluated_.fetch_add(1, std::memory_order_relaxed);
  if (!ScheduleFires(seed, site, hit, p)) return Status::OK();
  injected_.fetch_add(1, std::memory_order_relaxed);
  return Status::Internal("injected fault at " + std::string(site) +
                          " (seed=" + std::to_string(seed) +
                          ", hit=" + std::to_string(hit) + ")");
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  hits_.clear();
  injected_.store(0, std::memory_order_relaxed);
  evaluated_.store(0, std::memory_order_relaxed);
}

ScopedFaultInjection::ScopedFaultInjection(uint64_t seed, double probability) {
  FaultInjector& inj = FaultInjector::Global();
  inj.ResetCounters();
  inj.Arm(seed, probability);
}

ScopedFaultInjection::ScopedFaultInjection() {
  FaultInjector::Global().Disarm();
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::Global().Disarm();
  FaultInjector::Global().ResetCounters();
}

}  // namespace gov
}  // namespace aqp
