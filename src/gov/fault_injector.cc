#include "gov/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/hash.h"
#include "common/str_util.h"
#include "common/thread_pool.h"

namespace aqp {
namespace gov {
namespace {

// True iff hit `hit` at `site` under `seed` should fail with probability `p`.
// Pure function of its arguments: the schedule is independent of thread
// interleavings and of how many *other* sites fired in between.
bool ScheduleFires(uint64_t seed, std::string_view site, uint64_t hit,
                   double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  uint64_t h = HashString(site, seed);
  h = Mix64(h ^ hit);
  // Map the top 53 bits to [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p;
}

// One-time environment arming so the CI fault matrix can drive unmodified
// test binaries: AQP_FAULT_SEED=<u64> [AQP_FAULT_P=<prob, default 0.01>]
// [AQP_FAULT_SITES=site1,site2 — restricts the schedule to those sites].
void ArmFromEnvOnce(FaultInjector& inj) {
  static bool done = [&inj]() {
    const char* seed_env = std::getenv("AQP_FAULT_SEED");
    if (seed_env == nullptr || *seed_env == '\0') return true;
    auto seed = ParseInt64(seed_env);
    if (!seed.ok() || *seed < 0) return true;
    double p = 0.01;
    const char* p_env = std::getenv("AQP_FAULT_P");
    if (p_env != nullptr && *p_env != '\0') {
      auto parsed = ParseDouble(p_env);
      if (parsed.ok() && *parsed >= 0.0 && *parsed <= 1.0) p = *parsed;
    }
    std::vector<std::string> sites;
    const char* sites_env = std::getenv("AQP_FAULT_SITES");
    if (sites_env != nullptr && *sites_env != '\0') {
      for (const std::string& part : Split(sites_env, ',')) {
        std::string_view site = StripWhitespace(part);
        if (!site.empty()) sites.emplace_back(site);
      }
    }
    inj.ArmSites(static_cast<uint64_t>(*seed), p, sites);
    return true;
  }();
  (void)done;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = []() {
    auto* inj = new FaultInjector();
    ArmFromEnvOnce(*inj);
    return inj;
  }();
  return *instance;
}

void FaultInjector::Arm(uint64_t seed, double probability) {
  ArmSites(seed, probability, {});
}

void FaultInjector::ArmSites(uint64_t seed, double probability,
                             const std::vector<std::string>& sites) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    seed_ = seed;
    probability_ = probability;
    site_filter_.clear();
    for (const std::string& site : sites) site_filter_.insert(site);
  }
  armed_.store(true, std::memory_order_release);
  InstallDispatchHook();
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_release);
  ClearHangs();
  MaybeRemoveDispatchHook();
}

void FaultInjector::ArmHang(std::string_view site, int64_t hang_ms,
                            uint64_t count) {
  if (hang_ms <= 0 || count == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end()) {
      it = sites_.emplace(std::string(site), SiteState{}).first;
    }
    it->second.hangs_remaining = count;
    it->second.hang_ms = hang_ms;
  }
  hang_armed_.store(true, std::memory_order_release);
  InstallDispatchHook();
}

void FaultInjector::ClearHangs() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [site, state] : sites_) {
      state.hangs_remaining = 0;
      state.hang_ms = 0;
    }
  }
  hang_armed_.store(false, std::memory_order_release);
  MaybeRemoveDispatchHook();
}

Status FaultInjector::MaybeFail(std::string_view site) {
  const bool armed = armed_.load(std::memory_order_acquire);
  const bool hang_armed = hang_armed_.load(std::memory_order_acquire);
  if (!armed && !hang_armed) return Status::OK();

  // Hung-morsel mode first: deterministic by hit count, not by schedule.
  if (hang_armed) {
    int64_t hang_ms = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = sites_.find(site);
      if (it != sites_.end() && it->second.hangs_remaining > 0) {
        --it->second.hangs_remaining;
        ++it->second.hung;
        hang_ms = it->second.hang_ms;
      }
    }
    if (hang_ms > 0) {
      hung_.fetch_add(1, std::memory_order_relaxed);
      // Deliberately ignores every cancellation token: the point is a thread
      // that stopped cooperating, so the watchdog has something to reclaim.
      std::this_thread::sleep_for(std::chrono::milliseconds(hang_ms));
      return Status::OK();
    }
  }

  if (!armed) return Status::OK();
  uint64_t seed;
  double p;
  uint64_t hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Filtered-out sites return OK without advancing their schedule, so a
    // site-targeted run replays identically to the same sites in a full run.
    if (!site_filter_.empty() &&
        site_filter_.find(site) == site_filter_.end()) {
      return Status::OK();
    }
    seed = seed_;
    p = probability_;
    auto it = sites_.find(site);
    if (it == sites_.end()) {
      it = sites_.emplace(std::string(site), SiteState{}).first;
    }
    hit = it->second.hits++;
    if (ScheduleFires(seed, site, hit, p)) ++it->second.injected;
  }
  evaluated_.fetch_add(1, std::memory_order_relaxed);
  if (!ScheduleFires(seed, site, hit, p)) return Status::OK();
  injected_.fetch_add(1, std::memory_order_relaxed);
  return Status::Internal("injected fault at " + std::string(site) +
                          " (seed=" + std::to_string(seed) +
                          ", hit=" + std::to_string(hit) + ")");
}

std::map<std::string, FaultSiteCounters> FaultInjector::SiteCountersSnapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, FaultSiteCounters> out;
  for (const auto& [site, state] : sites_) {
    FaultSiteCounters c;
    c.evaluated = state.hits;
    c.injected = state.injected;
    c.hung = state.hung;
    out.emplace(site, c);
  }
  return out;
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [site, state] : sites_) {
    // Hang budgets are configuration, not counters; they survive a reset so
    // ArmHang-then-reset (fresh schedule) keeps the pending hang.
    state.hits = 0;
    state.injected = 0;
    state.hung = 0;
  }
  injected_.store(0, std::memory_order_relaxed);
  evaluated_.store(0, std::memory_order_relaxed);
  hung_.store(0, std::memory_order_relaxed);
}

void FaultInjector::InstallDispatchHook() {
  // Route pool-dispatch decisions through the same schedule. The hook takes
  // the helper slot index but the schedule key is the per-site hit counter,
  // so seeds replay identically whatever slots the pool picks.
  ThreadPool::SetDispatchFaultHook(
      [](size_t) { return !Global().MaybeFail("pool.dispatch").ok(); });
}

void FaultInjector::MaybeRemoveDispatchHook() {
  if (!armed_.load(std::memory_order_acquire) &&
      !hang_armed_.load(std::memory_order_acquire)) {
    ThreadPool::SetDispatchFaultHook(nullptr);
  }
}

ScopedFaultInjection::ScopedFaultInjection(uint64_t seed, double probability) {
  FaultInjector& inj = FaultInjector::Global();
  inj.ResetCounters();
  inj.Arm(seed, probability);
}

ScopedFaultInjection::ScopedFaultInjection(
    uint64_t seed, double probability, const std::vector<std::string>& sites) {
  FaultInjector& inj = FaultInjector::Global();
  inj.ResetCounters();
  inj.ArmSites(seed, probability, sites);
}

ScopedFaultInjection::ScopedFaultInjection() {
  FaultInjector::Global().Disarm();
}

ScopedFaultInjection::~ScopedFaultInjection() {
  FaultInjector::Global().Disarm();
  FaultInjector::Global().ResetCounters();
}

}  // namespace gov
}  // namespace aqp
