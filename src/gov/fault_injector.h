#ifndef AQP_GOV_FAULT_INJECTOR_H_
#define AQP_GOV_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace gov {

/// Per-site injection counters (see FaultInjector::SiteCountersSnapshot).
struct FaultSiteCounters {
  uint64_t evaluated = 0;  // Hits that consulted the schedule.
  uint64_t injected = 0;   // Hits the schedule failed.
  uint64_t hung = 0;       // Hits stalled by the hung-morsel mode.
};

/// Deterministic, seeded fault injection for robustness tests. Production
/// code paths with a meaningful failure mode call
/// `FaultInjector::Global().MaybeFail("site.name")`; when the injector is
/// armed, the call fails on a schedule that is a pure function of
/// (seed, site, hit index) — so a failing CI seed reproduces locally with
/// the same seed, bit for bit, regardless of thread interleaving (each
/// site's hits are counted under a lock).
///
/// Registered sites (grep for MaybeFail to confirm):
///   engine.scan         — table fetch at the head of every Scan operator
///   sampler.bernoulli   — Bernoulli row-sample draw
///   sampler.block       — block-sample draw
///   ola.create          — OnlineAggregator setup (measure eval + permutation)
///   pool.dispatch       — helper-task dispatch in ThreadPool::ParallelFor
///                         (wired through SetDispatchFaultHook when armed)
///   synopsis.build      — SynopsisCache stored-sample build (single-flight)
///   result_cache.insert — ResultCache::Insert (a failed insert skips caching)
///   drift.sweep         — DriftMonitor per-table rescan
///   audit.reexec        — AccuracyAuditor ground-truth re-execution
///   service.admit       — AdmissionController::Acquire (fails as overload)
///   extent.write        — extent flush, before the first byte is written
///                         (a fault must leave no partial .aqpx file)
///   extent.read         — extent pread (Open footer fetch and per-extent
///                         reads both route through it)
///   synopsis.save       — synopsis sidecar save (tmp file is removed; the
///                         previous sidecar survives untouched)
///   synopsis.load       — synopsis sidecar load at service startup (the
///                         service boots cold and rebuilds on demand)
///
/// Disarmed cost: one relaxed atomic load per call. Arming is process-global
/// and intended for tests / the CI fault matrix, not concurrent production
/// queries; it can also be armed from the environment (AQP_FAULT_SEED,
/// AQP_FAULT_P, and optionally AQP_FAULT_SITES=site1,site2 to restrict the
/// schedule to a subset of sites) at first use, which is how the CI matrix
/// drives seeds × site subsets through the same binaries.
///
/// Counter-continuation semantics: Disarm() stops injection but keeps the
/// per-site hit counters, so a later Arm() with the same seed CONTINUES the
/// schedule exactly where it left off — hit N+1 of a site fires iff it would
/// have fired had the injector stayed armed (disarmed hits do not advance
/// the counters). This is what makes pause/resume chaos tests reproducible.
/// Call ResetCounters() for a fresh schedule instead.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms injection: each MaybeFail hit fails independently with
  /// `probability` under the deterministic schedule of `seed`. Also installs
  /// the ThreadPool dispatch-fault hook for the pool.dispatch site.
  void Arm(uint64_t seed, double probability);
  /// Arm restricted to `sites`: only the named sites are evaluated (others
  /// return OK without advancing their hit counters). An empty list means
  /// every site, i.e. plain Arm.
  void ArmSites(uint64_t seed, double probability,
                const std::vector<std::string>& sites);
  /// Disarms injection and removes the dispatch hook. Hit counters survive
  /// so a later Arm with the same seed continues the schedule; call
  /// ResetCounters for a fresh schedule. Also clears any pending hangs.
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Hung-morsel mode: the next `count` hits at `site` BLOCK the calling
  /// thread for `hang_ms` (then return OK), simulating a morsel that stopped
  /// checking CheckCancelled. Independent of the probability schedule —
  /// deterministic by hit count — and usable with or without Arm; the
  /// watchdog suite uses it to manufacture queries that hold their admission
  /// slot past deadline + grace. Cleared by Disarm()/ClearHangs().
  void ArmHang(std::string_view site, int64_t hang_ms, uint64_t count = 1);
  void ClearHangs();

  /// OK when disarmed or when this hit survives; an Internal status naming
  /// the site when the schedule fires. In hung-morsel mode the call may
  /// first stall for the configured hang before returning OK.
  Status MaybeFail(std::string_view site);

  /// Faults injected / hits evaluated since the last ResetCounters.
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  uint64_t evaluated() const {
    return evaluated_.load(std::memory_order_relaxed);
  }
  uint64_t hung() const { return hung_.load(std::memory_order_relaxed); }
  /// Per-site evaluated/injected/hung counters — the chaos bench asserts
  /// from this that its schedule actually fired at every armed site, and the
  /// service mirrors it into `fault.site.*` metrics.
  std::map<std::string, FaultSiteCounters> SiteCountersSnapshot() const;
  /// Zeroes the per-site hit counters and the totals (fresh schedule).
  void ResetCounters();

 private:
  FaultInjector() = default;

  void InstallDispatchHook();
  void MaybeRemoveDispatchHook();

  struct SiteState {
    uint64_t hits = 0;  // Schedule position (evaluated hits).
    uint64_t injected = 0;
    uint64_t hung = 0;
    uint64_t hangs_remaining = 0;  // Hung-morsel budget.
    int64_t hang_ms = 0;
  };

  std::atomic<bool> armed_{false};
  std::atomic<bool> hang_armed_{false};
  std::atomic<uint64_t> injected_{0};
  std::atomic<uint64_t> evaluated_{0};
  std::atomic<uint64_t> hung_{0};
  mutable std::mutex mu_;
  uint64_t seed_ = 0;
  double probability_ = 0.0;
  std::set<std::string, std::less<>> site_filter_;  // Empty = all sites.
  std::map<std::string, SiteState, std::less<>> sites_;
};

/// RAII (dis)arming for tests: arms (or disarms) the global injector on
/// construction; destruction always disarms and resets counters, so fault
/// tests cannot leak an armed injector into later tests and deterministic
/// tests can opt out of an environment-armed fault matrix for their scope.
class ScopedFaultInjection {
 public:
  /// Arms with (seed, probability) on a fresh schedule (counters reset).
  ScopedFaultInjection(uint64_t seed, double probability);
  /// Arms a fresh schedule restricted to `sites` (empty = all).
  ScopedFaultInjection(uint64_t seed, double probability,
                       const std::vector<std::string>& sites);
  /// Disarms for this scope (deterministic-test mode).
  ScopedFaultInjection();
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace gov
}  // namespace aqp

#endif  // AQP_GOV_FAULT_INJECTOR_H_
