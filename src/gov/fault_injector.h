#ifndef AQP_GOV_FAULT_INJECTOR_H_
#define AQP_GOV_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/result.h"

namespace aqp {
namespace gov {

/// Deterministic, seeded fault injection for robustness tests. Production
/// code paths with a meaningful failure mode call
/// `FaultInjector::Global().MaybeFail("site.name")`; when the injector is
/// armed, the call fails on a schedule that is a pure function of
/// (seed, site, hit index) — so a failing CI seed reproduces locally with
/// the same seed, bit for bit, regardless of thread interleaving (each
/// site's hits are counted under a lock).
///
/// Registered sites (grep for MaybeFail to confirm):
///   engine.scan       — table fetch at the head of every Scan operator
///   sampler.bernoulli — Bernoulli row-sample draw
///   sampler.block     — block-sample draw
///   ola.create        — OnlineAggregator setup (measure eval + permutation)
///   pool.dispatch     — helper-task dispatch in ThreadPool::ParallelFor
///                       (wired through SetDispatchFaultHook when armed)
///
/// Disarmed cost: one relaxed atomic load per call. Arming is process-global
/// and intended for tests / the CI fault matrix, not concurrent production
/// queries; it can also be armed from the environment (AQP_FAULT_SEED,
/// AQP_FAULT_P) at first use, which is how the CI matrix drives 10 seeds
/// through the same binaries.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms injection: each MaybeFail hit fails independently with
  /// `probability` under the deterministic schedule of `seed`. Also installs
  /// the ThreadPool dispatch-fault hook for the pool.dispatch site.
  void Arm(uint64_t seed, double probability);
  /// Disarms injection and removes the dispatch hook. Hit counters survive
  /// so a later Arm with the same seed continues the schedule; call
  /// ResetCounters for a fresh schedule.
  void Disarm();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// OK when disarmed or when this hit survives; an Internal status naming
  /// the site when the schedule fires.
  Status MaybeFail(std::string_view site);

  /// Faults injected / hits evaluated since the last ResetCounters.
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }
  uint64_t evaluated() const {
    return evaluated_.load(std::memory_order_relaxed);
  }
  /// Zeroes the per-site hit counters and the totals (fresh schedule).
  void ResetCounters();

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> injected_{0};
  std::atomic<uint64_t> evaluated_{0};
  mutable std::mutex mu_;
  uint64_t seed_ = 0;
  double probability_ = 0.0;
  std::map<std::string, uint64_t, std::less<>> hits_;  // Per-site hit counts.
};

/// RAII (dis)arming for tests: arms (or disarms) the global injector on
/// construction; destruction always disarms and resets counters, so fault
/// tests cannot leak an armed injector into later tests and deterministic
/// tests can opt out of an environment-armed fault matrix for their scope.
class ScopedFaultInjection {
 public:
  /// Arms with (seed, probability) on a fresh schedule (counters reset).
  ScopedFaultInjection(uint64_t seed, double probability);
  /// Disarms for this scope (deterministic-test mode).
  ScopedFaultInjection();
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace gov
}  // namespace aqp

#endif  // AQP_GOV_FAULT_INJECTOR_H_
