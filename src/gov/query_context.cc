#include "gov/query_context.h"

namespace aqp {
namespace gov {

QueryContext::QueryContext(Limits limits, MemoryTracker* session_memory)
    : limits_(limits),
      token_(source_.token()),
      memory_(limits.memory_budget_bytes, session_memory) {
  // A blown budget must also stop in-flight morsels, not just the next
  // TryCharge caller: route exhaustion into the cancellation source.
  memory_.BindCancellation(&source_);
}

void QueryContext::Start() {
  if (limits_.deadline_ms >= 0) {
    source_.SetDeadlineAfterMs(limits_.deadline_ms);
  }
}

void QueryContext::Cancel(std::string reason) {
  source_.RequestCancel(StopCause::kUserCancel, std::move(reason));
}

}  // namespace gov
}  // namespace aqp
