#ifndef AQP_GOV_GOVERNED_EXECUTOR_H_
#define AQP_GOV_GOVERNED_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "core/approx_executor.h"
#include "core/offline_catalog.h"
#include "gov/query_context.h"

namespace aqp {
namespace gov {

/// Bounded retry for transient Internal failures (injected faults are the
/// canonical case): a rung attempt that fails with kInternal is re-run after
/// an exponential backoff with deterministic jitter, as long as attempts and
/// deadline budget remain. The attempt budget is shared across the whole
/// query (all rungs), so a retry storm cannot multiply down the ladder.
/// `FromEnv` overlays AQP_RETRY_MAX / AQP_RETRY_BASE_MS /
/// AQP_RETRY_MULTIPLIER / AQP_RETRY_MAX_BACKOFF_MS.
struct RetryOptions {
  /// Extra attempts beyond the first, per query; 0 disables retry.
  int max_attempts = 2;
  /// Backoff before retry k (0-based): base * multiplier^k, capped at
  /// max_backoff_ms, scaled by a deterministic jitter in [0.5, 1.0) derived
  /// from (query seed, k) — no wall-clock randomness, so a seeded run
  /// replays with identical waits.
  int64_t base_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_ms = 500;

  static RetryOptions FromEnv(RetryOptions base);
};

/// Per-(table, rung) admission gate the ladder consults before attempting a
/// rung, implemented by the service tier's CircuitBreaker. A denied rung is
/// skipped exactly as if it had failed (the ladder descends); when every
/// rung is denied the query fast-fails with the gate's retry-after hint.
/// Implementations must be thread-safe — one gate serves every query.
class RungGate {
 public:
  struct Decision {
    bool allow = true;
    int64_t retry_after_ms = 0;  // Advisory, set on denials.
  };
  virtual ~RungGate() = default;
  virtual Decision Allow(const std::string& table, int rung) = 0;
  /// Reports how an attempted rung concluded: `ok` false means the rung
  /// conclusively failed with a fault (kInternal, post-retry) — deadline and
  /// memory failures are resource signals, not rung health, and are not
  /// reported.
  virtual void RecordOutcome(const std::string& table, int rung, bool ok) = 0;
};

/// Knobs of the governed executor: the inner AQP configuration plus the
/// resource limits and the degradation behaviour.
struct GovernedOptions {
  core::AqpOptions aqp;

  /// Wall-clock deadline per query; < 0 = none. 0 is legal ("already
  /// expired") and forces the ladder immediately — how the deadline-0
  /// robustness suite exercises every rung.
  int64_t deadline_ms = -1;
  /// Live-set byte budget per query; 0 = unlimited.
  uint64_t memory_budget_bytes = 0;

  /// Confidence used for degraded answers (rungs 1 and 2).
  double confidence = 0.95;
  /// Rows the rung-2 online-aggregation answer may consume after the
  /// deadline has already expired — the bounded "grace chunk" that buys an
  /// honest early estimate instead of an error.
  size_t ola_grace_rows = 4096;
  /// Degraded confidence intervals are widened by this factor (half-width
  /// multiplier) to reflect that the answer came from a rung the query did
  /// not ask for.
  double degraded_ci_inflation = 1.5;

  /// Drift context of the offline synopses rung 1 would answer from, set
  /// per query by the service tier from the cache entries it adopted (the
  /// DriftMonitor's latest score and the synopsis age). 0 = fresh/unknown.
  double synopsis_drift_score = 0.0;
  double synopsis_age_seconds = 0.0;
  /// Rung-1 CI inflation grows with measured drift:
  ///   inflation = degraded_ci_inflation * (1 + gain * drift_score)
  /// so a synopsis known to be going stale answers with honestly wider
  /// intervals instead of confidently-wrong ones.
  double drift_inflation_gain = 1.0;
  /// At or above this drift score rung 1 refuses to answer from the stored
  /// synopsis at all (PilotDB-style decline-when-unsafe): the ladder falls
  /// through to the online-aggregation rung, which reads CURRENT data.
  double drift_decline_threshold = 0.5;

  /// Bounded retry with backoff for transient Internal rung failures.
  RetryOptions retry;

  /// Optional per-(table, rung) gate (the service's CircuitBreaker), not
  /// owned, consulted for `gate_table` before each rung attempt; null or an
  /// empty table disables gating. Must outlive the executor.
  RungGate* rung_gate = nullptr;
  std::string gate_table;
};

/// Resource-governed query execution: wraps the two-stage ApproxExecutor in
/// a QueryContext (deadline + memory budget + cancellation) and, when the
/// preferred strategy cannot finish, walks a degradation ladder instead of
/// failing:
///
///   rung 0  exact / two-stage approximate (ApproxExecutor), governed
///   rung 1  pre-computed offline sample (SampleCatalog), cost ∝ sample size
///   rung 2  online-aggregation early answer over one bounded grace chunk,
///           CI widened by `degraded_ci_inflation`
///   — else  Status::ResourceExhausted (nothing could answer)
///
/// Degraded answers carry `degraded_reason` / `degradation_rung` in their
/// ExecutionProfile and keep the exact query's output shape. The ladder is
/// taken for deadline expiry, memory exhaustion, and runtime faults
/// (including injected ones); explicit user cancellation does NOT degrade —
/// the caller asked the query to stop, so Cancelled comes straight back.
class GovernedExecutor {
 public:
  /// `catalog` must outlive the executor; `samples` may be null (the ladder
  /// then skips rung 1).
  GovernedExecutor(const Catalog* catalog, const core::SampleCatalog* samples,
                   GovernedOptions options);

  /// Executes `sql` under this executor's limits.
  Result<core::ApproxResult> Execute(std::string_view sql);

  /// Executes `sql` under an externally owned context (e.g. one the caller
  /// may Cancel() from another thread). The context must already be
  /// Start()ed or be started by the caller. A non-null `trace` becomes the
  /// parent of every span the ladder produces — one "rung-N" span per rung
  /// attempted, with the inner executor's spans nested beneath — so a
  /// service-owned submit trace sees the whole descent; the trace's
  /// Finish() stays with its owner.
  Result<core::ApproxResult> ExecuteWithContext(
      std::string_view sql, QueryContext& ctx,
      obs::QueryTrace* trace = nullptr);

 private:
  /// Per-query retry accounting, shared by every rung attempt.
  struct RetryState {
    int attempts_left = 0;
    uint64_t count = 0;          // Retries actually performed.
    double wait_seconds = 0.0;   // Total backoff slept.
    int64_t retry_after_ms = 0;  // Worst gate hint seen (for fast-fail).
  };

  Result<core::ApproxResult> RunLadder(std::string_view sql, QueryContext& ctx,
                                       Status failure, RetryState& retry,
                                       obs::QueryTrace* trace);
  Result<core::ApproxResult> RunOfflineRung(std::string_view sql,
                                            QueryContext& ctx,
                                            obs::QueryTrace* trace);
  Result<core::ApproxResult> RunOlaRung(std::string_view sql,
                                        QueryContext& ctx);
  /// Runs `attempt`, retrying kInternal failures with backoff while the
  /// shared attempt budget and the deadline allow. Reports the conclusive
  /// outcome to the rung gate.
  template <typename Fn>
  Result<core::ApproxResult> AttemptWithRetry(int rung, QueryContext& ctx,
                                              RetryState& retry, Fn&& attempt);
  /// Gate consultation for one rung; {true, 0} when no gate is configured.
  RungGate::Decision GateAllow(int rung, RetryState& retry) const;
  void FinishProfile(core::ApproxResult* result, const QueryContext& ctx,
                     const RetryState& retry, int rung,
                     std::string degraded_reason,
                     double pre_inflation_error = 0.0) const;

  const Catalog* catalog_;
  const core::SampleCatalog* samples_;
  GovernedOptions options_;
};

/// True iff `s` is a failure the degradation ladder absorbs (deadline,
/// memory, fault) as opposed to one it must surface unchanged (user cancel,
/// malformed query, ...).
bool IsDegradable(const Status& s);

/// True iff `s` is the ladder's own "every rung failed" exhaustion status —
/// the service's poison-query detection keys on it (a query no rung can
/// answer is quarantine material, a plain deadline miss is not).
bool IsLadderExhausted(const Status& s);

}  // namespace gov
}  // namespace aqp

#endif  // AQP_GOV_GOVERNED_EXECUTOR_H_
