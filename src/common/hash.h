#ifndef AQP_COMMON_HASH_H_
#define AQP_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace aqp {

/// Finalizer from SplitMix64 / MurmurHash3: a fast, high-quality 64-bit mixer
/// used to hash integer keys and to derive independent hash functions.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hashes a byte string with a 64-bit seed (xxHash-flavoured mixing).
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

/// Hashes a string view.
inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

/// Hashes a 64-bit integer with a seed.
inline uint64_t HashInt64(int64_t v, uint64_t seed = 0) {
  return Mix64(static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

/// Hashes a double by its bit pattern, canonicalizing -0.0 to +0.0.
uint64_t HashDouble(double v, uint64_t seed = 0);

/// Combines two hashes (boost::hash_combine flavoured, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace aqp

#endif  // AQP_COMMON_HASH_H_
