#ifndef AQP_COMMON_RANDOM_H_
#define AQP_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace aqp {

/// PCG32 pseudo-random generator (O'Neill, 2014): small state, excellent
/// statistical quality, fully deterministic from a 64-bit seed. All randomized
/// components in this library take a seed and use Pcg32 so experiments are
/// reproducible run-to-run.
class Pcg32 {
 public:
  /// Seeds the generator. Two generators with the same (seed, stream) produce
  /// identical output; distinct streams are statistically independent.
  explicit Pcg32(uint64_t seed, uint64_t stream = 0);

  /// Uniform 32-bit value.
  uint32_t NextUint32();

  /// Uniform 64-bit value (two draws).
  uint64_t NextUint64();

  /// Unbiased uniform integer in [0, bound). bound must be > 0.
  uint32_t UniformUint32(uint32_t bound);

  /// Unbiased uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal variate (Box–Muller, cached pair).
  double Gaussian();

  /// Exponential variate with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Fisher–Yates shuffles indices [0, n) and returns the permutation.
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// The canonical per-morsel generator: stream `morsel` of the query seed.
/// Every randomized operator in the parallel executor derives one generator
/// per morsel this way and never shares a generator across morsels, so the
/// draws a morsel sees depend only on (seed, morsel id) — not on which
/// worker ran it or how many threads participated. Morsel 0 is the default
/// stream, so single-morsel inputs draw exactly what a plain Pcg32(seed)
/// would.
inline Pcg32 MorselRng(uint64_t seed, uint64_t morsel) {
  return Pcg32(seed, /*stream=*/morsel);
}

/// Draws from a Zipf(s) distribution over ranks {0, 1, ..., n-1}: rank k has
/// probability proportional to 1/(k+1)^s. s = 0 degenerates to uniform.
/// Uses a precomputed CDF with binary search; construction is O(n), each draw
/// O(log n). Intended for workload/data generation, not for hot loops.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double s);

  /// Draws one rank in [0, n).
  uint64_t Next(Pcg32& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cumulative probabilities, size n.
};

}  // namespace aqp

#endif  // AQP_COMMON_RANDOM_H_
