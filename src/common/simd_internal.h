#ifndef AQP_COMMON_SIMD_INTERNAL_H_
#define AQP_COMMON_SIMD_INTERNAL_H_

// AVX2 kernel entry points, compiled in a separate -mavx2 translation unit
// (common/simd_avx2.cc) and linked only when the build enables
// AQP_ENABLE_AVX2. Callers must gate on simd::ActiveBackend() — these
// symbols execute AVX2 instructions unconditionally.

#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace aqp {
namespace simd {
namespace avx2 {

void CmpMaskF64(const double* x, const uint8_t* valid, size_t n, double c,
                CmpOp op, uint8_t* out);
void CmpMaskI64AsF64(const int64_t* x, const uint8_t* valid, size_t n,
                     double c, CmpOp op, uint8_t* out);
void CmpMaskI64(const int64_t* x, const uint8_t* valid, size_t n, int64_t c,
                CmpOp op, uint8_t* out);
void And3(uint8_t* a, const uint8_t* b, size_t n);
void Or3(uint8_t* a, const uint8_t* b, size_t n);
void Not3(uint8_t* a, size_t n);

}  // namespace avx2
}  // namespace simd
}  // namespace aqp

#endif  // AQP_COMMON_SIMD_INTERNAL_H_
