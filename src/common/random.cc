#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace aqp {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  NextUint32();
  state_ += seed;
  NextUint32();
}

uint32_t Pcg32::NextUint32() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Pcg32::NextUint64() {
  return (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
}

uint32_t Pcg32::UniformUint32(uint32_t bound) {
  AQP_CHECK(bound > 0);
  // Lemire's rejection method: unbiased without division in the common case.
  uint32_t threshold = (-bound) % bound;
  while (true) {
    uint32_t r = NextUint32();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Pcg32::UniformUint64(uint64_t bound) {
  AQP_CHECK(bound > 0);
  uint64_t threshold = (-bound) % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::NextDouble() {
  // 53 random bits scaled to [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Pcg32::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Pcg32::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller: two uniforms -> two independent standard normals.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Pcg32::Exponential(double rate) {
  AQP_CHECK(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::vector<uint32_t> Pcg32::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    uint32_t j = UniformUint32(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double s) : n_(n), s_(s) {
  AQP_CHECK(n > 0);
  AQP_CHECK(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (uint64_t k = 0; k < n; ++k) cdf_[k] /= total;
  cdf_[n - 1] = 1.0;  // Guard against floating-point shortfall.
}

uint64_t ZipfGenerator::Next(Pcg32& rng) const {
  double u = rng.NextDouble();
  // First rank whose cumulative probability exceeds u.
  uint64_t lo = 0;
  uint64_t hi = n_ - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] > u) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace aqp
