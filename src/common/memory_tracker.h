#ifndef AQP_COMMON_MEMORY_TRACKER_H_
#define AQP_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <utility>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"

namespace aqp {

/// Byte-accounted memory budget for one query. Operators charge it when they
/// materialize a table / sample / accumulator block and release the charge
/// when that allocation dies, so `used()` tracks the live set (not cumulative
/// churn) and must drain back to zero once a query's intermediates are gone —
/// the invariant the fault-injection tests assert on every ladder rung.
///
/// Accounting rule: charges cover operator OUTPUTS (materialized tables,
/// drawn samples, OLA accumulator arrays). Transient operator-internal
/// scratch (hash-join build table, sort index) is not charged; it is bounded
/// by the charged inputs it is built from.
///
/// A budget of 0 means unbounded (accounting still runs, charges never
/// fail). When a charge would exceed the budget, TryCharge refuses with
/// ResourceExhausted and — when a CancellationSource is bound — cancels the
/// whole query with StopCause::kMemory so sibling parallel work stops at its
/// next boundary check. Thread-safe; all counters are relaxed atomics.
/// Trackers optionally nest: a tracker constructed with a parent forwards
/// every charge/release to it, so a per-query tracker under a per-session
/// tracker enforces BOTH budgets (a query may fail its own budget or its
/// session's). The parent must outlive the child's last charge.
class MemoryTracker {
 public:
  explicit MemoryTracker(uint64_t budget_bytes = 0,
                         MemoryTracker* parent = nullptr)
      : budget_(budget_bytes), parent_(parent) {}
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Binds the source cancelled on exhaustion (may be null to unbind). The
  /// source must outlive the tracker's last TryCharge.
  void BindCancellation(CancellationSource* source) { source_ = source; }

  /// Accounts `bytes` against the budget. On refusal nothing is charged.
  Status TryCharge(uint64_t bytes, std::string_view what);

  /// Returns a previously successful charge.
  void Release(uint64_t bytes);

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t budget() const { return budget_; }
  /// How many TryCharge calls were refused.
  uint64_t exhausted_count() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

 private:
  const uint64_t budget_;
  MemoryTracker* parent_ = nullptr;
  CancellationSource* source_ = nullptr;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> exhausted_{0};
};

/// RAII charge: acquires bytes from a tracker (null tracker = tracked as a
/// no-op) and releases them on destruction. Movable so samples/aggregators
/// can own their accounting.
class ScopedMemoryCharge {
 public:
  ScopedMemoryCharge() = default;

  /// Charges `bytes` to `tracker`; fails with ResourceExhausted when the
  /// budget cannot cover it. A null tracker yields an always-OK no-op charge.
  static Result<ScopedMemoryCharge> Make(MemoryTracker* tracker,
                                         uint64_t bytes,
                                         std::string_view what);

  ~ScopedMemoryCharge() { Reset(); }

  ScopedMemoryCharge(ScopedMemoryCharge&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedMemoryCharge& operator=(ScopedMemoryCharge&& other) noexcept {
    if (this != &other) {
      Reset();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  /// Releases the charge early.
  void Reset() {
    if (tracker_ != nullptr && bytes_ > 0) tracker_->Release(bytes_);
    tracker_ = nullptr;
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }

 private:
  ScopedMemoryCharge(MemoryTracker* tracker, uint64_t bytes)
      : tracker_(tracker), bytes_(bytes) {}

  MemoryTracker* tracker_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace aqp

#endif  // AQP_COMMON_MEMORY_TRACKER_H_
