#include "common/memory_tracker.h"

#include <string>

namespace aqp {

Status MemoryTracker::TryCharge(uint64_t bytes, std::string_view what) {
  // The parent (e.g. a session-wide budget) is charged first; its refusal
  // cancels THIS tracker's query, not the sibling queries sharing the parent.
  if (parent_ != nullptr) {
    Status up = parent_->TryCharge(bytes, what);
    if (!up.ok()) {
      exhausted_.fetch_add(1, std::memory_order_relaxed);
      if (source_ != nullptr) {
        source_->RequestCancel(StopCause::kMemory, up.message());
      }
      return up;
    }
  }
  uint64_t before = used_.fetch_add(bytes, std::memory_order_relaxed);
  uint64_t now = before + bytes;
  if (budget_ > 0 && now > budget_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    if (parent_ != nullptr) parent_->Release(bytes);
    exhausted_.fetch_add(1, std::memory_order_relaxed);
    std::string reason = "memory budget exhausted charging " +
                         std::string(what) + ": " + std::to_string(before) +
                         " + " + std::to_string(bytes) + " > budget " +
                         std::to_string(budget_) + " bytes";
    if (source_ != nullptr) {
      source_->RequestCancel(StopCause::kMemory, reason);
    }
    return Status::ResourceExhausted(std::move(reason));
  }
  // Peak tracking: monotone max via CAS (rare retries, off the hot path).
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void MemoryTracker::Release(uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (parent_ != nullptr) parent_->Release(bytes);
}

Result<ScopedMemoryCharge> ScopedMemoryCharge::Make(MemoryTracker* tracker,
                                                    uint64_t bytes,
                                                    std::string_view what) {
  if (tracker == nullptr) return ScopedMemoryCharge();
  AQP_RETURN_IF_ERROR(tracker->TryCharge(bytes, what));
  return ScopedMemoryCharge(tracker, bytes);
}

}  // namespace aqp
