#include "common/cancellation.h"

namespace aqp {
namespace {

int64_t ToNs(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             tp.time_since_epoch())
      .count();
}

int64_t NowNs() { return ToNs(std::chrono::steady_clock::now()); }

}  // namespace

void CancellationSource::SetDeadline(
    std::chrono::steady_clock::time_point deadline) {
  deadline_ns_.store(ToNs(deadline), std::memory_order_relaxed);
}

void CancellationSource::SetDeadlineAfterMs(int64_t ms) {
  if (ms < 0) return;  // Negative = no deadline.
  SetDeadline(std::chrono::steady_clock::now() +
              std::chrono::milliseconds(ms));
}

int64_t CancellationSource::RemainingDeadlineMs() const {
  int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == INT64_MAX) return -1;
  int64_t remaining_ns = deadline - NowNs();
  return remaining_ns <= 0 ? 0 : remaining_ns / 1000000;
}

void CancellationSource::RequestCancel(StopCause cause, std::string reason) {
  uint8_t expected = 0;
  if (cause_.compare_exchange_strong(expected, static_cast<uint8_t>(cause),
                                     std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(mu_);
    message_ = std::move(reason);
  }
}

StopCause CancellationSource::Resolve() const {
  uint8_t c = cause_.load(std::memory_order_acquire);
  if (c != 0) return static_cast<StopCause>(c);
  if (NowNs() >= deadline_ns_.load(std::memory_order_relaxed)) {
    // Lazy deadline arming: the first checker past the deadline records the
    // cause; a concurrent explicit cancel may win the race instead, which is
    // fine — some cause is set either way.
    uint8_t expected = 0;
    if (cause_.compare_exchange_strong(
            expected, static_cast<uint8_t>(StopCause::kDeadline),
            std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> lock(mu_);
      message_ = "deadline exceeded";
    }
    return static_cast<StopCause>(cause_.load(std::memory_order_acquire));
  }
  return StopCause::kNone;
}

CancellationToken CancellationSource::token() const {
  return CancellationToken(this);
}

bool CancellationSource::cancelled() const {
  return Resolve() != StopCause::kNone;
}

StopCause CancellationSource::cause() const { return Resolve(); }

Status CancellationToken::ToStatus() const {
  if (source_ == nullptr) return Status::OK();
  StopCause cause = source_->Resolve();
  if (cause == StopCause::kNone) return Status::OK();
  std::string message;
  {
    std::lock_guard<std::mutex> lock(source_->mu_);
    message = source_->message_;
  }
  switch (cause) {
    case StopCause::kUserCancel:
      return Status::Cancelled(message);
    case StopCause::kDeadline:
      return Status::DeadlineExceeded(message);
    case StopCause::kMemory:
      return Status::ResourceExhausted(message);
    case StopCause::kFault:
      return Status::Internal(message);
    case StopCause::kNone:
      break;
  }
  return Status::OK();
}

}  // namespace aqp
