#ifndef AQP_COMMON_BYTES_H_
#define AQP_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace aqp {

/// Little-endian binary writer backing sketch serialization.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutBytes(const void* data, size_t len) { PutRaw(data, len); }

  const std::string& buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  void PutRaw(const void* data, size_t len) {
    const char* p = static_cast<const char*>(data);
    buffer_.append(p, len);
  }
  std::string buffer_;
};

/// Bounds-checked reader over a serialized buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8() {
    uint8_t v;
    AQP_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint32_t> GetU32() {
    uint32_t v;
    AQP_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> GetU64() {
    uint64_t v;
    AQP_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<int64_t> GetI64() {
    int64_t v;
    AQP_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<double> GetDouble() {
    double v;
    AQP_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Status GetBytes(void* out, size_t len) { return GetRaw(out, len); }

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  Status GetRaw(void* out, size_t len) {
    if (pos_ + len > data_.size()) {
      return Status::OutOfRange("serialized buffer truncated");
    }
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace aqp

#endif  // AQP_COMMON_BYTES_H_
