#ifndef AQP_COMMON_STR_UTIL_H_
#define AQP_COMMON_STR_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace aqp {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// ASCII-lowercases a copy of `s`.
std::string ToLower(std::string_view s);

/// ASCII-uppercases a copy of `s`.
std::string ToUpper(std::string_view s);

/// True iff `s` equals `other` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view other);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a signed 64-bit integer; the entire string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double; the entire string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a double compactly (up to 6 significant digits, no trailing zeros).
std::string FormatDouble(double v);

}  // namespace aqp

#endif  // AQP_COMMON_STR_UTIL_H_
