#include "common/hash.h"

#include <cstring>

namespace aqp {

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ (len * 0x9e3779b97f4a7c15ULL);
  while (len >= 8) {
    uint64_t k;
    std::memcpy(&k, p, 8);
    h = Mix64(h ^ Mix64(k));
    p += 8;
    len -= 8;
  }
  uint64_t tail = 0;
  // Little-endian accumulate of the trailing bytes.
  for (size_t i = 0; i < len; ++i) {
    tail |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  if (len > 0) h = Mix64(h ^ Mix64(tail + len));
  return Mix64(h);
}

uint64_t HashDouble(double v, uint64_t seed) {
  if (v == 0.0) v = 0.0;  // Canonicalize -0.0.
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return Mix64(bits + 0x9e3779b97f4a7c15ULL * (seed + 1));
}

}  // namespace aqp
