#ifndef AQP_COMMON_CHECK_H_
#define AQP_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace aqp {
namespace internal {

/// Stream sink that aborts the process when destroyed; backs AQP_CHECK.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  /// Lvalue self-reference so the macro works with and without streaming.
  CheckFailure& Ref() { return *this; }

 private:
  std::ostringstream stream_;
};

/// Converts the streamed CheckFailure chain to void so AQP_CHECK can appear
/// in a ternary expression. operator& binds looser than operator<<.
struct Voidify {
  void operator&(CheckFailure&) {}
};

/// Swallows streamed operands when the check is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace aqp

/// Aborts with a message when `cond` is false. Always on (guards invariants
/// whose violation would be a programming error, not user error). Supports
/// streaming extra context: AQP_CHECK(n > 0) << "n=" << n;
#define AQP_CHECK(cond)            \
  (cond) ? (void)0                 \
         : ::aqp::internal::Voidify() &  \
               ::aqp::internal::CheckFailure(__FILE__, __LINE__, #cond).Ref()

#ifndef NDEBUG
#define AQP_DCHECK(cond) AQP_CHECK(cond)
#else
#define AQP_DCHECK(cond) \
  while (false) ::aqp::internal::NullStream()
#endif

#endif  // AQP_COMMON_CHECK_H_
