#ifndef AQP_COMMON_STATUS_H_
#define AQP_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace aqp {

/// Canonical error codes, in the spirit of absl::StatusCode / rocksdb::Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kCancelled,          // The caller (or a governor) stopped the operation.
  kDeadlineExceeded,   // The operation's time budget ran out.
  kResourceExhausted,  // A memory/resource budget ran out.
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Lightweight success-or-error value used across all public APIs instead of
/// exceptions. An OK status carries no message; error statuses carry a
/// diagnostic message describing what failed.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers mirroring the code enum.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace aqp

/// Propagates an error status out of the enclosing function.
#define AQP_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::aqp::Status _aqp_status = (expr);          \
    if (!_aqp_status.ok()) return _aqp_status;   \
  } while (0)

#define AQP_CONCAT_IMPL_(a, b) a##b
#define AQP_CONCAT_(a, b) AQP_CONCAT_IMPL_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// assigns the value to `lhs`. `lhs` may be a declaration.
#define AQP_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto AQP_CONCAT_(_aqp_result_, __LINE__) = (rexpr);               \
  if (!AQP_CONCAT_(_aqp_result_, __LINE__).ok())                    \
    return AQP_CONCAT_(_aqp_result_, __LINE__).status();            \
  lhs = std::move(AQP_CONCAT_(_aqp_result_, __LINE__)).value()

#endif  // AQP_COMMON_STATUS_H_
