#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

#if defined(AQP_HAVE_AVX2)
#include "common/simd_internal.h"
#endif

namespace aqp {
namespace simd {
namespace {

// Portable kernels. Simple per-element loops over byte masks and dense
// spans: the shapes GCC/Clang autovectorize at -O3 without any intrinsics,
// and the reference the AVX2 TU must match bit for bit.

template <typename T, typename Cmp>
void CmpMaskImpl(const T* x, const uint8_t* valid, size_t n, uint8_t* out,
                 Cmp cmp) {
  if (valid == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = cmp(x[i]) ? kMaskTrue : kMaskFalse;
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    out[i] = valid[i] ? (cmp(x[i]) ? kMaskTrue : kMaskFalse) : kMaskNull;
  }
}

// The comparison formulas mirror the row engine's three-way comparator
// (x < c ? -1 : x > c ? 1 : 0), under which an unordered pair (NaN) compares
// as "equal": Eq/Le/Ge hold, Ne/Lt/Gt do not. Hence Eq is !(x<c)&&!(x>c),
// not x==c.
template <typename T, typename U>
void CmpMaskDispatch(const T* x, const uint8_t* valid, size_t n, U c,
                     CmpOp op, uint8_t* out) {
  switch (op) {
    case CmpOp::kEq:
      return CmpMaskImpl(x, valid, n, out,
                         [c](T v) { return !(U(v) < c) && !(U(v) > c); });
    case CmpOp::kNe:
      return CmpMaskImpl(x, valid, n, out,
                         [c](T v) { return U(v) < c || U(v) > c; });
    case CmpOp::kLt:
      return CmpMaskImpl(x, valid, n, out, [c](T v) { return U(v) < c; });
    case CmpOp::kLe:
      return CmpMaskImpl(x, valid, n, out, [c](T v) { return !(U(v) > c); });
    case CmpOp::kGt:
      return CmpMaskImpl(x, valid, n, out, [c](T v) { return U(v) > c; });
    case CmpOp::kGe:
      return CmpMaskImpl(x, valid, n, out, [c](T v) { return !(U(v) < c); });
  }
}

Backend DetectBackend() {
#if defined(AQP_HAVE_AVX2)
  const char* env = std::getenv("AQP_SIMD");
  if (env != nullptr && std::string_view(env) == "scalar") {
    return Backend::kScalar;
  }
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
#endif
  return Backend::kScalar;
}

std::atomic<Backend>& BackendSlot() {
  static std::atomic<Backend> backend{DetectBackend()};
  return backend;
}

}  // namespace

Backend ActiveBackend() {
  return BackendSlot().load(std::memory_order_relaxed);
}

bool Avx2Available() {
#if defined(AQP_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

void SetBackendForTest(Backend backend) {
  if (backend == Backend::kAvx2 && !Avx2Available()) {
    backend = Backend::kScalar;
  }
  BackendSlot().store(backend, std::memory_order_relaxed);
}

void CmpMaskF64(const double* x, const uint8_t* valid, size_t n, double c,
                CmpOp op, uint8_t* out) {
#if defined(AQP_HAVE_AVX2)
  if (ActiveBackend() == Backend::kAvx2) {
    return avx2::CmpMaskF64(x, valid, n, c, op, out);
  }
#endif
  CmpMaskDispatch<double, double>(x, valid, n, c, op, out);
}

void CmpMaskI64AsF64(const int64_t* x, const uint8_t* valid, size_t n,
                     double c, CmpOp op, uint8_t* out) {
#if defined(AQP_HAVE_AVX2)
  if (ActiveBackend() == Backend::kAvx2) {
    return avx2::CmpMaskI64AsF64(x, valid, n, c, op, out);
  }
#endif
  CmpMaskDispatch<int64_t, double>(x, valid, n, c, op, out);
}

void CmpMaskI64(const int64_t* x, const uint8_t* valid, size_t n, int64_t c,
                CmpOp op, uint8_t* out) {
#if defined(AQP_HAVE_AVX2)
  if (ActiveBackend() == Backend::kAvx2) {
    return avx2::CmpMaskI64(x, valid, n, c, op, out);
  }
#endif
  CmpMaskDispatch<int64_t, int64_t>(x, valid, n, c, op, out);
}

void And3(uint8_t* a, const uint8_t* b, size_t n) {
#if defined(AQP_HAVE_AVX2)
  if (ActiveBackend() == Backend::kAvx2) return avx2::And3(a, b, n);
#endif
  for (size_t i = 0; i < n; ++i) {
    // false dominates; otherwise null if either side is null.
    uint8_t lo = a[i] < b[i] ? a[i] : b[i];
    uint8_t hi = a[i] < b[i] ? b[i] : a[i];
    a[i] = lo == kMaskFalse ? kMaskFalse
                            : (hi == kMaskNull ? kMaskNull : kMaskTrue);
  }
}

void Or3(uint8_t* a, const uint8_t* b, size_t n) {
#if defined(AQP_HAVE_AVX2)
  if (ActiveBackend() == Backend::kAvx2) return avx2::Or3(a, b, n);
#endif
  for (size_t i = 0; i < n; ++i) {
    // true dominates; otherwise null if either side is null.
    bool any_true = a[i] == kMaskTrue || b[i] == kMaskTrue;
    bool any_null = a[i] == kMaskNull || b[i] == kMaskNull;
    a[i] = any_true ? kMaskTrue : (any_null ? kMaskNull : kMaskFalse);
  }
}

void Not3(uint8_t* a, size_t n) {
#if defined(AQP_HAVE_AVX2)
  if (ActiveBackend() == Backend::kAvx2) return avx2::Not3(a, n);
#endif
  for (size_t i = 0; i < n; ++i) {
    a[i] = a[i] == kMaskNull ? kMaskNull
                             : (a[i] == kMaskTrue ? kMaskFalse : kMaskTrue);
  }
}

void FillMask(uint8_t* out, size_t n, uint8_t value) {
  for (size_t i = 0; i < n; ++i) out[i] = value;
}

void SelectTrue(const uint8_t* mask, size_t n, uint32_t base,
                std::vector<uint32_t>* sel) {
  // Branchless append: write unconditionally, advance only on TRUE. The
  // ascending output order is what keeps batch selections bit-identical to
  // the scalar row scan.
  size_t k = sel->size();
  sel->resize(k + n);
  uint32_t* out = sel->data();
  for (size_t i = 0; i < n; ++i) {
    out[k] = base + static_cast<uint32_t>(i);
    k += mask[i] == kMaskTrue ? 1 : 0;
  }
  sel->resize(k);
}

size_t CountTrue(const uint8_t* mask, size_t n) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) k += mask[i] == kMaskTrue ? 1 : 0;
  return k;
}

}  // namespace simd
}  // namespace aqp
