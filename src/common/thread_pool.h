#ifndef AQP_COMMON_THREAD_POOL_H_
#define AQP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"

namespace aqp {

/// Number of hardware threads (>= 1).
size_t HardwareThreads();

/// Strictly validates a thread-count string (as found in AQP_NUM_THREADS):
/// optional surrounding whitespace, digits only, value in [1, 4096].
/// Non-numeric text, signs, trailing garbage, zero, negatives, and overflow
/// all return InvalidArgument/OutOfRange instead of being silently
/// misparsed.
Result<size_t> ParseThreadCount(std::string_view s);

/// Resolves the named environment variable through ParseThreadCount. An
/// unset variable returns `fallback`; a set-but-invalid value warns once per
/// process on stderr (naming the variable and the reason) and also returns
/// `fallback` — a bad knob must never become UB or a surprise thread count.
size_t ThreadCountFromEnv(const char* env_var, size_t fallback);

/// What one ParallelFor run did, for observability: how many morsels ran,
/// how many were executed by a thread that did not own them (steals), and
/// how many items each worker slot processed. Slot 0 is always the calling
/// thread; helper slots are 1..P-1.
struct ParallelRunStats {
  uint64_t morsels = 0;
  uint64_t steals = 0;
  std::vector<uint64_t> worker_items;  // Items processed per worker slot.

  /// Accumulates another run's counters into this one (worker slots add
  /// element-wise; the slot vector grows to the larger run). Lets one query
  /// aggregate the stats of its several parallel regions.
  void MergeFrom(const ParallelRunStats& other);
};

/// Work-stealing thread pool running morsel-driven parallel loops
/// (Leis et al., "Morsel-Driven Parallelism", SIGMOD 2014 — adapted to this
/// engine's materialized operators). The pool owns long-lived worker
/// threads; each ParallelFor call partitions [0, n) into fixed-size morsels,
/// assigns each participant a contiguous run of morsel ids, and lets idle
/// participants steal morsels from the most-loaded peer. The caller always
/// participates as worker slot 0, so a pool is useful even with zero
/// workers (everything runs inline).
///
/// Determinism contract: which thread runs a morsel is scheduling-dependent,
/// but the morsel decomposition itself depends only on (n, morsel_items).
/// Callers that write per-morsel outputs into morsel-indexed slots and merge
/// them in morsel order therefore produce results that are bit-identical
/// for every thread count — the property the parallel executor builds on.
class ThreadPool {
 public:
  /// Spawns `num_workers` helper threads (0 is valid: all loops run inline).
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return workers_.size();
  }

  /// Process-wide pool with HardwareThreads() - 1 helper threads, created on
  /// first use. All engine executors share it. ParallelFor grows it on
  /// demand when a caller explicitly requests more threads than the pool
  /// holds (capped at kMaxWorkers), so num_threads=4 means four real
  /// participants even on a machine reporting fewer cores — which is what
  /// makes the parallel code paths testable everywhere.
  static ThreadPool& Shared();

  /// Hard ceiling on helper threads a pool will ever spawn.
  static constexpr size_t kMaxWorkers = 64;

  /// Grows the pool to at least `workers` helper threads (bounded by
  /// kMaxWorkers); returns the resulting helper count. The query service
  /// calls this up front so inter-query concurrency does not depend on the
  /// first burst happening to request enough ParallelFor participants.
  size_t EnsureAtLeast(size_t workers) { return EnsureWorkers(workers); }

  /// Enqueues a standalone task to run on some pool worker. Tasks posted
  /// this way execute with the worker marked as inside-pool, so a
  /// ParallelFor issued from within the task runs inline (serial) — the
  /// service uses Post for inter-query concurrency and accepts intra-query
  /// serialization on those workers. Tasks must not outlive the pool;
  /// posting during/after destruction is undefined (the service drains its
  /// outstanding tasks before letting the pool die).
  void Post(std::function<void()> task);

  /// Morsel body: (worker slot, morsel id, item range [begin, end)).
  using MorselFn =
      std::function<void(size_t worker, size_t morsel, size_t begin,
                         size_t end)>;

  /// Per-run governance knobs for ParallelFor.
  struct ParallelForOptions {
    /// Checked before every morsel (owned or stolen) by every participant;
    /// once cancelled, remaining morsels are skipped and the call returns
    /// with only the already-executed morsels counted in the stats. Null =
    /// never cancelled.
    const CancellationToken* cancel = nullptr;
  };

  /// Runs `body` once per morsel over [0, n), using up to `num_threads`
  /// participants (the caller plus at most num_workers() helpers). The call
  /// returns only after every morsel has run and every helper has left the
  /// loop, so per-morsel outputs are safe to read. With num_threads <= 1 (or
  /// when called from inside a pool worker — nested parallelism degrades to
  /// serial) the loop runs inline on the caller, still morsel by morsel in
  /// morsel order.
  ///
  /// Failure semantics: an exception thrown by `body` in ANY participant is
  /// captured (first one wins), remaining morsels are skipped in every
  /// participant, all helpers drain out of the run, and the exception is
  /// rethrown on the calling thread — never std::terminate, never a
  /// deadlocked worker. Under cancellation the call returns normally with
  /// partial stats; checking the token afterwards is the caller's job.
  ParallelRunStats ParallelFor(size_t n, size_t morsel_items,
                               size_t num_threads, const MorselFn& body);
  ParallelRunStats ParallelFor(size_t n, size_t morsel_items,
                               size_t num_threads,
                               const ParallelForOptions& options,
                               const MorselFn& body);

  /// Fault-injection seam: when set, the hook is consulted once per helper
  /// dispatch of every parallel run; returning true for a slot simulates a
  /// failed task dispatch — that helper never joins and its morsel range is
  /// drained by the surviving participants (work stealing guarantees
  /// completion, which is exactly what the fault tests assert). Installed by
  /// the gov-layer FaultInjector; pass nullptr to clear. Costs one relaxed
  /// atomic load per ParallelFor call when unset.
  static void SetDispatchFaultHook(std::function<bool(size_t slot)> hook);

 private:
  struct Job;

  void WorkerLoop();
  static void RunParticipant(Job* job, size_t slot);
  // Grows the pool to `target` helpers (bounded by kMaxWorkers); returns the
  // resulting helper count.
  size_t EnsureWorkers(size_t target);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace aqp

#endif  // AQP_COMMON_THREAD_POOL_H_
