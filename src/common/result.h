#ifndef AQP_COMMON_RESULT_H_
#define AQP_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace aqp {

/// Holds either a value of type T or an error Status — the exception-free
/// return type for fallible functions (akin to absl::StatusOr / arrow::Result).
///
/// Usage:
///   Result<Table> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from value: `return my_table;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: `return Status::NotFound(...);`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    AQP_CHECK(!status_.ok()) << "Result constructed from OK status without value";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present, the error otherwise.
  const Status& status() const { return status_; }

  /// Access the contained value. Aborts if `!ok()`.
  const T& value() const& {
    AQP_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    AQP_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    AQP_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present.
};

}  // namespace aqp

#endif  // AQP_COMMON_RESULT_H_
