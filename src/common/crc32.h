#ifndef AQP_COMMON_CRC32_H_
#define AQP_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace aqp {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
/// extent file format uses for every chunk and footer (docs/STORAGE.md §7).
/// Table-driven, byte-at-a-time; deterministic across platforms because the
/// format fixes byte order (little-endian) before hashing.
///
/// `seed` is the running CRC for incremental use:
///   uint32_t c = Crc32(a, na);
///   c = Crc32(b, nb, c);   // == Crc32(concat(a, b))
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace aqp

#endif  // AQP_COMMON_CRC32_H_
