#include "common/str_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace aqp {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view s, std::string_view other) {
  if (s.size() != other.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(other[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(StripWhitespace(s));
  if (buf.empty()) return Status::InvalidArgument("empty integer literal");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("invalid integer literal: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(StripWhitespace(s));
  if (buf.empty()) return Status::InvalidArgument("empty numeric literal");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("numeric literal out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("invalid numeric literal: " + buf);
  }
  return v;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace aqp
