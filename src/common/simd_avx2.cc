// AVX2 backend for the batch mask kernels. Compiled with -mavx2 in its own
// translation unit; every entry point is reached only through the runtime
// dispatch in common/simd.cc (ActiveBackend() == kAvx2). Each kernel must be
// bit-identical to the portable loops in simd.cc — comparisons are exact and
// the int64->double widening uses an exact conversion (magic-number trick
// inside the exact range, scalar conversion outside it), so SIMD here never
// changes results, only throughput.

#include "common/simd_internal.h"

#if defined(AQP_HAVE_AVX2)

#include <immintrin.h>

namespace aqp {
namespace simd {
namespace avx2 {
namespace {

// Writes 4 mask bytes from the low 4 bits of `bits`, honoring validity.
inline void WriteMask4(uint8_t* out, const uint8_t* valid, int bits) {
  for (int j = 0; j < 4; ++j) {
    uint8_t hit = (bits >> j) & 1;
    out[j] = (valid == nullptr || valid[j]) ? hit : kMaskNull;
  }
}

// Matches the engine's three-way comparator semantics (NaN compares as
// "equal"): Eq is EQ_UQ (unordered => true), Ne is NEQ_OQ, Le/Ge are the
// not-greater / not-less unordered-true predicates.
inline bool ScalarHit(double x, double c, int pred) {
  switch (pred) {
    case _CMP_EQ_UQ:
      return !(x < c) && !(x > c);
    case _CMP_NEQ_OQ:
      return x < c || x > c;
    case _CMP_LT_OQ:
      return x < c;
    case _CMP_NGT_UQ:
      return !(x > c);
    case _CMP_GT_OQ:
      return x > c;
    default:  // _CMP_NLT_UQ
      return !(x < c);
  }
}

template <int kPred>
void CmpMaskF64Imm(const double* x, const uint8_t* valid, size_t n, double c,
                   uint8_t* out) {
  const __m256d vc = _mm256_set1_pd(c);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vx = _mm256_loadu_pd(x + i);
    int bits = _mm256_movemask_pd(_mm256_cmp_pd(vx, vc, kPred));
    WriteMask4(out + i, valid == nullptr ? nullptr : valid + i, bits);
  }
  for (; i < n; ++i) {
    bool hit = ScalarHit(x[i], c, kPred);
    out[i] = (valid == nullptr || valid[i]) ? (hit ? kMaskTrue : kMaskFalse)
                                            : kMaskNull;
  }
}

// Exact int64 -> double conversion for |v| < 2^51 via the 1.5*2^52
// magic-number bias; lanes outside that range fall back to scalar cvt so the
// widening (and hence the comparison) matches `(double)v` exactly.
constexpr int64_t kExactLo = -(int64_t{1} << 51);
constexpr int64_t kExactHi = (int64_t{1} << 51) - 1;

inline bool LoadI64AsF64(const int64_t* x, __m256d* out) {
  const __m256i vx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x));
  const __m256i too_hi = _mm256_cmpgt_epi64(vx, _mm256_set1_epi64x(kExactHi));
  const __m256i too_lo = _mm256_cmpgt_epi64(_mm256_set1_epi64x(kExactLo), vx);
  if (_mm256_movemask_epi8(_mm256_or_si256(too_hi, too_lo)) != 0) return false;
  // BIT PATTERN of the double 1.5*2^52 (not its integer value): adding the
  // int64 into the mantissa of that pattern, reinterpreting as double, and
  // subtracting 1.5*2^52 recovers the exact value for |v| < 2^51.
  const __m256i magic = _mm256_set1_epi64x(0x4338000000000000LL);
  const __m256i biased = _mm256_add_epi64(vx, magic);
  *out = _mm256_sub_pd(_mm256_castsi256_pd(biased),
                       _mm256_set1_pd(6755399441055744.0));  // 1.5*2^52
  return true;
}

template <int kPred>
void CmpMaskI64AsF64Imm(const int64_t* x, const uint8_t* valid, size_t n,
                        double c, uint8_t* out) {
  const __m256d vc = _mm256_set1_pd(c);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d vx;
    int bits;
    if (LoadI64AsF64(x + i, &vx)) {
      bits = _mm256_movemask_pd(_mm256_cmp_pd(vx, vc, kPred));
    } else {
      __m256d sx = _mm256_set_pd(
          static_cast<double>(x[i + 3]), static_cast<double>(x[i + 2]),
          static_cast<double>(x[i + 1]), static_cast<double>(x[i]));
      bits = _mm256_movemask_pd(_mm256_cmp_pd(sx, vc, kPred));
    }
    WriteMask4(out + i, valid == nullptr ? nullptr : valid + i, bits);
  }
  for (; i < n; ++i) {
    bool hit = ScalarHit(static_cast<double>(x[i]), c, kPred);
    out[i] = (valid == nullptr || valid[i]) ? (hit ? kMaskTrue : kMaskFalse)
                                            : kMaskNull;
  }
}

}  // namespace

void CmpMaskF64(const double* x, const uint8_t* valid, size_t n, double c,
                CmpOp op, uint8_t* out) {
  switch (op) {
    case CmpOp::kEq:
      return CmpMaskF64Imm<_CMP_EQ_UQ>(x, valid, n, c, out);
    case CmpOp::kNe:
      return CmpMaskF64Imm<_CMP_NEQ_OQ>(x, valid, n, c, out);
    case CmpOp::kLt:
      return CmpMaskF64Imm<_CMP_LT_OQ>(x, valid, n, c, out);
    case CmpOp::kLe:
      return CmpMaskF64Imm<_CMP_NGT_UQ>(x, valid, n, c, out);
    case CmpOp::kGt:
      return CmpMaskF64Imm<_CMP_GT_OQ>(x, valid, n, c, out);
    case CmpOp::kGe:
      return CmpMaskF64Imm<_CMP_NLT_UQ>(x, valid, n, c, out);
  }
}

void CmpMaskI64AsF64(const int64_t* x, const uint8_t* valid, size_t n,
                     double c, CmpOp op, uint8_t* out) {
  switch (op) {
    case CmpOp::kEq:
      return CmpMaskI64AsF64Imm<_CMP_EQ_UQ>(x, valid, n, c, out);
    case CmpOp::kNe:
      return CmpMaskI64AsF64Imm<_CMP_NEQ_OQ>(x, valid, n, c, out);
    case CmpOp::kLt:
      return CmpMaskI64AsF64Imm<_CMP_LT_OQ>(x, valid, n, c, out);
    case CmpOp::kLe:
      return CmpMaskI64AsF64Imm<_CMP_NGT_UQ>(x, valid, n, c, out);
    case CmpOp::kGt:
      return CmpMaskI64AsF64Imm<_CMP_GT_OQ>(x, valid, n, c, out);
    case CmpOp::kGe:
      return CmpMaskI64AsF64Imm<_CMP_NLT_UQ>(x, valid, n, c, out);
  }
}

void CmpMaskI64(const int64_t* x, const uint8_t* valid, size_t n, int64_t c,
                CmpOp op, uint8_t* out) {
  const __m256i vc = _mm256_set1_epi64x(c);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i eq = _mm256_cmpeq_epi64(vx, vc);
    const __m256i gt = _mm256_cmpgt_epi64(vx, vc);
    __m256i hit;
    switch (op) {
      case CmpOp::kEq:
        hit = eq;
        break;
      case CmpOp::kNe:
        hit = _mm256_xor_si256(eq, _mm256_set1_epi64x(-1));
        break;
      case CmpOp::kLt:
        hit = _mm256_xor_si256(_mm256_or_si256(eq, gt),
                               _mm256_set1_epi64x(-1));
        break;
      case CmpOp::kLe:
        hit = _mm256_xor_si256(gt, _mm256_set1_epi64x(-1));
        break;
      case CmpOp::kGt:
        hit = gt;
        break;
      case CmpOp::kGe:
        hit = _mm256_or_si256(eq, gt);
        break;
    }
    int bits = _mm256_movemask_pd(_mm256_castsi256_pd(hit));
    WriteMask4(out + i, valid == nullptr ? nullptr : valid + i, bits);
  }
  for (; i < n; ++i) {
    bool hit;
    switch (op) {
      case CmpOp::kEq:
        hit = x[i] == c;
        break;
      case CmpOp::kNe:
        hit = x[i] != c;
        break;
      case CmpOp::kLt:
        hit = x[i] < c;
        break;
      case CmpOp::kLe:
        hit = x[i] <= c;
        break;
      case CmpOp::kGt:
        hit = x[i] > c;
        break;
      default:
        hit = x[i] >= c;
        break;
    }
    out[i] = (valid == nullptr || valid[i]) ? (hit ? kMaskTrue : kMaskFalse)
                                            : kMaskNull;
  }
}

void And3(uint8_t* a, const uint8_t* b, size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi8(1);
  const __m256i two = _mm256_set1_epi8(2);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i lo = _mm256_min_epu8(va, vb);
    const __m256i hi = _mm256_max_epu8(va, vb);
    const __m256i is_false = _mm256_cmpeq_epi8(lo, zero);
    const __m256i is_null = _mm256_cmpeq_epi8(hi, two);
    __m256i r = _mm256_blendv_epi8(one, two, is_null);
    r = _mm256_andnot_si256(is_false, r);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), r);
  }
  for (; i < n; ++i) {
    uint8_t lo = a[i] < b[i] ? a[i] : b[i];
    uint8_t hi = a[i] < b[i] ? b[i] : a[i];
    a[i] = lo == kMaskFalse ? kMaskFalse
                            : (hi == kMaskNull ? kMaskNull : kMaskTrue);
  }
}

void Or3(uint8_t* a, const uint8_t* b, size_t n) {
  const __m256i one = _mm256_set1_epi8(1);
  const __m256i two = _mm256_set1_epi8(2);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i has_true = _mm256_or_si256(_mm256_cmpeq_epi8(va, one),
                                             _mm256_cmpeq_epi8(vb, one));
    const __m256i has_null = _mm256_or_si256(_mm256_cmpeq_epi8(va, two),
                                             _mm256_cmpeq_epi8(vb, two));
    __m256i r = _mm256_and_si256(has_null, two);
    r = _mm256_blendv_epi8(r, one, has_true);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), r);
  }
  for (; i < n; ++i) {
    bool any_true = a[i] == kMaskTrue || b[i] == kMaskTrue;
    bool any_null = a[i] == kMaskNull || b[i] == kMaskNull;
    a[i] = any_true ? kMaskTrue : (any_null ? kMaskNull : kMaskFalse);
  }
}

void Not3(uint8_t* a, size_t n) {
  const __m256i one = _mm256_set1_epi8(1);
  const __m256i two = _mm256_set1_epi8(2);
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i is_null = _mm256_cmpeq_epi8(va, two);
    // 0^1=1, 1^1=0; null lanes overwritten by the blend.
    const __m256i flipped = _mm256_xor_si256(va, one);
    const __m256i r = _mm256_blendv_epi8(flipped, two, is_null);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), r);
  }
  for (; i < n; ++i) {
    a[i] = a[i] == kMaskNull ? kMaskNull
                             : (a[i] == kMaskTrue ? kMaskFalse : kMaskTrue);
  }
}

}  // namespace avx2
}  // namespace simd
}  // namespace aqp

#endif  // AQP_HAVE_AVX2
