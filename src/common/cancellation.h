#ifndef AQP_COMMON_CANCELLATION_H_
#define AQP_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace aqp {

/// Why a governed operation was stopped early. Ordered by precedence only in
/// the sense that the FIRST cause to fire wins; later requests are ignored.
enum class StopCause : uint8_t {
  kNone = 0,
  kUserCancel,  // Explicit caller cancellation.
  kDeadline,    // The deadline passed.
  kMemory,      // A memory budget was exhausted.
  kFault,       // An (injected or real) runtime fault tripped the governor.
};

class CancellationToken;

/// The write side of cooperative cancellation: owns the shared stop state,
/// hands out read-only tokens, and arms an optional deadline. One source
/// governs one query; the source must outlive every token and every thread
/// still checking one.
///
/// Thread-safety: RequestCancel / deadline expiry race freely from any
/// thread; exactly one cause wins (compare-exchange) and only the winner
/// writes the message. Checking a token is one relaxed atomic load plus — if
/// a deadline is armed — one steady_clock read, cheap enough for morsel and
/// batch boundaries (thousands of rows apart), deliberately not per-row.
class CancellationSource {
 public:
  CancellationSource() = default;
  CancellationSource(const CancellationSource&) = delete;
  CancellationSource& operator=(const CancellationSource&) = delete;

  /// Arms an absolute deadline; checks made after it report kDeadline.
  void SetDeadline(std::chrono::steady_clock::time_point deadline);
  /// Arms a deadline `ms` milliseconds from now. 0 is legal and means
  /// "already expired": every subsequent check fails, which is how the
  /// degradation ladder is exercised end to end.
  void SetDeadlineAfterMs(int64_t ms);

  /// Requests cancellation with the given cause; the first request wins and
  /// later ones are no-ops. `reason` becomes the Status message.
  void RequestCancel(StopCause cause, std::string reason);

  /// Milliseconds until the armed deadline: -1 when no deadline is armed,
  /// 0 when it already passed. Lets budget-aware callers (the governed
  /// retry path) decide whether a backoff still fits the deadline.
  int64_t RemainingDeadlineMs() const;

  /// Read-only view for workers. Valid only while this source lives.
  CancellationToken token() const;

  bool cancelled() const;
  StopCause cause() const;

 private:
  friend class CancellationToken;

  // Returns the winning cause, arming kDeadline first if the deadline has
  // passed and nothing else won yet.
  StopCause Resolve() const;

  mutable std::atomic<uint8_t> cause_{0};
  std::atomic<int64_t> deadline_ns_{INT64_MAX};  // steady_clock since-epoch.
  mutable std::mutex mu_;       // Guards message_ (written once, by winner).
  mutable std::string message_;
};

/// The read side: a cheap, copyable handle workers poll at morsel / batch
/// boundaries. A default-constructed token is never cancelled (the ungoverned
/// case costs one null check).
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True once any stop cause fired (including deadline expiry, which is
  /// detected lazily by this very check).
  bool IsCancelled() const {
    return source_ != nullptr && source_->Resolve() != StopCause::kNone;
  }

  /// OK while running; after cancellation, the Status matching the cause
  /// (Cancelled / DeadlineExceeded / ResourceExhausted / Internal).
  Status ToStatus() const;

  StopCause cause() const {
    return source_ == nullptr ? StopCause::kNone : source_->Resolve();
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(const CancellationSource* source)
      : source_(source) {}

  const CancellationSource* source_ = nullptr;
};

/// OK when `token` is null or not cancelled, else the token's Status — the
/// one-liner every cooperative check site uses.
inline Status CheckCancelled(const CancellationToken* token) {
  if (token != nullptr && token->IsCancelled()) return token->ToStatus();
  return Status::OK();
}

}  // namespace aqp

#endif  // AQP_COMMON_CANCELLATION_H_
