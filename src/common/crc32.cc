#include "common/crc32.h"

#include <array>

namespace aqp {
namespace {

// 8 tables of 256 entries: slice-by-8 would use all of them; we keep the
// classic single-table byte loop (storage chunks are decompressed anyway, the
// CRC is never the bottleneck) but build the table once at first use.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace aqp
