#ifndef AQP_COMMON_SIMD_H_
#define AQP_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aqp {
namespace simd {

/// Three-valued byte mask element: SQL FALSE / TRUE / NULL. The batch
/// predicate kernels produce one mask byte per row; 2 (null) participates in
/// Kleene AND/OR exactly like the row-at-a-time evaluator's three-valued
/// logic, so mask pipelines are bit-identical to the scalar path.
inline constexpr uint8_t kMaskFalse = 0;
inline constexpr uint8_t kMaskTrue = 1;
inline constexpr uint8_t kMaskNull = 2;

/// Comparison operator for the compare-mask kernels. Values mirror the
/// engine's OpKind comparison subset.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Kernel backend selected at runtime. kAvx2 exists only when the build
/// compiled the AVX2 translation unit (AQP_ENABLE_AVX2) AND the CPU reports
/// AVX2; otherwise every call runs the portable autovectorized loops.
enum class Backend : uint8_t { kScalar = 0, kAvx2 = 1 };

/// The backend every kernel dispatches to. Resolved once per process:
/// AVX2 when compiled in and the CPU supports it, unless AQP_SIMD=scalar
/// forces the portable loops (the kill switch the fallback CI leg flips).
Backend ActiveBackend();

/// True when the AVX2 backend is compiled in and usable on this CPU.
bool Avx2Available();

/// Overrides the dispatch decision (clamped to Avx2Available()). Test/bench
/// seam only: lets one process measure both backends side by side.
void SetBackendForTest(Backend backend);

/// out[i] = kMaskNull where !valid[i], else cmp(x[i], c). `valid` may be
/// null (no NULL slots). Comparisons are exact and follow the row engine's
/// three-way comparator, under which an unordered pair (NaN operand)
/// compares as "equal" — Eq/Le/Ge hold, Ne/Lt/Gt do not. Bit-identical
/// across backends.
void CmpMaskF64(const double* x, const uint8_t* valid, size_t n, double c,
                CmpOp op, uint8_t* out);

/// Same, for an INT64 column compared against a numeric literal. Mirrors the
/// scalar evaluator's promotion rule for column-vs-literal comparisons: each
/// element is widened to double and compared in double space.
void CmpMaskI64AsF64(const int64_t* x, const uint8_t* valid, size_t n,
                     double c, CmpOp op, uint8_t* out);

/// INT64 column vs INT64 literal compared in int64 space (the promotion the
/// scalar evaluator applies to BETWEEN bounds materialized as INT64
/// columns).
void CmpMaskI64(const int64_t* x, const uint8_t* valid, size_t n, int64_t c,
                CmpOp op, uint8_t* out);

/// Kleene combiners over three-valued masks, in place into `a`:
///   AND: false dominates, then null;  OR: true dominates, then null.
void And3(uint8_t* a, const uint8_t* b, size_t n);
void Or3(uint8_t* a, const uint8_t* b, size_t n);
/// NOT: true<->false, null stays null.
void Not3(uint8_t* a, size_t n);

/// Fills the mask with one value (constant predicates).
void FillMask(uint8_t* out, size_t n, uint8_t value);

/// Appends `base + i` to `*sel` for every i in [0, n) with mask[i] ==
/// kMaskTrue, in ascending order — the selection-vector contract SQL WHERE
/// needs (NULL and FALSE rows drop out).
void SelectTrue(const uint8_t* mask, size_t n, uint32_t base,
                std::vector<uint32_t>* sel);

/// Number of kMaskTrue bytes in mask[0, n).
size_t CountTrue(const uint8_t* mask, size_t n);

}  // namespace simd
}  // namespace aqp

#endif  // AQP_COMMON_SIMD_H_
