#include "common/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "common/check.h"
#include "common/str_util.h"

namespace aqp {
namespace {

// True on threads currently executing pool work; nested ParallelFor calls
// from such threads run inline to avoid the classic pool-within-pool
// deadlock (every worker blocked waiting for helpers that can never run).
thread_local bool t_inside_pool = false;

// Dispatch fault hook (see SetDispatchFaultHook). The flag is the cheap
// guard; the function itself is read under the mutex only when armed.
std::atomic<bool> g_dispatch_hook_set{false};
std::mutex g_dispatch_hook_mu;
std::function<bool(size_t)> g_dispatch_hook;

bool DispatchFaulted(size_t slot) {
  if (!g_dispatch_hook_set.load(std::memory_order_acquire)) return false;
  std::function<bool(size_t)> hook;
  {
    std::lock_guard<std::mutex> lock(g_dispatch_hook_mu);
    hook = g_dispatch_hook;
  }
  return hook != nullptr && hook(slot);
}

}  // namespace

Result<size_t> ParseThreadCount(std::string_view s) {
  std::string_view trimmed = StripWhitespace(s);
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty thread count");
  }
  uint64_t value = 0;
  for (char c : trimmed) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("thread count is not a positive integer: '" +
                                     std::string(s) + "'");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
    if (value > 4096) {
      return Status::OutOfRange("thread count out of range (1..4096): '" +
                                std::string(s) + "'");
    }
  }
  if (value == 0) {
    return Status::OutOfRange("thread count must be >= 1: '" + std::string(s) +
                              "'");
  }
  return static_cast<size_t>(value);
}

size_t ThreadCountFromEnv(const char* env_var, size_t fallback) {
  const char* raw = std::getenv(env_var);
  if (raw == nullptr) return fallback;
  Result<size_t> parsed = ParseThreadCount(raw);
  if (parsed.ok()) return parsed.value();
  // Warn once per process: a misconfigured knob should be loud but must not
  // spam stderr from every query.
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr, "[aqp] ignoring invalid %s=%s (%s); using %zu\n",
                 env_var, raw, parsed.status().ToString().c_str(), fallback);
  }
  return fallback;
}

void ThreadPool::SetDispatchFaultHook(std::function<bool(size_t)> hook) {
  std::lock_guard<std::mutex> lock(g_dispatch_hook_mu);
  g_dispatch_hook = std::move(hook);
  g_dispatch_hook_set.store(g_dispatch_hook != nullptr,
                            std::memory_order_release);
}

void ParallelRunStats::MergeFrom(const ParallelRunStats& other) {
  morsels += other.morsels;
  steals += other.steals;
  if (worker_items.size() < other.worker_items.size()) {
    worker_items.resize(other.worker_items.size(), 0);
  }
  for (size_t i = 0; i < other.worker_items.size(); ++i) {
    worker_items[i] += other.worker_items[i];
  }
}

size_t HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

/// Shared state of one ParallelFor run. Each participant owns a contiguous
/// run of morsel ids [lo, hi) and pops from it with a fetch_add cursor;
/// thieves use the same cursor, so owner/thief races resolve to distinct
/// morsels by construction.
struct ThreadPool::Job {
  size_t n = 0;
  size_t morsel_items = 0;
  size_t num_morsels = 0;
  const MorselFn* body = nullptr;
  const CancellationToken* cancel = nullptr;

  struct alignas(64) Cursor {
    std::atomic<size_t> next{0};
    size_t hi = 0;
  };
  std::vector<Cursor> cursors;              // One per participant.
  struct alignas(64) Slot {
    uint64_t items = 0;
    uint64_t steals = 0;
    uint64_t morsels = 0;
  };
  std::vector<Slot> slots;                  // One per participant.

  // Set on the first body exception; every participant checks it before
  // every morsel, so remaining work is skipped without any thread blocking.
  std::atomic<bool> aborted{false};

  std::mutex mu;
  std::condition_variable cv;
  size_t helpers_done = 0;                  // Helpers that finished RunParticipant.
  std::exception_ptr exception;             // First body exception (under mu).

  // True once this run should stop issuing new morsels.
  bool ShouldStop() const {
    return aborted.load(std::memory_order_acquire) ||
           (cancel != nullptr && cancel->IsCancelled());
  }
};

ThreadPool::ThreadPool(size_t num_workers) { EnsureWorkers(num_workers); }

size_t ThreadPool::EnsureWorkers(size_t target) {
  target = std::min(target, kMaxWorkers);
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < target && !stop_) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return workers_.size();
}

void ThreadPool::Post(std::function<void()> task) {
  EnsureWorkers(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  cv_.notify_one();
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(HardwareThreads() - 1);
  return *pool;
}

void ThreadPool::WorkerLoop() {
  t_inside_pool = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunParticipant(Job* job, size_t slot) {
  Job::Cursor& own = job->cursors[slot];
  Job::Slot& out = job->slots[slot];
  // Runs one morsel; on a body exception records it (first wins) and trips
  // the abort flag so every participant stops issuing morsels.
  auto run = [&](size_t m) {
    size_t begin = m * job->morsel_items;
    size_t end = std::min(job->n, begin + job->morsel_items);
    try {
      (*job->body)(slot, m, begin, end);
      out.items += end - begin;
      ++out.morsels;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job->mu);
        if (!job->exception) job->exception = std::current_exception();
      }
      job->aborted.store(true, std::memory_order_release);
    }
  };
  // Drain the owned run first.
  while (!job->ShouldStop()) {
    size_t m = own.next.fetch_add(1, std::memory_order_relaxed);
    if (m >= own.hi) break;
    run(m);
  }
  // Then steal from the most-loaded peer until nothing is left anywhere.
  while (!job->ShouldStop()) {
    size_t victim = job->cursors.size();
    size_t best_remaining = 0;
    for (size_t p = 0; p < job->cursors.size(); ++p) {
      if (p == slot) continue;
      size_t next = job->cursors[p].next.load(std::memory_order_relaxed);
      size_t remaining = next < job->cursors[p].hi
                             ? job->cursors[p].hi - next
                             : 0;
      if (remaining > best_remaining) {
        best_remaining = remaining;
        victim = p;
      }
    }
    if (victim == job->cursors.size()) break;  // Everything drained.
    size_t m = job->cursors[victim].next.fetch_add(1,
                                                   std::memory_order_relaxed);
    if (m >= job->cursors[victim].hi) continue;  // Lost the race; rescan.
    ++out.steals;
    run(m);
  }
}

ParallelRunStats ThreadPool::ParallelFor(size_t n, size_t morsel_items,
                                         size_t num_threads,
                                         const MorselFn& body) {
  return ParallelFor(n, morsel_items, num_threads, ParallelForOptions{}, body);
}

ParallelRunStats ThreadPool::ParallelFor(size_t n, size_t morsel_items,
                                         size_t num_threads,
                                         const ParallelForOptions& options,
                                         const MorselFn& body) {
  AQP_CHECK(morsel_items > 0);
  ParallelRunStats stats;
  if (n == 0) return stats;
  const size_t num_morsels = (n + morsel_items - 1) / morsel_items;

  size_t participants = std::max<size_t>(num_threads, 1);
  // An explicit request for P threads is honored with real threads even on
  // machines with fewer cores: grow the pool on demand (the request conveys
  // intent, and determinism never depends on the thread count anyway).
  if (participants > 1) {
    participants = std::min(participants, EnsureWorkers(participants - 1) + 1);
  }
  participants = std::min(participants, num_morsels);
  if (t_inside_pool) participants = 1;  // Nested: run inline.

  if (participants == 1) {
    // Serial path: same morsels, same order — the determinism baseline. The
    // token is checked at every morsel boundary; an exception from the body
    // propagates directly (this IS the caller thread).
    uint64_t items = 0;
    uint64_t executed = 0;
    for (size_t m = 0; m < num_morsels; ++m) {
      if (options.cancel != nullptr && options.cancel->IsCancelled()) break;
      size_t begin = m * morsel_items;
      size_t end = std::min(n, begin + morsel_items);
      body(0, m, begin, end);
      items += end - begin;
      ++executed;
    }
    stats.morsels = executed;
    stats.worker_items.assign(1, items);
    return stats;
  }

  Job job;
  job.n = n;
  job.morsel_items = morsel_items;
  job.num_morsels = num_morsels;
  job.body = &body;
  job.cancel = options.cancel;
  job.cursors = std::vector<Job::Cursor>(participants);
  job.slots = std::vector<Job::Slot>(participants);
  // Contiguous morsel runs, remainder spread over the first participants.
  size_t base = num_morsels / participants;
  size_t extra = num_morsels % participants;
  size_t lo = 0;
  for (size_t p = 0; p < participants; ++p) {
    size_t len = base + (p < extra ? 1 : 0);
    job.cursors[p].next.store(lo, std::memory_order_relaxed);
    job.cursors[p].hi = lo + len;
    lo += len;
  }

  const size_t max_helpers = participants - 1;
  size_t helpers = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t h = 0; h < max_helpers; ++h) {
      size_t slot = h + 1;
      // A dispatch fault drops this helper entirely; its owned morsel range
      // is drained by the surviving participants through work stealing, so
      // the run still completes every morsel.
      if (DispatchFaulted(slot)) continue;
      ++helpers;
      queue_.emplace_back([&job, slot] {
        RunParticipant(&job, slot);
        std::lock_guard<std::mutex> jlock(job.mu);
        ++job.helpers_done;
        job.cv.notify_one();
      });
    }
  }
  cv_.notify_all();

  t_inside_pool = true;  // Caller participates; block nesting underneath.
  RunParticipant(&job, 0);
  t_inside_pool = false;

  // Wait for every helper to leave the job (a late-starting helper finds all
  // cursors drained — or the run aborted — and exits immediately); only then
  // is `job` safe to free and are all per-morsel outputs visible.
  {
    std::unique_lock<std::mutex> lock(job.mu);
    job.cv.wait(lock, [&job, helpers] { return job.helpers_done == helpers; });
  }

  for (size_t p = 0; p < participants; ++p) {
    stats.morsels += job.slots[p].morsels;
    stats.steals += job.slots[p].steals;
  }
  stats.worker_items.resize(participants);
  for (size_t p = 0; p < participants; ++p) {
    stats.worker_items[p] = job.slots[p].items;
  }
  // Rethrow the first body exception on the calling thread, after every
  // helper has left the job — the no-std::terminate contract.
  if (job.exception) std::rethrow_exception(job.exception);
  return stats;
}

}  // namespace aqp
