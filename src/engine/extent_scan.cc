#include "engine/extent_scan.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "expr/eval.h"
#include "obs/metrics.h"

namespace aqp {
namespace {

// Ordering between a zone bound and a conjunct literal. nullopt = the pair
// is not comparable (type mismatch, NULL) — callers treat that as "cannot
// prune". Mixed int64/double compares through long double so a 2^53+ int64
// never collapses onto a neighboring double and flips an inequality.
std::optional<int> CompareValues(const Value& x, const Value& y) {
  if (x.is_null() || y.is_null()) return std::nullopt;
  auto sign = [](long double d) { return d < 0 ? -1 : (d > 0 ? 1 : 0); };
  if (x.is_int64() && y.is_int64()) {
    return x.int64() < y.int64() ? -1 : (x.int64() > y.int64() ? 1 : 0);
  }
  if ((x.is_int64() || x.is_double()) && (y.is_int64() || y.is_double())) {
    const long double xv =
        x.is_int64() ? static_cast<long double>(x.int64()) : x.dbl();
    const long double yv =
        y.is_int64() ? static_cast<long double>(y.int64()) : y.dbl();
    return sign(xv - yv);
  }
  if (x.is_string() && y.is_string()) {
    const int c = x.str().compare(y.str());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (x.is_bool() && y.is_bool()) {
    return static_cast<int>(x.boolean()) - static_cast<int>(y.boolean());
  }
  return std::nullopt;
}

// `lit` may lie within [min, max]? nullopt comparisons conservatively say
// yes.
bool LiteralInBounds(const Value& lit, const Value& min, const Value& max) {
  std::optional<int> lo = CompareValues(lit, min);
  std::optional<int> hi = CompareValues(lit, max);
  if (!lo.has_value() || !hi.has_value()) return true;
  return *lo >= 0 && *hi <= 0;
}

void Collect(const Expr& e, const Schema& schema,
             std::vector<PruneConjunct>* out) {
  if (e.kind() == ExprKind::kBinary && e.op() == OpKind::kAnd) {
    Collect(*e.child(0), schema, out);
    Collect(*e.child(1), schema, out);
    return;
  }
  if (e.kind() == ExprKind::kBinary) {
    OpKind op = e.op();
    if (op != OpKind::kEq && op != OpKind::kLt && op != OpKind::kLe &&
        op != OpKind::kGt && op != OpKind::kGe) {
      return;
    }
    const Expr* lhs = e.child(0).get();
    const Expr* rhs = e.child(1).get();
    if (lhs->kind() == ExprKind::kLiteral &&
        rhs->kind() == ExprKind::kColumnRef) {
      // literal <op> col == col <flipped-op> literal.
      std::swap(lhs, rhs);
      switch (op) {
        case OpKind::kLt: op = OpKind::kGt; break;
        case OpKind::kLe: op = OpKind::kGe; break;
        case OpKind::kGt: op = OpKind::kLt; break;
        case OpKind::kGe: op = OpKind::kLe; break;
        default: break;
      }
    }
    if (lhs->kind() != ExprKind::kColumnRef ||
        rhs->kind() != ExprKind::kLiteral || rhs->literal().is_null()) {
      return;
    }
    Result<size_t> col = schema.FieldIndex(lhs->column_name());
    if (!col.ok()) return;
    PruneConjunct c;
    c.col = col.value();
    switch (op) {
      case OpKind::kEq: c.kind = PruneConjunct::Kind::kEq; break;
      case OpKind::kLt: c.kind = PruneConjunct::Kind::kLt; break;
      case OpKind::kLe: c.kind = PruneConjunct::Kind::kLe; break;
      case OpKind::kGt: c.kind = PruneConjunct::Kind::kGt; break;
      case OpKind::kGe: c.kind = PruneConjunct::Kind::kGe; break;
      default: return;
    }
    c.a = rhs->literal();
    out->push_back(std::move(c));
    return;
  }
  if (e.kind() == ExprKind::kBetween &&
      e.child(0)->kind() == ExprKind::kColumnRef &&
      e.child(1)->kind() == ExprKind::kLiteral &&
      e.child(2)->kind() == ExprKind::kLiteral &&
      !e.child(1)->literal().is_null() && !e.child(2)->literal().is_null()) {
    Result<size_t> col = schema.FieldIndex(e.child(0)->column_name());
    if (!col.ok()) return;
    PruneConjunct c;
    c.col = col.value();
    c.kind = PruneConjunct::Kind::kBetween;
    c.a = e.child(1)->literal();
    c.b = e.child(2)->literal();
    out->push_back(std::move(c));
    return;
  }
  if (e.kind() == ExprKind::kIn &&
      e.child(0)->kind() == ExprKind::kColumnRef) {
    Result<size_t> col = schema.FieldIndex(e.child(0)->column_name());
    if (!col.ok()) return;
    PruneConjunct c;
    c.col = col.value();
    c.kind = PruneConjunct::Kind::kIn;
    c.values = e.in_list();
    out->push_back(std::move(c));
  }
}

bool ConjunctMayMatch(const extent::ExtentMeta& meta,
                      const PruneConjunct& c) {
  if (c.col >= meta.chunks.size()) return true;
  const extent::ZoneMap& z = meta.chunks[c.col].zone;
  // Every comparison/IN/BETWEEN over an all-NULL chunk is never true.
  if (z.null_count >= meta.row_count) return false;
  if (!z.has_bounds) return true;
  switch (c.kind) {
    case PruneConjunct::Kind::kEq:
      return LiteralInBounds(c.a, z.min, z.max);
    case PruneConjunct::Kind::kLt: {
      // Some row < lit requires min < lit.
      std::optional<int> cmp = CompareValues(z.min, c.a);
      return !cmp.has_value() || *cmp < 0;
    }
    case PruneConjunct::Kind::kLe: {
      std::optional<int> cmp = CompareValues(z.min, c.a);
      return !cmp.has_value() || *cmp <= 0;
    }
    case PruneConjunct::Kind::kGt: {
      std::optional<int> cmp = CompareValues(z.max, c.a);
      return !cmp.has_value() || *cmp > 0;
    }
    case PruneConjunct::Kind::kGe: {
      std::optional<int> cmp = CompareValues(z.max, c.a);
      return !cmp.has_value() || *cmp >= 0;
    }
    case PruneConjunct::Kind::kBetween: {
      // Overlap test: max >= lo && min <= hi.
      std::optional<int> lo = CompareValues(z.max, c.a);
      std::optional<int> hi = CompareValues(z.min, c.b);
      if (lo.has_value() && *lo < 0) return false;
      if (hi.has_value() && *hi > 0) return false;
      return true;
    }
    case PruneConjunct::Kind::kIn: {
      if (c.values.empty()) return false;  // IN () matches nothing.
      for (const Value& v : c.values) {
        if (v.is_null()) continue;  // NULL list entries never equal a row.
        if (LiteralInBounds(v, z.min, z.max)) return true;
      }
      return false;
    }
  }
  return true;
}

void CountPrunedExtents(uint64_t pruned) {
  if (pruned == 0 || !obs::Enabled()) return;
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "engine.extent_scan.pruned");
  counter->Increment(pruned);
}

}  // namespace

std::vector<PruneConjunct> ExtractPruneConjuncts(const Expr& pred,
                                                 const Schema& schema) {
  std::vector<PruneConjunct> out;
  Collect(pred, schema, &out);
  return out;
}

bool ExtentMayMatch(const extent::ExtentMeta& meta,
                    const std::vector<PruneConjunct>& conjuncts) {
  for (const PruneConjunct& c : conjuncts) {
    if (!ConjunctMayMatch(meta, c)) return false;
  }
  return true;
}

Result<Table> ReadAllExtents(const extent::ExtentReader& reader,
                             const ExtentScanOptions& options,
                             ExtentScanStats* stats) {
  const size_t n = reader.num_extents();
  stats->extents_total += n;
  if (n == 0) return Table(reader.schema());
  std::vector<Result<Table>> parts(
      n, Result<Table>(Status::Internal("extent not read")));
  const size_t threads = std::max<size_t>(options.num_threads, 1);
  ParallelRunStats rs = ThreadPool::Shared().ParallelFor(
      n, /*morsel_items=*/1, threads,
      ThreadPool::ParallelForOptions{options.cancel},
      [&](size_t, size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          parts[i] = reader.ReadExtent(i);
        }
      });
  if (options.run_stats != nullptr) options.run_stats->MergeFrom(rs);
  // A cancellation mid-read leaves unread placeholder errors behind; bail
  // before the concat mistakes them for real failures.
  AQP_RETURN_IF_ERROR(CheckCancelled(options.cancel));
  Table out(reader.schema());
  for (size_t i = 0; i < n; ++i) {
    AQP_ASSIGN_OR_RETURN(Table part, std::move(parts[i]));
    AQP_RETURN_IF_ERROR(out.Append(part));
  }
  stats->extents_read += n;
  stats->rows_read += out.num_rows();
  return out;
}

Result<Table> FusedExtentFilterScan(const extent::ExtentReader& reader,
                                    const Expr& pred,
                                    const ExtentScanOptions& options,
                                    ExtentScanStats* stats) {
  const std::vector<PruneConjunct> conjuncts =
      ExtractPruneConjuncts(pred, reader.schema());
  const size_t n = reader.num_extents();
  stats->extents_total += n;
  std::vector<size_t> survivors;
  survivors.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (ExtentMayMatch(reader.extent(i), conjuncts)) survivors.push_back(i);
  }
  stats->extents_pruned += n - survivors.size();
  CountPrunedExtents(n - survivors.size());
  if (survivors.empty()) return Table(reader.schema());

  // One slot per surviving extent; slot order == extent order, so the final
  // concat is deterministic for every thread count.
  std::vector<Result<Table>> parts(
      survivors.size(), Result<Table>(Status::Internal("extent not read")));
  std::vector<uint64_t> rows_read(survivors.size(), 0);
  const size_t threads = std::max<size_t>(options.num_threads, 1);
  ParallelRunStats rs = ThreadPool::Shared().ParallelFor(
      survivors.size(), /*morsel_items=*/1, threads,
      ThreadPool::ParallelForOptions{options.cancel},
      [&](size_t, size_t, size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          const size_t e = survivors[s];
          // The decoded extent is a transient, governed allocation: it is
          // charged only while this iteration holds it, which is what keeps
          // a beyond-budget table filterable (E19). A refused charge
          // surfaces as ResourceExhausted through the part slot.
          Result<ScopedMemoryCharge> charge = ScopedMemoryCharge::Make(
              options.memory, reader.extent(e).raw_bytes, "extent decode");
          if (!charge.ok()) {
            parts[s] = charge.status();
            continue;
          }
          Result<Table> t = reader.ReadExtent(e);
          if (!t.ok()) {
            parts[s] = std::move(t);
            continue;
          }
          rows_read[s] = t.value().num_rows();
          Result<std::vector<uint32_t>> sel = EvalPredicate(pred, t.value());
          if (!sel.ok()) {
            parts[s] = sel.status();
            continue;
          }
          if (sel.value().size() == t.value().num_rows()) {
            parts[s] = std::move(t);
          } else {
            parts[s] = t.value().Take(sel.value());
          }
        }
      });
  if (options.run_stats != nullptr) options.run_stats->MergeFrom(rs);
  AQP_RETURN_IF_ERROR(CheckCancelled(options.cancel));
  Table out(reader.schema());
  for (size_t s = 0; s < parts.size(); ++s) {
    AQP_ASSIGN_OR_RETURN(Table part, std::move(parts[s]));
    AQP_RETURN_IF_ERROR(out.Append(part));
    stats->rows_read += rows_read[s];
  }
  stats->extents_read += survivors.size();
  return out;
}

}  // namespace aqp
