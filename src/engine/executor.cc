#include "engine/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/cancellation.h"
#include "common/check.h"
#include "common/hash.h"
#include "common/memory_tracker.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/str_util.h"
#include "engine/extent_scan.h"
#include "expr/eval.h"
#include "expr/vector_eval.h"
#include "gov/fault_injector.h"
#include "obs/metrics.h"

namespace aqp {
namespace {

using TablePtr = std::shared_ptr<const Table>;

// Compares slot i of column a against slot j of column b for ordering;
// NULLs sort first. Columns must share a type.
int CompareForSort(const Column& a, size_t i, const Column& b, size_t j) {
  bool an = a.IsNull(i);
  bool bn = b.IsNull(j);
  if (an || bn) return (an ? 0 : 1) - (bn ? 0 : 1);
  switch (a.type()) {
    case DataType::kInt64: {
      int64_t x = a.Int64At(i);
      int64_t y = b.Int64At(j);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kDouble: {
      double x = a.DoubleAt(i);
      double y = b.DoubleAt(j);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case DataType::kString: {
      int c = a.StringAt(i).compare(b.StringAt(j));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case DataType::kBool:
      return (a.BoolAt(i) ? 1 : 0) - (b.BoolAt(j) ? 1 : 0);
  }
  return 0;
}

// Bundles the per-query execution environment threaded through every
// operator: where tables come from, where counters go, and the parallelism
// knobs. Spans are created only on the coordinator thread (QueryTrace is not
// thread-safe); workers never touch `trace`.
struct ExecContext {
  const Catalog& catalog;
  ExecStats* stats;
  obs::QueryTrace* trace;
  const ExecOptions& options;

  // Where parallel regions report their morsel/steal counters (null when the
  // caller did not ask for stats).
  ParallelRunStats* run_stats() const {
    return stats != nullptr ? &stats->parallel : nullptr;
  }

  // Cancellation forwarded into every ParallelFor so in-flight morsels stop
  // at their next boundary, not just the next operator.
  ThreadPool::ParallelForOptions pf_options() const {
    return ThreadPool::ParallelForOptions{options.cancel};
  }
};

Result<TablePtr> Exec(const PlanPtr& plan, ExecContext& ctx);

// A late-materialized operator batch: rows of `base` viewed through an
// optional selection vector (ascending base-row indices; null means "all
// rows") and a column remap (view column i is base column col_idx[i], named
// names[i]). Scan and filter produce views without copying a single cell;
// the first table-valued operator (aggregate, join, sort, ...) — or the plan
// root — gathers once. Selections always index BASE rows, so predicate
// kernels run over contiguous column spans regardless of how many filters
// stacked up.
struct BatchView {
  TablePtr base;
  std::vector<size_t> col_idx;
  std::vector<std::string> names;
  std::shared_ptr<const std::vector<uint32_t>> sel;
  size_t num_rows = 0;
};

Result<BatchView> ExecBatch(const PlanPtr& plan, ExecContext& ctx);

// Materializes `t` behind a shared_ptr, charging the query's MemoryTracker
// (when one is bound) for the table's footprint until the last reference
// dies. Operator OUTPUTS go through here; catalog base tables do not (they
// are shared storage, not query-owned memory).
Result<TablePtr> TrackTable(Table&& t, ExecContext& ctx,
                            std::string_view what) {
  MemoryTracker* memory = ctx.options.memory;
  if (memory == nullptr) {
    return std::make_shared<const Table>(std::move(t));
  }
  auto owned = std::make_unique<const Table>(std::move(t));
  const uint64_t bytes = owned->ApproxBytes();
  AQP_RETURN_IF_ERROR(memory->TryCharge(bytes, what));
  return TablePtr(owned.release(), [memory, bytes](const Table* p) {
    delete p;
    memory->Release(bytes);
  });
}

// Gathers `keep` out of `table`, in parallel when the morsel path is active
// for this input size (the parallel gather is column-wise and produces the
// identical table for every thread count).
Table GatherRows(const Table& table, const std::vector<uint32_t>& keep,
                 bool use_morsels, ExecContext& ctx) {
  if (!use_morsels) return table.Take(keep);
  return table.Take(keep, ctx.options.ResolvedThreads(), ctx.run_stats());
}

// Selection vectors are query-owned memory too: charge them like operator
// outputs, released when the last view referencing them dies.
Result<std::shared_ptr<const std::vector<uint32_t>>> TrackSel(
    std::vector<uint32_t>&& sel, ExecContext& ctx, std::string_view what) {
  MemoryTracker* memory = ctx.options.memory;
  if (memory == nullptr) {
    return std::make_shared<const std::vector<uint32_t>>(std::move(sel));
  }
  auto owned = std::make_unique<const std::vector<uint32_t>>(std::move(sel));
  const uint64_t bytes = owned->capacity() * sizeof(uint32_t);
  AQP_RETURN_IF_ERROR(memory->TryCharge(bytes, what));
  return std::shared_ptr<const std::vector<uint32_t>>(
      owned.release(), [memory, bytes](const std::vector<uint32_t>* p) {
        delete p;
        memory->Release(bytes);
      });
}

// Wraps a table as the trivial view over itself.
BatchView IdentityView(TablePtr t) {
  BatchView v;
  v.base = std::move(t);
  const size_t n = v.base->num_columns();
  v.col_idx.resize(n);
  v.names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    v.col_idx[i] = i;
    v.names.push_back(v.base->schema().field(i).name);
  }
  v.num_rows = v.base->num_rows();
  return v;
}

bool ViewIsIdentity(const BatchView& v) {
  if (v.sel != nullptr) return false;
  if (v.col_idx.size() != v.base->num_columns()) return false;
  for (size_t i = 0; i < v.col_idx.size(); ++i) {
    if (v.col_idx[i] != i) return false;
    if (v.names[i] != v.base->schema().field(i).name) return false;
  }
  return true;
}

// Collapses a view into a real table: the one gather of the batch pipeline.
// Identity views hand back the base table without copying (matching the
// scalar scan's pass-through of catalog tables). The gather is
// column-parallel — columns are independent, so the result is identical for
// every thread count.
Result<TablePtr> MaterializeView(const BatchView& v, ExecContext& ctx,
                                 std::string_view what) {
  if (ViewIsIdentity(v)) return v.base;
  const Table& base = *v.base;
  const size_t num_cols = v.col_idx.size();
  Schema schema;
  for (size_t i = 0; i < num_cols; ++i) {
    schema.AddField({v.names[i], base.column(v.col_idx[i]).type()});
  }
  std::vector<Column> columns;
  if (v.sel == nullptr) {
    columns.reserve(num_cols);
    for (size_t i = 0; i < num_cols; ++i) {
      columns.push_back(base.column(v.col_idx[i]));
    }
  } else if (ctx.options.UseMorsels(v.sel->size())) {
    // Column-parallel gather through the pool whenever the morsel path is
    // active for this row count — single-column views included, so morsel
    // attribution (run stats, trace attrs) reflects the gather uniformly.
    const std::vector<uint32_t>& sel = *v.sel;
    std::vector<Column> gathered(num_cols, Column(DataType::kInt64));
    ParallelRunStats rs = ThreadPool::Shared().ParallelFor(
        num_cols, /*morsel_items=*/1, ctx.options.ResolvedThreads(),
        ctx.pf_options(), [&](size_t, size_t, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            gathered[i] = base.column(v.col_idx[i]).TakeBatch(sel);
          }
        });
    if (ctx.run_stats() != nullptr) ctx.run_stats()->MergeFrom(rs);
    // A cancellation mid-gather leaves dummy columns behind; bail before
    // Table::Make sees mismatched lengths.
    AQP_RETURN_IF_ERROR(CheckCancelled(ctx.options.cancel));
    columns = std::move(gathered);
  } else {
    columns.reserve(num_cols);
    for (size_t i = 0; i < num_cols; ++i) {
      columns.push_back(base.column(v.col_idx[i]).TakeBatch(*v.sel));
    }
  }
  AQP_ASSIGN_OR_RETURN(Table out,
                       Table::Make(std::move(schema), std::move(columns)));
  return TrackTable(std::move(out), ctx, what);
}

// How table-valued operators (join/aggregate/sort/limit/union) obtain a
// child table: the scalar path recurses through Exec; the vectorized path
// runs the child as a batch view and gathers at this boundary.
Result<TablePtr> ExecInput(const PlanPtr& plan, ExecContext& ctx) {
  if (ctx.options.ResolvedPath() == ExecPath::kVectorized) {
    AQP_ASSIGN_OR_RETURN(BatchView view, ExecBatch(plan, ctx));
    return MaterializeView(view, ctx, "batch materialize");
  }
  return Exec(plan, ctx);
}

// Draws the kept-row set for a sampled scan. Shared verbatim by the scalar
// and batch scans, so both paths keep exactly the same rows for a given
// (seed, morsel_rows) regardless of thread count.
Result<std::vector<uint32_t>> DrawSampleKeep(const Table& table,
                                             const SampleSpec& spec,
                                             bool use_morsels,
                                             ExecContext& ctx,
                                             uint64_t* blocks_read_out) {
  const size_t n = table.num_rows();
  std::vector<uint32_t> keep;
  uint64_t blocks_read = 0;
  if (spec.method == SampleSpec::Method::kBernoulliRow) {
    // Row-level Bernoulli still scans every block — the system-efficiency
    // gap the paper highlights.
    blocks_read = table.NumBlocks(spec.block_size);
    if (use_morsels) {
      // Per-morsel RNG: morsel m draws from stream m of the query seed, so
      // the kept set depends only on (seed, morsel_rows) — never on which
      // worker ran the morsel or how many threads participated.
      const size_t morsel_rows = ctx.options.morsel_rows;
      const size_t num_morsels = (n + morsel_rows - 1) / morsel_rows;
      std::vector<std::vector<uint32_t>> local(num_morsels);
      ParallelRunStats rs = ThreadPool::Shared().ParallelFor(
          n, morsel_rows, ctx.options.ResolvedThreads(), ctx.pf_options(),
          [&](size_t, size_t m, size_t begin, size_t end) {
            Pcg32 rng = MorselRng(spec.seed, m);
            for (size_t i = begin; i < end; ++i) {
              if (rng.Bernoulli(spec.rate)) {
                local[m].push_back(static_cast<uint32_t>(i));
              }
            }
          });
      // A cancellation that landed mid-draw leaves `local` incomplete; the
      // partial kept set must never masquerade as a valid sample.
      AQP_RETURN_IF_ERROR(CheckCancelled(ctx.options.cancel));
      size_t total = 0;
      for (const std::vector<uint32_t>& v : local) total += v.size();
      keep.reserve(total);
      for (const std::vector<uint32_t>& v : local) {
        keep.insert(keep.end(), v.begin(), v.end());
      }
      if (ctx.run_stats() != nullptr) ctx.run_stats()->MergeFrom(rs);
    } else {
      // Small input: one morsel, one stream — MorselRng(seed, 0) is the
      // plain Pcg32(seed) the classic path always used.
      Pcg32 rng = MorselRng(spec.seed, 0);
      for (size_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(spec.rate)) keep.push_back(static_cast<uint32_t>(i));
      }
    }
  } else {
    // Block-level: sample whole blocks, skip the rest entirely. One
    // Bernoulli draw per block from a single stream is cheap and trivially
    // thread-count independent; only the gather below parallelizes.
    Pcg32 rng(spec.seed);
    size_t num_blocks = table.NumBlocks(spec.block_size);
    for (size_t b = 0; b < num_blocks; ++b) {
      if (!rng.Bernoulli(spec.rate)) continue;
      ++blocks_read;
      auto [first, last] = table.BlockRange(b, spec.block_size);
      for (size_t i = first; i < last; ++i) {
        keep.push_back(static_cast<uint32_t>(i));
      }
    }
  }
  *blocks_read_out = blocks_read;
  return keep;
}

ExtentScanOptions MakeExtentScanOptions(size_t num_rows, ExecContext& ctx) {
  ExtentScanOptions o;
  o.num_threads = ctx.options.UseMorsels(num_rows)
                      ? ctx.options.ResolvedThreads()
                      : 1;
  o.cancel = ctx.options.cancel;
  o.memory = ctx.options.memory;
  o.run_stats = ctx.run_stats();
  return o;
}

void MergeExtentStats(const ExtentScanStats& es, ExecContext& ctx) {
  if (ctx.stats == nullptr) return;
  ctx.stats->extents_total += es.extents_total;
  ctx.stats->extents_pruned += es.extents_pruned;
}

// Resolves a scan's base table: in-memory tables come straight from the
// catalog (shared storage, uncharged); extent-backed tables materialize here
// as a governed parallel read — charged like any operator output, so a
// beyond-budget full scan is refused instead of silently swapping.
Result<TablePtr> ScanBaseTable(const PlanNode& node, ExecContext& ctx) {
  if (!ctx.catalog.IsExtentBacked(node.table_name())) {
    return ctx.catalog.Get(node.table_name());
  }
  AQP_ASSIGN_OR_RETURN(std::shared_ptr<const extent::ExtentReader> reader,
                       ctx.catalog.GetExtentReader(node.table_name()));
  ExtentScanStats es;
  AQP_ASSIGN_OR_RETURN(
      Table t, ReadAllExtents(*reader,
                              MakeExtentScanOptions(reader->num_rows(), ctx),
                              &es));
  MergeExtentStats(es, ctx);
  return TrackTable(std::move(t), ctx, "extent scan output");
}

// Fused filter+scan over an extent-backed base: prune extents with the
// predicate's conjuncts, decode + filter the survivors morsel-parallel, and
// emit only matching rows (engine/extent_scan.h). Applies when the filter
// sits directly on an unsampled scan — the shape every pushed-down WHERE
// clause takes.
Result<TablePtr> ExecExtentFilterScan(const PlanNode& filter_node,
                                      const PlanNode& scan_node,
                                      ExecContext& ctx) {
  AQP_RETURN_IF_ERROR(gov::FaultInjector::Global().MaybeFail("engine.scan"));
  AQP_ASSIGN_OR_RETURN(std::shared_ptr<const extent::ExtentReader> reader,
                       ctx.catalog.GetExtentReader(scan_node.table_name()));
  ExtentScanStats es;
  AQP_ASSIGN_OR_RETURN(
      Table t, FusedExtentFilterScan(
                   *reader, *filter_node.predicate(),
                   MakeExtentScanOptions(reader->num_rows(), ctx), &es));
  MergeExtentStats(es, ctx);
  if (ctx.stats != nullptr) {
    // Pruned extents are I/O the query never did; count only decoded rows
    // and the blocks of extents actually read.
    ctx.stats->rows_scanned += es.rows_read;
    ctx.stats->blocks_read +=
        (es.rows_read + scan_node.sample().block_size - 1) /
        scan_node.sample().block_size;
  }
  return TrackTable(std::move(t), ctx, "filter output");
}

// True when a filter node directly over `child` should take the fused
// extent path.
bool UseFusedExtentFilter(const PlanNode& filter_node, ExecContext& ctx) {
  const PlanPtr& child = filter_node.child();
  return child->kind() == PlanKind::kScan && !child->sample().is_sampled() &&
         ctx.catalog.IsExtentBacked(child->table_name());
}

Result<TablePtr> ExecScan(const PlanNode& node, ExecContext& ctx) {
  AQP_RETURN_IF_ERROR(gov::FaultInjector::Global().MaybeFail("engine.scan"));
  AQP_ASSIGN_OR_RETURN(TablePtr table, ScanBaseTable(node, ctx));
  const SampleSpec& spec = node.sample();
  if (!spec.is_sampled()) {
    if (ctx.stats != nullptr) {
      ctx.stats->rows_scanned += table->num_rows();
      ctx.stats->blocks_read += table->NumBlocks(spec.block_size);
    }
    return table;
  }
  const bool use_morsels = ctx.options.UseMorsels(table->num_rows());
  uint64_t blocks_read = 0;
  AQP_ASSIGN_OR_RETURN(
      std::vector<uint32_t> keep,
      DrawSampleKeep(*table, spec, use_morsels, ctx, &blocks_read));
  if (ctx.stats != nullptr) {
    ctx.stats->rows_scanned += keep.size();
    ctx.stats->blocks_read += blocks_read;
  }
  return TrackTable(GatherRows(*table, keep, use_morsels, ctx), ctx,
                    "scan output");
}

Result<TablePtr> ExecFilter(const PlanNode& node, ExecContext& ctx) {
  if (UseFusedExtentFilter(node, ctx)) {
    return ExecExtentFilterScan(node, *node.child(), ctx);
  }
  AQP_ASSIGN_OR_RETURN(TablePtr input, Exec(node.child(), ctx));
  const bool use_morsels = ctx.options.UseMorsels(input->num_rows());
  std::vector<uint32_t> selected;
  if (use_morsels) {
    AQP_ASSIGN_OR_RETURN(
        selected, EvalPredicateMorsel(*node.predicate(), *input,
                                      ctx.options.morsel_rows,
                                      ctx.options.ResolvedThreads(),
                                      ctx.run_stats(), ctx.options.cancel));
  } else {
    AQP_ASSIGN_OR_RETURN(selected, EvalPredicate(*node.predicate(), *input));
  }
  AQP_RETURN_IF_ERROR(CheckCancelled(ctx.options.cancel));
  return TrackTable(GatherRows(*input, selected, use_morsels, ctx), ctx,
                    "filter output");
}

Result<TablePtr> ExecProject(const PlanNode& node, ExecContext& ctx) {
  AQP_ASSIGN_OR_RETURN(TablePtr input, Exec(node.child(), ctx));
  const size_t num_exprs = node.exprs().size();
  if (ctx.options.UseMorsels(input->num_rows()) && num_exprs > 1) {
    // Expression-parallel: each output column evaluates independently.
    std::vector<Result<Column>> results(
        num_exprs, Result<Column>(Column(DataType::kInt64)));
    ParallelRunStats rs = ThreadPool::Shared().ParallelFor(
        num_exprs, /*morsel_items=*/1, ctx.options.ResolvedThreads(),
        ctx.pf_options(), [&](size_t, size_t, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            results[i] = Eval(*node.exprs()[i], *input);
          }
        });
    if (ctx.run_stats() != nullptr) ctx.run_stats()->MergeFrom(rs);
    // Skipped expressions under cancellation hold the dummy column; bail
    // before reading them.
    AQP_RETURN_IF_ERROR(CheckCancelled(ctx.options.cancel));
    Schema schema;
    std::vector<Column> columns;
    columns.reserve(num_exprs);
    for (size_t i = 0; i < num_exprs; ++i) {
      AQP_ASSIGN_OR_RETURN(Column c, std::move(results[i]));
      schema.AddField({node.names()[i], c.type()});
      columns.push_back(std::move(c));
    }
    AQP_ASSIGN_OR_RETURN(Table out,
                         Table::Make(std::move(schema), std::move(columns)));
    return TrackTable(std::move(out), ctx, "project output");
  }
  Schema schema;
  std::vector<Column> columns;
  for (size_t i = 0; i < num_exprs; ++i) {
    AQP_ASSIGN_OR_RETURN(Column c, Eval(*node.exprs()[i], *input));
    schema.AddField({node.names()[i], c.type()});
    columns.push_back(std::move(c));
  }
  AQP_ASSIGN_OR_RETURN(Table out,
                       Table::Make(std::move(schema), std::move(columns)));
  return TrackTable(std::move(out), ctx, "project output");
}

Result<TablePtr> ExecJoin(const PlanNode& node, ExecContext& ctx) {
  AQP_ASSIGN_OR_RETURN(TablePtr left, ExecInput(node.child(0), ctx));
  AQP_ASSIGN_OR_RETURN(TablePtr right, ExecInput(node.child(1), ctx));
  ExecStats* stats = ctx.stats;

  std::vector<size_t> lkeys;
  std::vector<size_t> rkeys;
  for (const std::string& k : node.left_keys()) {
    AQP_ASSIGN_OR_RETURN(size_t idx, left->ColumnIndex(k));
    lkeys.push_back(idx);
  }
  for (const std::string& k : node.right_keys()) {
    AQP_ASSIGN_OR_RETURN(size_t idx, right->ColumnIndex(k));
    rkeys.push_back(idx);
  }
  for (size_t i = 0; i < lkeys.size(); ++i) {
    DataType lt = left->column(lkeys[i]).type();
    DataType rt = right->column(rkeys[i]).type();
    if (lt != rt) {
      return Status::InvalidArgument("join key type mismatch: " +
                                     node.left_keys()[i] + " vs " +
                                     node.right_keys()[i]);
    }
  }

  // Build side: right. NULL keys never participate.
  std::unordered_map<uint64_t, std::vector<uint32_t>> build;
  build.reserve(right->num_rows());
  for (size_t j = 0; j < right->num_rows(); ++j) {
    bool has_null = false;
    uint64_t h = 0x2545f4914f6cdd1dULL;
    for (size_t k : rkeys) {
      if (right->column(k).IsNull(j)) {
        has_null = true;
        break;
      }
      h = HashCombine(h, right->column(k).HashAt(j));
    }
    if (!has_null) build[h].push_back(static_cast<uint32_t>(j));
  }

  // Output schema: all left fields then all right fields.
  Schema schema;
  for (const Field& f : left->schema().fields()) schema.AddField(f);
  for (const Field& f : right->schema().fields()) schema.AddField(f);
  Table out(std::move(schema));

  const bool left_outer = node.join_type() == JoinType::kLeftOuter;
  auto emit = [&](size_t li, int64_t rj) {
    for (size_t c = 0; c < left->num_columns(); ++c) {
      out.mutable_column(c).AppendFrom(left->column(c), li);
    }
    for (size_t c = 0; c < right->num_columns(); ++c) {
      Column& dst = out.mutable_column(left->num_columns() + c);
      if (rj < 0) {
        dst.AppendNull();
      } else {
        dst.AppendFrom(right->column(c), static_cast<size_t>(rj));
      }
    }
  };

  size_t emitted = 0;
  for (size_t i = 0; i < left->num_rows(); ++i) {
    bool has_null = false;
    uint64_t h = 0x2545f4914f6cdd1dULL;
    for (size_t k : lkeys) {
      if (left->column(k).IsNull(i)) {
        has_null = true;
        break;
      }
      h = HashCombine(h, left->column(k).HashAt(i));
    }
    bool matched = false;
    if (!has_null) {
      auto it = build.find(h);
      if (it != build.end()) {
        for (uint32_t j : it->second) {
          bool equal = true;
          for (size_t k = 0; k < lkeys.size(); ++k) {
            if (!left->column(lkeys[k]).SlotEquals(i, right->column(rkeys[k]),
                                                   j)) {
              equal = false;
              break;
            }
          }
          if (equal) {
            emit(i, static_cast<int64_t>(j));
            matched = true;
            ++emitted;
          }
        }
      }
    }
    if (!matched && left_outer) {
      emit(i, -1);
      ++emitted;
    }
  }
  // Table built row-by-row through mutable_column; fix the row count by
  // rebuilding through Make (columns are consistent lengths).
  std::vector<Column> cols;
  cols.reserve(out.num_columns());
  for (size_t c = 0; c < out.num_columns(); ++c) cols.push_back(out.column(c));
  AQP_ASSIGN_OR_RETURN(Table fixed, Table::Make(out.schema(), std::move(cols)));
  if (stats != nullptr) stats->rows_joined += emitted;
  return TrackTable(std::move(fixed), ctx, "join output");
}

Result<TablePtr> ExecAggregate(const PlanNode& node, ExecContext& ctx) {
  AQP_ASSIGN_OR_RETURN(TablePtr input, ExecInput(node.child(), ctx));
  AggregateOptions agg_options;
  agg_options.exec = &ctx.options;
  agg_options.run_stats = ctx.run_stats();
  AQP_ASSIGN_OR_RETURN(
      Table out, GroupByAggregate(*input, node.group_exprs(),
                                  node.group_names(), node.aggs(),
                                  agg_options));
  return TrackTable(std::move(out), ctx, "aggregate output");
}

Result<TablePtr> ExecSort(const PlanNode& node, ExecContext& ctx) {
  AQP_ASSIGN_OR_RETURN(TablePtr input, ExecInput(node.child(), ctx));
  std::vector<size_t> key_cols;
  for (const SortKey& k : node.sort_keys()) {
    AQP_ASSIGN_OR_RETURN(size_t idx, input->ColumnIndex(k.column));
    key_cols.push_back(idx);
  }
  std::vector<uint32_t> order(input->num_rows());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      const Column& col = input->column(key_cols[k]);
      int cmp = CompareForSort(col, a, col, b);
      if (cmp != 0) {
        return node.sort_keys()[k].ascending ? cmp < 0 : cmp > 0;
      }
    }
    return false;
  });
  return TrackTable(
      GatherRows(*input, order, ctx.options.UseMorsels(order.size()), ctx),
      ctx, "sort output");
}

Result<TablePtr> ExecLimit(const PlanNode& node, ExecContext& ctx) {
  AQP_ASSIGN_OR_RETURN(TablePtr input, ExecInput(node.child(), ctx));
  return TrackTable(input->Slice(0, node.limit()), ctx, "limit output");
}

Result<TablePtr> ExecUnionAll(const PlanNode& node, ExecContext& ctx) {
  AQP_ASSIGN_OR_RETURN(TablePtr first, ExecInput(node.child(0), ctx));
  Table out = *first;  // Copy, then append the rest.
  for (size_t i = 1; i < node.num_children(); ++i) {
    AQP_ASSIGN_OR_RETURN(TablePtr next, ExecInput(node.child(i), ctx));
    AQP_RETURN_IF_ERROR(out.Append(*next));
  }
  return TrackTable(std::move(out), ctx, "union output");
}

const char* OperatorName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "scan";
    case PlanKind::kFilter:
      return "filter";
    case PlanKind::kProject:
      return "project";
    case PlanKind::kJoin:
      return "join";
    case PlanKind::kAggregate:
      return "aggregate";
    case PlanKind::kSort:
      return "sort";
    case PlanKind::kLimit:
      return "limit";
    case PlanKind::kUnionAll:
      return "union_all";
  }
  return "unknown";
}

Result<TablePtr> ExecDispatch(const PlanPtr& plan, ExecContext& ctx) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return ExecScan(*plan, ctx);
    case PlanKind::kFilter:
      return ExecFilter(*plan, ctx);
    case PlanKind::kProject:
      return ExecProject(*plan, ctx);
    case PlanKind::kJoin:
      return ExecJoin(*plan, ctx);
    case PlanKind::kAggregate:
      return ExecAggregate(*plan, ctx);
    case PlanKind::kSort:
      return ExecSort(*plan, ctx);
    case PlanKind::kLimit:
      return ExecLimit(*plan, ctx);
    case PlanKind::kUnionAll:
      return ExecUnionAll(*plan, ctx);
  }
  return Status::Internal("unreachable plan kind");
}

Result<TablePtr> Exec(const PlanPtr& plan, ExecContext& ctx) {
  AQP_CHECK(plan != nullptr);
  // Operator-boundary cancellation point: deadline/user-cancel/memory trips
  // stop the plan between operators even when no parallel region runs.
  AQP_RETURN_IF_ERROR(CheckCancelled(ctx.options.cancel));
  if (ctx.trace == nullptr) {
    // Untraced path: one branch, no clock reads, no allocations.
    return ExecDispatch(plan, ctx);
  }
  obs::TraceSpan span = ctx.trace->Span(OperatorName(plan->kind()));
  if (plan->kind() == PlanKind::kScan) {
    span.AddAttr("table", plan->table_name());
    const SampleSpec& spec = plan->sample();
    if (spec.is_sampled()) {
      span.AddAttr("sample_method",
                   spec.method == SampleSpec::Method::kSystemBlock
                       ? "system-block"
                       : "bernoulli-row");
      span.AddAttr("sample_rate", spec.rate);
    }
  }
  // Parallel attribution: how many morsels/steals THIS operator (excluding
  // children, whose spans carry their own deltas) contributed.
  const ParallelRunStats* rs = ctx.run_stats();
  uint64_t morsels_before = rs != nullptr ? rs->morsels : 0;
  uint64_t steals_before = rs != nullptr ? rs->steals : 0;
  uint64_t extents_before = ctx.stats != nullptr ? ctx.stats->extents_total : 0;
  uint64_t pruned_before = ctx.stats != nullptr ? ctx.stats->extents_pruned : 0;
  Result<TablePtr> result = ExecDispatch(plan, ctx);
  if (result.ok()) {
    span.AddAttr("rows_out", uint64_t{result.value()->num_rows()});
  }
  if (rs != nullptr && rs->morsels > morsels_before) {
    span.AddAttr("parallel_morsels", rs->morsels - morsels_before);
    span.AddAttr("parallel_steals", rs->steals - steals_before);
  }
  if (ctx.stats != nullptr && ctx.stats->extents_total > extents_before) {
    span.AddAttr("extents_total", ctx.stats->extents_total - extents_before);
    span.AddAttr("extents_pruned", ctx.stats->extents_pruned - pruned_before);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Batch (vectorized) operator path. Scan and filter produce BatchViews —
// selection vectors over the untouched base table — instead of gathered
// tables; project over bare column references is a pure remap. Everything
// else runs the scalar operator body over a materialized input (ExecInput
// gathers exactly once at that boundary). Results are bit-identical to the
// scalar path: sampling draws the same per-morsel RNG streams, predicate
// masks are exact (so selection membership is independent of morsel
// boundaries and thread count), and gathers preserve row order.
// ---------------------------------------------------------------------------

Result<BatchView> ExecScanBatch(const PlanNode& node, ExecContext& ctx) {
  AQP_RETURN_IF_ERROR(gov::FaultInjector::Global().MaybeFail("engine.scan"));
  AQP_ASSIGN_OR_RETURN(TablePtr table, ScanBaseTable(node, ctx));
  const SampleSpec& spec = node.sample();
  if (!spec.is_sampled()) {
    if (ctx.stats != nullptr) {
      ctx.stats->rows_scanned += table->num_rows();
      ctx.stats->blocks_read += table->NumBlocks(spec.block_size);
    }
    return IdentityView(std::move(table));
  }
  const bool use_morsels = ctx.options.UseMorsels(table->num_rows());
  uint64_t blocks_read = 0;
  AQP_ASSIGN_OR_RETURN(
      std::vector<uint32_t> keep,
      DrawSampleKeep(*table, spec, use_morsels, ctx, &blocks_read));
  if (ctx.stats != nullptr) {
    ctx.stats->rows_scanned += keep.size();
    ctx.stats->blocks_read += blocks_read;
  }
  // No gather: the sample IS the selection vector.
  BatchView v = IdentityView(std::move(table));
  v.num_rows = keep.size();
  AQP_ASSIGN_OR_RETURN(v.sel, TrackSel(std::move(keep), ctx, "scan selection"));
  return v;
}

// Filters a view without materializing it: the predicate compiles against
// the BASE columns (addressed by the view's names), masks evaluate over
// contiguous base-row spans, and the incoming selection — when present — is
// intersected morsel by morsel. Morselizing BASE row ranges keeps the
// per-morsel work at O(span + selected-in-span) and, because masks are
// exact, makes the output selection independent of morsel boundaries and
// thread count.
Result<BatchView> ExecFilterBatch(const PlanNode& node, ExecContext& ctx) {
  if (UseFusedExtentFilter(node, ctx)) {
    // The fused path already gathered exactly the matching rows; the result
    // enters the batch pipeline as an identity view (same as any
    // table-valued operator's output).
    AQP_ASSIGN_OR_RETURN(TablePtr t,
                         ExecExtentFilterScan(node, *node.child(), ctx));
    return IdentityView(std::move(t));
  }
  AQP_ASSIGN_OR_RETURN(BatchView child, ExecBatch(node.child(), ctx));
  const Expr& pred_expr = *node.predicate();
  // Degenerate inputs (empty, constant predicate) run the scalar evaluator
  // over the materialized child — the same code the row path runs, so
  // results and errors match exactly.
  if (child.num_rows == 0 || pred_expr.ReferencedColumns().empty()) {
    AQP_ASSIGN_OR_RETURN(TablePtr input,
                         MaterializeView(child, ctx, "filter input"));
    AQP_ASSIGN_OR_RETURN(std::vector<uint32_t> selected,
                         EvalPredicate(pred_expr, *input));
    BatchView out = IdentityView(std::move(input));
    out.num_rows = selected.size();
    AQP_ASSIGN_OR_RETURN(
        out.sel, TrackSel(std::move(selected), ctx, "filter selection"));
    return out;
  }
  std::vector<const Column*> cols;
  cols.reserve(child.col_idx.size());
  for (size_t idx : child.col_idx) cols.push_back(&child.base->column(idx));
  AQP_ASSIGN_OR_RETURN(BatchPredicate pred,
                       BatchPredicate::Compile(pred_expr, child.names, cols));
  if (pred.HasFallback() && child.sel != nullptr) {
    // Scalar-fallback nodes evaluate every row of a span; over a selection
    // view that would touch non-selected base rows and could raise errors
    // (e.g. x % y with y = 0 on a filtered-out row) the row engine never
    // sees. Materialize first so the fallback evaluates exactly the
    // selected rows.
    AQP_ASSIGN_OR_RETURN(TablePtr input,
                         MaterializeView(child, ctx, "filter input"));
    child = IdentityView(std::move(input));
    cols.clear();
    for (size_t idx : child.col_idx) cols.push_back(&child.base->column(idx));
    AQP_ASSIGN_OR_RETURN(
        pred, BatchPredicate::Compile(pred_expr, child.names, cols));
  }
  const size_t base_n = child.base->num_rows();
  const std::vector<uint32_t>* in_sel = child.sel.get();
  size_t morsel_rows = ctx.options.morsel_rows;
  if (morsel_rows == 0) morsel_rows = base_n;
  const size_t num_threads = ctx.options.ResolvedThreads();
  // Same parallelize-or-not decision as the scalar filter: based on the
  // operator's logical input size, not the base span.
  const bool use_morsels = ctx.options.UseMorsels(child.num_rows);
  const size_t num_morsels = (base_n + morsel_rows - 1) / morsel_rows;
  // Charge lookup structures (dictionary pages, IN/LIKE bitmaps) plus mask
  // scratch for the evaluation's lifetime; a refused charge surfaces as
  // ResourceExhausted and trips the governor's degradation ladder exactly
  // like an operator-output charge.
  const uint64_t scratch =
      pred.ScratchBytesPerRow() *
      std::min<uint64_t>(base_n,
                         morsel_rows * std::max<size_t>(num_threads, 1));
  ScopedMemoryCharge charge;
  AQP_ASSIGN_OR_RETURN(
      charge, ScopedMemoryCharge::Make(ctx.options.memory,
                                       pred.AuxBytes() + scratch,
                                       "predicate batch buffers"));
  // Evaluates base rows [begin, end) and appends surviving selection
  // entries (ascending) to *dst.
  auto run_span = [&](size_t begin, size_t end, uint8_t* mask,
                      std::vector<uint32_t>* dst) -> Status {
    if (in_sel != nullptr) {
      auto lo = std::lower_bound(in_sel->begin(), in_sel->end(),
                                 static_cast<uint32_t>(begin));
      auto hi = std::lower_bound(lo, in_sel->end(),
                                 static_cast<uint32_t>(end));
      if (lo == hi) return Status::OK();  // No selected rows in this span.
      AQP_RETURN_IF_ERROR(pred.EvalSpan(begin, end - begin, mask));
      for (auto it = lo; it != hi; ++it) {
        if (mask[*it - begin] == simd::kMaskTrue) dst->push_back(*it);
      }
      return Status::OK();
    }
    AQP_RETURN_IF_ERROR(pred.EvalSpan(begin, end - begin, mask));
    simd::SelectTrue(mask, end - begin, static_cast<uint32_t>(begin), dst);
    return Status::OK();
  };
  std::vector<uint32_t> out_sel;
  if (!use_morsels || num_threads <= 1 || num_morsels <= 1) {
    std::vector<uint8_t> mask(std::min<size_t>(base_n, morsel_rows));
    for (size_t begin = 0; begin < base_n; begin += morsel_rows) {
      AQP_RETURN_IF_ERROR(CheckCancelled(ctx.options.cancel));
      const size_t end = std::min(base_n, begin + morsel_rows);
      AQP_RETURN_IF_ERROR(run_span(begin, end, mask.data(), &out_sel));
    }
  } else {
    std::vector<std::vector<uint32_t>> local(num_morsels);
    std::vector<Status> errors(num_morsels, Status::OK());
    ParallelRunStats rs = ThreadPool::Shared().ParallelFor(
        base_n, morsel_rows, num_threads, ctx.pf_options(),
        [&](size_t, size_t m, size_t begin, size_t end) {
          std::vector<uint8_t> mask(end - begin);
          errors[m] = run_span(begin, end, mask.data(), &local[m]);
        });
    AQP_RETURN_IF_ERROR(CheckCancelled(ctx.options.cancel));
    for (const Status& s : errors) {
      AQP_RETURN_IF_ERROR(s);
    }
    size_t total = 0;
    for (const std::vector<uint32_t>& v : local) total += v.size();
    out_sel.reserve(total);
    // Ordered merge: morsel index order IS base-row order.
    for (const std::vector<uint32_t>& v : local) {
      out_sel.insert(out_sel.end(), v.begin(), v.end());
    }
    if (ctx.run_stats() != nullptr) ctx.run_stats()->MergeFrom(rs);
  }
  BatchView out;
  out.base = child.base;
  out.col_idx = child.col_idx;
  out.names = child.names;
  out.num_rows = out_sel.size();
  AQP_ASSIGN_OR_RETURN(
      out.sel, TrackSel(std::move(out_sel), ctx, "filter selection"));
  return out;
}

// Project over bare column references is a zero-copy column remap; anything
// computed materializes the child and reuses the scalar projection.
Result<BatchView> ExecProjectBatch(const PlanNode& node, ExecContext& ctx) {
  AQP_ASSIGN_OR_RETURN(BatchView child, ExecBatch(node.child(), ctx));
  bool all_colrefs = true;
  for (const ExprPtr& e : node.exprs()) {
    if (e->kind() != ExprKind::kColumnRef) {
      all_colrefs = false;
      break;
    }
  }
  if (all_colrefs) {
    BatchView out;
    out.base = child.base;
    out.sel = child.sel;
    out.num_rows = child.num_rows;
    out.col_idx.reserve(node.exprs().size());
    out.names.reserve(node.exprs().size());
    for (size_t i = 0; i < node.exprs().size(); ++i) {
      const std::string& ref = node.exprs()[i]->column_name();
      // Same two-pass resolution as Schema::FieldIndex: exact match, then a
      // unique unqualified-vs-qualified suffix match.
      size_t found = child.names.size();
      for (size_t j = 0; j < child.names.size(); ++j) {
        if (child.names[j] == ref) {
          found = j;
          break;
        }
      }
      if (found == child.names.size() &&
          ref.find('.') == std::string::npos) {
        const std::string suffix = "." + ref;
        int matches = 0;
        for (size_t j = 0; j < child.names.size(); ++j) {
          const std::string& f = child.names[j];
          if (f.size() > suffix.size() &&
              f.compare(f.size() - suffix.size(), suffix.size(), suffix) ==
                  0) {
            found = j;
            ++matches;
          }
        }
        if (matches != 1) found = child.names.size();
      }
      if (found == child.names.size()) {
        return Status::InvalidArgument("unknown column: " + ref);
      }
      out.col_idx.push_back(child.col_idx[found]);
      out.names.push_back(node.names()[i]);
    }
    return out;
  }
  AQP_ASSIGN_OR_RETURN(TablePtr input,
                       MaterializeView(child, ctx, "project input"));
  const size_t num_exprs = node.exprs().size();
  Schema schema;
  std::vector<Column> columns;
  for (size_t i = 0; i < num_exprs; ++i) {
    AQP_ASSIGN_OR_RETURN(Column c, Eval(*node.exprs()[i], *input));
    schema.AddField({node.names()[i], c.type()});
    columns.push_back(std::move(c));
  }
  AQP_ASSIGN_OR_RETURN(Table out,
                       Table::Make(std::move(schema), std::move(columns)));
  AQP_ASSIGN_OR_RETURN(TablePtr tracked,
                       TrackTable(std::move(out), ctx, "project output"));
  return IdentityView(std::move(tracked));
}

Result<BatchView> ExecDispatchBatch(const PlanPtr& plan, ExecContext& ctx) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return ExecScanBatch(*plan, ctx);
    case PlanKind::kFilter:
      return ExecFilterBatch(*plan, ctx);
    case PlanKind::kProject:
      return ExecProjectBatch(*plan, ctx);
    default: {
      // Table-valued operators run their scalar bodies; their children
      // arrive through ExecInput, which stays on the batch path and
      // gathers at this boundary.
      AQP_ASSIGN_OR_RETURN(TablePtr t, ExecDispatch(plan, ctx));
      return IdentityView(std::move(t));
    }
  }
}

// Batch twin of Exec: same cancellation point, same trace spans with the
// same attribute set (rows_out counts view rows, so traces are comparable
// across paths).
Result<BatchView> ExecBatch(const PlanPtr& plan, ExecContext& ctx) {
  AQP_CHECK(plan != nullptr);
  AQP_RETURN_IF_ERROR(CheckCancelled(ctx.options.cancel));
  if (ctx.trace == nullptr) {
    return ExecDispatchBatch(plan, ctx);
  }
  obs::TraceSpan span = ctx.trace->Span(OperatorName(plan->kind()));
  if (plan->kind() == PlanKind::kScan) {
    span.AddAttr("table", plan->table_name());
    const SampleSpec& spec = plan->sample();
    if (spec.is_sampled()) {
      span.AddAttr("sample_method",
                   spec.method == SampleSpec::Method::kSystemBlock
                       ? "system-block"
                       : "bernoulli-row");
      span.AddAttr("sample_rate", spec.rate);
    }
  }
  const ParallelRunStats* rs = ctx.run_stats();
  uint64_t morsels_before = rs != nullptr ? rs->morsels : 0;
  uint64_t steals_before = rs != nullptr ? rs->steals : 0;
  uint64_t extents_before = ctx.stats != nullptr ? ctx.stats->extents_total : 0;
  uint64_t pruned_before = ctx.stats != nullptr ? ctx.stats->extents_pruned : 0;
  Result<BatchView> result = ExecDispatchBatch(plan, ctx);
  if (result.ok()) {
    span.AddAttr("rows_out", uint64_t{result.value().num_rows});
  }
  if (rs != nullptr && rs->morsels > morsels_before) {
    span.AddAttr("parallel_morsels", rs->morsels - morsels_before);
    span.AddAttr("parallel_steals", rs->steals - steals_before);
  }
  if (ctx.stats != nullptr && ctx.stats->extents_total > extents_before) {
    span.AddAttr("extents_total", ctx.stats->extents_total - extents_before);
    span.AddAttr("extents_pruned", ctx.stats->extents_pruned - pruned_before);
  }
  return result;
}

}  // namespace

Result<Table> Execute(const PlanPtr& plan, const Catalog& catalog,
                      ExecStats* stats, obs::QueryTrace* trace,
                      const ExecOptions& options) {
  const bool instrumented = obs::Enabled();
  ExecStats local;
  // Metrics need the deltas even when the caller didn't ask for stats.
  ExecStats* effective = stats != nullptr ? stats : &local;
  ExecStats before = instrumented ? *effective : ExecStats{};
  ExecContext ctx{catalog, instrumented ? effective : stats, trace, options};
  TablePtr result;
  if (options.ResolvedPath() == ExecPath::kVectorized) {
    // Vectorized root: run the plan as batch views, gather once at the top.
    // The gather is the deferred row movement of the whole pipeline, so it
    // gets its own span with the morsel attribution the scalar path records
    // at its per-operator gathers.
    AQP_ASSIGN_OR_RETURN(BatchView view, ExecBatch(plan, ctx));
    if (trace == nullptr) {
      AQP_ASSIGN_OR_RETURN(result,
                           MaterializeView(view, ctx, "result materialize"));
    } else {
      obs::TraceSpan span = trace->Span("materialize");
      const ParallelRunStats* rs = ctx.run_stats();
      uint64_t morsels_before = rs != nullptr ? rs->morsels : 0;
      uint64_t steals_before = rs != nullptr ? rs->steals : 0;
      AQP_ASSIGN_OR_RETURN(result,
                           MaterializeView(view, ctx, "result materialize"));
      span.AddAttr("rows_out", uint64_t{result->num_rows()});
      if (rs != nullptr && rs->morsels > morsels_before) {
        span.AddAttr("parallel_morsels", rs->morsels - morsels_before);
        span.AddAttr("parallel_steals", rs->steals - steals_before);
      }
    }
  } else {
    AQP_ASSIGN_OR_RETURN(result, Exec(plan, ctx));
  }
  if (instrumented) {
    // Handles cached across calls: one registry lock each, first call only.
    static obs::Counter* plans = obs::MetricsRegistry::Global().GetCounter(
        "aqp_engine_plans_executed_total");
    static obs::Counter* rows = obs::MetricsRegistry::Global().GetCounter(
        "aqp_engine_rows_scanned_total");
    static obs::Counter* blocks = obs::MetricsRegistry::Global().GetCounter(
        "aqp_engine_blocks_read_total");
    static obs::Counter* joined = obs::MetricsRegistry::Global().GetCounter(
        "aqp_engine_rows_joined_total");
    static obs::Counter* morsels = obs::MetricsRegistry::Global().GetCounter(
        "aqp_engine_parallel_morsels_total");
    static obs::Counter* steals = obs::MetricsRegistry::Global().GetCounter(
        "aqp_engine_parallel_steals_total");
    static obs::Counter* extents = obs::MetricsRegistry::Global().GetCounter(
        "aqp_engine_extents_scanned_total");
    static obs::Counter* pruned = obs::MetricsRegistry::Global().GetCounter(
        "aqp_engine_extents_pruned_total");
    plans->Increment();
    rows->Increment(effective->rows_scanned - before.rows_scanned);
    blocks->Increment(effective->blocks_read - before.blocks_read);
    joined->Increment(effective->rows_joined - before.rows_joined);
    morsels->Increment(effective->parallel.morsels - before.parallel.morsels);
    steals->Increment(effective->parallel.steals - before.parallel.steals);
    extents->Increment(effective->extents_total - before.extents_total);
    pruned->Increment(effective->extents_pruned - before.extents_pruned);
  }
  return *result;
}

}  // namespace aqp
