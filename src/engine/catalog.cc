#include "engine/catalog.h"

#include <algorithm>

namespace aqp {

Status Catalog::Register(const std::string& name,
                         std::shared_ptr<const Table> table) {
  if (Contains(name)) {
    return Status::AlreadyExists("table already registered: " + name);
  }
  tables_[name] = std::move(table);
  ++versions_[name];
  return Status::OK();
}

void Catalog::RegisterOrReplace(const std::string& name,
                                std::shared_ptr<const Table> table) {
  extent_tables_.erase(name);
  tables_[name] = std::move(table);
  ++versions_[name];
}

void Catalog::RegisterExtentBacked(
    const std::string& name,
    std::shared_ptr<const extent::ExtentReader> reader) {
  tables_.erase(name);
  extent_tables_[name] = std::move(reader);
  ++versions_[name];
}

Result<std::shared_ptr<const extent::ExtentReader>> Catalog::GetExtentReader(
    const std::string& name) const {
  auto it = extent_tables_.find(name);
  if (it == extent_tables_.end()) {
    return Status::NotFound("no extent-backed table named " + name);
  }
  return it->second;
}

Result<std::shared_ptr<const Table>> Catalog::Get(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    if (extent_tables_.count(name) > 0) {
      return Status::FailedPrecondition(
          "table " + name +
          " is extent-backed; scan it through the engine instead of Get()");
    }
    return Status::NotFound("no table named " + name);
  }
  return it->second;
}

Status Catalog::Drop(const std::string& name) {
  if (tables_.erase(name) == 0 && extent_tables_.erase(name) == 0) {
    return Status::NotFound("no table named " + name);
  }
  ++versions_[name];
  return Status::OK();
}

Result<uint64_t> Catalog::Version(const std::string& name) const {
  if (!Contains(name)) {
    return Status::NotFound("no table named " + name);
  }
  auto it = versions_.find(name);
  return it == versions_.end() ? uint64_t{0} : it->second;
}

Result<uint64_t> Catalog::Cardinality(const std::string& name) const {
  auto it = extent_tables_.find(name);
  if (it != extent_tables_.end()) return it->second->num_rows();
  AQP_ASSIGN_OR_RETURN(std::shared_ptr<const Table> t, Get(name));
  return static_cast<uint64_t>(t->num_rows());
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size() + extent_tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  for (const auto& [name, _] : extent_tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace aqp
