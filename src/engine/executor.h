#ifndef AQP_ENGINE_EXECUTOR_H_
#define AQP_ENGINE_EXECUTOR_H_

#include <cstdint>

#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/catalog.h"
#include "engine/exec_options.h"
#include "engine/plan.h"
#include "obs/trace.h"

namespace aqp {

/// Execution statistics accumulated per query, used by cost analysis and the
/// latency benchmarks (a stand-in for a DBMS's "rows scanned" counters).
struct ExecStats {
  uint64_t rows_scanned = 0;   // Rows materialized out of scans (post-sample).
  uint64_t blocks_read = 0;    // Blocks touched by scans (block sampling
                               // skips blocks; row sampling reads all).
  uint64_t rows_joined = 0;    // Join output rows.
  uint64_t extents_total = 0;  // Extents considered by extent-backed scans.
  uint64_t extents_pruned = 0; // Extents skipped via zone maps (never read).
  ParallelRunStats parallel;   // Morsel/steal/per-worker counters summed over
                               // every parallel region of the query.
};

/// Executes a plan against the catalog, materializing every operator.
/// `stats`, when non-null, is incremented (not reset) by this execution.
/// `trace`, when non-null, receives one nested span per operator with
/// output row counts (and per-scan sampling decisions) — the engine half of
/// EXPLAIN ANALYZE. A null trace costs a single predictable branch per
/// operator, keeping instrumentation off the hot path.
/// `options` controls morsel-driven parallelism (see ExecOptions for the
/// determinism contract: results never depend on the thread count).
Result<Table> Execute(const PlanPtr& plan, const Catalog& catalog,
                      ExecStats* stats = nullptr,
                      obs::QueryTrace* trace = nullptr,
                      const ExecOptions& options = {});

}  // namespace aqp

#endif  // AQP_ENGINE_EXECUTOR_H_
