#ifndef AQP_ENGINE_CATALOG_H_
#define AQP_ENGINE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/extent/extent_reader.h"
#include "storage/table.h"

namespace aqp {

/// Name -> table registry, the executor's source of scan inputs. Tables are
/// held by shared_ptr so samples and synopses can alias base data cheaply.
///
/// A table can alternatively be registered EXTENT-BACKED: instead of an
/// in-memory Table, the name binds to an open extent file
/// (docs/STORAGE.md), and scans stream morsels from disk with zone-map
/// pruning (engine/extent_scan.h). Extent-backed names share the namespace,
/// version counter, and Cardinality with in-memory tables, so synopsis and
/// result caches key them identically; only Get() differs — it refuses to
/// materialize the file behind the caller's back.
class Catalog {
 public:
  /// Registers a table under `name`; fails if the name is taken.
  Status Register(const std::string& name, std::shared_ptr<const Table> table);

  /// Registers or replaces.
  void RegisterOrReplace(const std::string& name,
                         std::shared_ptr<const Table> table);

  /// Registers `name` as extent-backed (replacing any previous binding,
  /// in-memory or extent-backed; bumps the version either way).
  void RegisterExtentBacked(
      const std::string& name,
      std::shared_ptr<const extent::ExtentReader> reader);

  /// True iff `name` is currently bound to an extent file.
  bool IsExtentBacked(const std::string& name) const {
    return extent_tables_.count(name) > 0;
  }

  /// The extent reader behind an extent-backed name; NotFound otherwise.
  Result<std::shared_ptr<const extent::ExtentReader>> GetExtentReader(
      const std::string& name) const;

  /// Looks up an in-memory table; NotFound if missing. FailedPrecondition
  /// for extent-backed names: whole-file materialization must be an explicit
  /// engine decision (a governed, charged scan), never a silent side effect
  /// of a registry lookup.
  Result<std::shared_ptr<const Table>> Get(const std::string& name) const;

  /// Removes a table (either kind); NotFound if missing.
  Status Drop(const std::string& name);

  bool Contains(const std::string& name) const {
    return tables_.count(name) > 0 || extent_tables_.count(name) > 0;
  }

  /// Estimated (here: exact) cardinality of a table — the statistic a cost
  /// model would read from the DBMS catalog.
  Result<uint64_t> Cardinality(const std::string& name) const;

  /// Monotone data version of `name`: 1 on first Register, bumped by every
  /// RegisterOrReplace and Drop. Versions survive Drop, so a re-registered
  /// name never repeats an old version — which is what lets cross-query
  /// caches key synopses and results on (table, version) and have every
  /// staleness question answered by an equality check. NotFound when the
  /// table is not currently registered.
  Result<uint64_t> Version(const std::string& name) const;

  /// Registered table names, sorted.
  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<const Table>> tables_;
  /// Extent-backed bindings; disjoint from tables_ by construction.
  std::unordered_map<std::string, std::shared_ptr<const extent::ExtentReader>>
      extent_tables_;
  /// Version per name ever registered (persists across Drop).
  std::unordered_map<std::string, uint64_t> versions_;
};

}  // namespace aqp

#endif  // AQP_ENGINE_CATALOG_H_
