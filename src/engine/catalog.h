#ifndef AQP_ENGINE_CATALOG_H_
#define AQP_ENGINE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace aqp {

/// Name -> table registry, the executor's source of scan inputs. Tables are
/// held by shared_ptr so samples and synopses can alias base data cheaply.
class Catalog {
 public:
  /// Registers a table under `name`; fails if the name is taken.
  Status Register(const std::string& name, std::shared_ptr<const Table> table);

  /// Registers or replaces.
  void RegisterOrReplace(const std::string& name,
                         std::shared_ptr<const Table> table);

  /// Looks up a table; NotFound if missing.
  Result<std::shared_ptr<const Table>> Get(const std::string& name) const;

  /// Removes a table; NotFound if missing.
  Status Drop(const std::string& name);

  bool Contains(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Estimated (here: exact) cardinality of a table — the statistic a cost
  /// model would read from the DBMS catalog.
  Result<uint64_t> Cardinality(const std::string& name) const;

  /// Monotone data version of `name`: 1 on first Register, bumped by every
  /// RegisterOrReplace and Drop. Versions survive Drop, so a re-registered
  /// name never repeats an old version — which is what lets cross-query
  /// caches key synopses and results on (table, version) and have every
  /// staleness question answered by an equality check. NotFound when the
  /// table is not currently registered.
  Result<uint64_t> Version(const std::string& name) const;

  /// Registered table names, sorted.
  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::shared_ptr<const Table>> tables_;
  /// Version per name ever registered (persists across Drop).
  std::unordered_map<std::string, uint64_t> versions_;
};

}  // namespace aqp

#endif  // AQP_ENGINE_CATALOG_H_
