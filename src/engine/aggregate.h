#ifndef AQP_ENGINE_AGGREGATE_H_
#define AQP_ENGINE_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace aqp {

/// Aggregate function kinds.
enum class AggKind {
  kCountStar,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kVar,     // Unbiased sample variance.
  kStddev,  // Sample standard deviation.
  kCountDistinct,
};

/// Printable name ("SUM", "COUNT", ...).
std::string_view AggKindName(AggKind kind);

/// True for aggregates that are linear in the data (SUM/COUNT/AVG) and hence
/// admit unbiased sampling-based estimation — the class the AQP literature
/// can guarantee. MIN/MAX/COUNT DISTINCT are non-linear: sampling cannot
/// bound their error, which is exactly the paper's "no silver bullet" case
/// where sketches take over.
bool IsLinearAgg(AggKind kind);

/// One aggregate to compute: kind, argument expression (null for COUNT(*)),
/// and output column alias.
struct AggSpec {
  AggKind kind;
  ExprPtr arg;  // nullptr iff kind == kCountStar.
  std::string alias;
};

/// Result type of an aggregate over an argument of type `arg_type`.
Result<DataType> AggResultType(AggKind kind, DataType arg_type);

/// Row -> group assignment produced by hashing the group-key expressions.
/// Group ids are dense in [0, num_groups); `key_columns` hold each group's
/// key values indexed by group id.
struct GroupIndex {
  std::vector<uint32_t> group_ids;   // Size = input rows.
  std::vector<Column> key_columns;   // One per group expression.
  size_t num_groups = 0;
};

/// Builds the group index for `group_exprs` over `input`. With no group
/// expressions, every row lands in the single group 0 (even for an empty
/// input, num_groups == 1 so global aggregates emit one row).
Result<GroupIndex> BuildGroupIndex(const Table& input,
                                   const std::vector<ExprPtr>& group_exprs);

/// Optional per-row weights for Horvitz–Thompson style estimation: COUNT
/// becomes sum of weights, SUM becomes sum of w*x, AVG the weighted mean.
/// MIN/MAX/COUNT DISTINCT/VAR ignore weights (they are not linearly
/// estimable). Weight vector length must equal input rows.
struct AggregateOptions {
  const std::vector<double>* weights = nullptr;
};

/// Hash group-by aggregation: one output row per group, key columns first
/// (named `group_names`), aggregate columns after (named by alias).
/// NULL aggregate arguments are skipped per SQL semantics.
Result<Table> GroupByAggregate(const Table& input,
                               const std::vector<ExprPtr>& group_exprs,
                               const std::vector<std::string>& group_names,
                               const std::vector<AggSpec>& aggs,
                               const AggregateOptions& options = {});

}  // namespace aqp

#endif  // AQP_ENGINE_AGGREGATE_H_
