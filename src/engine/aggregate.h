#ifndef AQP_ENGINE_AGGREGATE_H_
#define AQP_ENGINE_AGGREGATE_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/exec_options.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace aqp {

/// Aggregate function kinds.
enum class AggKind {
  kCountStar,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kVar,     // Unbiased sample variance.
  kStddev,  // Sample standard deviation.
  kCountDistinct,
};

/// Printable name ("SUM", "COUNT", ...).
std::string_view AggKindName(AggKind kind);

/// True for aggregates that are linear in the data (SUM/COUNT/AVG) and hence
/// admit unbiased sampling-based estimation — the class the AQP literature
/// can guarantee. MIN/MAX/COUNT DISTINCT are non-linear: sampling cannot
/// bound their error, which is exactly the paper's "no silver bullet" case
/// where sketches take over.
bool IsLinearAgg(AggKind kind);

/// One aggregate to compute: kind, argument expression (null for COUNT(*)),
/// and output column alias.
struct AggSpec {
  AggKind kind;
  ExprPtr arg;  // nullptr iff kind == kCountStar.
  std::string alias;
};

/// Result type of an aggregate over an argument of type `arg_type`.
Result<DataType> AggResultType(AggKind kind, DataType arg_type);

/// Row -> group assignment produced by hashing the group-key expressions.
/// Group ids are dense in [0, num_groups); `key_columns` hold each group's
/// key values indexed by group id.
struct GroupIndex {
  std::vector<uint32_t> group_ids;   // Size = input rows.
  std::vector<Column> key_columns;   // One per group expression.
  size_t num_groups = 0;
};

/// Builds the group index for `group_exprs` over `input`. With no group
/// expressions, every row lands in the single group 0 (even for an empty
/// input, num_groups == 1 so global aggregates emit one row).
Result<GroupIndex> BuildGroupIndex(const Table& input,
                                   const std::vector<ExprPtr>& group_exprs);

/// Running state of one aggregate for one group. A worker-local partial:
/// morsel workers each fold their rows into private accumulators (no locks,
/// no sharing), and the coordinator folds the partials together with
/// Merge() in morsel order — the merge-safe half of the morsel-parallel
/// aggregation design.
struct AggAccumulator {
  double weighted_sum = 0.0;  // sum of w * x
  double weight_total = 0.0;  // sum of w over non-null args (or all rows).
  uint64_t count = 0;         // raw (unweighted) non-null count.
  double mean = 0.0;          // Welford (unweighted), for VAR/STDDEV.
  double m2 = 0.0;
  bool has_value = false;
  Value min_v;
  Value max_v;
  std::unordered_set<uint64_t> distinct;  // Hashes for COUNT DISTINCT.

  /// Folds `other` into this accumulator. Valid for every AggKind: the sum
  /// fields add, MIN/MAX compare, the distinct sets union, and the variance
  /// state combines with the Chan et al. parallel-Welford formula. The
  /// merge is deterministic, so folding morsel partials in morsel order
  /// yields the same result for every thread count.
  void Merge(const AggAccumulator& other);
};

/// Optional per-row weights for Horvitz–Thompson style estimation: COUNT
/// becomes sum of weights, SUM becomes sum of w*x, AVG the weighted mean.
/// MIN/MAX/COUNT DISTINCT/VAR ignore weights (they are not linearly
/// estimable). Weight vector length must equal input rows.
struct AggregateOptions {
  const std::vector<double>* weights = nullptr;

  /// When non-null and the input clears exec->parallel_min_rows, aggregation
  /// runs morsel-parallel: group-key and argument expressions are evaluated
  /// once, every morsel builds its own local group table and AggAccumulator
  /// partials, and partials merge in morsel order (group ids come out in
  /// first-appearance row order, exactly like the serial path). Null keeps
  /// the classic single-pass streaming path.
  const ExecOptions* exec = nullptr;

  /// When non-null, morsel/steal/per-worker counts of the parallel run are
  /// accumulated here (untouched on the serial path).
  ParallelRunStats* run_stats = nullptr;
};

/// Hash group-by aggregation: one output row per group, key columns first
/// (named `group_names`), aggregate columns after (named by alias).
/// NULL aggregate arguments are skipped per SQL semantics.
Result<Table> GroupByAggregate(const Table& input,
                               const std::vector<ExprPtr>& group_exprs,
                               const std::vector<std::string>& group_names,
                               const std::vector<AggSpec>& aggs,
                               const AggregateOptions& options = {});

}  // namespace aqp

#endif  // AQP_ENGINE_AGGREGATE_H_
