#include "engine/plan.h"

#include "common/check.h"
#include "common/str_util.h"

namespace aqp {

PlanPtr PlanNode::Scan(std::string table_name, SampleSpec sample) {
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kScan;
  n->table_name_ = std::move(table_name);
  n->sample_ = sample;
  return n;
}

PlanPtr PlanNode::Filter(PlanPtr input, ExprPtr predicate) {
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kFilter;
  n->children_ = {std::move(input)};
  n->predicate_ = std::move(predicate);
  return n;
}

PlanPtr PlanNode::Project(PlanPtr input, std::vector<ExprPtr> exprs,
                          std::vector<std::string> names) {
  AQP_CHECK(exprs.size() == names.size());
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kProject;
  n->children_ = {std::move(input)};
  n->exprs_ = std::move(exprs);
  n->names_ = std::move(names);
  return n;
}

PlanPtr PlanNode::Join(PlanPtr left, PlanPtr right, JoinType type,
                       std::vector<std::string> left_keys,
                       std::vector<std::string> right_keys) {
  AQP_CHECK(left_keys.size() == right_keys.size());
  AQP_CHECK(!left_keys.empty());
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kJoin;
  n->children_ = {std::move(left), std::move(right)};
  n->join_type_ = type;
  n->left_keys_ = std::move(left_keys);
  n->right_keys_ = std::move(right_keys);
  return n;
}

PlanPtr PlanNode::Aggregate(PlanPtr input, std::vector<ExprPtr> group_exprs,
                            std::vector<std::string> group_names,
                            std::vector<AggSpec> aggs) {
  AQP_CHECK(group_exprs.size() == group_names.size());
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kAggregate;
  n->children_ = {std::move(input)};
  n->exprs_ = std::move(group_exprs);
  n->names_ = std::move(group_names);
  n->aggs_ = std::move(aggs);
  return n;
}

PlanPtr PlanNode::Sort(PlanPtr input, std::vector<SortKey> keys) {
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kSort;
  n->children_ = {std::move(input)};
  n->sort_keys_ = std::move(keys);
  return n;
}

PlanPtr PlanNode::Limit(PlanPtr input, uint64_t limit) {
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kLimit;
  n->children_ = {std::move(input)};
  n->limit_ = limit;
  return n;
}

PlanPtr PlanNode::UnionAll(std::vector<PlanPtr> inputs) {
  AQP_CHECK(!inputs.empty());
  auto n = std::shared_ptr<PlanNode>(new PlanNode());
  n->kind_ = PlanKind::kUnionAll;
  n->children_ = std::move(inputs);
  return n;
}

void PlanNode::Render(int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  switch (kind_) {
    case PlanKind::kScan:
      *out += "Scan(" + table_name_;
      if (sample_.is_sampled()) {
        *out += sample_.method == SampleSpec::Method::kBernoulliRow
                    ? " SAMPLE BERNOULLI "
                    : " SAMPLE SYSTEM ";
        *out += FormatDouble(sample_.rate * 100.0) + "%";
      }
      *out += ")";
      break;
    case PlanKind::kFilter:
      *out += "Filter(" + predicate_->ToString() + ")";
      break;
    case PlanKind::kProject: {
      *out += "Project(";
      for (size_t i = 0; i < exprs_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += exprs_[i]->ToString() + " AS " + names_[i];
      }
      *out += ")";
      break;
    }
    case PlanKind::kJoin: {
      *out += join_type_ == JoinType::kInner ? "InnerJoin(" : "LeftJoin(";
      for (size_t i = 0; i < left_keys_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += left_keys_[i] + " = " + right_keys_[i];
      }
      *out += ")";
      break;
    }
    case PlanKind::kAggregate: {
      *out += "Aggregate(";
      for (size_t i = 0; i < exprs_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += names_[i];
      }
      if (!exprs_.empty() && !aggs_.empty()) *out += "; ";
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += std::string(AggKindName(aggs_[i].kind));
        if (aggs_[i].arg != nullptr) {
          *out += "(" + aggs_[i].arg->ToString() + ")";
        }
        *out += " AS " + aggs_[i].alias;
      }
      *out += ")";
      break;
    }
    case PlanKind::kSort: {
      *out += "Sort(";
      for (size_t i = 0; i < sort_keys_.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += sort_keys_[i].column;
        *out += sort_keys_[i].ascending ? " ASC" : " DESC";
      }
      *out += ")";
      break;
    }
    case PlanKind::kLimit:
      *out += "Limit(" + std::to_string(limit_) + ")";
      break;
    case PlanKind::kUnionAll:
      *out += "UnionAll";
      break;
  }
  *out += "\n";
  for (const PlanPtr& c : children_) c->Render(indent + 1, out);
}

std::string PlanNode::ToString() const {
  std::string out;
  Render(0, &out);
  return out;
}

}  // namespace aqp
