#include "engine/aggregate.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/hash.h"
#include "expr/eval.h"

namespace aqp {

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "COUNT(*)";
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kVar:
      return "VAR";
    case AggKind::kStddev:
      return "STDDEV";
    case AggKind::kCountDistinct:
      return "COUNT DISTINCT";
  }
  return "?";
}

bool IsLinearAgg(AggKind kind) {
  return kind == AggKind::kCountStar || kind == AggKind::kCount ||
         kind == AggKind::kSum || kind == AggKind::kAvg;
}

Result<DataType> AggResultType(AggKind kind, DataType arg_type) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
    case AggKind::kCountDistinct:
      return DataType::kInt64;
    case AggKind::kSum:
    case AggKind::kAvg:
    case AggKind::kVar:
    case AggKind::kStddev:
      if (!IsNumeric(arg_type)) {
        return Status::InvalidArgument(
            std::string(AggKindName(kind)) + " requires a numeric argument");
      }
      return DataType::kDouble;
    case AggKind::kMin:
    case AggKind::kMax:
      return arg_type;
  }
  return Status::Internal("unreachable agg kind");
}

Result<GroupIndex> BuildGroupIndex(const Table& input,
                                   const std::vector<ExprPtr>& group_exprs) {
  GroupIndex index;
  const size_t n = input.num_rows();
  index.group_ids.resize(n);
  if (group_exprs.empty()) {
    // Single global group, present even for empty input.
    index.num_groups = 1;
    return index;
  }
  std::vector<Column> keys;
  keys.reserve(group_exprs.size());
  for (const ExprPtr& e : group_exprs) {
    AQP_ASSIGN_OR_RETURN(Column c, Eval(*e, input));
    keys.push_back(std::move(c));
  }
  for (const Column& k : keys) {
    index.key_columns.emplace_back(k.type());
  }
  // Hash -> candidate group ids (chained for collision safety).
  std::unordered_map<uint64_t, std::vector<uint32_t>> table;
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const Column& k : keys) h = HashCombine(h, k.HashAt(i));
    std::vector<uint32_t>& bucket = table[h];
    uint32_t gid = UINT32_MAX;
    for (uint32_t cand : bucket) {
      bool equal = true;
      for (size_t c = 0; c < keys.size(); ++c) {
        if (!keys[c].SlotEquals(i, index.key_columns[c], cand)) {
          equal = false;
          break;
        }
      }
      if (equal) {
        gid = cand;
        break;
      }
    }
    if (gid == UINT32_MAX) {
      gid = static_cast<uint32_t>(index.num_groups++);
      for (size_t c = 0; c < keys.size(); ++c) {
        index.key_columns[c].AppendFrom(keys[c], i);
      }
      bucket.push_back(gid);
    }
    index.group_ids[i] = gid;
  }
  return index;
}

namespace {

// Per-group running state for one aggregate.
struct AggState {
  double weighted_sum = 0.0;   // sum of w * x
  double weight_total = 0.0;   // sum of w over non-null args (or all rows).
  uint64_t count = 0;          // raw (unweighted) non-null count.
  double mean = 0.0;           // Welford (unweighted).
  double m2 = 0.0;
  bool has_value = false;
  Value min_v;
  Value max_v;
  std::unordered_set<uint64_t> distinct;  // Hashes for COUNT DISTINCT.
};

// Compares boxed values of the same (or numeric-compatible) type.
int CompareValues(const Value& a, const Value& b) {
  if (IsNumeric(a.type()) && IsNumeric(b.type())) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  AQP_CHECK(a.type() == b.type());
  switch (a.type()) {
    case DataType::kString:
      return a.str().compare(b.str()) < 0 ? -1 : (a.str() == b.str() ? 0 : 1);
    case DataType::kBool:
      return (a.boolean() ? 1 : 0) - (b.boolean() ? 1 : 0);
    default:
      AQP_CHECK(false);
      return 0;
  }
}

}  // namespace

Result<Table> GroupByAggregate(const Table& input,
                               const std::vector<ExprPtr>& group_exprs,
                               const std::vector<std::string>& group_names,
                               const std::vector<AggSpec>& aggs,
                               const AggregateOptions& options) {
  if (group_names.size() != group_exprs.size()) {
    return Status::InvalidArgument("group name/expr arity mismatch");
  }
  const size_t n = input.num_rows();
  if (options.weights != nullptr && options.weights->size() != n) {
    return Status::InvalidArgument("weight vector length mismatch");
  }
  AQP_ASSIGN_OR_RETURN(GroupIndex index, BuildGroupIndex(input, group_exprs));

  // Evaluate aggregate arguments once, vectorized.
  std::vector<Column> arg_columns;
  std::vector<DataType> out_types;
  arg_columns.reserve(aggs.size());
  for (const AggSpec& spec : aggs) {
    if (spec.kind == AggKind::kCountStar) {
      arg_columns.emplace_back(DataType::kInt64);  // Placeholder, unused.
      out_types.push_back(DataType::kInt64);
      continue;
    }
    if (spec.arg == nullptr) {
      return Status::InvalidArgument("aggregate missing argument: " +
                                     spec.alias);
    }
    AQP_ASSIGN_OR_RETURN(Column c, Eval(*spec.arg, input));
    AQP_ASSIGN_OR_RETURN(DataType t, AggResultType(spec.kind, c.type()));
    out_types.push_back(t);
    arg_columns.push_back(std::move(c));
  }

  // Accumulate.
  std::vector<std::vector<AggState>> states(
      aggs.size(), std::vector<AggState>(index.num_groups));
  for (size_t i = 0; i < n; ++i) {
    uint32_t g = index.group_ids[i];
    double w = options.weights ? (*options.weights)[i] : 1.0;
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& st = states[a][g];
      const AggSpec& spec = aggs[a];
      if (spec.kind == AggKind::kCountStar) {
        st.weight_total += w;
        ++st.count;
        continue;
      }
      const Column& arg = arg_columns[a];
      if (arg.IsNull(i)) continue;
      switch (spec.kind) {
        case AggKind::kCount:
          st.weight_total += w;
          ++st.count;
          break;
        case AggKind::kSum:
        case AggKind::kAvg: {
          double x = arg.NumericAt(i);
          st.weighted_sum += w * x;
          st.weight_total += w;
          ++st.count;
          break;
        }
        case AggKind::kVar:
        case AggKind::kStddev: {
          double x = arg.NumericAt(i);
          ++st.count;
          double delta = x - st.mean;
          st.mean += delta / static_cast<double>(st.count);
          st.m2 += delta * (x - st.mean);
          break;
        }
        case AggKind::kMin:
        case AggKind::kMax: {
          Value v = arg.GetValue(i);
          if (!st.has_value) {
            st.min_v = v;
            st.max_v = v;
            st.has_value = true;
          } else {
            if (CompareValues(v, st.min_v) < 0) st.min_v = v;
            if (CompareValues(v, st.max_v) > 0) st.max_v = std::move(v);
          }
          break;
        }
        case AggKind::kCountDistinct:
          st.distinct.insert(arg.HashAt(i, /*seed=*/17));
          break;
        case AggKind::kCountStar:
          break;  // Handled above.
      }
    }
  }

  // Materialize output table: group keys then aggregates.
  Schema out_schema;
  std::vector<Column> out_columns;
  for (size_t c = 0; c < group_exprs.size(); ++c) {
    out_schema.AddField({group_names[c], index.key_columns[c].type()});
    out_columns.push_back(index.key_columns[c]);
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    out_schema.AddField({aggs[a].alias, out_types[a]});
    Column col(out_types[a]);
    col.Reserve(index.num_groups);
    for (size_t g = 0; g < index.num_groups; ++g) {
      const AggState& st = states[a][g];
      switch (aggs[a].kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          // With weights this is the Horvitz–Thompson count estimate;
          // unweighted it is the exact count. Rounded to nearest integer.
          col.AppendInt64(static_cast<int64_t>(std::llround(st.weight_total)));
          break;
        case AggKind::kSum:
          if (st.count == 0) {
            col.AppendNull();
          } else {
            col.AppendDouble(st.weighted_sum);
          }
          break;
        case AggKind::kAvg:
          if (st.weight_total == 0.0) {
            col.AppendNull();
          } else {
            col.AppendDouble(st.weighted_sum / st.weight_total);
          }
          break;
        case AggKind::kVar:
          if (st.count < 2) {
            col.AppendNull();
          } else {
            col.AppendDouble(st.m2 / static_cast<double>(st.count - 1));
          }
          break;
        case AggKind::kStddev:
          if (st.count < 2) {
            col.AppendNull();
          } else {
            col.AppendDouble(
                std::sqrt(st.m2 / static_cast<double>(st.count - 1)));
          }
          break;
        case AggKind::kMin:
          if (!st.has_value) {
            col.AppendNull();
          } else {
            AQP_RETURN_IF_ERROR(col.AppendValue(st.min_v));
          }
          break;
        case AggKind::kMax:
          if (!st.has_value) {
            col.AppendNull();
          } else {
            AQP_RETURN_IF_ERROR(col.AppendValue(st.max_v));
          }
          break;
        case AggKind::kCountDistinct:
          col.AppendInt64(static_cast<int64_t>(st.distinct.size()));
          break;
      }
    }
    out_columns.push_back(std::move(col));
  }
  return Table::Make(std::move(out_schema), std::move(out_columns));
}

}  // namespace aqp
