#include "engine/aggregate.h"

#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/cancellation.h"
#include "common/check.h"
#include "common/hash.h"
#include "expr/eval.h"

namespace aqp {

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "COUNT(*)";
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kVar:
      return "VAR";
    case AggKind::kStddev:
      return "STDDEV";
    case AggKind::kCountDistinct:
      return "COUNT DISTINCT";
  }
  return "?";
}

bool IsLinearAgg(AggKind kind) {
  return kind == AggKind::kCountStar || kind == AggKind::kCount ||
         kind == AggKind::kSum || kind == AggKind::kAvg;
}

Result<DataType> AggResultType(AggKind kind, DataType arg_type) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
    case AggKind::kCountDistinct:
      return DataType::kInt64;
    case AggKind::kSum:
    case AggKind::kAvg:
    case AggKind::kVar:
    case AggKind::kStddev:
      if (!IsNumeric(arg_type)) {
        return Status::InvalidArgument(
            std::string(AggKindName(kind)) + " requires a numeric argument");
      }
      return DataType::kDouble;
    case AggKind::kMin:
    case AggKind::kMax:
      return arg_type;
  }
  return Status::Internal("unreachable agg kind");
}

namespace {

// NaN results carry whatever payload/sign the hardware propagated, and the
// propagation order through commutative ops (MULSD/ADDSD pick the first
// operand's NaN) is a compiler choice that can differ between the row loop
// and the span loop even when the source-level op order is identical. A
// fresh invalid-op QNaN on x86 is negative (0xFFF8...), a propagated input
// NaN usually is not. Canonicalizing at finalization keeps aggregate output
// bit-identical across paths without constraining codegen.
double CanonicalNaN(double v) {
  return std::isnan(v) ? std::numeric_limits<double>::quiet_NaN() : v;
}

}  // namespace

Result<GroupIndex> BuildGroupIndex(const Table& input,
                                   const std::vector<ExprPtr>& group_exprs) {
  GroupIndex index;
  const size_t n = input.num_rows();
  index.group_ids.resize(n);
  if (group_exprs.empty()) {
    // Single global group, present even for empty input.
    index.num_groups = 1;
    return index;
  }
  std::vector<Column> keys;
  keys.reserve(group_exprs.size());
  for (const ExprPtr& e : group_exprs) {
    AQP_ASSIGN_OR_RETURN(Column c, Eval(*e, input));
    keys.push_back(std::move(c));
  }
  for (const Column& k : keys) {
    index.key_columns.emplace_back(k.type());
  }
  // Hash -> candidate group ids (chained for collision safety).
  std::unordered_map<uint64_t, std::vector<uint32_t>> table;
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const Column& k : keys) h = HashCombine(h, k.HashAt(i));
    std::vector<uint32_t>& bucket = table[h];
    uint32_t gid = UINT32_MAX;
    for (uint32_t cand : bucket) {
      bool equal = true;
      for (size_t c = 0; c < keys.size(); ++c) {
        if (!keys[c].SlotEquals(i, index.key_columns[c], cand)) {
          equal = false;
          break;
        }
      }
      if (equal) {
        gid = cand;
        break;
      }
    }
    if (gid == UINT32_MAX) {
      gid = static_cast<uint32_t>(index.num_groups++);
      for (size_t c = 0; c < keys.size(); ++c) {
        index.key_columns[c].AppendFrom(keys[c], i);
      }
      bucket.push_back(gid);
    }
    index.group_ids[i] = gid;
  }
  return index;
}

namespace {

// Compares boxed values of the same (or numeric-compatible) type.
int CompareValues(const Value& a, const Value& b) {
  if (IsNumeric(a.type()) && IsNumeric(b.type())) {
    double x = a.AsDouble();
    double y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  AQP_CHECK(a.type() == b.type());
  switch (a.type()) {
    case DataType::kString:
      return a.str().compare(b.str()) < 0 ? -1 : (a.str() == b.str() ? 0 : 1);
    case DataType::kBool:
      return (a.boolean() ? 1 : 0) - (b.boolean() ? 1 : 0);
    default:
      AQP_CHECK(false);
      return 0;
  }
}

// Folds row `i` into `st` for one aggregate. `arg` is null only for
// COUNT(*). Shared by the classic streaming path and the morsel bodies so
// both paths apply identical per-row arithmetic.
void AccumulateRow(AggAccumulator& st, AggKind kind, const Column* arg,
                   size_t i, double w) {
  if (kind == AggKind::kCountStar) {
    st.weight_total += w;
    ++st.count;
    return;
  }
  if (arg->IsNull(i)) return;
  switch (kind) {
    case AggKind::kCount:
      st.weight_total += w;
      ++st.count;
      break;
    case AggKind::kSum:
    case AggKind::kAvg: {
      double x = arg->NumericAt(i);
      st.weighted_sum += w * x;
      st.weight_total += w;
      ++st.count;
      break;
    }
    case AggKind::kVar:
    case AggKind::kStddev: {
      double x = arg->NumericAt(i);
      ++st.count;
      double delta = x - st.mean;
      st.mean += delta / static_cast<double>(st.count);
      st.m2 += delta * (x - st.mean);
      break;
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      Value v = arg->GetValue(i);
      if (!st.has_value) {
        st.min_v = v;
        st.max_v = v;
        st.has_value = true;
      } else {
        if (CompareValues(v, st.min_v) < 0) st.min_v = v;
        if (CompareValues(v, st.max_v) > 0) st.max_v = std::move(v);
      }
      break;
    }
    case AggKind::kCountDistinct:
      st.distinct.insert(arg->HashAt(i, /*seed=*/17));
      break;
    case AggKind::kCountStar:
      break;  // Handled above.
  }
}

// Batch twin of AccumulateRow: folds rows [begin, end) of `arg` into `st`
// with type-specialized tight loops over the column's contiguous storage —
// no per-row Value boxing, no type re-dispatch. Every floating-point
// operation runs in the same order with the same operands as the row loop,
// so the resulting accumulator state is bit-identical to row-at-a-time
// accumulation (the vectorized path's determinism contract). Non-numeric
// MIN/MAX and COUNT DISTINCT keep the row loop: their cost is in string
// compares and hashing, not dispatch.
void AccumulateSpan(AggAccumulator& st, AggKind kind, const Column* arg,
                    size_t begin, size_t end,
                    const std::vector<double>* weights) {
  if (kind == AggKind::kCountStar) {
    if (weights == nullptr) {
      // Integer-valued adds below 2^53 are exact, so one bulk add equals
      // (end - begin) repeated += 1.0 bit for bit.
      st.weight_total += static_cast<double>(end - begin);
    } else {
      for (size_t i = begin; i < end; ++i) st.weight_total += (*weights)[i];
    }
    st.count += end - begin;
    return;
  }
  const uint8_t* valid = arg->has_nulls() ? arg->validity() : nullptr;
  if (kind == AggKind::kCount) {
    if (weights == nullptr) {
      size_t c = end - begin;
      if (valid != nullptr) {
        c = 0;
        for (size_t i = begin; i < end; ++i) c += valid[i];
      }
      st.weight_total += static_cast<double>(c);
      st.count += c;
    } else {
      for (size_t i = begin; i < end; ++i) {
        if (valid != nullptr && !valid[i]) continue;
        st.weight_total += (*weights)[i];
        ++st.count;
      }
    }
    return;
  }
  const bool numeric = IsNumeric(arg->type());
  if (!numeric || kind == AggKind::kCountDistinct) {
    for (size_t i = begin; i < end; ++i) {
      double w = weights != nullptr ? (*weights)[i] : 1.0;
      AccumulateRow(st, kind, arg, i, w);
    }
    return;
  }
  const int64_t* ints =
      arg->type() == DataType::kInt64 ? arg->int64_data() : nullptr;
  const double* dbls =
      arg->type() == DataType::kDouble ? arg->double_data() : nullptr;
  auto x_at = [&](size_t i) {
    return ints != nullptr ? static_cast<double>(ints[i]) : dbls[i];
  };
  switch (kind) {
    case AggKind::kSum:
    case AggKind::kAvg:
      for (size_t i = begin; i < end; ++i) {
        if (valid != nullptr && !valid[i]) continue;
        const double w = weights != nullptr ? (*weights)[i] : 1.0;
        const double x = x_at(i);
        st.weighted_sum += w * x;
        st.weight_total += w;
        ++st.count;
      }
      break;
    case AggKind::kVar:
    case AggKind::kStddev:
      for (size_t i = begin; i < end; ++i) {
        if (valid != nullptr && !valid[i]) continue;
        const double x = x_at(i);
        ++st.count;
        double delta = x - st.mean;
        st.mean += delta / static_cast<double>(st.count);
        st.m2 += delta * (x - st.mean);
      }
      break;
    case AggKind::kMin:
    case AggKind::kMax: {
      // Track winning row indices; box a Value only once at the end. The
      // strict </> in double space keeps the FIRST row on ties and ignores
      // unordered (NaN) candidates — exactly CompareValues' behavior.
      size_t best_min = SIZE_MAX;
      size_t best_max = SIZE_MAX;
      for (size_t i = begin; i < end; ++i) {
        if (valid != nullptr && !valid[i]) continue;
        if (best_min == SIZE_MAX) {
          best_min = i;
          best_max = i;
          continue;
        }
        const double x = x_at(i);
        if (x < x_at(best_min)) best_min = i;
        if (x > x_at(best_max)) best_max = i;
      }
      if (best_min != SIZE_MAX) {
        Value vmin = arg->GetValue(best_min);
        Value vmax = arg->GetValue(best_max);
        if (!st.has_value) {
          st.min_v = std::move(vmin);
          st.max_v = std::move(vmax);
          st.has_value = true;
        } else {
          if (CompareValues(vmin, st.min_v) < 0) st.min_v = std::move(vmin);
          if (CompareValues(vmax, st.max_v) > 0) st.max_v = std::move(vmax);
        }
      }
      break;
    }
    default:
      break;  // Handled above.
  }
}

// Hash of group-key row `i` across all key columns (same recipe as
// BuildGroupIndex so serial and morsel paths bucket identically).
uint64_t KeyRowHash(const std::vector<Column>& keys, size_t i) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Column& k : keys) h = HashCombine(h, k.HashAt(i));
  return h;
}

// True when group-key rows `i` and `j` are equal across all key columns.
bool KeyRowsEqual(const std::vector<Column>& keys, size_t i, size_t j) {
  for (const Column& k : keys) {
    if (!k.SlotEquals(i, k, j)) return false;
  }
  return true;
}

}  // namespace

void AggAccumulator::Merge(const AggAccumulator& other) {
  weighted_sum += other.weighted_sum;
  weight_total += other.weight_total;
  if (other.count > 0) {
    if (count == 0) {
      mean = other.mean;
      m2 = other.m2;
    } else {
      // Chan et al. (1979) pairwise combine of Welford states.
      double na = static_cast<double>(count);
      double nb = static_cast<double>(other.count);
      double delta = other.mean - mean;
      double nn = na + nb;
      mean += delta * (nb / nn);
      m2 += other.m2 + delta * delta * (na * nb / nn);
    }
  }
  count += other.count;
  if (other.has_value) {
    if (!has_value) {
      min_v = other.min_v;
      max_v = other.max_v;
      has_value = true;
    } else {
      if (CompareValues(other.min_v, min_v) < 0) min_v = other.min_v;
      if (CompareValues(other.max_v, max_v) > 0) max_v = other.max_v;
    }
  }
  distinct.insert(other.distinct.begin(), other.distinct.end());
}

Result<Table> GroupByAggregate(const Table& input,
                               const std::vector<ExprPtr>& group_exprs,
                               const std::vector<std::string>& group_names,
                               const std::vector<AggSpec>& aggs,
                               const AggregateOptions& options) {
  if (group_names.size() != group_exprs.size()) {
    return Status::InvalidArgument("group name/expr arity mismatch");
  }
  const size_t n = input.num_rows();
  if (options.weights != nullptr && options.weights->size() != n) {
    return Status::InvalidArgument("weight vector length mismatch");
  }

  // Evaluate aggregate arguments once, vectorized.
  std::vector<Column> arg_columns;
  std::vector<DataType> out_types;
  arg_columns.reserve(aggs.size());
  for (const AggSpec& spec : aggs) {
    if (spec.kind == AggKind::kCountStar) {
      arg_columns.emplace_back(DataType::kInt64);  // Placeholder, unused.
      out_types.push_back(DataType::kInt64);
      continue;
    }
    if (spec.arg == nullptr) {
      return Status::InvalidArgument("aggregate missing argument: " +
                                     spec.alias);
    }
    AQP_ASSIGN_OR_RETURN(Column c, Eval(*spec.arg, input));
    AQP_ASSIGN_OR_RETURN(DataType t, AggResultType(spec.kind, c.type()));
    out_types.push_back(t);
    arg_columns.push_back(std::move(c));
  }

  // Accumulate. Two equivalent algorithms, chosen by input size only (never
  // thread count, so results are thread-count independent):
  //   - classic: single streaming pass over rows;
  //   - morsel: per-morsel AggAccumulator partials, merged in morsel order.
  std::vector<std::vector<AggAccumulator>> states;  // [agg][group].
  std::vector<Column> key_columns;                  // One per group expr.
  size_t num_groups = 0;
  const bool use_morsels =
      options.exec != nullptr && options.exec->UseMorsels(n);
  // Span accumulators produce bit-identical state to the row loop; the gate
  // exists so the row path stays runnable for differential comparison.
  const bool vectorized = options.exec != nullptr &&
                          options.exec->ResolvedPath() == ExecPath::kVectorized;
  if (!use_morsels) {
    AQP_ASSIGN_OR_RETURN(GroupIndex index, BuildGroupIndex(input, group_exprs));
    states.assign(aggs.size(), std::vector<AggAccumulator>(index.num_groups));
    if (vectorized && group_exprs.empty()) {
      // Global aggregates over a contiguous input: one span per aggregate.
      for (size_t a = 0; a < aggs.size(); ++a) {
        AccumulateSpan(states[a][0], aggs[a].kind,
                       aggs[a].kind == AggKind::kCountStar ? nullptr
                                                           : &arg_columns[a],
                       0, n, options.weights);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        uint32_t g = index.group_ids[i];
        double w = options.weights ? (*options.weights)[i] : 1.0;
        for (size_t a = 0; a < aggs.size(); ++a) {
          AccumulateRow(states[a][g], aggs[a].kind,
                        aggs[a].kind == AggKind::kCountStar ? nullptr
                                                            : &arg_columns[a],
                        i, w);
        }
      }
    }
    key_columns = std::move(index.key_columns);
    num_groups = index.num_groups;
  } else {
    ThreadPool& pool = ThreadPool::Shared();
    const size_t num_threads = options.exec->ResolvedThreads();
    const size_t morsel_rows = options.exec->morsel_rows;
    const size_t num_morsels = (n + morsel_rows - 1) / morsel_rows;

    if (group_exprs.empty()) {
      // Global aggregates: one partial vector per morsel, merged in order.
      std::vector<std::vector<AggAccumulator>> partials(
          num_morsels, std::vector<AggAccumulator>(aggs.size()));
      ParallelRunStats rs = pool.ParallelFor(
          n, morsel_rows, num_threads,
          ThreadPool::ParallelForOptions{options.exec->cancel},
          [&](size_t, size_t m, size_t begin, size_t end) {
            std::vector<AggAccumulator>& local = partials[m];
            if (vectorized) {
              for (size_t a = 0; a < aggs.size(); ++a) {
                AccumulateSpan(local[a], aggs[a].kind,
                               aggs[a].kind == AggKind::kCountStar
                                   ? nullptr
                                   : &arg_columns[a],
                               begin, end, options.weights);
              }
              return;
            }
            for (size_t i = begin; i < end; ++i) {
              double w = options.weights ? (*options.weights)[i] : 1.0;
              for (size_t a = 0; a < aggs.size(); ++a) {
                AccumulateRow(local[a], aggs[a].kind,
                              aggs[a].kind == AggKind::kCountStar
                                  ? nullptr
                                  : &arg_columns[a],
                              i, w);
              }
            }
          });
      // Partials from skipped morsels are empty, not wrong — but the merged
      // total would silently undercount; surface the cancellation instead.
      AQP_RETURN_IF_ERROR(CheckCancelled(options.exec->cancel));
      states.assign(aggs.size(), std::vector<AggAccumulator>(1));
      for (size_t m = 0; m < num_morsels; ++m) {
        for (size_t a = 0; a < aggs.size(); ++a) {
          states[a][0].Merge(partials[m][a]);
        }
      }
      num_groups = 1;
      if (options.run_stats != nullptr) options.run_stats->MergeFrom(rs);
    } else {
      // Grouped: evaluate the key columns once, then each morsel discovers
      // its own local groups (rep row = first appearance in the morsel) and
      // accumulates into local partials. Merging morsels in morsel order
      // assigns global group ids in whole-input first-appearance order —
      // exactly the serial ordering.
      std::vector<Column> keys;
      keys.reserve(group_exprs.size());
      for (const ExprPtr& e : group_exprs) {
        AQP_ASSIGN_OR_RETURN(Column c, Eval(*e, input));
        keys.push_back(std::move(c));
      }
      // Vectorized path: precompute key hashes column-at-a-time (one tight
      // loop per key column) instead of re-dispatching per row inside the
      // probe loop. Same HashCombine recipe, so bucketing is unchanged.
      std::vector<uint64_t> hashes;
      if (vectorized) {
        hashes.assign(n, 0x9e3779b97f4a7c15ULL);
        for (const Column& k : keys) {
          for (size_t i = 0; i < n; ++i) {
            hashes[i] = HashCombine(hashes[i], k.HashAt(i));
          }
        }
      }
      auto key_hash = [&](size_t i) {
        return vectorized ? hashes[i] : KeyRowHash(keys, i);
      };
      struct MorselGroups {
        std::vector<uint32_t> reps;  // Representative row per local group.
        std::vector<std::vector<AggAccumulator>> states;  // [agg][local].
      };
      std::vector<MorselGroups> morsels(num_morsels);
      ParallelRunStats rs = pool.ParallelFor(
          n, morsel_rows, num_threads,
          ThreadPool::ParallelForOptions{options.exec->cancel},
          [&](size_t, size_t m, size_t begin, size_t end) {
            MorselGroups& mg = morsels[m];
            mg.states.assign(aggs.size(), {});
            std::unordered_map<uint64_t, std::vector<uint32_t>> local;
            for (size_t i = begin; i < end; ++i) {
              uint64_t h = key_hash(i);
              std::vector<uint32_t>& bucket = local[h];
              uint32_t gid = UINT32_MAX;
              for (uint32_t cand : bucket) {
                if (KeyRowsEqual(keys, i, mg.reps[cand])) {
                  gid = cand;
                  break;
                }
              }
              if (gid == UINT32_MAX) {
                gid = static_cast<uint32_t>(mg.reps.size());
                mg.reps.push_back(static_cast<uint32_t>(i));
                bucket.push_back(gid);
                for (std::vector<AggAccumulator>& s : mg.states) {
                  s.emplace_back();
                }
              }
              double w = options.weights ? (*options.weights)[i] : 1.0;
              for (size_t a = 0; a < aggs.size(); ++a) {
                AccumulateRow(mg.states[a][gid], aggs[a].kind,
                              aggs[a].kind == AggKind::kCountStar
                                  ? nullptr
                                  : &arg_columns[a],
                              i, w);
              }
            }
          });
      AQP_RETURN_IF_ERROR(CheckCancelled(options.exec->cancel));
      // Ordered merge into the global group table.
      for (const Column& k : keys) key_columns.emplace_back(k.type());
      states.assign(aggs.size(), {});
      std::unordered_map<uint64_t, std::vector<uint32_t>> global;
      std::vector<uint32_t> global_reps;
      for (size_t m = 0; m < num_morsels; ++m) {
        const MorselGroups& mg = morsels[m];
        for (size_t l = 0; l < mg.reps.size(); ++l) {
          uint32_t row = mg.reps[l];
          uint64_t h = key_hash(row);
          std::vector<uint32_t>& bucket = global[h];
          uint32_t gid = UINT32_MAX;
          for (uint32_t cand : bucket) {
            if (KeyRowsEqual(keys, row, global_reps[cand])) {
              gid = cand;
              break;
            }
          }
          if (gid == UINT32_MAX) {
            gid = static_cast<uint32_t>(num_groups++);
            global_reps.push_back(row);
            bucket.push_back(gid);
            for (size_t c = 0; c < keys.size(); ++c) {
              key_columns[c].AppendFrom(keys[c], row);
            }
            for (std::vector<AggAccumulator>& s : states) s.emplace_back();
          }
          for (size_t a = 0; a < aggs.size(); ++a) {
            states[a][gid].Merge(mg.states[a][l]);
          }
        }
      }
      if (options.run_stats != nullptr) options.run_stats->MergeFrom(rs);
    }
  }

  // Materialize output table: group keys then aggregates.
  Schema out_schema;
  std::vector<Column> out_columns;
  for (size_t c = 0; c < group_exprs.size(); ++c) {
    out_schema.AddField({group_names[c], key_columns[c].type()});
    out_columns.push_back(key_columns[c]);
  }
  for (size_t a = 0; a < aggs.size(); ++a) {
    out_schema.AddField({aggs[a].alias, out_types[a]});
    Column col(out_types[a]);
    col.Reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      const AggAccumulator& st = states[a][g];
      switch (aggs[a].kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          // With weights this is the Horvitz–Thompson count estimate;
          // unweighted it is the exact count. Rounded to nearest integer.
          col.AppendInt64(static_cast<int64_t>(std::llround(st.weight_total)));
          break;
        case AggKind::kSum:
          if (st.count == 0) {
            col.AppendNull();
          } else {
            col.AppendDouble(CanonicalNaN(st.weighted_sum));
          }
          break;
        case AggKind::kAvg:
          if (st.weight_total == 0.0) {
            col.AppendNull();
          } else {
            col.AppendDouble(CanonicalNaN(st.weighted_sum / st.weight_total));
          }
          break;
        case AggKind::kVar:
          if (st.count < 2) {
            col.AppendNull();
          } else {
            col.AppendDouble(
                CanonicalNaN(st.m2 / static_cast<double>(st.count - 1)));
          }
          break;
        case AggKind::kStddev:
          if (st.count < 2) {
            col.AppendNull();
          } else {
            col.AppendDouble(CanonicalNaN(
                std::sqrt(st.m2 / static_cast<double>(st.count - 1))));
          }
          break;
        case AggKind::kMin:
          if (!st.has_value) {
            col.AppendNull();
          } else {
            AQP_RETURN_IF_ERROR(col.AppendValue(st.min_v));
          }
          break;
        case AggKind::kMax:
          if (!st.has_value) {
            col.AppendNull();
          } else {
            AQP_RETURN_IF_ERROR(col.AppendValue(st.max_v));
          }
          break;
        case AggKind::kCountDistinct:
          col.AppendInt64(static_cast<int64_t>(st.distinct.size()));
          break;
      }
    }
    out_columns.push_back(std::move(col));
  }
  return Table::Make(std::move(out_schema), std::move(out_columns));
}

}  // namespace aqp
