#ifndef AQP_ENGINE_PLAN_H_
#define AQP_ENGINE_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/aggregate.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace aqp {

/// Sampling annotation on a table scan — the engine-level equivalent of SQL's
/// TABLESAMPLE clause. This is the hook AQP plan rewrites use.
struct SampleSpec {
  enum class Method {
    kNone,
    kBernoulliRow,  // TABLESAMPLE BERNOULLI: each row kept i.i.d. with `rate`.
    kSystemBlock,   // TABLESAMPLE SYSTEM: each block kept i.i.d. with `rate`.
  };
  Method method = Method::kNone;
  double rate = 1.0;  // Inclusion probability in (0, 1].
  uint64_t seed = 42;
  uint32_t block_size = kDefaultBlockSize;  // Only for kSystemBlock.

  bool is_sampled() const { return method != Method::kNone && rate < 1.0; }
};

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

enum class PlanKind {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kUnionAll,
};

enum class JoinType { kInner, kLeftOuter };

/// One ORDER BY key.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// Immutable logical/physical plan node (this engine executes logical plans
/// directly, materializing each operator's output). Build via the factory
/// functions below.
class PlanNode {
 public:
  PlanKind kind() const { return kind_; }

  // kScan.
  const std::string& table_name() const { return table_name_; }
  const SampleSpec& sample() const { return sample_; }

  // Children (0 for scan, 1 for unary ops, 2 for join, N for union).
  const PlanPtr& child(size_t i = 0) const { return children_[i]; }
  size_t num_children() const { return children_.size(); }

  // kFilter.
  const ExprPtr& predicate() const { return predicate_; }

  // kProject.
  const std::vector<ExprPtr>& exprs() const { return exprs_; }
  const std::vector<std::string>& names() const { return names_; }

  // kJoin.
  JoinType join_type() const { return join_type_; }
  const std::vector<std::string>& left_keys() const { return left_keys_; }
  const std::vector<std::string>& right_keys() const { return right_keys_; }

  // kAggregate.
  const std::vector<ExprPtr>& group_exprs() const { return exprs_; }
  const std::vector<std::string>& group_names() const { return names_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

  // kSort.
  const std::vector<SortKey>& sort_keys() const { return sort_keys_; }

  // kLimit.
  uint64_t limit() const { return limit_; }

  /// Indented multi-line rendering for tests and debugging.
  std::string ToString() const;

  // --- Factories -----------------------------------------------------------
  static PlanPtr Scan(std::string table_name, SampleSpec sample = {});
  static PlanPtr Filter(PlanPtr input, ExprPtr predicate);
  static PlanPtr Project(PlanPtr input, std::vector<ExprPtr> exprs,
                         std::vector<std::string> names);
  static PlanPtr Join(PlanPtr left, PlanPtr right, JoinType type,
                      std::vector<std::string> left_keys,
                      std::vector<std::string> right_keys);
  static PlanPtr Aggregate(PlanPtr input, std::vector<ExprPtr> group_exprs,
                           std::vector<std::string> group_names,
                           std::vector<AggSpec> aggs);
  static PlanPtr Sort(PlanPtr input, std::vector<SortKey> keys);
  static PlanPtr Limit(PlanPtr input, uint64_t n);
  static PlanPtr UnionAll(std::vector<PlanPtr> inputs);

 private:
  PlanNode() = default;
  void Render(int indent, std::string* out) const;

  PlanKind kind_ = PlanKind::kScan;
  std::string table_name_;
  SampleSpec sample_;
  std::vector<PlanPtr> children_;
  ExprPtr predicate_;
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
  JoinType join_type_ = JoinType::kInner;
  std::vector<std::string> left_keys_;
  std::vector<std::string> right_keys_;
  std::vector<AggSpec> aggs_;
  std::vector<SortKey> sort_keys_;
  uint64_t limit_ = 0;
};

}  // namespace aqp

#endif  // AQP_ENGINE_PLAN_H_
