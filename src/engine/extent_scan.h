#ifndef AQP_ENGINE_EXTENT_SCAN_H_
#define AQP_ENGINE_EXTENT_SCAN_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/memory_tracker.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "expr/expr.h"
#include "storage/extent/extent_reader.h"
#include "storage/table.h"

namespace aqp {

/// Zone-map pruning and morsel-parallel scans over extent-backed tables
/// (docs/STORAGE.md §5): the executor routes scans of tables registered via
/// Catalog::RegisterExtentBacked through these entry points instead of
/// materializing the file up front. The fused filter+scan decodes one extent
/// at a time (a transient, governed allocation) and keeps only matching
/// rows, so a table much larger than the query's memory budget can still be
/// filtered — the property benchmarked by E19.

/// A pruning conjunct: a NECESSARY condition of the query predicate of the
/// shape `col <op> literal`, `col BETWEEN lo AND hi`, or `col IN (...)`.
/// If a zone map proves no row of an extent can satisfy one conjunct, the
/// whole extent is skipped without being read. Conjuncts are extracted only
/// from top-level AND branches — anything under OR/NOT is ignored
/// (conservative: pruning never changes results, only work).
struct PruneConjunct {
  enum class Kind : uint8_t { kEq, kLt, kLe, kGt, kGe, kBetween, kIn };

  size_t col = 0;  // Field index in the extent file's schema.
  Kind kind = Kind::kEq;
  Value a;                    // The literal (lo for kBetween).
  Value b;                    // hi for kBetween, unused otherwise.
  std::vector<Value> values;  // kIn list.
};

/// Extracts pruning conjuncts from `pred` against `schema`. Unresolvable
/// columns, non-literal operands, and unsupported shapes are skipped — an
/// empty result just means nothing can be pruned.
std::vector<PruneConjunct> ExtractPruneConjuncts(const Expr& pred,
                                                 const Schema& schema);

/// True unless a zone map PROVES extent `meta` cannot contain a matching
/// row. Incomparable types and absent bounds answer true (read the extent);
/// an all-NULL chunk answers false for every comparison conjunct (SQL
/// comparisons with NULL are never true).
bool ExtentMayMatch(const extent::ExtentMeta& meta,
                    const std::vector<PruneConjunct>& conjuncts);

/// Shared knobs for the extent scan paths; borrowed pointers follow
/// ExecOptions semantics (null = ungoverned / unobserved).
struct ExtentScanOptions {
  size_t num_threads = 1;
  const CancellationToken* cancel = nullptr;
  MemoryTracker* memory = nullptr;
  ParallelRunStats* run_stats = nullptr;
};

/// What an extent-backed scan did, for ExecStats / trace spans.
struct ExtentScanStats {
  uint64_t extents_total = 0;   // Extents in the file.
  uint64_t extents_pruned = 0;  // Skipped via zone maps.
  uint64_t extents_read = 0;    // Decoded.
  uint64_t rows_read = 0;       // Rows decoded (pre-predicate).
};

/// Materializes the whole file as one Table, reading extents in parallel
/// (deterministic: parts are concatenated in extent order). Used by bare and
/// sampled scans — a sampled extent scan therefore draws from exactly the
/// same per-morsel RNG streams as its in-memory twin and returns
/// bit-identical samples. The caller charges the result to its
/// MemoryTracker; an over-budget full materialization is how governance
/// learns the query needed the fused path or a sample.
Result<Table> ReadAllExtents(const extent::ExtentReader& reader,
                             const ExtentScanOptions& options,
                             ExtentScanStats* stats);

/// Fused filter+scan: prunes extents against `pred`'s conjuncts, decodes
/// surviving extents in parallel (each decode transiently charges the
/// extent's raw_bytes), evaluates the FULL predicate per extent, and
/// concatenates matching rows in extent order. Output equals
/// filter(pred, ReadAllExtents(...)) bit for bit, for every thread count.
Result<Table> FusedExtentFilterScan(const extent::ExtentReader& reader,
                                    const Expr& pred,
                                    const ExtentScanOptions& options,
                                    ExtentScanStats* stats);

}  // namespace aqp

#endif  // AQP_ENGINE_EXTENT_SCAN_H_
