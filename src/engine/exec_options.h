#ifndef AQP_ENGINE_EXEC_OPTIONS_H_
#define AQP_ENGINE_EXEC_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "common/cancellation.h"
#include "common/memory_tracker.h"
#include "common/thread_pool.h"

namespace aqp {

/// Which execution substrate operators run on. The two paths are
/// bit-identical by contract (the differential suite enforces it); the
/// scalar path is retained as the row-at-a-time reference.
enum class ExecPath : uint8_t {
  /// Process default: AQP_EXEC_PATH=scalar|vectorized if set, else
  /// vectorized.
  kAuto = 0,
  /// Row-at-a-time reference engine.
  kScalar = 1,
  /// Batch kernels over column spans with selection vectors.
  kVectorized = 2,
};

/// The process-wide default path (resolved once; AQP_EXEC_PATH=scalar flips
/// the whole process to the reference engine).
inline ExecPath DefaultExecPath() {
  static const ExecPath path = [] {
    const char* env = std::getenv("AQP_EXEC_PATH");
    if (env != nullptr && std::string_view(env) == "scalar") {
      return ExecPath::kScalar;
    }
    return ExecPath::kVectorized;
  }();
  return path;
}

/// Execution knobs shared by every executor (engine, approximate, offline,
/// online aggregation). The defaults give morsel-driven parallel execution
/// on all hardware threads; `num_threads = 1` preserves strictly
/// single-threaded execution (no pool, no helper threads).
///
/// Determinism contract: for a fixed (query seed, morsel_rows,
/// parallel_min_rows), results are identical for EVERY num_threads —
/// bit-for-bit for exact queries, draw-for-draw for sampled ones. Two
/// mechanisms deliver this:
///   1. per-morsel RNG: randomized operators seed one generator per morsel
///      from (seed, morsel id), never sharing a generator across morsels;
///   2. ordered merge: worker-local partial results live in morsel-indexed
///      slots and are merged in morsel order after the parallel region.
/// Changing morsel_rows (or parallel_min_rows, which switches between the
/// classic streaming path and the morsel path) legitimately changes
/// last-ulp floating-point grouping and sampled draws; changing thread
/// count never does.
struct ExecOptions {
  /// 0 = auto: the AQP_NUM_THREADS environment variable if set, else
  /// HardwareThreads().
  size_t num_threads = 0;

  /// Fixed morsel size in rows. Part of the determinism contract above.
  uint32_t morsel_rows = 4096;

  /// Inputs with fewer rows than this run the classic single-pass serial
  /// path (morsel bookkeeping does not pay for itself). The threshold is
  /// compared against input size only — never thread count — so the chosen
  /// algorithm, and hence the result, is thread-count independent.
  size_t parallel_min_rows = 8192;

  /// Resource governance (optional, both borrowed — typically owned by a
  /// gov::QueryContext that outlives the query). `cancel` is polled at morsel
  /// and batch boundaries: deadline expiry, user cancellation, and memory
  /// exhaustion all surface through it. `memory` is charged for operator
  /// OUTPUTS as they materialize (transient scratch is not accounted); when a
  /// charge exceeds the budget the tracker trips `cancel` so in-flight
  /// morsels stop too.
  const CancellationToken* cancel = nullptr;
  MemoryTracker* memory = nullptr;

  /// Execution substrate. kAuto defers to DefaultExecPath(); results are
  /// identical either way — the knob exists for the differential tests, the
  /// scalar-vs-batch benches, and as an escape hatch.
  ExecPath path = ExecPath::kAuto;

  /// The substrate this option set resolves to.
  ExecPath ResolvedPath() const {
    return path == ExecPath::kAuto ? DefaultExecPath() : path;
  }

  /// The thread count this option set resolves to (>= 1). Invalid
  /// AQP_NUM_THREADS values (non-numeric, zero/negative, overflow) warn once
  /// and fall back to the hardware count instead of being silently
  /// misparsed.
  size_t ResolvedThreads() const {
    if (num_threads > 0) return num_threads;
    return ThreadCountFromEnv("AQP_NUM_THREADS", HardwareThreads());
  }

  /// True when `n` rows is enough work for the morsel path.
  bool UseMorsels(size_t n) const { return n >= parallel_min_rows; }
};

}  // namespace aqp

#endif  // AQP_ENGINE_EXEC_OPTIONS_H_
