#ifndef AQP_STATS_CONFIDENCE_H_
#define AQP_STATS_CONFIDENCE_H_

#include <cstdint>

namespace aqp {
namespace stats {

/// A two-sided confidence interval around a point estimate.
struct ConfidenceInterval {
  double estimate = 0.0;
  double low = 0.0;
  double high = 0.0;
  double confidence = 0.0;  // e.g. 0.95

  /// Half the interval width.
  double half_width() const { return (high - low) / 2.0; }

  /// Half width relative to |estimate|; +inf when estimate == 0.
  double relative_half_width() const;

  /// True iff `truth` lies inside [low, high].
  bool Covers(double truth) const { return truth >= low && truth <= high; }
};

/// CLT-based confidence interval for a population MEAN estimated from a
/// simple random sample: mean +/- t_{conf,n-1} * s/sqrt(n) * fpc.
/// `population_size` == 0 disables the finite-population correction.
ConfidenceInterval MeanCi(double sample_mean, double sample_variance,
                          uint64_t sample_size, double confidence,
                          uint64_t population_size = 0);

/// CLT-based CI for a population SUM (total) from a simple random sample of
/// size n out of N: N*mean +/- t * N * s/sqrt(n) * fpc.
ConfidenceInterval SumCi(double sample_mean, double sample_variance,
                         uint64_t sample_size, uint64_t population_size,
                         double confidence);

/// CI for a Horvitz–Thompson style estimate given its point value and an
/// estimated variance of the estimator (normal approximation).
ConfidenceInterval EstimatorCi(double estimate, double estimator_variance,
                               double confidence, uint64_t df = 0);

/// Sample size needed so a CLT CI for the mean at `confidence` has relative
/// half-width <= `target_relative_error`, given pilot estimates of mean and
/// variance. Returns a conservative ceil; mean must be non-zero.
uint64_t RequiredSampleSizeForMean(double pilot_mean, double pilot_variance,
                                   double target_relative_error,
                                   double confidence);

/// Finite-population correction factor sqrt((N - n) / (N - 1)) (1.0 when
/// population_size == 0 or n >= N).
double FinitePopulationCorrection(uint64_t sample_size,
                                  uint64_t population_size);

}  // namespace stats
}  // namespace aqp

#endif  // AQP_STATS_CONFIDENCE_H_
