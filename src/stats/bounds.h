#ifndef AQP_STATS_BOUNDS_H_
#define AQP_STATS_BOUNDS_H_

#include <cstdint>

namespace aqp {
namespace stats {

/// Hoeffding bound: sample size n such that a mean of i.i.d. observations
/// bounded in [range_low, range_high] deviates from the true mean by more
/// than `epsilon` with probability at most `delta`:
///   n >= (b-a)^2 ln(2/delta) / (2 epsilon^2).
uint64_t HoeffdingSampleSize(double range_low, double range_high,
                             double epsilon, double delta);

/// Hoeffding deviation bound for a fixed sample size: the epsilon such that
/// P(|mean_hat - mean| > epsilon) <= delta.
double HoeffdingEpsilon(double range_low, double range_high, uint64_t n,
                        double delta);

/// Multiplicative Chernoff upper tail for Binomial(n, p):
/// P(X >= (1+delta) n p) <= exp(-n p delta^2 / 3) for delta in (0, 1].
double ChernoffUpperTail(uint64_t n, double p, double delta);

/// Probability that Bernoulli(rate) row sampling misses ALL m rows of a group:
/// (1 - rate)^m.
double GroupMissProbability(uint64_t group_size, double rate);

/// Minimum Bernoulli sampling rate so a group with at least `group_size` rows
/// is included with probability >= 1 - delta.
double RateForGroupCoverage(uint64_t group_size, double delta);

}  // namespace stats
}  // namespace aqp

#endif  // AQP_STATS_BOUNDS_H_
