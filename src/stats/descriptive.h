#ifndef AQP_STATS_DESCRIPTIVE_H_
#define AQP_STATS_DESCRIPTIVE_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace aqp {
namespace stats {

/// Single-pass numerically-stable accumulator for count / mean / variance /
/// min / max (Welford's online algorithm). Mergeable, so it composes across
/// partitions, strata, and sample blocks.
class Accumulator {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator (Chan et al. parallel variance formula).
  void Merge(const Accumulator& other);

  uint64_t count() const { return count_; }
  double sum() const { return mean_ * static_cast<double>(count_); }
  /// Mean of observations; 0 when empty.
  double mean() const { return mean_; }
  /// Unbiased sample variance (n-1 denominator); 0 when count < 2.
  double sample_variance() const;
  /// Population variance (n denominator); 0 when empty.
  double population_variance() const;
  /// Sample standard deviation.
  double sample_stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // Sum of squared deviations from the running mean.
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Computes the q-quantile (0 <= q <= 1) of `values` by sorting a copy
/// (linear interpolation between order statistics). Intended for tests and
/// small result sets; use sketch::KllSketch for large streams.
double ExactQuantile(std::vector<double> values, double q);

}  // namespace stats
}  // namespace aqp

#endif  // AQP_STATS_DESCRIPTIVE_H_
