#ifndef AQP_STATS_BOOTSTRAP_H_
#define AQP_STATS_BOOTSTRAP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "stats/confidence.h"

namespace aqp {
namespace stats {

/// Options for percentile bootstrap.
struct BootstrapOptions {
  uint32_t num_resamples = 200;
  double confidence = 0.95;
  uint64_t seed = 7;
};

/// Percentile-bootstrap confidence interval for an arbitrary statistic of a
/// sample: resamples `values` with replacement `num_resamples` times, applies
/// `statistic` to each resample, and returns the empirical
/// (alpha/2, 1-alpha/2) percentiles around the plug-in estimate.
///
/// This is the AQP fallback for estimators whose analytic variance is
/// intractable (e.g. aggregates over joins of samples).
ConfidenceInterval BootstrapCi(
    const std::vector<double>& values,
    const std::function<double(const std::vector<double>&)>& statistic,
    const BootstrapOptions& options = {});

/// Bootstrap CI for the mean (common case, avoids the lambda).
ConfidenceInterval BootstrapMeanCi(const std::vector<double>& values,
                                   const BootstrapOptions& options = {});

}  // namespace stats
}  // namespace aqp

#endif  // AQP_STATS_BOOTSTRAP_H_
