#ifndef AQP_STATS_DISTRIBUTIONS_H_
#define AQP_STATS_DISTRIBUTIONS_H_

namespace aqp {
namespace stats {

/// Standard normal cumulative distribution function Phi(x).
double NormalCdf(double x);

/// Standard normal quantile Phi^{-1}(p), p in (0,1). Acklam's algorithm,
/// relative error < 1.15e-9 across the domain.
double NormalQuantile(double p);

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x) / Gamma(a).
/// a > 0, x >= 0. Series expansion for x < a+1, continued fraction otherwise.
double RegularizedGammaP(double a, double x);

/// Regularized incomplete beta I_x(a, b), a,b > 0, x in [0,1].
double RegularizedBeta(double x, double a, double b);

/// Student's t cumulative distribution function with `df` degrees of freedom.
double StudentTCdf(double t, double df);

/// Student's t quantile: smallest t with StudentTCdf(t, df) >= p.
/// df > 0, p in (0,1). Falls back to the normal quantile for df > 1e6.
double StudentTQuantile(double p, double df);

/// Chi-squared CDF with `df` degrees of freedom.
double ChiSquaredCdf(double x, double df);

/// Chi-squared quantile, df > 0, p in (0,1). Wilson–Hilferty start + Newton.
double ChiSquaredQuantile(double p, double df);

/// ln Gamma(x) for x > 0 (Lanczos approximation).
double LogGamma(double x);

}  // namespace stats
}  // namespace aqp

#endif  // AQP_STATS_DISTRIBUTIONS_H_
