#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqp {
namespace stats {

void Accumulator::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::Merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  uint64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  count_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::population_variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double Accumulator::sample_stddev() const {
  return std::sqrt(sample_variance());
}

double ExactQuantile(std::vector<double> values, double q) {
  AQP_CHECK(!values.empty());
  AQP_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace stats
}  // namespace aqp
