#include "stats/bootstrap.h"

#include <algorithm>

#include "common/check.h"
#include "stats/descriptive.h"

namespace aqp {
namespace stats {

ConfidenceInterval BootstrapCi(
    const std::vector<double>& values,
    const std::function<double(const std::vector<double>&)>& statistic,
    const BootstrapOptions& options) {
  AQP_CHECK(!values.empty());
  AQP_CHECK(options.num_resamples >= 2);
  Pcg32 rng(options.seed);
  std::vector<double> stats_out;
  stats_out.reserve(options.num_resamples);
  std::vector<double> resample(values.size());
  for (uint32_t b = 0; b < options.num_resamples; ++b) {
    for (size_t i = 0; i < values.size(); ++i) {
      resample[i] =
          values[rng.UniformUint64(static_cast<uint64_t>(values.size()))];
    }
    stats_out.push_back(statistic(resample));
  }
  double alpha = 1.0 - options.confidence;
  ConfidenceInterval ci;
  ci.estimate = statistic(values);
  ci.confidence = options.confidence;
  ci.low = ExactQuantile(stats_out, alpha / 2.0);
  ci.high = ExactQuantile(std::move(stats_out), 1.0 - alpha / 2.0);
  return ci;
}

ConfidenceInterval BootstrapMeanCi(const std::vector<double>& values,
                                   const BootstrapOptions& options) {
  return BootstrapCi(
      values,
      [](const std::vector<double>& v) {
        double sum = 0.0;
        for (double x : v) sum += x;
        return sum / static_cast<double>(v.size());
      },
      options);
}

}  // namespace stats
}  // namespace aqp
