#include "stats/distributions.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace aqp {
namespace stats {
namespace {

constexpr double kEps = 1e-14;
constexpr int kMaxIter = 300;

// Continued-fraction evaluation of the incomplete gamma Q(a,x) (Lentz).
double GammaContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / 1e-300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

// Series expansion of P(a,x), converges fast for x < a + 1.
double GammaSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for the regularized incomplete beta (Lentz).
double BetaContinuedFraction(double x, double a, double b) {
  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < 1e-300) d = 1e-300;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double LogGamma(double x) {
  AQP_CHECK(x > 0.0);
  // Lanczos approximation (g = 7, n = 9), double-precision accurate.
  static const double kCoeffs[] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double acc = kCoeffs[0];
  double t = x + 7.5;
  for (int i = 1; i < 9; ++i) acc += kCoeffs[i] / (x + i);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(acc);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x * M_SQRT1_2);
}

double NormalQuantile(double p) {
  AQP_CHECK(p > 0.0 && p < 1.0) << "p=" << p;
  // Acklam's rational approximation with one Halley refinement step.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley step against the exact CDF.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double RegularizedGammaP(double a, double x) {
  AQP_CHECK(a > 0.0);
  AQP_CHECK(x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaSeries(a, x);
  return 1.0 - GammaContinuedFraction(a, x);
}

double RegularizedBeta(double x, double a, double b) {
  AQP_CHECK(a > 0.0 && b > 0.0);
  AQP_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  double log_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                     a * std::log(x) + b * std::log(1.0 - x);
  double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(x, a, b) / a;
  }
  return 1.0 - front * BetaContinuedFraction(1.0 - x, b, a) / b;
}

double StudentTCdf(double t, double df) {
  AQP_CHECK(df > 0.0);
  double x = df / (df + t * t);
  double prob = 0.5 * RegularizedBeta(x, df / 2.0, 0.5);
  return t > 0.0 ? 1.0 - prob : prob;
}

double StudentTQuantile(double p, double df) {
  AQP_CHECK(p > 0.0 && p < 1.0);
  AQP_CHECK(df > 0.0);
  if (df > 1e6) return NormalQuantile(p);
  if (p == 0.5) return 0.0;
  // Bisection on the CDF; robust and fast enough (quantiles are computed once
  // per query, not per tuple).
  double lo = -1e10;
  double hi = 1e10;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-10 * (1.0 + std::fabs(hi))) break;
  }
  return 0.5 * (lo + hi);
}

double ChiSquaredCdf(double x, double df) {
  AQP_CHECK(df > 0.0);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(df / 2.0, x / 2.0);
}

double ChiSquaredQuantile(double p, double df) {
  AQP_CHECK(p > 0.0 && p < 1.0);
  AQP_CHECK(df > 0.0);
  // Wilson–Hilferty starting point, then bisection refinement.
  double z = NormalQuantile(p);
  double term = 1.0 - 2.0 / (9.0 * df) + z * std::sqrt(2.0 / (9.0 * df));
  double guess = df * term * term * term;
  if (guess <= 0.0) guess = 1e-8;
  double lo = 0.0;
  double hi = guess;
  while (ChiSquaredCdf(hi, df) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    double mid = 0.5 * (lo + hi);
    if (ChiSquaredCdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace stats
}  // namespace aqp
