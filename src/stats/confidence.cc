#include "stats/confidence.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "stats/distributions.h"

namespace aqp {
namespace stats {

double ConfidenceInterval::relative_half_width() const {
  if (estimate == 0.0) return std::numeric_limits<double>::infinity();
  return half_width() / std::fabs(estimate);
}

double FinitePopulationCorrection(uint64_t sample_size,
                                  uint64_t population_size) {
  if (population_size == 0 || sample_size >= population_size ||
      population_size < 2) {
    return population_size != 0 && sample_size >= population_size ? 0.0 : 1.0;
  }
  return std::sqrt(static_cast<double>(population_size - sample_size) /
                   static_cast<double>(population_size - 1));
}

namespace {

// Critical value: Student-t for small n, normal for huge n.
double CriticalValue(double confidence, uint64_t df) {
  AQP_CHECK(confidence > 0.0 && confidence < 1.0);
  double p = 1.0 - (1.0 - confidence) / 2.0;
  if (df == 0 || df > 1000000) return NormalQuantile(p);
  return StudentTQuantile(p, static_cast<double>(df));
}

}  // namespace

ConfidenceInterval MeanCi(double sample_mean, double sample_variance,
                          uint64_t sample_size, double confidence,
                          uint64_t population_size) {
  ConfidenceInterval ci;
  ci.estimate = sample_mean;
  ci.confidence = confidence;
  if (sample_size < 2) {
    ci.low = -std::numeric_limits<double>::infinity();
    ci.high = std::numeric_limits<double>::infinity();
    return ci;
  }
  double t = CriticalValue(confidence, sample_size - 1);
  double se = std::sqrt(sample_variance / static_cast<double>(sample_size)) *
              FinitePopulationCorrection(sample_size, population_size);
  ci.low = sample_mean - t * se;
  ci.high = sample_mean + t * se;
  return ci;
}

ConfidenceInterval SumCi(double sample_mean, double sample_variance,
                         uint64_t sample_size, uint64_t population_size,
                         double confidence) {
  ConfidenceInterval mean_ci = MeanCi(sample_mean, sample_variance, sample_size,
                                      confidence, population_size);
  double scale = static_cast<double>(population_size);
  ConfidenceInterval ci;
  ci.estimate = mean_ci.estimate * scale;
  ci.low = mean_ci.low * scale;
  ci.high = mean_ci.high * scale;
  ci.confidence = confidence;
  return ci;
}

ConfidenceInterval EstimatorCi(double estimate, double estimator_variance,
                               double confidence, uint64_t df) {
  AQP_CHECK(estimator_variance >= 0.0);
  ConfidenceInterval ci;
  ci.estimate = estimate;
  ci.confidence = confidence;
  double crit = CriticalValue(confidence, df);
  double se = std::sqrt(estimator_variance);
  ci.low = estimate - crit * se;
  ci.high = estimate + crit * se;
  return ci;
}

uint64_t RequiredSampleSizeForMean(double pilot_mean, double pilot_variance,
                                   double target_relative_error,
                                   double confidence) {
  AQP_CHECK(pilot_mean != 0.0);
  AQP_CHECK(target_relative_error > 0.0);
  AQP_CHECK(pilot_variance >= 0.0);
  double z = NormalQuantile(1.0 - (1.0 - confidence) / 2.0);
  double tolerance = target_relative_error * std::fabs(pilot_mean);
  double n = pilot_variance * z * z / (tolerance * tolerance);
  if (n < 2.0) return 2;
  return static_cast<uint64_t>(std::ceil(n));
}

}  // namespace stats
}  // namespace aqp
