#include "stats/bounds.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqp {
namespace stats {

uint64_t HoeffdingSampleSize(double range_low, double range_high,
                             double epsilon, double delta) {
  AQP_CHECK(range_high > range_low);
  AQP_CHECK(epsilon > 0.0);
  AQP_CHECK(delta > 0.0 && delta < 1.0);
  double range = range_high - range_low;
  double n = range * range * std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
  return static_cast<uint64_t>(std::ceil(n));
}

double HoeffdingEpsilon(double range_low, double range_high, uint64_t n,
                        double delta) {
  AQP_CHECK(range_high > range_low);
  AQP_CHECK(n > 0);
  AQP_CHECK(delta > 0.0 && delta < 1.0);
  double range = range_high - range_low;
  return range * std::sqrt(std::log(2.0 / delta) /
                           (2.0 * static_cast<double>(n)));
}

double ChernoffUpperTail(uint64_t n, double p, double delta) {
  AQP_CHECK(p > 0.0 && p <= 1.0);
  AQP_CHECK(delta > 0.0 && delta <= 1.0);
  return std::exp(-static_cast<double>(n) * p * delta * delta / 3.0);
}

double GroupMissProbability(uint64_t group_size, double rate) {
  AQP_CHECK(rate >= 0.0 && rate <= 1.0);
  if (rate >= 1.0) return 0.0;
  return std::pow(1.0 - rate, static_cast<double>(group_size));
}

double RateForGroupCoverage(uint64_t group_size, double delta) {
  AQP_CHECK(group_size > 0);
  AQP_CHECK(delta > 0.0 && delta < 1.0);
  // (1-p)^m <= delta  <=>  p >= 1 - delta^(1/m).
  double p = 1.0 - std::pow(delta, 1.0 / static_cast<double>(group_size));
  return std::min(1.0, std::max(0.0, p));
}

}  // namespace stats
}  // namespace aqp
