#ifndef AQP_SAMPLING_RESERVOIR_H_
#define AQP_SAMPLING_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "sampling/sample.h"

namespace aqp {

/// Streaming fixed-size uniform sampler (Vitter's Algorithm L): maintains a
/// uniform random sample of k items from a stream of unknown length using
/// O(k) memory and O(k log(n/k)) random draws. This is the workhorse for
/// incremental maintenance of offline samples under appends.
class ReservoirSampler {
 public:
  ReservoirSampler(size_t k, uint64_t seed);

  /// Offers stream item with the given ordinal; returns the slot in [0, k)
  /// it replaced, or -1 if not taken. Items must be offered in order.
  int64_t Offer();

  /// Number of items seen so far.
  uint64_t items_seen() const { return count_; }
  size_t capacity() const { return k_; }

 private:
  /// Geometric skip length given the current weight.
  uint64_t SkipLength();

  size_t k_;
  uint64_t count_ = 0;
  double w_;             // Algorithm L's running weight.
  uint64_t next_take_;   // Ordinal of the next item to take.
  Pcg32 rng_;
};

/// Draws a uniform fixed-size sample of `k` rows from `table` (all rows if
/// k >= rows). Weights are N/k so HT totals scale correctly.
Result<Sample> ReservoirSample(const Table& table, size_t k, uint64_t seed);

}  // namespace aqp

#endif  // AQP_SAMPLING_RESERVOIR_H_
