#include "sampling/outlier_index.h"

#include <algorithm>
#include <cmath>

#include "expr/eval.h"
#include "sampling/bernoulli.h"
#include "stats/descriptive.h"

namespace aqp {

Result<OutlierIndex> OutlierIndex::Build(const Table& table,
                                         const std::string& measure_column,
                                         double outlier_fraction) {
  if (outlier_fraction < 0.0 || outlier_fraction >= 1.0) {
    return Status::InvalidArgument("outlier fraction must be in [0, 1)");
  }
  AQP_ASSIGN_OR_RETURN(size_t mcol, table.ColumnIndex(measure_column));
  const Column& m = table.column(mcol);
  if (!IsNumeric(m.type())) {
    return Status::InvalidArgument("measure column must be numeric");
  }
  stats::Accumulator acc;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (!m.IsNull(i)) acc.Add(m.NumericAt(i));
  }
  double mean = acc.mean();

  size_t num_outliers = static_cast<size_t>(
      std::llround(outlier_fraction * static_cast<double>(table.num_rows())));
  std::vector<uint32_t> order(table.num_rows());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  auto deviation = [&](uint32_t i) {
    return m.IsNull(i) ? 0.0 : std::fabs(m.NumericAt(i) - mean);
  };
  // Partial sort: largest deviations first.
  std::nth_element(order.begin(),
                   order.begin() + static_cast<int64_t>(
                                       std::min(num_outliers, order.size())),
                   order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return deviation(a) > deviation(b);
                   });
  std::vector<uint32_t> outlier_rows(
      order.begin(),
      order.begin() + static_cast<int64_t>(std::min(num_outliers,
                                                    order.size())));
  std::vector<uint32_t> inlier_rows(
      order.begin() + static_cast<int64_t>(std::min(num_outliers,
                                                    order.size())),
      order.end());
  // Keep deterministic row order inside each side.
  std::sort(outlier_rows.begin(), outlier_rows.end());
  std::sort(inlier_rows.begin(), inlier_rows.end());

  OutlierIndex index;
  index.outliers_ = std::make_shared<Table>(table.Take(outlier_rows));
  index.inliers_ = std::make_shared<Table>(table.Take(inlier_rows));
  index.measure_column_ = measure_column;
  return index;
}

Result<PointEstimate> OutlierIndex::EstimateSum(
    double inlier_rate, uint64_t seed, const ExprPtr& predicate) const {
  // Exact contribution of the outliers.
  AQP_ASSIGN_OR_RETURN(size_t mcol, outliers_->ColumnIndex(measure_column_));
  std::vector<uint8_t> qualifies(outliers_->num_rows(), 1);
  if (predicate != nullptr) {
    AQP_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                         EvalPredicate(*predicate, *outliers_));
    std::fill(qualifies.begin(), qualifies.end(), 0);
    for (uint32_t i : sel) qualifies[i] = 1;
  }
  double exact_sum = 0.0;
  const Column& m = outliers_->column(mcol);
  for (size_t i = 0; i < outliers_->num_rows(); ++i) {
    if (qualifies[i] && !m.IsNull(i)) exact_sum += m.NumericAt(i);
  }

  // Sampled contribution of the inliers.
  AQP_ASSIGN_OR_RETURN(Sample sample,
                       BernoulliRowSample(*inliers_, inlier_rate, seed));
  AQP_ASSIGN_OR_RETURN(PointEstimate inlier_est,
                       aqp::EstimateSum(sample, Col(measure_column_),
                                        predicate));
  PointEstimate out;
  out.estimate = exact_sum + inlier_est.estimate;
  out.variance = inlier_est.variance;  // Outlier part is exact: variance 0.
  out.df = inlier_est.df;
  return out;
}

}  // namespace aqp
