#include "sampling/congressional.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "engine/aggregate.h"

namespace aqp {

Result<StratifiedSampleResult> CongressionalSample(
    const Table& table, const std::string& group_column, uint64_t budget,
    uint64_t seed) {
  if (budget == 0) return Status::InvalidArgument("budget must be positive");
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot sample an empty table");
  }
  AQP_ASSIGN_OR_RETURN(GroupIndex index,
                       BuildGroupIndex(table, {Col(group_column)}));
  const size_t num_groups = index.num_groups;
  std::vector<std::vector<uint32_t>> rows_by_group(num_groups);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    rows_by_group[index.group_ids[i]].push_back(static_cast<uint32_t>(i));
  }

  const double total_rows = static_cast<double>(table.num_rows());
  const double b = static_cast<double>(budget);
  // House: proportional. Senate: equal. Congress: max of the two, rescaled.
  std::vector<double> congress(num_groups);
  double congress_total = 0.0;
  for (size_t g = 0; g < num_groups; ++g) {
    double house = b * static_cast<double>(rows_by_group[g].size()) /
                   total_rows;
    double senate = b / static_cast<double>(num_groups);
    congress[g] = std::max(house, senate);
    congress_total += congress[g];
  }

  Pcg32 rng(seed);
  StratifiedSampleResult result;
  result.sample.table = Table(table.schema());
  std::vector<uint32_t> keep;
  for (size_t g = 0; g < num_groups; ++g) {
    std::vector<uint32_t>& rows = rows_by_group[g];
    uint64_t alloc = static_cast<uint64_t>(
        std::llround(b * congress[g] / congress_total));
    alloc = std::max<uint64_t>(alloc, 1);
    alloc = std::min<uint64_t>(alloc, rows.size());
    for (uint64_t i = 0; i < alloc; ++i) {
      uint64_t j = i + rng.UniformUint64(rows.size() - i);
      std::swap(rows[i], rows[j]);
    }
    double weight =
        static_cast<double>(rows.size()) / static_cast<double>(alloc);
    for (uint64_t i = 0; i < alloc; ++i) {
      keep.push_back(rows[i]);
      result.sample.weights.push_back(weight);
      result.sample.unit_ids.push_back(
          static_cast<uint32_t>(result.sample.unit_ids.size()));
    }
    StratumInfo info;
    info.key = index.key_columns[0].GetValue(g);
    info.population_rows = rows.size();
    info.sampled_rows = alloc;
    result.strata.push_back(std::move(info));
  }
  result.sample.table = table.Take(keep);
  result.sample.num_units_sampled = keep.size();
  result.sample.num_units_population = table.num_rows();
  result.sample.nominal_rate =
      static_cast<double>(keep.size()) / total_rows;
  result.sample.population_rows = table.num_rows();
  return result;
}

}  // namespace aqp
