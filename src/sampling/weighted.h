#ifndef AQP_SAMPLING_WEIGHTED_H_
#define AQP_SAMPLING_WEIGHTED_H_

#include <string>

#include "common/result.h"
#include "sampling/sample.h"

namespace aqp {

/// Measure-biased (probability-proportional-to-size) Poisson sampling: row i
/// is included independently with probability
///   p_i = min(1, expected_rows * |x_i| / sum_j |x_j|),
/// where x is the measure column. Rows with large |x| — exactly the rows that
/// dominate a SUM — are sampled preferentially, which slashes the variance of
/// SUM estimates on skewed data (the paper's workload-aware sampling family).
/// NULL measures get probability expected_rows / N (uniform fallback).
Result<Sample> MeasureBiasedSample(const Table& table,
                                   const std::string& measure_column,
                                   uint64_t expected_rows, uint64_t seed);

}  // namespace aqp

#endif  // AQP_SAMPLING_WEIGHTED_H_
