#ifndef AQP_SAMPLING_BERNOULLI_H_
#define AQP_SAMPLING_BERNOULLI_H_

#include "common/result.h"
#include "sampling/sample.h"

namespace aqp {

/// Uniform row-level Bernoulli sampling: every row is included independently
/// with probability `rate` (SQL's TABLESAMPLE BERNOULLI). The sample size is
/// Binomial(N, rate); weights are the constant 1/rate.
Result<Sample> BernoulliRowSample(const Table& table, double rate,
                                  uint64_t seed);

}  // namespace aqp

#endif  // AQP_SAMPLING_BERNOULLI_H_
