#ifndef AQP_SAMPLING_BERNOULLI_H_
#define AQP_SAMPLING_BERNOULLI_H_

#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/exec_options.h"
#include "sampling/sample.h"

namespace aqp {

/// Uniform row-level Bernoulli sampling: every row is included independently
/// with probability `rate` (SQL's TABLESAMPLE BERNOULLI). The sample size is
/// Binomial(N, rate); weights are the constant 1/rate. This overload draws
/// from a single RNG stream, serially — the legacy deterministic behavior.
Result<Sample> BernoulliRowSample(const Table& table, double rate,
                                  uint64_t seed);

/// Morsel-parallel Bernoulli row sampling: when the table clears
/// exec.parallel_min_rows, rows are split into exec.morsel_rows-sized
/// morsels, morsel m draws from MorselRng(seed, m), and kept rows are
/// gathered in parallel. The drawn set depends only on (seed, morsel_rows) —
/// never the thread count. Smaller tables delegate to the serial overload.
/// `run_stats`, when non-null, accumulates parallel-run counters.
Result<Sample> BernoulliRowSample(const Table& table, double rate,
                                  uint64_t seed, const ExecOptions& exec,
                                  ParallelRunStats* run_stats = nullptr);

}  // namespace aqp

#endif  // AQP_SAMPLING_BERNOULLI_H_
