#ifndef AQP_SAMPLING_JOIN_SYNOPSIS_H_
#define AQP_SAMPLING_JOIN_SYNOPSIS_H_

#include <string>

#include "common/result.h"
#include "sampling/sample.h"

namespace aqp {

/// AQUA-style join synopsis (Acharya et al., SIGMOD'99) for foreign-key
/// joins: sample the FACT side, then join each sampled fact row to its
/// (unique) dimension match, yielding a uniform sample OF THE JOIN RESULT.
/// This sidesteps the classic pitfall the paper emphasizes: the join of two
/// independent samples is NOT a sample of the join — its size collapses
/// (rate^2) and its variance explodes. Sampling one side of an FK join and
/// joining it fully preserves uniformity at rate `rate`.
///
/// The schema of the synopsis is fact fields followed by dim fields. Fact
/// rows with no dimension match are dropped (inner-join semantics).
Result<Sample> BuildJoinSynopsis(const Table& fact,
                                 const std::string& fact_key,
                                 const Table& dim, const std::string& dim_key,
                                 double rate, uint64_t seed);

/// The anti-pattern, provided for the E4 experiment: Bernoulli-sample BOTH
/// sides at `rate` and join the samples. Weights are 1/rate^2 (a pair
/// survives only if both endpoints do), so HT totals remain unbiased — but
/// the variance is dramatically worse, which is the measurable claim.
Result<Sample> JoinOfSamples(const Table& fact, const std::string& fact_key,
                             const Table& dim, const std::string& dim_key,
                             double rate, uint64_t seed);

}  // namespace aqp

#endif  // AQP_SAMPLING_JOIN_SYNOPSIS_H_
