#include "sampling/weighted.h"

#include <cmath>

#include "common/random.h"

namespace aqp {

Result<Sample> MeasureBiasedSample(const Table& table,
                                   const std::string& measure_column,
                                   uint64_t expected_rows, uint64_t seed) {
  if (expected_rows == 0) {
    return Status::InvalidArgument("expected_rows must be positive");
  }
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot sample an empty table");
  }
  AQP_ASSIGN_OR_RETURN(size_t mcol, table.ColumnIndex(measure_column));
  const Column& m = table.column(mcol);
  if (!IsNumeric(m.type())) {
    return Status::InvalidArgument("measure column must be numeric");
  }
  const size_t n = table.num_rows();
  double total_abs = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (!m.IsNull(i)) total_abs += std::fabs(m.NumericAt(i));
  }
  double uniform_p = std::min(
      1.0, static_cast<double>(expected_rows) / static_cast<double>(n));
  double scale = total_abs > 0.0
                     ? static_cast<double>(expected_rows) / total_abs
                     : 0.0;

  Pcg32 rng(seed);
  Sample sample;
  std::vector<uint32_t> keep;
  for (size_t i = 0; i < n; ++i) {
    double p;
    if (m.IsNull(i) || total_abs == 0.0) {
      p = uniform_p;
    } else {
      p = std::min(1.0, scale * std::fabs(m.NumericAt(i)));
      // Rows with measure 0 would never be sampled and would bias COUNT
      // estimates; give them a small floor probability.
      p = std::max(p, uniform_p * 0.01);
    }
    if (rng.Bernoulli(p)) {
      keep.push_back(static_cast<uint32_t>(i));
      sample.weights.push_back(1.0 / p);
      sample.unit_ids.push_back(static_cast<uint32_t>(keep.size() - 1));
    }
  }
  sample.table = table.Take(keep);
  sample.num_units_sampled = keep.size();
  sample.num_units_population = n;
  sample.nominal_rate =
      static_cast<double>(expected_rows) / static_cast<double>(n);
  sample.population_rows = n;
  return sample;
}

}  // namespace aqp
