#ifndef AQP_SAMPLING_OUTLIER_INDEX_H_
#define AQP_SAMPLING_OUTLIER_INDEX_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "sampling/ht_estimator.h"
#include "storage/table.h"

namespace aqp {

/// Outlier index (Chaudhuri, Das, Datar, Motwani, Narasayya, ICDE'01): the
/// rows whose measure deviates most from the mean are stored exactly in a
/// side index; only the well-behaved remainder is sampled. SUM estimates
/// become  exact(outliers) + HT-estimate(inliers), removing the heavy tail
/// that makes uniform sampling useless on skewed data.
class OutlierIndex {
 public:
  /// Builds an index over `measure_column`, pulling the `outlier_fraction`
  /// of rows with the largest |x - mean| into the exact side.
  static Result<OutlierIndex> Build(const Table& table,
                                    const std::string& measure_column,
                                    double outlier_fraction);

  /// Estimates SUM(measure) [optionally over rows matching `predicate`]:
  /// exact outlier contribution + Bernoulli-sample estimate of the inliers.
  Result<PointEstimate> EstimateSum(double inlier_rate, uint64_t seed,
                                    const ExprPtr& predicate = nullptr) const;

  const Table& outliers() const { return *outliers_; }
  const Table& inliers() const { return *inliers_; }
  const std::string& measure_column() const { return measure_column_; }

 private:
  OutlierIndex() = default;

  std::shared_ptr<Table> outliers_;
  std::shared_ptr<Table> inliers_;
  std::string measure_column_;
};

}  // namespace aqp

#endif  // AQP_SAMPLING_OUTLIER_INDEX_H_
