#ifndef AQP_SAMPLING_STRATIFIED_H_
#define AQP_SAMPLING_STRATIFIED_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/exec_options.h"
#include "sampling/sample.h"
#include "storage/value.h"

namespace aqp {

/// How a stratified sampler splits the row budget across strata.
enum class Allocation {
  kProportional,  // n_h ∝ N_h: mirrors the data, rare strata stay rare.
  kEqual,         // n_h = budget / H: guarantees coverage of small strata
                  // (BlinkDB-style stratified samples for rare groups).
  kNeyman,        // n_h ∝ N_h * s_h: variance-optimal for a measure column.
};

/// Per-stratum bookkeeping in a stratified sample.
struct StratumInfo {
  Value key;
  uint64_t population_rows = 0;
  uint64_t sampled_rows = 0;
};

/// A stratified sample: the Sample carries per-row weights N_h / n_h, so HT
/// estimation composes unchanged; `strata` records the design.
struct StratifiedSampleResult {
  Sample sample;
  std::vector<StratumInfo> strata;
};

/// Draws a stratified sample of ~`budget` rows grouped by `strata_column`.
/// For kNeyman a numeric `measure_column` is required (its within-stratum
/// stddev drives the allocation). Every non-empty stratum receives at least
/// one row (budget permitting), which is the property that rescues rare
/// groups from being missed — at the cost of building and maintaining the
/// stratification offline.
Result<StratifiedSampleResult> StratifiedSample(
    const Table& table, const std::string& strata_column, uint64_t budget,
    Allocation allocation, uint64_t seed,
    const std::string& measure_column = "");

/// Same design, parallel gather: stratification and the per-stratum draws
/// are identical to the serial overload (single RNG stream, so the selected
/// row set never depends on the thread count); only the final materialization
/// of kept rows runs column-parallel when the sample clears the morsel gate.
/// `run_stats`, when non-null, accumulates parallel-run counters.
Result<StratifiedSampleResult> StratifiedSample(
    const Table& table, const std::string& strata_column, uint64_t budget,
    Allocation allocation, uint64_t seed, const ExecOptions& exec,
    ParallelRunStats* run_stats = nullptr,
    const std::string& measure_column = "");

}  // namespace aqp

#endif  // AQP_SAMPLING_STRATIFIED_H_
