#ifndef AQP_SAMPLING_SAMPLE_H_
#define AQP_SAMPLING_SAMPLE_H_

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace aqp {

/// A sample of a table together with the design information estimators need:
/// per-row Horvitz–Thompson weights (1 / inclusion probability) and the
/// sampling-unit structure. For row-level designs every row is its own unit;
/// for block designs all rows of a block share a unit id — estimators must
/// aggregate to unit level first because rows within a unit are not
/// independent (the statistical heart of block-sampling error analysis).
struct Sample {
  Table table;

  /// HT weight per sampled row: w_i = 1 / P(row i included).
  std::vector<double> weights;

  /// Dense sampling-unit id per sampled row (row index within sample for
  /// row-level designs; sampled-block ordinal for block designs).
  std::vector<uint32_t> unit_ids;

  /// Base-table rows per sampled unit, indexed by unit id (1.0 for row-level
  /// designs; the block's row count for block designs, including ragged last
  /// blocks). Enables ratio-to-size cluster estimation, which is exact for
  /// COUNT(*) and robust to uneven unit sizes. May be empty when unknown.
  std::vector<double> unit_sizes;

  /// Number of distinct units in this sample / in the population.
  uint64_t num_units_sampled = 0;
  uint64_t num_units_population = 0;

  /// Nominal inclusion probability for equal-probability designs (Bernoulli
  /// rate or k/N); informational for unequal-probability designs.
  double nominal_rate = 1.0;

  /// Rows in the sampled population.
  uint64_t population_rows = 0;

  size_t num_rows() const { return table.num_rows(); }
};

}  // namespace aqp

#endif  // AQP_SAMPLING_SAMPLE_H_
