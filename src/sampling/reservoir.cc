#include "sampling/reservoir.h"

#include <cmath>

#include "common/check.h"

namespace aqp {

ReservoirSampler::ReservoirSampler(size_t k, uint64_t seed)
    : k_(k), rng_(seed) {
  AQP_CHECK(k > 0);
  w_ = std::exp(std::log(rng_.NextDouble() + 1e-300) / static_cast<double>(k_));
  // Algorithm L: the first take after the fill phase is itself preceded by a
  // geometric skip.
  next_take_ = k_ + SkipLength() + 1;
}

uint64_t ReservoirSampler::SkipLength() {
  double u = rng_.NextDouble();
  return static_cast<uint64_t>(
      std::floor(std::log(u + 1e-300) / std::log(1.0 - w_)));
}

int64_t ReservoirSampler::Offer() {
  uint64_t ordinal = count_++;
  if (ordinal < k_) {
    return static_cast<int64_t>(ordinal);  // Fill phase.
  }
  if (ordinal + 1 <= next_take_) {
    if (ordinal + 1 < next_take_) return -1;  // Inside a skip run.
    // ordinal + 1 == next_take_ (1-based): take this item.
    int64_t slot = static_cast<int64_t>(rng_.UniformUint64(k_));
    w_ *= std::exp(std::log(rng_.NextDouble() + 1e-300) /
                   static_cast<double>(k_));
    next_take_ = (ordinal + 1) + SkipLength() + 1;
    return slot;
  }
  return -1;
}

Result<Sample> ReservoirSample(const Table& table, size_t k, uint64_t seed) {
  if (k == 0) return Status::InvalidArgument("reservoir size must be > 0");
  const size_t n = table.num_rows();
  Sample sample;
  if (k >= n) {
    std::vector<uint32_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = static_cast<uint32_t>(i);
    sample.table = table.Take(all);
    sample.weights.assign(n, 1.0);
    sample.unit_ids = all;
    sample.unit_sizes.assign(n, 1.0);
    sample.num_units_sampled = n;
    sample.num_units_population = n;
    sample.nominal_rate = 1.0;
    sample.population_rows = n;
    return sample;
  }
  ReservoirSampler sampler(k, seed);
  std::vector<uint32_t> reservoir(k, 0);
  for (size_t i = 0; i < n; ++i) {
    int64_t slot = sampler.Offer();
    if (slot >= 0) reservoir[static_cast<size_t>(slot)] = static_cast<uint32_t>(i);
  }
  sample.table = table.Take(reservoir);
  double weight = static_cast<double>(n) / static_cast<double>(k);
  sample.weights.assign(k, weight);
  sample.unit_ids.resize(k);
  for (size_t i = 0; i < k; ++i) sample.unit_ids[i] = static_cast<uint32_t>(i);
  sample.unit_sizes.assign(k, 1.0);
  sample.num_units_sampled = k;
  sample.num_units_population = n;
  sample.nominal_rate = static_cast<double>(k) / static_cast<double>(n);
  sample.population_rows = n;
  return sample;
}

}  // namespace aqp
