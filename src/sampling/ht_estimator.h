#ifndef AQP_SAMPLING_HT_ESTIMATOR_H_
#define AQP_SAMPLING_HT_ESTIMATOR_H_

#include <cstdint>

#include "common/result.h"
#include "expr/expr.h"
#include "sampling/sample.h"
#include "stats/confidence.h"

namespace aqp {

/// A point estimate of a population aggregate together with the estimated
/// variance of the estimator and the degrees of freedom available for a
/// Student-t interval.
struct PointEstimate {
  double estimate = 0.0;
  double variance = 0.0;  // Estimated Var of the estimator itself.
  uint64_t df = 0;        // Sampling units - 1.

  /// Two-sided CI at the given confidence (t-based when df is small).
  stats::ConfidenceInterval Ci(double confidence) const {
    return stats::EstimatorCi(estimate, variance, confidence, df);
  }
};

/// Horvitz–Thompson estimators over a Sample. All three aggregate at the
/// *sampling unit* level first (rows for row designs, blocks for block
/// designs), which is what makes the variance estimates valid in the
/// presence of intra-block correlation:
///   SUM:   T = sum_u W_u * y_u,        Var = sum_u W_u (W_u - 1) y_u^2
///   COUNT: same with y_u = qualifying-row count of unit u
///   AVG:   ratio T_x / T_1 with linearized (delta-method) variance.
/// `predicate` (optional) restricts to qualifying rows, evaluated on the
/// sample; `measure` must be numeric. Rows with NULL measure are skipped for
/// SUM/AVG, matching SQL semantics.
Result<PointEstimate> EstimateSum(const Sample& sample, const ExprPtr& measure,
                                  const ExprPtr& predicate = nullptr);

Result<PointEstimate> EstimateCount(const Sample& sample,
                                    const ExprPtr& predicate = nullptr);

Result<PointEstimate> EstimateAvg(const Sample& sample, const ExprPtr& measure,
                                  const ExprPtr& predicate = nullptr);

}  // namespace aqp

#endif  // AQP_SAMPLING_HT_ESTIMATOR_H_
