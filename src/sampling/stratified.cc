#include "sampling/stratified.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/random.h"
#include "engine/aggregate.h"
#include "stats/descriptive.h"

namespace aqp {

namespace {

// Shared design half of both StratifiedSample overloads; the caller-provided
// `gather` closure materializes the kept rows.
template <typename GatherFn>
Result<StratifiedSampleResult> StratifiedSampleImpl(
    const Table& table, const std::string& strata_column, uint64_t budget,
    Allocation allocation, uint64_t seed, const std::string& measure_column,
    GatherFn gather) {
  if (budget == 0) return Status::InvalidArgument("budget must be positive");
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot stratify an empty table");
  }
  AQP_ASSIGN_OR_RETURN(GroupIndex index,
                       BuildGroupIndex(table, {Col(strata_column)}));
  const size_t num_strata = index.num_groups;

  // Rows per stratum.
  std::vector<std::vector<uint32_t>> rows_by_stratum(num_strata);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    rows_by_stratum[index.group_ids[i]].push_back(static_cast<uint32_t>(i));
  }

  // Optional per-stratum stddev for Neyman allocation.
  std::vector<double> stddev(num_strata, 1.0);
  if (allocation == Allocation::kNeyman) {
    if (measure_column.empty()) {
      return Status::InvalidArgument(
          "Neyman allocation requires a measure column");
    }
    AQP_ASSIGN_OR_RETURN(size_t mcol, table.ColumnIndex(measure_column));
    if (!IsNumeric(table.column(mcol).type())) {
      return Status::InvalidArgument("measure column must be numeric");
    }
    std::vector<stats::Accumulator> accs(num_strata);
    const Column& m = table.column(mcol);
    for (size_t i = 0; i < table.num_rows(); ++i) {
      if (!m.IsNull(i)) accs[index.group_ids[i]].Add(m.NumericAt(i));
    }
    for (size_t h = 0; h < num_strata; ++h) {
      stddev[h] = std::max(accs[h].sample_stddev(), 1e-9);
    }
  }

  // Allocation scores -> integer sample sizes (>= 1 per stratum, <= N_h).
  std::vector<double> score(num_strata);
  for (size_t h = 0; h < num_strata; ++h) {
    double nh = static_cast<double>(rows_by_stratum[h].size());
    switch (allocation) {
      case Allocation::kProportional:
        score[h] = nh;
        break;
      case Allocation::kEqual:
        score[h] = 1.0;
        break;
      case Allocation::kNeyman:
        score[h] = nh * stddev[h];
        break;
    }
  }
  double total_score = 0.0;
  for (double s : score) total_score += s;
  AQP_CHECK(total_score > 0.0);

  std::vector<uint64_t> alloc(num_strata);
  for (size_t h = 0; h < num_strata; ++h) {
    uint64_t n = static_cast<uint64_t>(
        std::llround(static_cast<double>(budget) * score[h] / total_score));
    n = std::max<uint64_t>(n, 1);
    n = std::min<uint64_t>(n, rows_by_stratum[h].size());
    alloc[h] = n;
  }

  // Draw a simple random sample (without replacement) inside each stratum.
  Pcg32 rng(seed);
  StratifiedSampleResult result;
  result.sample.table = Table(table.schema());
  std::vector<uint32_t> keep;
  for (size_t h = 0; h < num_strata; ++h) {
    std::vector<uint32_t>& rows = rows_by_stratum[h];
    // Partial Fisher–Yates: first alloc[h] positions become the sample.
    for (uint64_t i = 0; i < alloc[h]; ++i) {
      uint64_t j = i + rng.UniformUint64(rows.size() - i);
      std::swap(rows[i], rows[j]);
    }
    double weight = static_cast<double>(rows.size()) /
                    static_cast<double>(alloc[h]);
    for (uint64_t i = 0; i < alloc[h]; ++i) {
      keep.push_back(rows[i]);
      result.sample.weights.push_back(weight);
      result.sample.unit_ids.push_back(
          static_cast<uint32_t>(result.sample.unit_ids.size()));
    }
    StratumInfo info;
    info.key = index.key_columns[0].GetValue(h);
    info.population_rows = rows.size();
    info.sampled_rows = alloc[h];
    result.strata.push_back(std::move(info));
  }
  result.sample.table = gather(keep);
  result.sample.num_units_sampled = keep.size();
  result.sample.num_units_population = table.num_rows();
  result.sample.nominal_rate =
      static_cast<double>(keep.size()) / static_cast<double>(table.num_rows());
  result.sample.population_rows = table.num_rows();
  return result;
}

}  // namespace

Result<StratifiedSampleResult> StratifiedSample(
    const Table& table, const std::string& strata_column, uint64_t budget,
    Allocation allocation, uint64_t seed, const std::string& measure_column) {
  return StratifiedSampleImpl(
      table, strata_column, budget, allocation, seed, measure_column,
      [&](const std::vector<uint32_t>& keep) { return table.Take(keep); });
}

Result<StratifiedSampleResult> StratifiedSample(
    const Table& table, const std::string& strata_column, uint64_t budget,
    Allocation allocation, uint64_t seed, const ExecOptions& exec,
    ParallelRunStats* run_stats, const std::string& measure_column) {
  return StratifiedSampleImpl(
      table, strata_column, budget, allocation, seed, measure_column,
      [&](const std::vector<uint32_t>& keep) {
        if (!exec.UseMorsels(keep.size())) return table.Take(keep);
        return table.Take(keep, exec.ResolvedThreads(), run_stats);
      });
}

}  // namespace aqp
