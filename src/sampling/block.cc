#include "sampling/block.h"

#include "common/random.h"
#include "gov/fault_injector.h"

namespace aqp {

namespace {

// Shared selection + metadata half of both BlockSample overloads; the
// caller-provided `gather` closure materializes the kept rows.
template <typename GatherFn>
Result<Sample> BlockSampleImpl(const Table& table, double rate,
                               uint32_t block_size, uint64_t seed,
                               GatherFn gather) {
  AQP_RETURN_IF_ERROR(gov::FaultInjector::Global().MaybeFail("sampler.block"));
  if (rate <= 0.0 || rate > 1.0) {
    return Status::InvalidArgument("sampling rate must be in (0, 1]");
  }
  if (block_size == 0) {
    return Status::InvalidArgument("block size must be positive");
  }
  Pcg32 rng(seed);
  Sample sample;
  sample.table = Table(table.schema());
  size_t num_blocks = table.NumBlocks(block_size);
  std::vector<uint32_t> keep;
  uint32_t sampled_blocks = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    if (!rng.Bernoulli(rate)) continue;
    auto [first, last] = table.BlockRange(b, block_size);
    for (size_t i = first; i < last; ++i) {
      keep.push_back(static_cast<uint32_t>(i));
      sample.unit_ids.push_back(sampled_blocks);
      sample.weights.push_back(1.0 / rate);
    }
    sample.unit_sizes.push_back(static_cast<double>(last - first));
    ++sampled_blocks;
  }
  sample.table = gather(keep);
  sample.num_units_sampled = sampled_blocks;
  sample.num_units_population = num_blocks;
  sample.nominal_rate = rate;
  sample.population_rows = table.num_rows();
  return sample;
}

}  // namespace

Result<Sample> BlockSample(const Table& table, double rate,
                           uint32_t block_size, uint64_t seed) {
  return BlockSampleImpl(
      table, rate, block_size, seed,
      [&](const std::vector<uint32_t>& keep) { return table.Take(keep); });
}

Result<Sample> BlockSample(const Table& table, double rate,
                           uint32_t block_size, uint64_t seed,
                           const ExecOptions& exec,
                           ParallelRunStats* run_stats) {
  return BlockSampleImpl(
      table, rate, block_size, seed, [&](const std::vector<uint32_t>& keep) {
        if (!exec.UseMorsels(keep.size())) return table.Take(keep);
        return table.Take(keep, exec.ResolvedThreads(), run_stats);
      });
}

Table ShuffleRows(const Table& table, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<uint32_t> perm =
      rng.Permutation(static_cast<uint32_t>(table.num_rows()));
  return table.Take(perm);
}

}  // namespace aqp
