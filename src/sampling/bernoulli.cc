#include "sampling/bernoulli.h"

#include "common/cancellation.h"
#include "common/random.h"
#include "gov/fault_injector.h"

namespace aqp {

Result<Sample> BernoulliRowSample(const Table& table, double rate,
                                  uint64_t seed) {
  AQP_RETURN_IF_ERROR(
      gov::FaultInjector::Global().MaybeFail("sampler.bernoulli"));
  if (rate <= 0.0 || rate > 1.0) {
    return Status::InvalidArgument("sampling rate must be in (0, 1]");
  }
  Pcg32 rng(seed);
  std::vector<uint32_t> keep;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (rng.Bernoulli(rate)) keep.push_back(static_cast<uint32_t>(i));
  }
  Sample sample;
  sample.table = table.Take(keep);
  sample.weights.assign(keep.size(), 1.0 / rate);
  sample.unit_ids.resize(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    sample.unit_ids[i] = static_cast<uint32_t>(i);
  }
  sample.unit_sizes.assign(keep.size(), 1.0);
  sample.num_units_sampled = keep.size();
  sample.num_units_population = table.num_rows();
  sample.nominal_rate = rate;
  sample.population_rows = table.num_rows();
  return sample;
}

Result<Sample> BernoulliRowSample(const Table& table, double rate,
                                  uint64_t seed, const ExecOptions& exec,
                                  ParallelRunStats* run_stats) {
  const size_t n = table.num_rows();
  if (!exec.UseMorsels(n)) return BernoulliRowSample(table, rate, seed);
  AQP_RETURN_IF_ERROR(
      gov::FaultInjector::Global().MaybeFail("sampler.bernoulli"));
  if (rate <= 0.0 || rate > 1.0) {
    return Status::InvalidArgument("sampling rate must be in (0, 1]");
  }
  const size_t morsel_rows = exec.morsel_rows;
  const size_t num_threads = exec.ResolvedThreads();
  const size_t num_morsels = (n + morsel_rows - 1) / morsel_rows;
  std::vector<std::vector<uint32_t>> local(num_morsels);
  ParallelRunStats rs = ThreadPool::Shared().ParallelFor(
      n, morsel_rows, num_threads,
      ThreadPool::ParallelForOptions{exec.cancel},
      [&](size_t, size_t m, size_t begin, size_t end) {
        Pcg32 rng = MorselRng(seed, m);
        for (size_t i = begin; i < end; ++i) {
          if (rng.Bernoulli(rate)) local[m].push_back(static_cast<uint32_t>(i));
        }
      });
  // A partial kept set is not a Bernoulli sample; stop before gathering.
  AQP_RETURN_IF_ERROR(CheckCancelled(exec.cancel));
  if (run_stats != nullptr) run_stats->MergeFrom(rs);
  size_t total = 0;
  for (const std::vector<uint32_t>& v : local) total += v.size();
  std::vector<uint32_t> keep;
  keep.reserve(total);
  for (const std::vector<uint32_t>& v : local) {
    keep.insert(keep.end(), v.begin(), v.end());
  }
  Sample sample;
  sample.table = table.Take(keep, num_threads, run_stats);
  sample.weights.assign(keep.size(), 1.0 / rate);
  sample.unit_ids.resize(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    sample.unit_ids[i] = static_cast<uint32_t>(i);
  }
  sample.unit_sizes.assign(keep.size(), 1.0);
  sample.num_units_sampled = keep.size();
  sample.num_units_population = table.num_rows();
  sample.nominal_rate = rate;
  sample.population_rows = table.num_rows();
  return sample;
}

}  // namespace aqp
