#include "sampling/bernoulli.h"

#include "common/random.h"

namespace aqp {

Result<Sample> BernoulliRowSample(const Table& table, double rate,
                                  uint64_t seed) {
  if (rate <= 0.0 || rate > 1.0) {
    return Status::InvalidArgument("sampling rate must be in (0, 1]");
  }
  Pcg32 rng(seed);
  std::vector<uint32_t> keep;
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (rng.Bernoulli(rate)) keep.push_back(static_cast<uint32_t>(i));
  }
  Sample sample;
  sample.table = table.Take(keep);
  sample.weights.assign(keep.size(), 1.0 / rate);
  sample.unit_ids.resize(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    sample.unit_ids[i] = static_cast<uint32_t>(i);
  }
  sample.unit_sizes.assign(keep.size(), 1.0);
  sample.num_units_sampled = keep.size();
  sample.num_units_population = table.num_rows();
  sample.nominal_rate = rate;
  sample.population_rows = table.num_rows();
  return sample;
}

}  // namespace aqp
