#ifndef AQP_SAMPLING_CONGRESSIONAL_H_
#define AQP_SAMPLING_CONGRESSIONAL_H_

#include <string>

#include "common/result.h"
#include "sampling/stratified.h"

namespace aqp {

/// Congressional sampling (Acharya, Gibbons, Poosala, SIGMOD'00): an
/// allocation for GROUP BY workloads that hedges between the "house"
/// (proportional — good for global aggregates) and the "senate" (equal per
/// group — good for small groups): each group receives the maximum of its
/// house and senate allocations, then everything is scaled back into the
/// budget. Guarantees every group is represented while staying close to
/// proportional for the big ones.
Result<StratifiedSampleResult> CongressionalSample(
    const Table& table, const std::string& group_column, uint64_t budget,
    uint64_t seed);

}  // namespace aqp

#endif  // AQP_SAMPLING_CONGRESSIONAL_H_
