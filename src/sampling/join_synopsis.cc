#include "sampling/join_synopsis.h"

#include <unordered_map>

#include "common/hash.h"
#include "common/random.h"

namespace aqp {
namespace {

// Builds a key -> row-indices map over `keys` (NULL keys excluded).
std::unordered_map<uint64_t, std::vector<uint32_t>> BuildKeyMap(
    const Column& keys) {
  std::unordered_map<uint64_t, std::vector<uint32_t>> map;
  for (size_t j = 0; j < keys.size(); ++j) {
    if (keys.IsNull(j)) continue;
    map[keys.HashAt(j)].push_back(static_cast<uint32_t>(j));
  }
  return map;
}

// Joined output schema: fact fields then dim fields.
Schema JoinedSchema(const Table& fact, const Table& dim) {
  Schema schema;
  for (const Field& f : fact.schema().fields()) schema.AddField(f);
  for (const Field& f : dim.schema().fields()) schema.AddField(f);
  return schema;
}

void EmitJoined(const Table& fact, size_t fi, const Table& dim, size_t dj,
                Table* out) {
  for (size_t c = 0; c < fact.num_columns(); ++c) {
    out->mutable_column(c).AppendFrom(fact.column(c), fi);
  }
  for (size_t c = 0; c < dim.num_columns(); ++c) {
    out->mutable_column(fact.num_columns() + c).AppendFrom(dim.column(c), dj);
  }
}

// Repackages mutable-column-built rows into a well-formed table.
Result<Table> Finalize(Table&& staged) {
  std::vector<Column> cols;
  cols.reserve(staged.num_columns());
  for (size_t c = 0; c < staged.num_columns(); ++c) {
    cols.push_back(staged.column(c));
  }
  return Table::Make(staged.schema(), std::move(cols));
}

}  // namespace

Result<Sample> BuildJoinSynopsis(const Table& fact,
                                 const std::string& fact_key,
                                 const Table& dim, const std::string& dim_key,
                                 double rate, uint64_t seed) {
  if (rate <= 0.0 || rate > 1.0) {
    return Status::InvalidArgument("rate must be in (0, 1]");
  }
  AQP_ASSIGN_OR_RETURN(size_t fk, fact.ColumnIndex(fact_key));
  AQP_ASSIGN_OR_RETURN(size_t dk, dim.ColumnIndex(dim_key));
  const Column& fkeys = fact.column(fk);
  const Column& dkeys = dim.column(dk);
  if (fkeys.type() != dkeys.type()) {
    return Status::InvalidArgument("join key type mismatch");
  }
  auto dim_map = BuildKeyMap(dkeys);

  Pcg32 rng(seed);
  Table staged(JoinedSchema(fact, dim));
  Sample sample;
  uint64_t join_cardinality = 0;  // |fact join dim| estimated exactly below.
  for (size_t i = 0; i < fact.num_rows(); ++i) {
    if (fkeys.IsNull(i)) continue;
    auto it = dim_map.find(fkeys.HashAt(i));
    if (it == dim_map.end()) continue;
    bool sampled = rng.Bernoulli(rate);
    for (uint32_t j : it->second) {
      if (!fkeys.SlotEquals(i, dkeys, j)) continue;
      ++join_cardinality;
      if (sampled) {
        EmitJoined(fact, i, dim, j, &staged);
        sample.weights.push_back(1.0 / rate);
        sample.unit_ids.push_back(
            static_cast<uint32_t>(sample.unit_ids.size()));
      }
    }
  }
  AQP_ASSIGN_OR_RETURN(sample.table, Finalize(std::move(staged)));
  sample.num_units_sampled = sample.table.num_rows();
  sample.num_units_population = join_cardinality;
  sample.nominal_rate = rate;
  sample.population_rows = join_cardinality;
  return sample;
}

Result<Sample> JoinOfSamples(const Table& fact, const std::string& fact_key,
                             const Table& dim, const std::string& dim_key,
                             double rate, uint64_t seed) {
  if (rate <= 0.0 || rate > 1.0) {
    return Status::InvalidArgument("rate must be in (0, 1]");
  }
  AQP_ASSIGN_OR_RETURN(size_t fk, fact.ColumnIndex(fact_key));
  AQP_ASSIGN_OR_RETURN(size_t dk, dim.ColumnIndex(dim_key));
  const Column& fkeys = fact.column(fk);
  const Column& dkeys = dim.column(dk);
  if (fkeys.type() != dkeys.type()) {
    return Status::InvalidArgument("join key type mismatch");
  }
  Pcg32 rng(seed);
  // Independently sample both sides.
  std::vector<uint8_t> fact_in(fact.num_rows());
  for (size_t i = 0; i < fact.num_rows(); ++i) {
    fact_in[i] = rng.Bernoulli(rate) ? 1 : 0;
  }
  std::vector<uint8_t> dim_in(dim.num_rows());
  for (size_t j = 0; j < dim.num_rows(); ++j) {
    dim_in[j] = rng.Bernoulli(rate) ? 1 : 0;
  }
  auto dim_map = BuildKeyMap(dkeys);

  Table staged(JoinedSchema(fact, dim));
  Sample sample;
  uint64_t join_cardinality = 0;
  double pair_weight = 1.0 / (rate * rate);
  for (size_t i = 0; i < fact.num_rows(); ++i) {
    if (fkeys.IsNull(i)) continue;
    auto it = dim_map.find(fkeys.HashAt(i));
    if (it == dim_map.end()) continue;
    for (uint32_t j : it->second) {
      if (!fkeys.SlotEquals(i, dkeys, j)) continue;
      ++join_cardinality;
      if (fact_in[i] && dim_in[j]) {
        EmitJoined(fact, i, dim, j, &staged);
        sample.weights.push_back(pair_weight);
        sample.unit_ids.push_back(
            static_cast<uint32_t>(sample.unit_ids.size()));
      }
    }
  }
  AQP_ASSIGN_OR_RETURN(sample.table, Finalize(std::move(staged)));
  sample.num_units_sampled = sample.table.num_rows();
  sample.num_units_population = join_cardinality;
  sample.nominal_rate = rate * rate;
  sample.population_rows = join_cardinality;
  return sample;
}

}  // namespace aqp
