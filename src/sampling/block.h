#ifndef AQP_SAMPLING_BLOCK_H_
#define AQP_SAMPLING_BLOCK_H_

#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/exec_options.h"
#include "sampling/sample.h"

namespace aqp {

/// Block-level Bernoulli sampling (SQL's TABLESAMPLE SYSTEM): each block of
/// `block_size` consecutive rows is included independently with probability
/// `rate`; rows of a kept block are all included. Skipping non-sampled blocks
/// is what gives block sampling its system efficiency; the price is intra-
/// block correlation, which the unit_ids in the result let estimators handle.
Result<Sample> BlockSample(const Table& table, double rate,
                           uint32_t block_size, uint64_t seed);

/// BlockSample with a parallel gather of the kept rows. Block selection (one
/// Bernoulli draw per block from one stream) stays serial — it is trivially
/// cheap and thread-count independent — so this overload keeps exactly the
/// serial overload's drawn set and differs only in gather wall-clock.
/// `run_stats`, when non-null, accumulates parallel-run counters.
Result<Sample> BlockSample(const Table& table, double rate,
                           uint32_t block_size, uint64_t seed,
                           const ExecOptions& exec,
                           ParallelRunStats* run_stats = nullptr);

/// Shuffles a table's rows (Fisher–Yates with the given seed). Used to build
/// "clustered vs shuffled layout" experiments: block sampling loses
/// statistical efficiency exactly when blocks are internally homogeneous.
Table ShuffleRows(const Table& table, uint64_t seed);

}  // namespace aqp

#endif  // AQP_SAMPLING_BLOCK_H_
