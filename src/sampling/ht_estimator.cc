#include "sampling/ht_estimator.h"

#include <cmath>

#include "common/check.h"
#include "expr/eval.h"

namespace aqp {
namespace {

// Per-unit sums of the measure (y), qualifying-row counts (c), and the unit
// weight (w, constant across a unit's rows in all supported designs).
struct UnitAggregates {
  std::vector<double> y;
  std::vector<double> c;
  std::vector<double> w;
  uint64_t num_units = 0;
};

Result<UnitAggregates> Aggregate(const Sample& sample, const ExprPtr& measure,
                                 const ExprPtr& predicate) {
  UnitAggregates agg;
  agg.num_units = sample.num_units_sampled;
  agg.y.assign(agg.num_units, 0.0);
  agg.c.assign(agg.num_units, 0.0);
  agg.w.assign(agg.num_units, 0.0);

  const size_t n = sample.table.num_rows();
  AQP_CHECK(sample.weights.size() == n);
  AQP_CHECK(sample.unit_ids.size() == n);

  // Qualifying-row mask.
  std::vector<uint8_t> qualifies(n, 1);
  if (predicate != nullptr) {
    AQP_ASSIGN_OR_RETURN(Column mask, Eval(*predicate, sample.table));
    if (mask.type() != DataType::kBool) {
      return Status::InvalidArgument("predicate is not boolean");
    }
    for (size_t i = 0; i < n; ++i) {
      qualifies[i] = (!mask.IsNull(i) && mask.BoolAt(i)) ? 1 : 0;
    }
  }

  // Optional measure values.
  Column values(DataType::kDouble);
  bool has_measure = measure != nullptr;
  if (has_measure) {
    AQP_ASSIGN_OR_RETURN(values, Eval(*measure, sample.table));
    if (!IsNumeric(values.type())) {
      return Status::InvalidArgument("measure must be numeric");
    }
  }

  for (size_t i = 0; i < n; ++i) {
    uint32_t u = sample.unit_ids[i];
    AQP_CHECK(u < agg.num_units);
    agg.w[u] = sample.weights[i];
    if (!qualifies[i]) continue;
    agg.c[u] += 1.0;
    if (has_measure && !values.IsNull(i)) {
      agg.y[u] += values.NumericAt(i);
    }
  }
  return agg;
}

PointEstimate HtTotal(const UnitAggregates& agg, const std::vector<double>& v) {
  PointEstimate out;
  for (uint64_t u = 0; u < agg.num_units; ++u) {
    out.estimate += agg.w[u] * v[u];
    out.variance += agg.w[u] * std::max(agg.w[u] - 1.0, 0.0) * v[u] * v[u];
  }
  out.df = agg.num_units > 0 ? agg.num_units - 1 : 0;
  return out;
}

// True when the design is equal-probability and carries per-unit base sizes,
// enabling the ratio-to-size cluster estimator (exact for COUNT(*), immune
// to random-sample-size noise — far tighter than HT for Bernoulli designs).
bool SupportsRatioToSize(const Sample& sample) {
  if (sample.num_units_sampled < 2 ||
      sample.unit_sizes.size() != sample.num_units_sampled ||
      sample.population_rows == 0 ||
      sample.num_units_population < sample.num_units_sampled) {
    return false;
  }
  for (size_t i = 1; i < sample.weights.size(); ++i) {
    if (std::fabs(sample.weights[i] - sample.weights[0]) >
        1e-9 * std::fabs(sample.weights[0])) {
      return false;
    }
  }
  return true;
}

// Ratio-to-size total: T = N * (sum_u v_u / sum_u n_u), with residual
// variance from e_u = v_u - R n_u (whose mean is exactly zero).
PointEstimate RatioTotal(const Sample& sample, const UnitAggregates& agg,
                         const std::vector<double>& v) {
  const double m = static_cast<double>(sample.num_units_sampled);
  double sum_n = 0.0;
  for (double nu : sample.unit_sizes) sum_n += nu;
  double sum_v = 0.0;
  for (uint64_t u = 0; u < agg.num_units; ++u) sum_v += v[u];
  PointEstimate out;
  out.df = sample.num_units_sampled - 1;
  double ratio = sum_n > 0.0 ? sum_v / sum_n : 0.0;
  double big_n = static_cast<double>(sample.population_rows);
  out.estimate = big_n * ratio;
  double res_sq = 0.0;
  for (uint64_t u = 0; u < agg.num_units; ++u) {
    double e = v[u] - ratio * sample.unit_sizes[u];
    res_sq += e * e;
  }
  double s_e2 = res_sq / (m - 1.0);
  double fpc = 1.0 - m / static_cast<double>(sample.num_units_population);
  double n_bar = sum_n / m;
  out.variance = n_bar > 0.0
                     ? big_n * big_n * fpc * s_e2 / (m * n_bar * n_bar)
                     : 0.0;
  return out;
}

PointEstimate Total(const Sample& sample, const UnitAggregates& agg,
                    const std::vector<double>& v) {
  if (SupportsRatioToSize(sample)) return RatioTotal(sample, agg, v);
  return HtTotal(agg, v);
}

}  // namespace

Result<PointEstimate> EstimateSum(const Sample& sample, const ExprPtr& measure,
                                  const ExprPtr& predicate) {
  if (measure == nullptr) {
    return Status::InvalidArgument("SUM requires a measure expression");
  }
  AQP_ASSIGN_OR_RETURN(UnitAggregates agg,
                       Aggregate(sample, measure, predicate));
  return Total(sample, agg, agg.y);
}

Result<PointEstimate> EstimateCount(const Sample& sample,
                                    const ExprPtr& predicate) {
  AQP_ASSIGN_OR_RETURN(UnitAggregates agg,
                       Aggregate(sample, nullptr, predicate));
  return Total(sample, agg, agg.c);
}

Result<PointEstimate> EstimateAvg(const Sample& sample, const ExprPtr& measure,
                                  const ExprPtr& predicate) {
  if (measure == nullptr) {
    return Status::InvalidArgument("AVG requires a measure expression");
  }
  AQP_ASSIGN_OR_RETURN(UnitAggregates agg,
                       Aggregate(sample, measure, predicate));
  double t_x = 0.0;
  double t_1 = 0.0;
  for (uint64_t u = 0; u < agg.num_units; ++u) {
    t_x += agg.w[u] * agg.y[u];
    t_1 += agg.w[u] * agg.c[u];
  }
  PointEstimate out;
  out.df = agg.num_units > 0 ? agg.num_units - 1 : 0;
  if (t_1 == 0.0) {
    return Status::FailedPrecondition(
        "no qualifying rows in sample; cannot estimate AVG");
  }
  double ratio = t_x / t_1;
  out.estimate = ratio;
  if (SupportsRatioToSize(sample)) {
    // Equal-probability design: delta-method with the per-unit residual
    // sample variance and finite-population correction. The estimate itself
    // is the plain ratio of unweighted unit totals (weights cancel).
    const double m = static_cast<double>(sample.num_units_sampled);
    double sum_y = 0.0;
    double sum_c = 0.0;
    for (uint64_t u = 0; u < agg.num_units; ++u) {
      sum_y += agg.y[u];
      sum_c += agg.c[u];
    }
    if (sum_c <= 0.0) {
      return Status::FailedPrecondition(
          "no qualifying rows in sample; cannot estimate AVG");
    }
    double plain_ratio = sum_y / sum_c;
    double res_sq = 0.0;
    for (uint64_t u = 0; u < agg.num_units; ++u) {
      double d = agg.y[u] - plain_ratio * agg.c[u];
      res_sq += d * d;
    }
    double s_d2 = res_sq / (m - 1.0);
    double fpc = 1.0 - m / static_cast<double>(sample.num_units_population);
    double c_bar = sum_c / m;
    out.estimate = plain_ratio;
    out.variance = fpc * s_d2 / (m * c_bar * c_bar);
    return out;
  }
  // Delta-method: Var(R) ~ Var(sum_u W_u (y_u - R c_u)) / T_1^2.
  double var_num = 0.0;
  for (uint64_t u = 0; u < agg.num_units; ++u) {
    double d = agg.y[u] - ratio * agg.c[u];
    var_num += agg.w[u] * std::max(agg.w[u] - 1.0, 0.0) * d * d;
  }
  out.variance = var_num / (t_1 * t_1);
  return out;
}

}  // namespace aqp
