#ifndef AQP_SERVICE_RESULT_CACHE_H_
#define AQP_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/memory_tracker.h"
#include "core/approx_executor.h"

namespace aqp {
namespace service {

/// The execution-contract half of a result-cache key: everything outside
/// the SQL text that can change the answer a governed executor produces.
struct ContractFingerprint {
  int64_t deadline_ms = -1;
  uint64_t memory_budget_bytes = 0;
  uint64_t seed = 0;
  double confidence = 0.0;
};

/// Order-sensitive 64-bit fingerprint of (SQL text, referenced table
/// versions, execution contract). Two submissions share a fingerprint only
/// when they would provably produce the same (seeded, version-pinned)
/// answer under the same contract. Collisions are possible in principle at
/// 64 bits; at cache sizes of ~1e4 entries the birthday probability is
/// ~1e-12 — accepted, as for every hash-keyed semantic cache.
uint64_t FingerprintQuery(
    std::string_view sql,
    const std::vector<std::pair<std::string, uint64_t>>& table_versions,
    const ContractFingerprint& contract);

/// Point-in-time cache counters.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t insert_faults = 0;  // Inserts skipped by an injected fault.
  uint64_t evictions = 0;
  uint64_t bytes_used = 0;
  size_t entries = 0;
};

/// Estimated heap footprint of a cached result (table, CIs, profile text).
uint64_t ApproxResultBytes(const core::ApproxResult& result);

/// Small semantic result cache: identical (query fingerprint, table
/// versions, contract) submissions are answered from memory without
/// executing anything. Entries are LRU-evicted past `byte_budget` bytes
/// (0 = unbounded); every insert/evict is charged/released on the optional
/// MemoryTracker. Because fingerprints pin table versions, a table
/// replace/append silently invalidates by making old keys unreachable.
///
/// Results are stored behind shared_ptr, so a hit is a cheap pointer copy
/// plus one ApproxResult copy into the caller's hands (the cached object is
/// immutable and never handed out mutable). Thread-safe.
class ResultCache {
 public:
  explicit ResultCache(uint64_t byte_budget, MemoryTracker* tracker = nullptr)
      : byte_budget_(byte_budget), tracker_(tracker) {}
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached result for `fingerprint`, or null on miss.
  std::shared_ptr<const core::ApproxResult> Lookup(uint64_t fingerprint);

  /// Caches `result` under `fingerprint`, evicting LRU entries past the
  /// byte budget. An entry larger than the whole budget is still inserted
  /// and becomes the next eviction victim (bounded memory either way).
  /// The `result_cache.insert` fault site lives here: an injected failure
  /// skips caching (counted) — the answer already reached the client, only
  /// reuse is lost.
  void Insert(uint64_t fingerprint, core::ApproxResult result);

  ResultCacheStats stats() const;
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const core::ApproxResult> result;
    uint64_t bytes = 0;
    std::list<uint64_t>::iterator lru_it;
  };

  void EvictToBudget(uint64_t keep);

  const uint64_t byte_budget_;
  MemoryTracker* tracker_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // Front = most recently used.
  uint64_t bytes_used_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t insert_faults_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_RESULT_CACHE_H_
