#include "service/accuracy_auditor.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "gov/fault_injector.h"
#include "gov/query_context.h"
#include "obs/metrics.h"
#include "sql/parser.h"

namespace aqp {
namespace service {
namespace {

// Joins the non-aggregate cells of one output row into a group-identity key
// so approximate and exact rows can be matched independent of row order.
std::string RowKey(const Table& t, size_t row,
                   const std::vector<bool>& is_aggregate) {
  std::string key;
  for (size_t c = 0; c < t.num_columns() && c < is_aggregate.size(); ++c) {
    if (is_aggregate[c]) continue;
    key += t.column(c).IsNull(row) ? "NULL" : t.column(c).GetValue(row).ToString();
    key += '\x1f';
  }
  return key;
}

}  // namespace

AuditOptions AuditOptions::FromEnv(AuditOptions base) {
  if (const char* f = std::getenv("AQP_AUDIT_FRACTION")) {
    char* end = nullptr;
    double v = std::strtod(f, &end);
    if (end != f) base.fraction = v;
  }
  if (const char* d = std::getenv("AQP_AUDIT_DEADLINE_MS")) {
    char* end = nullptr;
    long long v = std::strtoll(d, &end, 10);
    if (end != d) base.deadline_ms = v;
  }
  return base;
}

AccuracyAuditor::AccuracyAuditor(const Catalog* catalog, AuditOptions options,
                                 obs::QueryLog* log)
    : catalog_(catalog),
      options_(options),
      log_(log),
      interval_(options.fraction <= 0.0
                    ? 0
                    : std::max<uint64_t>(
                          1, static_cast<uint64_t>(
                                 std::llround(1.0 / options.fraction)))) {
  if (interval_ > 0) {
    worker_ = std::thread([this] { Loop(); });
  }
}

AccuracyAuditor::~AccuracyAuditor() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    worker_.join();
  }
}

bool AccuracyAuditor::MaybeEnqueue(const std::string& sql,
                                   const core::ApproxResult& result) {
  if (interval_ == 0) return false;
  if (!result.approximated || result.cis.empty()) return false;

  Pending p;
  p.sql = sql;
  p.answer = result.table;
  p.cis = result.cis;
  p.table = result.sampled_table;
  p.rung = result.profile.degradation_rung;
  p.estimated_error = result.profile.estimated_error;
  p.pre_inflation_error = result.profile.pre_inflation_error;
  if (result.profile.contract.has_value() &&
      result.profile.contract->requested_confidence > 0.0) {
    p.nominal_confidence = result.profile.contract->requested_confidence;
  }

  bool enqueued = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    ++eligible_;
    bool prioritized = false;
    if (!p.table.empty()) {
      auto prio = priority_tables_.find(p.table);
      if (prio != priority_tables_.end()) {
        prioritized = true;
        if (--prio->second == 0) priority_tables_.erase(prio);
      }
    }
    if (!prioritized && eligible_ % interval_ != 0) return false;
    ++sampled_;
    if (queue_.size() >= options_.queue_capacity) {
      // Never back-pressure the foreground: the audit is best-effort.
      ++dropped_;
      return false;
    }
    queue_.push_back(std::move(p));
    enqueued = true;
  }
  work_cv_.notify_one();
  return enqueued;
}

void AccuracyAuditor::PrioritizeTable(const std::string& table,
                                      uint64_t budget) {
  if (interval_ == 0 || table.empty() || budget == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t& remaining = priority_tables_[table];
  remaining = std::max(remaining, budget);
}

void AccuracyAuditor::Drain() {
  if (interval_ == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return queue_.empty() && idle_; });
}

AuditorStats AccuracyAuditor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AuditorStats s;
  s.eligible = eligible_;
  s.sampled = sampled_;
  s.dropped = dropped_;
  s.audited = audited_;
  s.failed = failed_;
  s.cells = cells_;
  s.covered = covered_;
  s.coverage_regression = coverage_regression_;
  return s;
}

void AccuracyAuditor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty() && stop_) break;
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    idle_ = false;
    lock.unlock();
    AuditOne(p);  // Ground truth runs without mu_ held.
    lock.lock();
    idle_ = true;
    drained_cv_.notify_all();
  }
}

void AccuracyAuditor::AuditOne(const Pending& p) {
  auto start = std::chrono::steady_clock::now();
  double worst_observed = 0.0;
  Result<std::pair<uint64_t, uint64_t>> verdict =
      CompareAgainstTruth(p, &worst_observed);
  double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  if (verdict.ok()) {
    RecordVerdict(p, verdict.value().first, verdict.value().second,
                  worst_observed);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    ++failed_;
  }

  if (log_ != nullptr) {
    obs::QueryLogEvent e;
    e.kind = "audit";
    e.sql = p.sql;
    e.sql_fingerprint = HashString(p.sql);
    e.status = verdict.ok() ? "ok" : "failed";
    e.degradation_rung = p.rung;
    e.estimated_error = p.estimated_error;
    e.pre_inflation_error = p.pre_inflation_error;
    e.wall_ms = wall_ms;
    e.audited_table = p.table;
    if (verdict.ok()) {
      e.audit_cells = verdict.value().first;
      e.audit_covered = verdict.value().second;
      e.observed_error = worst_observed;
    }
    log_->Append(std::move(e));
  }
}

Result<std::pair<uint64_t, uint64_t>> AccuracyAuditor::CompareAgainstTruth(
    const Pending& p, double* worst_observed_error) {
  // Chaos site: a failed re-execution is one dropped audit verdict (counted,
  // logged status="failed"), never a foreground-visible error.
  AQP_RETURN_IF_ERROR(gov::FaultInjector::Global().MaybeFail("audit.reexec"));
  // Ground truth: the same SQL with the error clause stripped, executed
  // exactly, single-threaded (stays off the shared morsel pool), under the
  // auditor's own deadline and memory budget.
  AQP_ASSIGN_OR_RETURN(sql::SelectStmt stmt, sql::Parse(p.sql));
  stmt.error_spec.reset();
  AQP_ASSIGN_OR_RETURN(sql::BoundQuery bound, sql::Bind(stmt, *catalog_));

  gov::QueryContext ctx(
      gov::Limits{options_.deadline_ms, options_.memory_budget_bytes});
  ctx.Start();
  ExecOptions exec;
  exec.num_threads = 1;
  ctx.Bind(&exec);
  ExecStats stats;
  AQP_ASSIGN_OR_RETURN(
      Table truth, aqp::Execute(bound.plan, *catalog_, &stats, nullptr, exec));

  // Which output columns carry aggregates (the cells with CIs to check).
  std::vector<bool> is_aggregate;
  for (const sql::SelectItem& item : stmt.items) {
    is_aggregate.push_back(item.expr != nullptr &&
                           item.expr->ContainsAggregate());
  }

  std::unordered_map<std::string, size_t> truth_rows;
  truth_rows.reserve(truth.num_rows());
  for (size_t r = 0; r < truth.num_rows(); ++r) {
    truth_rows.emplace(RowKey(truth, r, is_aggregate), r);
  }

  uint64_t cells = 0;
  uint64_t covered = 0;
  for (size_t r = 0; r < p.answer.num_rows() && r < p.cis.size(); ++r) {
    auto it = truth_rows.find(RowKey(p.answer, r, is_aggregate));
    for (size_t c = 0; c < p.answer.num_columns() && c < p.cis[r].size();
         ++c) {
      if (c >= is_aggregate.size() || !is_aggregate[c]) continue;
      ++cells;
      // A row the exact answer does not have is an invented group: every
      // one of its aggregate cells is a miss by definition.
      if (it == truth_rows.end()) continue;
      if (truth.column(c).IsNull(it->second)) continue;
      double exact = truth.column(c).GetValue(it->second).AsDouble();
      const stats::ConfidenceInterval& ci = p.cis[r][c];
      if (ci.Covers(exact)) ++covered;
      double denom = std::abs(exact);
      double err = denom > 0.0 ? std::abs(ci.estimate - exact) / denom
                               : std::abs(ci.estimate - exact);
      *worst_observed_error = std::max(*worst_observed_error, err);
    }
  }
  return std::make_pair(cells, covered);
}

void AccuracyAuditor::RecordVerdict(const Pending& p, uint64_t cells,
                                    uint64_t covered,
                                    double worst_observed_error) {
  const std::string key =
      (p.table.empty() ? "unknown" : p.table) + ".rung" +
      std::to_string(p.rung);

  bool any_regressed = false;
  double window_coverage = 0.0;
  double window_mean_error = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++audited_;
    cells_ += cells;
    covered_ += covered;

    Window& w = windows_[key];
    for (uint64_t i = 0; i < cells; ++i) {
      bool cell_covered = i < covered;
      w.cells.emplace_back(cell_covered, worst_observed_error);
      if (cell_covered) ++w.covered;
      w.error_sum += worst_observed_error;
      while (w.cells.size() > options_.window_cells) {
        auto [old_covered, old_err] = w.cells.front();
        w.cells.pop_front();
        if (old_covered) --w.covered;
        w.error_sum -= old_err;
      }
    }
    if (!w.cells.empty()) {
      window_coverage = static_cast<double>(w.covered) / w.cells.size();
      window_mean_error = w.error_sum / w.cells.size();
    }
    // The regression flag is recomputed over every key's current window so
    // it clears when coverage recovers.
    for (const auto& [k, win] : windows_) {
      if (win.cells.size() < 50) continue;
      double cov = static_cast<double>(win.covered) / win.cells.size();
      if (cov < p.nominal_confidence - options_.coverage_slack) {
        any_regressed = true;
        break;
      }
    }
    coverage_regression_ = any_regressed;
  }

  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("service.audit.cells." + key)->Increment(cells);
    reg.GetCounter("service.audit.covered." + key)->Increment(covered);
    reg.GetGauge("service.audit.coverage." + key)->Set(window_coverage);
    reg.GetGauge("service.audit.observed_error." + key)
        ->Set(window_mean_error);
    reg.GetGauge("service.audit.coverage_regression")
        ->Set(any_regressed ? 1.0 : 0.0);
  }
}

}  // namespace service
}  // namespace aqp
