#ifndef AQP_SERVICE_ADMISSION_H_
#define AQP_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace aqp {
namespace service {

/// Admission limits of the query service front door.
struct AdmissionOptions {
  /// Queries running (or handed to the executor pool) at once.
  size_t max_inflight = 8;
  /// Submissions allowed to WAIT for a slot; arrivals beyond this are
  /// rejected immediately — overload answers fast instead of piling up.
  size_t max_queue = 16;
  /// Longest a queued submission waits before being rejected; < 0 waits
  /// forever (not recommended outside tests).
  int64_t queue_timeout_ms = 1000;
};

/// Point-in-time admission counters (monotonic except the two depths).
struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_timeout = 0;
  uint64_t rejected_fault = 0;  // Injected service.admit faults (chaos only).
  size_t inflight = 0;     // Slots currently held.
  size_t queue_depth = 0;  // Submissions currently waiting.
  /// EWMA of the per-query service time observed at Release, in seconds
  /// (0 until the first measured release) — the basis of retry-after hints.
  double ewma_service_seconds = 0.0;
};

/// Bounded two-stage admission: up to `max_inflight` queries hold a slot,
/// up to `max_queue` more wait (each at most `queue_timeout_ms`), everything
/// beyond that is refused with ResourceExhausted *immediately*. This is the
/// overload contract the service benchmarks assert: a saturated service
/// answers "no" in bounded time rather than collapsing into an unbounded
/// queue (the survey's interactivity requirement applied to the front door,
/// not just the query internals).
///
/// Every rejection carries a structured client backoff hint — the message
/// ends with "(retry_after_ms=N)" where N estimates when a slot should free
/// up: (waiters + 1) x EWMA service time / max_inflight. Clients parse it
/// with RetryAfterMsFromStatus and back off instead of hammering a saturated
/// front door.
///
/// Thread-safe. Acquire blocks the calling (session) thread — admission is
/// backpressure to the submitter, by design. Acquire is also the
/// `service.admit` fault site: an injected fault rejects as overload
/// (counted separately as `rejected_fault`), exercising client retry paths
/// without real saturation.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Acquires an in-flight slot, waiting at most queue_timeout_ms. On
  /// success the caller MUST eventually call Release() exactly once. On
  /// refusal (queue full, timeout, or injected fault) returns
  /// ResourceExhausted — with a retry-after hint — and nothing is held.
  /// `queue_depth_seen`, when non-null, receives the number of submissions
  /// that were already waiting when this one arrived.
  Status Acquire(uint64_t* queue_depth_seen = nullptr);

  /// Returns a slot taken by a successful Acquire. `service_seconds` > 0
  /// feeds the EWMA service-rate estimate behind retry-after hints (pass 0
  /// when the holder did no representative work, e.g. a watchdog reclaim).
  void Release(double service_seconds = 0.0);

  AdmissionStats stats() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  /// Estimated ms until a slot frees up, from queue pressure and the EWMA
  /// service rate. Requires mu_ held. Always >= 1.
  int64_t RetryAfterHintMsLocked() const;

  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t inflight_ = 0;
  size_t waiting_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_queue_full_ = 0;
  uint64_t rejected_timeout_ = 0;
  uint64_t rejected_fault_ = 0;
  double ewma_service_seconds_ = 0.0;
};

/// Parses the "(retry_after_ms=N)" hint the service's rejection and
/// fast-fail messages carry (admission, circuit breaker, quarantine, ladder
/// fast-fail). 0 when `s` is OK or carries no hint.
int64_t RetryAfterMsFromStatus(const Status& s);

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_ADMISSION_H_
