#include "service/circuit_breaker.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace aqp {
namespace service {
namespace {

/// Same label composition the drift monitor uses: the registry is
/// flat-name, labels ride inside the name, the Prometheus exporter splits
/// them back out.
std::string Labeled(const std::string& family, const std::string& table) {
  std::string value;
  value.reserve(table.size());
  for (char c : table) {
    if (c == '\\' || c == '"') value.push_back('\\');
    value.push_back(c);
  }
  return family + "{table=\"" + value + "\"}";
}

int64_t ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

BreakerOptions BreakerOptions::FromEnv(BreakerOptions base) {
  if (const char* e = std::getenv("AQP_BREAKER_ENABLED")) {
    base.enabled = (e[0] == '1' || e[0] == 't' || e[0] == 'T' ||
                    e[0] == 'y' || e[0] == 'Y');
  }
  auto load_i64 = [](const char* name, int64_t* out) {
    if (const char* v = std::getenv(name)) {
      char* end = nullptr;
      long long parsed = std::strtoll(v, &end, 10);
      if (end != v) *out = parsed;
    }
  };
  auto load_size = [&load_i64](const char* name, size_t* out) {
    int64_t v = static_cast<int64_t>(*out);
    load_i64(name, &v);
    if (v >= 0) *out = static_cast<size_t>(v);
  };
  load_size("AQP_BREAKER_WINDOW", &base.window);
  load_size("AQP_BREAKER_MIN_SAMPLES", &base.min_samples);
  if (const char* v = std::getenv("AQP_BREAKER_FAILURE_THRESHOLD")) {
    char* end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end != v) base.failure_threshold = parsed;
  }
  load_i64("AQP_BREAKER_OPEN_MS", &base.open_ms);
  load_size("AQP_BREAKER_HALF_OPEN_PROBES", &base.half_open_probes);
  load_size("AQP_BREAKER_POISON_THRESHOLD", &base.poison_threshold);
  load_i64("AQP_BREAKER_QUARANTINE_MS", &base.quarantine_ms);
  return base;
}

CircuitBreaker::CircuitBreaker(BreakerOptions options, obs::QueryLog* log)
    : options_(std::move(options)), log_(log) {}

const char* CircuitBreaker::StateName(State s) {
  switch (s) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    default:
      return "half-open";
  }
}

double CircuitBreaker::WindowFailureRateLocked(const Circuit& c) const {
  if (c.window.empty()) return 0.0;
  size_t failures = 0;
  for (bool failed : c.window) failures += failed ? 1 : 0;
  return static_cast<double>(failures) / static_cast<double>(c.window.size());
}

CircuitBreaker::Decision CircuitBreaker::Allow(const std::string& table,
                                               int rung) {
  if (!options_.enabled) return {};
  std::lock_guard<std::mutex> lock(mu_);
  Circuit& c = circuits_[{table, rung}];
  switch (c.state) {
    case State::kClosed:
      return {};
    case State::kOpen: {
      const int64_t elapsed = ElapsedMs(c.opened_at);
      if (elapsed < options_.open_ms) {
        ++denials_;
        return {false, std::max<int64_t>(1, options_.open_ms - elapsed)};
      }
      c.state = State::kHalfOpen;
      c.probes_outstanding = 0;
      PublishTransition(table, rung, c.state);
      [[fallthrough]];
    }
    case State::kHalfOpen:
    default:
      if (c.probes_outstanding < std::max<size_t>(1,
                                                  options_.half_open_probes)) {
        ++c.probes_outstanding;
        ++probes_;
        return {};
      }
      // Probes already in flight: refuse until one of them concludes.
      ++denials_;
      return {false, std::max<int64_t>(1, options_.open_ms / 4)};
  }
}

void CircuitBreaker::RecordOutcome(const std::string& table, int rung,
                                   bool ok) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  Circuit& c = circuits_[{table, rung}];
  if (ok) {
    ++c.successes;
  } else {
    ++c.failures;
  }
  switch (c.state) {
    case State::kClosed: {
      c.window.push_back(!ok);
      while (c.window.size() > std::max<size_t>(1, options_.window)) {
        c.window.pop_front();
      }
      if (c.window.size() >= std::max<size_t>(1, options_.min_samples) &&
          WindowFailureRateLocked(c) >= options_.failure_threshold) {
        c.state = State::kOpen;
        c.opened_at = std::chrono::steady_clock::now();
        c.window.clear();
        ++c.trips;
        ++trips_;
        PublishTransition(table, rung, c.state);
      }
      break;
    }
    case State::kHalfOpen: {
      if (c.probes_outstanding > 0) --c.probes_outstanding;
      if (ok) {
        c.state = State::kClosed;
        c.window.clear();
        c.probes_outstanding = 0;
        ++closes_;
      } else {
        c.state = State::kOpen;
        c.opened_at = std::chrono::steady_clock::now();
        c.probes_outstanding = 0;
        ++c.trips;
        ++trips_;
      }
      PublishTransition(table, rung, c.state);
      break;
    }
    case State::kOpen:
      // A straggler that was admitted before the trip; the window restarts
      // from the half-open probes, so its outcome is only counted above.
      break;
  }
}

Status CircuitBreaker::CheckQuarantine(uint64_t fingerprint) {
  if (!options_.enabled) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = poison_.find(fingerprint);
  if (it == poison_.end() || !it->second.quarantined) return Status::OK();
  const int64_t elapsed = ElapsedMs(it->second.quarantined_at);
  if (elapsed >= options_.quarantine_ms) {
    // Probe: this submission runs; re-stamp so the ones racing right behind
    // it keep waiting until the probe's outcome arrives.
    it->second.quarantined_at = std::chrono::steady_clock::now();
    return Status::OK();
  }
  ++quarantine_denials_;
  const int64_t retry_after =
      std::max<int64_t>(1, options_.quarantine_ms - elapsed);
  return Status::ResourceExhausted(
      "query quarantined as poison after " +
      std::to_string(it->second.consecutive_failures) +
      " consecutive failures (retry_after_ms=" + std::to_string(retry_after) +
      ")");
}

void CircuitBreaker::RecordQueryOutcome(uint64_t fingerprint, bool poison) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (!poison) {
    auto it = poison_.find(fingerprint);
    if (it != poison_.end()) {
      if (it->second.quarantined) PublishQuarantine(fingerprint, false);
      poison_.erase(it);
    }
    return;
  }
  PoisonEntry& entry = poison_[fingerprint];
  ++entry.consecutive_failures;
  if (!entry.quarantined &&
      entry.consecutive_failures >= std::max<size_t>(1,
                                                     options_.poison_threshold)) {
    entry.quarantined = true;
    entry.quarantined_at = std::chrono::steady_clock::now();
    ++quarantined_;
    PublishQuarantine(fingerprint, true);
  } else if (entry.quarantined) {
    // A failed probe: restart the quarantine clock.
    entry.quarantined_at = std::chrono::steady_clock::now();
  }
}

std::vector<BreakerRungInfo> CircuitBreaker::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BreakerRungInfo> out;
  out.reserve(circuits_.size());
  for (const auto& [key, c] : circuits_) {
    BreakerRungInfo info;
    info.table = key.first;
    info.rung = key.second;
    info.state = StateName(c.state);
    info.open_age_seconds =
        c.state == State::kClosed
            ? 0.0
            : static_cast<double>(ElapsedMs(c.opened_at)) / 1000.0;
    info.failures = c.failures;
    info.successes = c.successes;
    info.trips = c.trips;
    info.window_failure_rate = WindowFailureRateLocked(c);
    out.push_back(std::move(info));
  }
  return out;
}

BreakerStats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BreakerStats s;
  s.trips = trips_;
  s.closes = closes_;
  s.denials = denials_;
  s.probes = probes_;
  s.quarantined = quarantined_;
  s.quarantine_denials = quarantine_denials_;
  for (const auto& [key, c] : circuits_) {
    if (c.state != State::kClosed) ++s.open_circuits;
  }
  return s;
}

void CircuitBreaker::PublishTransition(const std::string& table, int rung,
                                       State state) {
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    // 0 = closed, 1 = open, 2 = half-open, per rung per table.
    const double value = state == State::kClosed
                             ? 0.0
                             : (state == State::kOpen ? 1.0 : 2.0);
    reg.GetGauge(Labeled(
                     "service.breaker.state.rung" + std::to_string(rung),
                     table))
        ->Set(value);
    if (state == State::kOpen) {
      reg.GetCounter("service.breaker.trips")->Increment();
    }
    if (state == State::kClosed) {
      reg.GetCounter("service.breaker.closes")->Increment();
    }
  }
  if (log_ != nullptr) {
    obs::QueryLogEvent e;
    e.kind = "breaker";
    e.status = "transition";
    e.breaker_table = table;
    e.breaker_rung = rung;
    e.breaker_state = StateName(state);
    log_->Append(std::move(e));
  }
}

void CircuitBreaker::PublishQuarantine(uint64_t fingerprint, bool on) {
  if (obs::Enabled() && on) {
    obs::MetricsRegistry::Global()
        .GetCounter("service.breaker.quarantined")
        ->Increment();
  }
  if (log_ != nullptr) {
    obs::QueryLogEvent e;
    e.kind = "breaker";
    e.status = on ? "quarantined" : "released";
    e.sql_fingerprint = fingerprint;
    e.breaker_rung = -1;
    e.breaker_state = on ? "quarantined" : "released";
    log_->Append(std::move(e));
  }
}

}  // namespace service
}  // namespace aqp
