#include "service/result_cache.h"

#include "common/hash.h"
#include "gov/fault_injector.h"
#include "stats/confidence.h"

namespace aqp {
namespace service {

uint64_t FingerprintQuery(
    std::string_view sql,
    const std::vector<std::pair<std::string, uint64_t>>& table_versions,
    const ContractFingerprint& contract) {
  uint64_t h = HashString(sql, /*seed=*/0x51ce);
  for (const auto& [table, version] : table_versions) {
    h = HashCombine(h, HashString(table));
    h = HashCombine(h, Mix64(version));
  }
  h = HashCombine(h, HashInt64(contract.deadline_ms));
  h = HashCombine(h, Mix64(contract.memory_budget_bytes));
  h = HashCombine(h, Mix64(contract.seed));
  h = HashCombine(h, HashDouble(contract.confidence));
  return h;
}

uint64_t ApproxResultBytes(const core::ApproxResult& result) {
  uint64_t bytes = result.table.ApproxBytes();
  for (const auto& row : result.cis) {
    bytes += row.capacity() * sizeof(stats::ConfidenceInterval);
  }
  bytes += result.fallback_reason.size() + result.sampled_table.size();
  bytes += result.profile.query.size() + result.profile.executor.size();
  // Flat allowance for the profile's span tree and small strings.
  bytes += 1024;
  return bytes;
}

std::shared_ptr<const core::ApproxResult> ResultCache::Lookup(
    uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.result;
}

void ResultCache::Insert(uint64_t fingerprint, core::ApproxResult result) {
  if (!gov::FaultInjector::Global().MaybeFail("result_cache.insert").ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++insert_faults_;
    return;
  }
  uint64_t bytes = ApproxResultBytes(result);
  auto shared =
      std::make_shared<const core::ApproxResult>(std::move(result));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    // Refresh (e.g. two racing executions of the same cold query): replace
    // the value, re-account the bytes, touch the LRU position.
    bytes_used_ -= it->second.bytes;
    if (tracker_ != nullptr && it->second.bytes > 0) {
      tracker_->Release(it->second.bytes);
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    lru_.push_front(fingerprint);
    it = entries_.emplace(fingerprint, Entry{}).first;
    it->second.lru_it = lru_.begin();
  }
  it->second.result = std::move(shared);
  it->second.bytes = bytes;
  bytes_used_ += bytes;
  if (tracker_ != nullptr) {
    if (!tracker_->TryCharge(bytes, "result-cache entry").ok()) {
      // Accounting tracker refused (budgeted tracker): keep the entry but
      // leave it uncounted, mirroring SynopsisCache.
      it->second.bytes = 0;
      bytes_used_ -= bytes;
    }
  }
  ++insertions_;
  EvictToBudget(fingerprint);
}

void ResultCache::EvictToBudget(uint64_t keep) {
  if (byte_budget_ == 0) return;
  while (bytes_used_ > byte_budget_ && !lru_.empty()) {
    auto victim = std::prev(lru_.end());
    if (*victim == keep) {
      if (lru_.size() == 1) return;
      victim = std::prev(victim);
    }
    auto it = entries_.find(*victim);
    if (it != entries_.end()) {
      bytes_used_ -= it->second.bytes;
      if (tracker_ != nullptr && it->second.bytes > 0) {
        tracker_->Release(it->second.bytes);
      }
      entries_.erase(it);
      ++evictions_;
    }
    lru_.erase(victim);
  }
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.insert_faults = insert_faults_;
  s.evictions = evictions_;
  s.bytes_used = bytes_used_;
  s.entries = entries_.size();
  return s;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [fp, entry] : entries_) {
    if (tracker_ != nullptr && entry.bytes > 0) tracker_->Release(entry.bytes);
  }
  entries_.clear();
  lru_.clear();
  bytes_used_ = 0;
}

}  // namespace service
}  // namespace aqp
