#include "service/synopsis_store.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <utility>

#include "common/bytes.h"
#include "common/crc32.h"
#include "core/drift_baseline.h"
#include "gov/fault_injector.h"
#include "storage/extent/codec.h"
#include "storage/extent/format.h"

namespace aqp {
namespace service {
namespace {

// docs/STORAGE.md §8.1 — sidecar header: magic "AQPS", format version,
// entry count, reserved. Bumping the record layout bumps this version; a
// reader seeing a version it does not know refuses the whole file (§9).
constexpr uint32_t kSidecarVersion = 1;

void PutString(ByteWriter& w, const std::string& s) {
  w.PutU32(static_cast<uint32_t>(s.size()));
  w.PutBytes(s.data(), s.size());
}

Result<std::string> GetString(ByteReader& r) {
  AQP_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  if (n > r.remaining()) {
    return Status::InvalidArgument("string length exceeds buffer");
  }
  std::string s(n, '\0');
  AQP_RETURN_IF_ERROR(r.GetBytes(s.data(), n));
  return s;
}

template <typename T, typename PutFn>
void PutVector(ByteWriter& w, const std::vector<T>& v, PutFn put) {
  w.PutU64(v.size());
  for (const T& x : v) put(w, x);
}

// docs/STORAGE.md §8.3 — one record's payload. The StoredSample's table
// rides as a §8.2 table blob (same chunk encoding as extent files).
std::string SerializeEntry(const PersistedSynopsis& p) {
  ByteWriter w;
  PutString(w, p.table);
  w.PutU64(p.catalog_version);
  PutString(w, p.spec.strata_column);
  w.PutU64(p.spec.budget);
  w.PutU64(p.spec.seed);
  w.PutDouble(p.built_unix_seconds);
  w.PutDouble(p.drift_score);

  const core::StoredSample& s = *p.sample;
  PutString(w, s.base_table);
  PutString(w, s.strata_column);
  w.PutU64(s.budget);
  w.PutU64(s.base_rows_at_build);
  extent::WriteTableBlob(s.sample.table, &w);
  PutVector(w, s.sample.weights,
            [](ByteWriter& w, double v) { w.PutDouble(v); });
  PutVector(w, s.sample.unit_ids,
            [](ByteWriter& w, uint32_t v) { w.PutU32(v); });
  PutVector(w, s.sample.unit_sizes,
            [](ByteWriter& w, double v) { w.PutDouble(v); });
  w.PutU64(s.sample.num_units_sampled);
  w.PutU64(s.sample.num_units_population);
  w.PutDouble(s.sample.nominal_rate);
  w.PutU64(s.sample.population_rows);

  w.PutU8(p.baseline != nullptr ? 1 : 0);
  if (p.baseline != nullptr) {
    const core::TableDriftBaseline& b = *p.baseline;
    PutString(w, b.table);
    w.PutU64(b.catalog_version);
    w.PutU64(b.rows);
    w.PutDouble(b.built_unix_seconds);
    w.PutU64(b.columns.size());
    for (const auto& [name, sk] : b.columns) {
      PutString(w, name);
      PutString(w, sk.Serialize());
    }
  }
  return w.Take();
}

template <typename T, typename GetFn>
Result<std::vector<T>> GetVector(ByteReader& r, size_t elem_bytes,
                                 GetFn get) {
  AQP_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  if (n * elem_bytes > r.remaining()) {
    return Status::InvalidArgument("vector length exceeds buffer");
  }
  std::vector<T> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    AQP_ASSIGN_OR_RETURN(T x, get(r));
    v.push_back(std::move(x));
  }
  return v;
}

Result<PersistedSynopsis> DeserializeEntry(std::string_view payload) {
  ByteReader r(payload);
  PersistedSynopsis p;
  AQP_ASSIGN_OR_RETURN(p.table, GetString(r));
  AQP_ASSIGN_OR_RETURN(p.catalog_version, r.GetU64());
  AQP_ASSIGN_OR_RETURN(p.spec.strata_column, GetString(r));
  AQP_ASSIGN_OR_RETURN(p.spec.budget, r.GetU64());
  AQP_ASSIGN_OR_RETURN(p.spec.seed, r.GetU64());
  AQP_ASSIGN_OR_RETURN(p.built_unix_seconds, r.GetDouble());
  AQP_ASSIGN_OR_RETURN(p.drift_score, r.GetDouble());

  core::StoredSample s;
  AQP_ASSIGN_OR_RETURN(s.base_table, GetString(r));
  AQP_ASSIGN_OR_RETURN(s.strata_column, GetString(r));
  AQP_ASSIGN_OR_RETURN(s.budget, r.GetU64());
  AQP_ASSIGN_OR_RETURN(s.base_rows_at_build, r.GetU64());
  AQP_ASSIGN_OR_RETURN(s.sample.table, extent::ReadTableBlob(&r));
  AQP_ASSIGN_OR_RETURN(
      s.sample.weights,
      (GetVector<double>(r, sizeof(double),
                         [](ByteReader& r) { return r.GetDouble(); })));
  AQP_ASSIGN_OR_RETURN(
      s.sample.unit_ids,
      (GetVector<uint32_t>(r, sizeof(uint32_t),
                           [](ByteReader& r) { return r.GetU32(); })));
  AQP_ASSIGN_OR_RETURN(
      s.sample.unit_sizes,
      (GetVector<double>(r, sizeof(double),
                         [](ByteReader& r) { return r.GetDouble(); })));
  AQP_ASSIGN_OR_RETURN(s.sample.num_units_sampled, r.GetU64());
  AQP_ASSIGN_OR_RETURN(s.sample.num_units_population, r.GetU64());
  AQP_ASSIGN_OR_RETURN(s.sample.nominal_rate, r.GetDouble());
  AQP_ASSIGN_OR_RETURN(s.sample.population_rows, r.GetU64());
  p.sample = std::make_shared<const core::StoredSample>(std::move(s));

  AQP_ASSIGN_OR_RETURN(uint8_t has_baseline, r.GetU8());
  if (has_baseline != 0) {
    core::TableDriftBaseline b;
    AQP_ASSIGN_OR_RETURN(b.table, GetString(r));
    AQP_ASSIGN_OR_RETURN(b.catalog_version, r.GetU64());
    AQP_ASSIGN_OR_RETURN(b.rows, r.GetU64());
    AQP_ASSIGN_OR_RETURN(b.built_unix_seconds, r.GetDouble());
    AQP_ASSIGN_OR_RETURN(uint64_t num_columns, r.GetU64());
    if (num_columns > r.remaining()) {
      return Status::InvalidArgument("baseline column count exceeds buffer");
    }
    b.columns.reserve(num_columns);
    for (uint64_t i = 0; i < num_columns; ++i) {
      AQP_ASSIGN_OR_RETURN(std::string name, GetString(r));
      AQP_ASSIGN_OR_RETURN(std::string blob, GetString(r));
      AQP_ASSIGN_OR_RETURN(sketch::ColumnDriftSketch sk,
                           sketch::ColumnDriftSketch::Deserialize(blob));
      b.columns.emplace_back(std::move(name), std::move(sk));
    }
    p.baseline =
        std::make_shared<const core::TableDriftBaseline>(std::move(b));
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after synopsis entry");
  }
  return p;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(path.c_str(), "rb"),
                                          std::fclose);
  if (f == nullptr) {
    return Status::NotFound("cannot open synopsis sidecar: " + path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    out.append(buf, n);
  }
  if (std::ferror(f.get())) {
    return Status::Internal("read error on synopsis sidecar: " + path);
  }
  return out;
}

}  // namespace

Result<uint64_t> SaveSynopses(
    const std::string& path, const std::vector<PersistedSynopsis>& entries) {
  ByteWriter w;
  w.PutU32(extent::kSynopsisMagic);
  w.PutU32(kSidecarVersion);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  w.PutU32(0);  // Reserved (docs/STORAGE.md §8.1).
  for (const PersistedSynopsis& p : entries) {
    if (p.sample == nullptr) {
      return Status::InvalidArgument("cannot persist a synopsis without its "
                                     "sample: " + p.table);
    }
    const std::string payload = SerializeEntry(p);
    w.PutU64(payload.size());
    w.PutU32(Crc32(payload.data(), payload.size()));
    w.PutBytes(payload.data(), payload.size());
  }
  const std::string bytes = w.Take();

  const std::string tmp = path + ".tmp";
  {
    std::unique_ptr<FILE, int (*)(FILE*)> f(std::fopen(tmp.c_str(), "wb"),
                                            std::fclose);
    if (f == nullptr) {
      return Status::Internal("cannot create synopsis sidecar: " + tmp);
    }
    Status fault = gov::FaultInjector::Global().MaybeFail("synopsis.save");
    if (fault.ok() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f.get()) != bytes.size()) {
      fault = Status::Internal("short write on synopsis sidecar: " + tmp);
    }
    if (fault.ok() && std::fflush(f.get()) != 0) {
      fault = Status::Internal("flush failed on synopsis sidecar: " + tmp);
    }
    if (fault.ok()) ::fsync(fileno(f.get()));
    if (!fault.ok()) {
      f.reset();
      std::remove(tmp.c_str());
      return fault;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename synopsis sidecar into place: " +
                            path);
  }
  return static_cast<uint64_t>(bytes.size());
}

Result<std::vector<PersistedSynopsis>> LoadSynopses(
    const std::string& path, SynopsisLoadStats* stats) {
  AQP_RETURN_IF_ERROR(
      gov::FaultInjector::Global().MaybeFail("synopsis.load"));
  AQP_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
  ByteReader r(bytes);
  AQP_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != extent::kSynopsisMagic) {
    return Status::InvalidArgument("not a synopsis sidecar: " + path);
  }
  AQP_ASSIGN_OR_RETURN(uint32_t version, r.GetU32());
  if (version != kSidecarVersion) {
    // §9: version skew is a refusal, never a best-effort parse.
    return Status::FailedPrecondition(
        "synopsis sidecar version " + std::to_string(version) +
        " unsupported (expected " + std::to_string(kSidecarVersion) + ")");
  }
  AQP_ASSIGN_OR_RETURN(uint32_t num_entries, r.GetU32());
  AQP_ASSIGN_OR_RETURN(uint32_t reserved, r.GetU32());
  (void)reserved;

  SynopsisLoadStats local;
  local.entries_in_file = num_entries;
  std::vector<PersistedSynopsis> out;
  out.reserve(num_entries);
  for (uint32_t i = 0; i < num_entries; ++i) {
    // Record framing errors (length past EOF) end the scan: nothing after a
    // torn record boundary is trustworthy. Payload errors (bad CRC, decode
    // failure) skip just this record: the frame located the next one.
    AQP_ASSIGN_OR_RETURN(uint64_t payload_bytes, r.GetU64());
    AQP_ASSIGN_OR_RETURN(uint32_t crc, r.GetU32());
    if (payload_bytes > r.remaining()) {
      return Status::InvalidArgument("synopsis sidecar truncated: " + path);
    }
    std::string payload(payload_bytes, '\0');
    AQP_RETURN_IF_ERROR(r.GetBytes(payload.data(), payload_bytes));
    if (Crc32(payload.data(), payload.size()) != crc) {
      ++local.skipped_corrupt;
      continue;
    }
    Result<PersistedSynopsis> entry = DeserializeEntry(payload);
    if (!entry.ok()) {
      ++local.skipped_corrupt;
      continue;
    }
    out.push_back(std::move(entry).value());
    ++local.loaded;
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace service
}  // namespace aqp
