#ifndef AQP_SERVICE_DRIFT_MONITOR_H_
#define AQP_SERVICE_DRIFT_MONITOR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/drift_baseline.h"
#include "engine/catalog.h"
#include "obs/query_log.h"
#include "service/accuracy_auditor.h"
#include "service/synopsis_cache.h"

namespace aqp {
namespace service {

/// Drift-monitor knobs. `FromEnv` overlays the environment:
///   AQP_DRIFT_ENABLED               1/0 (master switch)
///   AQP_DRIFT_PERIOD_MS             periodic sweep interval (<= 0: only
///                                   on-demand / version-activity sweeps)
///   AQP_DRIFT_FLAG_THRESHOLD        soft-drift score threshold in [0, 1]
///   AQP_DRIFT_INVALIDATE_THRESHOLD  hard-drift score threshold in [0, 1]
///   AQP_DRIFT_DEADLINE_MS           per-sweep governed rescan deadline
///   AQP_DRIFT_MEMORY_BUDGET         per-sweep rescan memory budget (bytes)
///   AQP_DRIFT_MAX_ROWS              rows rescanned per table (0 = all)
struct DriftMonitorOptions {
  bool enabled = false;
  /// Periodic sweep interval; the worker also wakes early when the service
  /// reports catalog version activity. <= 0 disables the thread — sweeps
  /// then only run via CheckNow() (tests/bench) or version activity is
  /// ignored.
  int64_t period_ms = 5000;
  /// Score at which entries are flagged (kept serving; the governed layer
  /// widens CIs and the auditor prioritizes the table).
  double flag_threshold = 0.15;
  /// Score at which the table's synopses are dropped outright; the next
  /// query rebuilds from current data.
  double invalidate_threshold = 0.35;
  /// Governed budget of one sweep's rescans; a table whose rescan cannot
  /// finish is skipped (counted, not retried until the next sweep).
  int64_t deadline_ms = 10000;  // < 0 = none.
  uint64_t memory_budget_bytes = 0;
  /// Leading rows rescanned per table (0 = all) — bounds sweep cost on
  /// huge tables at some sensitivity loss.
  uint64_t max_rows = 0;
  /// Sketch sizing for the current-state rescan; must match the cache's
  /// baseline sizing for the comparison to be apples-to-apples.
  sketch::DriftSketchOptions sketch;

  static DriftMonitorOptions FromEnv(DriftMonitorOptions base);
  static DriftMonitorOptions FromEnv() {
    return FromEnv(DriftMonitorOptions());
  }
};

/// Point-in-time monitor counters.
struct DriftMonitorStats {
  uint64_t sweeps = 0;        // Completed sweeps (periodic + nudged + CheckNow).
  uint64_t checks = 0;        // Per-table baseline/current comparisons.
  uint64_t failed = 0;        // Rescans abandoned (deadline/memory/missing).
  uint64_t flagged = 0;       // Soft-drift verdicts (score >= flag threshold).
  uint64_t invalidated = 0;   // Hard-drift verdicts (entries dropped).
  double last_max_score = 0.0;  // Worst table score seen in the last sweep.
};

/// Background synopsis drift monitor — the eyes the cache lacks. The
/// version-keyed SynopsisCache is blind to in-place table mutation (an
/// append through a retained non-const handle bumps no version), so cached
/// synopses can silently serve confidently-wrong CIs forever. This monitor
/// closes the loop: on a periodic schedule (and nudged on catalog version
/// activity) it enumerates the cache's drift baselines, re-sketches each
/// table's current state under its own governed deadline/memory budget, and
/// scores the drift per column (KS statistic, KMV domain churn, heavy-hitter
/// turnover, moment shift — see sketch/drift.h). Verdicts feed four sinks:
///
///   * the cache: scores are written back to entries (soft) or the table's
///     entries are invalidated outright (hard, score >= invalidate
///     threshold) so the next query rebuilds from current data;
///   * the auditor: flagged tables get priority ground-truth audits;
///   * the metrics registry: `synopsis.drift.*` and
///     `synopsis.staleness_seconds` gauges (labeled per table);
///   * the query log: one kind="drift" event per table verdict.
///
/// Modeled on AccuracyAuditor's drop-not-block design: all work runs on one
/// low-priority thread, a sweep that cannot finish is abandoned and retried
/// at the next tick, and nothing here ever back-pressures foreground
/// queries. CheckNow()/Drain() give tests and benches deterministic sweeps.
class DriftMonitor {
 public:
  /// `catalog` and `cache` must outlive the monitor; `log` and `auditor`
  /// may be null. When `options.enabled` is false the monitor is inert (no
  /// thread, CheckNow is a no-op).
  DriftMonitor(const Catalog* catalog, SynopsisCache* cache,
               DriftMonitorOptions options, obs::QueryLog* log = nullptr,
               AccuracyAuditor* auditor = nullptr);
  ~DriftMonitor();
  DriftMonitor(const DriftMonitor&) = delete;
  DriftMonitor& operator=(const DriftMonitor&) = delete;

  /// Nudges the worker to sweep soon (the service calls this when it
  /// observes a table version change). Cheap and non-blocking.
  void NotifyVersionActivity();

  /// Runs one full sweep synchronously on the caller's thread (serialized
  /// with the background worker). Tests and benches use this instead of
  /// waiting out the period.
  void CheckNow();

  /// Blocks until the worker is idle with no pending nudge.
  void Drain();

  /// Last computed drift score for `table` (0 when never checked).
  double TableScore(const std::string& table) const;

  DriftMonitorStats stats() const;
  bool enabled() const { return options_.enabled; }
  const DriftMonitorOptions& options() const { return options_; }

 private:
  void Loop();
  /// One sweep over every cached baseline. Callers must NOT hold mu_.
  void Sweep();
  /// Rescan + score one table against `info`'s baseline.
  void CheckTable(const SynopsisBaselineInfo& info, double now_unix_seconds);
  void PublishVerdict(const SynopsisBaselineInfo& info,
                      const core::TableDriftReport& report,
                      const std::string& action, double staleness_seconds,
                      double check_ms);

  const Catalog* catalog_;
  SynopsisCache* cache_;
  const DriftMonitorOptions options_;
  obs::QueryLog* log_;
  AccuracyAuditor* auditor_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // Wakes the worker (nudge / stop).
  std::condition_variable drained_cv_;  // Wakes Drain() waiters.
  bool stop_ = false;
  bool nudged_ = false;
  bool idle_ = true;
  uint64_t sweeps_ = 0;
  uint64_t checks_ = 0;
  uint64_t failed_ = 0;
  uint64_t flagged_ = 0;
  uint64_t invalidated_ = 0;
  double last_max_score_ = 0.0;
  std::map<std::string, double> table_scores_;

  std::mutex sweep_mu_;  // Serializes Sweep() between worker and CheckNow().
  std::thread worker_;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_DRIFT_MONITOR_H_
