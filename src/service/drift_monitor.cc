#include "service/drift_monitor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "gov/fault_injector.h"
#include "gov/query_context.h"
#include "obs/metrics.h"

namespace aqp {
namespace service {
namespace {

double NowUnixSeconds() {
  auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

/// Composes `family{table="<name>"}` — the registry is flat-name, so labels
/// ride inside the name and the Prometheus exporter splits them back out.
/// Label values escape backslash and quote so the composed name survives
/// both exporters.
std::string Labeled(const std::string& family, const std::string& table) {
  std::string value;
  value.reserve(table.size());
  for (char c : table) {
    if (c == '\\' || c == '"') value.push_back('\\');
    value.push_back(c);
  }
  return family + "{table=\"" + value + "\"}";
}

}  // namespace

DriftMonitorOptions DriftMonitorOptions::FromEnv(DriftMonitorOptions base) {
  if (const char* e = std::getenv("AQP_DRIFT_ENABLED")) {
    base.enabled = (e[0] == '1' || e[0] == 't' || e[0] == 'T' ||
                    e[0] == 'y' || e[0] == 'Y');
  }
  auto load_i64 = [](const char* name, int64_t* out) {
    if (const char* v = std::getenv(name)) {
      char* end = nullptr;
      long long parsed = std::strtoll(v, &end, 10);
      if (end != v) *out = parsed;
    }
  };
  auto load_f64 = [](const char* name, double* out) {
    if (const char* v = std::getenv(name)) {
      char* end = nullptr;
      double parsed = std::strtod(v, &end);
      if (end != v) *out = parsed;
    }
  };
  load_i64("AQP_DRIFT_PERIOD_MS", &base.period_ms);
  load_f64("AQP_DRIFT_FLAG_THRESHOLD", &base.flag_threshold);
  load_f64("AQP_DRIFT_INVALIDATE_THRESHOLD", &base.invalidate_threshold);
  load_i64("AQP_DRIFT_DEADLINE_MS", &base.deadline_ms);
  if (const char* v = std::getenv("AQP_DRIFT_MEMORY_BUDGET")) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v) base.memory_budget_bytes = parsed;
  }
  if (const char* v = std::getenv("AQP_DRIFT_MAX_ROWS")) {
    char* end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v) base.max_rows = parsed;
  }
  return base;
}

DriftMonitor::DriftMonitor(const Catalog* catalog, SynopsisCache* cache,
                           DriftMonitorOptions options, obs::QueryLog* log,
                           AccuracyAuditor* auditor)
    : catalog_(catalog),
      cache_(cache),
      options_(std::move(options)),
      log_(log),
      auditor_(auditor) {
  if (options_.enabled && options_.period_ms > 0) {
    worker_ = std::thread([this] { Loop(); });
  }
}

DriftMonitor::~DriftMonitor() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    worker_.join();
  }
}

void DriftMonitor::NotifyVersionActivity() {
  if (!options_.enabled) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    nudged_ = true;
  }
  work_cv_.notify_one();
}

void DriftMonitor::CheckNow() {
  if (!options_.enabled) return;
  Sweep();
}

void DriftMonitor::Drain() {
  if (!worker_.joinable()) return;
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return idle_ && !nudged_; });
}

double DriftMonitor::TableScore(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_scores_.find(table);
  return it == table_scores_.end() ? 0.0 : it->second;
}

DriftMonitorStats DriftMonitor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DriftMonitorStats s;
  s.sweeps = sweeps_;
  s.checks = checks_;
  s.failed = failed_;
  s.flagged = flagged_;
  s.invalidated = invalidated_;
  s.last_max_score = last_max_score_;
  return s;
}

void DriftMonitor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    const auto period = std::chrono::milliseconds(options_.period_ms);
    work_cv_.wait_for(lock, period, [this] { return stop_ || nudged_; });
    if (stop_) break;
    nudged_ = false;
    idle_ = false;
    lock.unlock();
    Sweep();  // Rescans run without mu_ held.
    lock.lock();
    idle_ = true;
    drained_cv_.notify_all();
  }
}

void DriftMonitor::Sweep() {
  // One sweep at a time: CheckNow() from a test must not interleave with a
  // periodic tick mid-flight.
  std::lock_guard<std::mutex> sweep_lock(sweep_mu_);

  const std::vector<SynopsisBaselineInfo> baselines = cache_->Baselines();
  // Several specs per table share one rescan verdict: keep the most recent
  // baseline per table (scores apply to every entry via MarkDrifted).
  std::unordered_map<std::string, const SynopsisBaselineInfo*> by_table;
  for (const SynopsisBaselineInfo& info : baselines) {
    auto [it, inserted] = by_table.emplace(info.table, &info);
    if (!inserted &&
        info.built_unix_seconds > it->second->built_unix_seconds) {
      it->second = &info;
    }
  }

  const double now = NowUnixSeconds();
  double max_score = 0.0;
  for (const auto& [table, info] : by_table) {
    CheckTable(*info, now);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = table_scores_.find(table);
    if (it != table_scores_.end()) max_score = std::max(max_score, it->second);
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++sweeps_;
  last_max_score_ = max_score;
}

void DriftMonitor::CheckTable(const SynopsisBaselineInfo& info,
                              double now_unix_seconds) {
  const auto start = std::chrono::steady_clock::now();

  // Chaos site: a failed rescan is abandoned like any governed-budget miss —
  // counted, never retried before the next sweep, never foreground-visible.
  if (!gov::FaultInjector::Global().MaybeFail("drift.sweep").ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++failed_;
    return;
  }

  auto table_ptr = catalog_->Get(info.table);
  if (!table_ptr.ok()) {
    // Dropped table: its versioned keys are unreachable anyway; the LRU
    // ages the entries out. Count the miss and move on.
    std::lock_guard<std::mutex> lock(mu_);
    ++failed_;
    return;
  }
  uint64_t version = info.catalog_version;
  if (auto v = catalog_->Version(info.table); v.ok()) version = v.value();

  // Governed rescan: the monitor's cost is bounded by ITS budget, never the
  // foreground's. A rescan that blows the deadline or the memory budget is
  // abandoned; the table is retried on the next sweep.
  gov::QueryContext ctx(
      gov::Limits{options_.deadline_ms, options_.memory_budget_bytes});
  ctx.Start();
  core::DriftBaselineOptions rescan;
  rescan.sketch = options_.sketch;
  rescan.max_rows = options_.max_rows;
  const CancellationToken token = ctx.token();
  auto current = core::BuildDriftBaseline(*table_ptr.value(), info.table,
                                          version, rescan, &ctx.memory(),
                                          &token);
  if (!current.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++failed_;
    return;
  }

  const core::TableDriftReport report =
      core::ScoreDrift(*info.baseline, current.value());
  const double staleness =
      std::max(0.0, now_unix_seconds - info.built_unix_seconds);

  std::string action = "none";
  if (report.score >= options_.invalidate_threshold) {
    action = "invalidate";
    cache_->InvalidateTable(info.table);
    if (auditor_ != nullptr) auditor_->PrioritizeTable(info.table);
  } else if (report.score >= options_.flag_threshold) {
    action = "flag";
    cache_->MarkDrifted(info.table, report.score);
    if (auditor_ != nullptr) auditor_->PrioritizeTable(info.table);
  } else {
    // Below threshold the score is still written back so per-answer
    // profiles report the freshest measurement.
    cache_->MarkDrifted(info.table, report.score);
  }

  const double check_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++checks_;
    if (action == "flag") ++flagged_;
    if (action == "invalidate") ++invalidated_;
    table_scores_[info.table] = report.score;
  }

  PublishVerdict(info, report, action, staleness, check_ms);
}

void DriftMonitor::PublishVerdict(const SynopsisBaselineInfo& info,
                                  const core::TableDriftReport& report,
                                  const std::string& action,
                                  double staleness_seconds, double check_ms) {
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetGauge(Labeled("synopsis.drift.score_ratio", info.table))
        ->Set(report.score);
    reg.GetGauge(Labeled("synopsis.drift.ks_ratio", info.table))
        ->Set(report.ks);
    reg.GetGauge(Labeled("synopsis.drift.domain_churn_ratio", info.table))
        ->Set(report.domain_churn);
    reg.GetGauge(Labeled("synopsis.drift.hh_turnover_ratio", info.table))
        ->Set(report.hh_turnover);
    reg.GetGauge(Labeled("synopsis.drift.moment_shift_ratio", info.table))
        ->Set(report.moment_shift);
    reg.GetGauge(Labeled("synopsis.staleness_seconds", info.table))
        ->Set(staleness_seconds);
    reg.GetCounter("synopsis.drift.checks")->Increment();
    if (action == "flag") reg.GetCounter("synopsis.drift.flags")->Increment();
    if (action == "invalidate") {
      reg.GetCounter("synopsis.drift.invalidations")->Increment();
    }
    reg.GetHistogram("synopsis.drift.check_ms")->Observe(check_ms);
  }

  if (log_ != nullptr) {
    obs::QueryLogEvent e;
    e.kind = "drift";
    e.status = "ok";
    e.wall_ms = check_ms;
    e.drift_table = info.table;
    e.drift_score = report.score;
    e.drift_ks = report.ks;
    e.drift_domain_churn = report.domain_churn;
    e.drift_hh_turnover = report.hh_turnover;
    e.drift_moment_shift = report.moment_shift;
    e.drift_worst_column = report.worst_column;
    e.drift_action = action;
    e.staleness_seconds = staleness_seconds;
    log_->Append(std::move(e));
  }
}

}  // namespace service
}  // namespace aqp
