#ifndef AQP_SERVICE_SYNOPSIS_CACHE_H_
#define AQP_SERVICE_SYNOPSIS_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "common/result.h"
#include "core/drift_baseline.h"
#include "core/offline_catalog.h"
#include "engine/catalog.h"

namespace aqp {
namespace service {

/// What synopsis to build/fetch for a table. An empty strata_column means a
/// uniform reservoir sample; a named one means an equal-allocation
/// stratified sample on that column.
struct SynopsisSpec {
  std::string strata_column;
  uint64_t budget = 10000;
  uint64_t seed = 42;

  bool stratified() const { return !strata_column.empty(); }
};

/// Point-in-time cache counters.
struct SynopsisCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t builds = 0;           // Misses that actually built (once per key).
  uint64_t build_failures = 0;
  uint64_t single_flight_waits = 0;  // Callers that waited on another build.
  uint64_t evictions = 0;
  uint64_t invalidations = 0;    // Entries dropped by InvalidateTable.
  uint64_t drift_flags = 0;      // MarkDrifted calls that flagged entries.
  uint64_t bytes_used = 0;
  size_t entries = 0;
};

/// What GetOrBuild hands back: the synopsis plus its drift/staleness
/// context so the caller (QueryService / governed ladder) can widen CIs or
/// decline to approximate from a flagged synopsis.
struct CachedSynopsis {
  std::shared_ptr<const core::StoredSample> sample;
  /// Drift baseline captured at build time; null when capture is disabled
  /// or the baseline build failed (the synopsis still serves).
  std::shared_ptr<const core::TableDriftBaseline> baseline;
  /// Latest DriftMonitor score for this entry (0 until a check ran).
  double drift_score = 0.0;
  /// Wall-clock time the synopsis was built (for staleness age).
  double built_unix_seconds = 0.0;
};

/// One cache entry in durable form: everything SaveSynopses writes to the
/// synopsis sidecar (docs/STORAGE.md §8) and Preload adopts back after a
/// restart. The sample/baseline pointers share the live artifacts — taking
/// a snapshot copies no tables.
struct PersistedSynopsis {
  std::string table;
  uint64_t catalog_version = 0;
  SynopsisSpec spec;
  double built_unix_seconds = 0.0;
  double drift_score = 0.0;
  std::shared_ptr<const core::StoredSample> sample;
  std::shared_ptr<const core::TableDriftBaseline> baseline;  // May be null.
};

/// One cached baseline, enumerated by the DriftMonitor.
struct SynopsisBaselineInfo {
  std::string table;
  uint64_t catalog_version = 0;  // Version the entry was built against.
  std::shared_ptr<const core::TableDriftBaseline> baseline;
  double drift_score = 0.0;
  double built_unix_seconds = 0.0;
};

/// Cross-query cache of pre-computed synopses (stored samples), keyed by
/// (table, table version, synopsis spec). The paper's economics for offline
/// AQP only work when many queries amortize one build; this cache is where
/// that amortization happens in the serving tier:
///
///   * version-keyed: a table replace/append bumps Catalog::Version, so
///     stale synopses become unreachable (and age out via LRU) without any
///     invalidation protocol;
///   * single-flight: concurrent misses for one key build ONCE — the first
///     caller builds, the rest block until the artifact is published (or the
///     build's failure status is), never duplicating a table scan;
///   * bounded: entries are LRU-evicted past `byte_budget` (0 = unbounded),
///     with every insert/evict charged/released on the optional
///     MemoryTracker so cache footprint shows up in the service's accounts.
///
/// Version keying cannot see IN-PLACE mutation: a caller that kept a
/// non-const handle to a registered table can append without a version
/// bump, and the cache would keep serving a confidently-wrong synopsis
/// forever. That hole is what the drift machinery closes: every build
/// captures a TableDriftBaseline next to the sample, the background
/// DriftMonitor re-sketches tables and calls MarkDrifted (soft: flag, the
/// serving path widens CIs or declines) or InvalidateTable (hard: drop, the
/// next query rebuilds from current data).
///
/// Entries are shared_ptr-shared: eviction only drops the cache's
/// reference — queries already holding the synopsis keep it alive.
/// Thread-safe; builds run outside the lock.
class SynopsisCache {
 public:
  struct Options {
    /// Capture a drift baseline with every build (costs one extra scan of
    /// the snapshot and ~40 KiB/column in the entry's byte accounting).
    bool capture_baselines = true;
    core::DriftBaselineOptions baseline;
  };

  explicit SynopsisCache(uint64_t byte_budget, MemoryTracker* tracker,
                         Options options)
      : byte_budget_(byte_budget),
        tracker_(tracker),
        options_(std::move(options)) {}
  explicit SynopsisCache(uint64_t byte_budget,
                         MemoryTracker* tracker = nullptr)
      : SynopsisCache(byte_budget, tracker, Options()) {}
  SynopsisCache(const SynopsisCache&) = delete;
  SynopsisCache& operator=(const SynopsisCache&) = delete;

  /// Returns the synopsis for (table@current-version, spec), building it on
  /// first use. Concurrent calls for the same cold key perform one build.
  /// Build failures are returned to every waiter and NOT cached — the next
  /// call retries.
  Result<CachedSynopsis> GetOrBuild(const Catalog& catalog,
                                    const std::string& table,
                                    const SynopsisSpec& spec);

  /// Flags every ready entry for `table` with the given drift score (soft
  /// drift: entries keep serving, callers see the score and compensate).
  /// Returns the number of entries flagged.
  size_t MarkDrifted(const std::string& table, double score);

  /// Drops every ready entry for `table` (hard drift). In-flight builds for
  /// the table are doomed: they publish nothing and their waiters retry
  /// against current data. Returns the number of ready entries dropped.
  size_t InvalidateTable(const std::string& table);

  /// Snapshot of every ready entry's baseline for the DriftMonitor (null
  /// baselines are skipped). Does not touch LRU order.
  std::vector<SynopsisBaselineInfo> Baselines() const;

  /// Every ready entry in durable form, for SaveSynopses at shutdown.
  /// Drifted entries are included (their score rides along, so a restarted
  /// monitor keeps treating them as flagged); in-flight builds are not.
  std::vector<PersistedSynopsis> SnapshotForPersist() const;

  /// Adopts restored entries as ready cache entries — the warm-restart
  /// path. An entry is adopted only when its recorded catalog version
  /// exactly matches the live catalog's (anything else means the table
  /// changed, or never reappeared, while the service was down; serving from
  /// it would be silently wrong). Adoption counts as neither hit, miss, nor
  /// build. Returns the number adopted.
  size_t Preload(const Catalog& catalog,
                 std::vector<PersistedSynopsis> entries);

  SynopsisCacheStats stats() const;

  /// Drops every ready entry (in-flight builds publish into an empty cache).
  void Clear();

 private:
  struct Entry {
    bool building = true;
    bool doomed = false;  // InvalidateTable hit a mid-flight build.
    Status build_status;  // Meaningful once !building.
    std::shared_ptr<const core::StoredSample> sample;
    std::shared_ptr<const core::TableDriftBaseline> baseline;
    std::string table;
    uint64_t catalog_version = 0;
    SynopsisSpec spec;  // What was built, for persistence round-trips.
    double drift_score = 0.0;
    double built_unix_seconds = 0.0;
    uint64_t bytes = 0;
    std::list<std::string>::iterator lru_it;  // Valid when ready & cached.
  };

  /// Evicts LRU-tail entries until bytes_used_ fits the budget, sparing
  /// `keep`. Caller holds mu_.
  void EvictToBudget(const std::string& keep);

  /// Drops one ready entry (releases bytes, LRU node, map slot). Caller
  /// holds mu_; returns the next iterator.
  std::unordered_map<std::string, Entry>::iterator DropReadyEntry(
      std::unordered_map<std::string, Entry>::iterator it);

  const uint64_t byte_budget_;
  MemoryTracker* tracker_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // Front = most recently used.
  uint64_t bytes_used_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t builds_ = 0;
  uint64_t build_failures_ = 0;
  uint64_t single_flight_waits_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t drift_flags_ = 0;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_SYNOPSIS_CACHE_H_
