#ifndef AQP_SERVICE_SYNOPSIS_CACHE_H_
#define AQP_SERVICE_SYNOPSIS_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/memory_tracker.h"
#include "common/result.h"
#include "core/offline_catalog.h"
#include "engine/catalog.h"

namespace aqp {
namespace service {

/// What synopsis to build/fetch for a table. An empty strata_column means a
/// uniform reservoir sample; a named one means an equal-allocation
/// stratified sample on that column.
struct SynopsisSpec {
  std::string strata_column;
  uint64_t budget = 10000;
  uint64_t seed = 42;

  bool stratified() const { return !strata_column.empty(); }
};

/// Point-in-time cache counters.
struct SynopsisCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t builds = 0;           // Misses that actually built (once per key).
  uint64_t build_failures = 0;
  uint64_t single_flight_waits = 0;  // Callers that waited on another build.
  uint64_t evictions = 0;
  uint64_t bytes_used = 0;
  size_t entries = 0;
};

/// Cross-query cache of pre-computed synopses (stored samples), keyed by
/// (table, table version, synopsis spec). The paper's economics for offline
/// AQP only work when many queries amortize one build; this cache is where
/// that amortization happens in the serving tier:
///
///   * version-keyed: a table replace/append bumps Catalog::Version, so
///     stale synopses become unreachable (and age out via LRU) without any
///     invalidation protocol;
///   * single-flight: concurrent misses for one key build ONCE — the first
///     caller builds, the rest block until the artifact is published (or the
///     build's failure status is), never duplicating a table scan;
///   * bounded: entries are LRU-evicted past `byte_budget` (0 = unbounded),
///     with every insert/evict charged/released on the optional
///     MemoryTracker so cache footprint shows up in the service's accounts.
///
/// Entries are shared_ptr-shared: eviction only drops the cache's
/// reference — queries already holding the synopsis keep it alive.
/// Thread-safe; builds run outside the lock.
class SynopsisCache {
 public:
  explicit SynopsisCache(uint64_t byte_budget,
                         MemoryTracker* tracker = nullptr)
      : byte_budget_(byte_budget), tracker_(tracker) {}
  SynopsisCache(const SynopsisCache&) = delete;
  SynopsisCache& operator=(const SynopsisCache&) = delete;

  /// Returns the synopsis for (table@current-version, spec), building it on
  /// first use. Concurrent calls for the same cold key perform one build.
  /// Build failures are returned to every waiter and NOT cached — the next
  /// call retries.
  Result<std::shared_ptr<const core::StoredSample>> GetOrBuild(
      const Catalog& catalog, const std::string& table,
      const SynopsisSpec& spec);

  SynopsisCacheStats stats() const;

  /// Drops every ready entry (in-flight builds publish into an empty cache).
  void Clear();

 private:
  struct Entry {
    bool building = true;
    Status build_status;  // Meaningful once !building.
    std::shared_ptr<const core::StoredSample> sample;
    uint64_t bytes = 0;
    std::list<std::string>::iterator lru_it;  // Valid when ready & cached.
  };

  /// Evicts LRU-tail entries until bytes_used_ fits the budget, sparing
  /// `keep`. Caller holds mu_.
  void EvictToBudget(const std::string& keep);

  const uint64_t byte_budget_;
  MemoryTracker* tracker_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // Front = most recently used.
  uint64_t bytes_used_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t builds_ = 0;
  uint64_t build_failures_ = 0;
  uint64_t single_flight_waits_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_SYNOPSIS_CACHE_H_
