#ifndef AQP_SERVICE_WATCHDOG_H_
#define AQP_SERVICE_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gov/query_context.h"
#include "obs/query_log.h"
#include "service/admission.h"

namespace aqp {
namespace service {

/// Watchdog knobs. `FromEnv` overlays the environment:
///   AQP_WATCHDOG_ENABLED    1/0 (master switch)
///   AQP_WATCHDOG_PERIOD_MS  scan interval of the background thread
///   AQP_WATCHDOG_GRACE_MS   slack past the deadline before a query is
///                           declared hung and its slot reclaimed
struct WatchdogOptions {
  bool enabled = true;
  /// Scan interval; <= 0 disables the thread (scans then only run via
  /// CheckNow(), which is what the deterministic tests use).
  int64_t period_ms = 50;
  /// A query still holding its admission slot this long PAST its deadline
  /// is declared hung: the watchdog fires a hard RequestCancel into its
  /// context and reclaims the slot so admission capacity cannot leak.
  int64_t grace_ms = 1000;

  static WatchdogOptions FromEnv(WatchdogOptions base);
  static WatchdogOptions FromEnv() { return FromEnv(WatchdogOptions()); }
};

/// Point-in-time watchdog counters.
struct WatchdogStats {
  uint64_t registered = 0;       // Submissions ever registered.
  size_t tracked = 0;            // Currently in flight (registered, not done).
  uint64_t hung = 0;             // Queries declared hung (deadline + grace).
  uint64_t reclaimed_slots = 0;  // Admission slots the watchdog released.
  uint64_t completed_late = 0;   // Hung queries that eventually returned.
};

/// Background watchdog over every in-flight admitted submission — the
/// enforcement layer above cooperative cancellation. Deadlines normally stop
/// a query because operators poll their CancellationToken; a morsel that
/// stops polling (stuck I/O, a bug, an injected hang) would otherwise hold
/// its admission slot forever and silently shrink service capacity. The
/// watchdog scans its ticket table every `period_ms`; a query still running
/// `grace_ms` past its deadline is declared hung:
///
///   * a hard RequestCancel(kDeadline) is fired into its QueryContext (so
///     the query dies at its NEXT cooperative check, wherever that is);
///   * its admission slot is reclaimed immediately — whoever of
///     {watchdog, the query's own completion} flips the ticket's
///     slot_released flag first performs the one admission Release;
///   * the incident is surfaced: `service.watchdog.hung` metric, one
///     kind="watchdog" query-log event, and the submit trace's outcome —
///     a leaked slot becomes a visible incident instead of silent decay.
///
/// Queries without a deadline are tracked (visible in `tracked`) but never
/// reclaimed — there is no contract to enforce. Thread-safe; one instance
/// per service, destroyed before the admission controller it releases into.
class Watchdog {
 public:
  /// One in-flight submission as the watchdog sees it. The service threads
  /// the ticket from Register() through the completion path: `ctx` is valid
  /// only under `mu` (Unregister nulls it before the context dies), and
  /// `slot_released` serializes slot ownership between the watchdog and the
  /// completion path (whoever exchanges false->true releases).
  struct Ticket {
    uint64_t id = 0;
    uint64_t session_id = 0;
    uint64_t sql_fingerprint = 0;
    std::string sql;  // Leading prefix, for the incident log event.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    std::chrono::steady_clock::time_point registered_at{};

    std::mutex mu;                     // Guards ctx.
    gov::QueryContext* ctx = nullptr;  // Null once the query completed.
    std::atomic<bool> slot_released{false};
    std::atomic<bool> hung{false};
  };

  /// `admission` must outlive the watchdog; `log` may be null. Disabled
  /// options make the watchdog inert (Register returns null).
  Watchdog(AdmissionController* admission, WatchdogOptions options,
           obs::QueryLog* log = nullptr);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Tracks one admitted submission whose context just Start()ed.
  /// `deadline_ms` < 0 means no deadline (tracked, never reclaimed).
  /// Returns null when the watchdog is disabled.
  std::shared_ptr<Ticket> Register(uint64_t session_id, const std::string& sql,
                                   uint64_t sql_fingerprint,
                                   gov::QueryContext* ctx,
                                   int64_t deadline_ms);

  /// Removes the ticket from the scan table and detaches the context (must
  /// be called BEFORE the QueryContext is destroyed). Safe with null.
  void Unregister(const std::shared_ptr<Ticket>& ticket);

  /// One synchronous scan on the caller's thread (tests / benches).
  void CheckNow();

  WatchdogStats stats() const;
  bool enabled() const { return options_.enabled; }
  const WatchdogOptions& options() const { return options_; }

 private:
  void Loop();
  void Scan();
  void PublishIncident(const Ticket& ticket, double age_ms,
                       bool slot_reclaimed);

  AdmissionController* admission_;
  const WatchdogOptions options_;
  obs::QueryLog* log_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  bool stop_ = false;
  std::map<uint64_t, std::shared_ptr<Ticket>> tickets_;
  uint64_t next_id_ = 1;
  uint64_t registered_ = 0;
  uint64_t hung_ = 0;
  uint64_t reclaimed_slots_ = 0;
  uint64_t completed_late_ = 0;

  std::thread worker_;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_WATCHDOG_H_
