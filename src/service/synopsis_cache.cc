#include "service/synopsis_cache.h"

#include <chrono>
#include <utility>

#include "gov/fault_injector.h"

namespace aqp {
namespace service {
namespace {

std::string CacheKey(const std::string& table, uint64_t version,
                     const SynopsisSpec& spec) {
  return table + "\x1f" + std::to_string(version) + "\x1f" +
         spec.strata_column + "\x1f" + std::to_string(spec.budget) + "\x1f" +
         std::to_string(spec.seed);
}

double NowUnixSeconds() {
  auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

}  // namespace

Result<CachedSynopsis> SynopsisCache::GetOrBuild(const Catalog& catalog,
                                                 const std::string& table,
                                                 const SynopsisSpec& spec) {
  AQP_ASSIGN_OR_RETURN(uint64_t version, catalog.Version(table));
  const std::string key = CacheKey(table, version, spec);

  std::unique_lock<std::mutex> lock(mu_);
  // Each call is classified as exactly one of hit / miss / single-flight
  // wait; a caller that parked behind a build is a "wait" even though it
  // also finds the published entry afterwards.
  bool waited = false;
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // Cold: this caller becomes the builder.
    if (it->second.building) {
      // Single flight: somebody is already building this key; wait for the
      // publish (or for the failed build's erase, after which we retry).
      waited = true;
      cv_.wait(lock, [this, &key] {
        auto it2 = entries_.find(key);
        return it2 == entries_.end() || !it2->second.building;
      });
      continue;
    }
    if (waited) {
      ++single_flight_waits_;
    } else {
      ++hits_;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    CachedSynopsis out;
    out.sample = it->second.sample;
    out.baseline = it->second.baseline;
    out.drift_score = it->second.drift_score;
    out.built_unix_seconds = it->second.built_unix_seconds;
    return out;
  }

  ++misses_;
  entries_.emplace(key, Entry{});  // building = true: the claim other
                                   // threads wait on.
  lock.unlock();

  // The build runs outside the lock — this is the whole point: one table
  // scan, with every concurrent requester parked on the cv, not rescanning.
  // Also the `synopsis.build` chaos site: an injected failure takes the
  // same path as a real one — not cached, waiters retry.
  Result<core::StoredSample> built = [&]() -> Result<core::StoredSample> {
    if (Status fault =
            gov::FaultInjector::Global().MaybeFail("synopsis.build");
        !fault.ok()) {
      return fault;
    }
    return spec.stratified()
               ? core::BuildStratifiedStoredSample(catalog, table,
                                                   spec.strata_column,
                                                   spec.budget, spec.seed)
               : core::BuildUniformStoredSample(catalog, table, spec.budget,
                                                spec.seed);
  }();

  // Drift baseline from the same table snapshot; failures are non-fatal
  // (the synopsis serves, just unmonitored).
  std::shared_ptr<const core::TableDriftBaseline> baseline;
  if (built.ok() && options_.capture_baselines) {
    if (auto table_ptr = catalog.Get(table); table_ptr.ok()) {
      auto b = core::BuildDriftBaseline(*table_ptr.value(), table, version,
                                        options_.baseline, tracker_);
      if (b.ok()) {
        baseline = std::make_shared<const core::TableDriftBaseline>(
            std::move(b).value());
      }
    }
  }

  lock.lock();
  if (!built.ok()) {
    // Failures are not cached: waiters observe the erase, loop, and retry
    // (the next attempt may succeed, e.g. after the table reappears).
    ++build_failures_;
    entries_.erase(key);
    cv_.notify_all();
    return built.status();
  }
  auto sample =
      std::make_shared<const core::StoredSample>(std::move(built).value());
  ++builds_;
  CachedSynopsis out;
  out.sample = sample;
  out.baseline = baseline;
  out.built_unix_seconds =
      baseline != nullptr ? baseline->built_unix_seconds : NowUnixSeconds();
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // Clear() raced the build; hand the artifact back uncached.
    cv_.notify_all();
    return out;
  }
  Entry& entry = it->second;
  if (entry.doomed) {
    // InvalidateTable raced the build: the table is known-drifted, so the
    // artifact (built from the pre-invalidation snapshot) must not be
    // published. Hand it back uncached; waiters retry and rebuild fresh.
    ++invalidations_;
    entries_.erase(it);
    cv_.notify_all();
    return out;
  }
  entry.building = false;
  entry.build_status = Status::OK();
  entry.sample = sample;
  entry.baseline = baseline;
  entry.table = table;
  entry.catalog_version = version;
  entry.spec = spec;
  entry.built_unix_seconds = out.built_unix_seconds;
  entry.bytes = sample->ApproxBytes() +
                (baseline != nullptr ? baseline->ApproxBytes() : 0);
  bytes_used_ += entry.bytes;
  if (tracker_ != nullptr) {
    // The tracker is accounting (the cache enforces its own byte budget);
    // a refusal from a budgeted tracker simply leaves this entry uncounted.
    if (!tracker_->TryCharge(entry.bytes, "synopsis-cache entry").ok()) {
      bytes_used_ -= entry.bytes;
      entry.bytes = 0;
    }
  }
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  EvictToBudget(key);
  cv_.notify_all();
  return out;
}

size_t SynopsisCache::MarkDrifted(const std::string& table, double score) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t flagged = 0;
  for (auto& [key, entry] : entries_) {
    if (entry.building || entry.table != table) continue;
    entry.drift_score = score;
    ++flagged;
  }
  if (flagged > 0) ++drift_flags_;
  return flagged;
}

size_t SynopsisCache::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = it->second;
    if (entry.building) {
      // The builder's Entry::table is only set at publish; match in-flight
      // claims by key prefix ("table\x1f...") instead.
      if (it->first.compare(0, table.size() + 1, table + "\x1f") == 0) {
        entry.doomed = true;
      }
      ++it;
      continue;
    }
    if (entry.table != table) {
      ++it;
      continue;
    }
    it = DropReadyEntry(it);
    ++dropped;
    ++invalidations_;
  }
  return dropped;
}

std::vector<SynopsisBaselineInfo> SynopsisCache::Baselines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SynopsisBaselineInfo> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    if (entry.building || entry.baseline == nullptr) continue;
    SynopsisBaselineInfo info;
    info.table = entry.table;
    info.catalog_version = entry.catalog_version;
    info.baseline = entry.baseline;
    info.drift_score = entry.drift_score;
    info.built_unix_seconds = entry.built_unix_seconds;
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<PersistedSynopsis> SynopsisCache::SnapshotForPersist() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PersistedSynopsis> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    if (entry.building || entry.sample == nullptr) continue;
    PersistedSynopsis p;
    p.table = entry.table;
    p.catalog_version = entry.catalog_version;
    p.spec = entry.spec;
    p.built_unix_seconds = entry.built_unix_seconds;
    p.drift_score = entry.drift_score;
    p.sample = entry.sample;
    p.baseline = entry.baseline;
    out.push_back(std::move(p));
  }
  return out;
}

size_t SynopsisCache::Preload(const Catalog& catalog,
                              std::vector<PersistedSynopsis> entries) {
  size_t adopted = 0;
  for (auto& p : entries) {
    if (p.sample == nullptr) continue;
    // Exact-version gate: a restored synopsis may only serve for the very
    // catalog state it was built from. Version skew (table re-registered,
    // replaced, or missing while the service was down) silently drops the
    // entry — the first query rebuilds from current data instead.
    Result<uint64_t> version = catalog.Version(p.table);
    if (!version.ok() || version.value() != p.catalog_version) continue;
    const std::string key = CacheKey(p.table, p.catalog_version, p.spec);

    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.count(key) > 0) continue;  // Live build/entry wins.
    Entry entry;
    entry.building = false;
    entry.build_status = Status::OK();
    entry.sample = p.sample;
    entry.baseline = p.baseline;
    entry.table = p.table;
    entry.catalog_version = p.catalog_version;
    entry.spec = p.spec;
    entry.drift_score = p.drift_score;
    entry.built_unix_seconds = p.built_unix_seconds;
    entry.bytes = p.sample->ApproxBytes() +
                  (p.baseline != nullptr ? p.baseline->ApproxBytes() : 0);
    auto [it, inserted] = entries_.emplace(key, std::move(entry));
    bytes_used_ += it->second.bytes;
    if (tracker_ != nullptr) {
      if (!tracker_->TryCharge(it->second.bytes, "synopsis-cache entry")
               .ok()) {
        bytes_used_ -= it->second.bytes;
        it->second.bytes = 0;
      }
    }
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    EvictToBudget(key);
    ++adopted;
  }
  return adopted;
}

std::unordered_map<std::string, SynopsisCache::Entry>::iterator
SynopsisCache::DropReadyEntry(
    std::unordered_map<std::string, Entry>::iterator it) {
  bytes_used_ -= it->second.bytes;
  if (tracker_ != nullptr && it->second.bytes > 0) {
    tracker_->Release(it->second.bytes);
  }
  lru_.erase(it->second.lru_it);
  return entries_.erase(it);
}

void SynopsisCache::EvictToBudget(const std::string& keep) {
  if (byte_budget_ == 0) return;
  while (bytes_used_ > byte_budget_ && !lru_.empty()) {
    // Victim: least recently used that is not the entry being protected.
    auto victim = std::prev(lru_.end());
    if (*victim == keep) {
      if (lru_.size() == 1) return;  // Only the protected entry remains.
      victim = std::prev(victim);
    }
    auto it = entries_.find(*victim);
    if (it != entries_.end()) {
      bytes_used_ -= it->second.bytes;
      if (tracker_ != nullptr && it->second.bytes > 0) {
        tracker_->Release(it->second.bytes);
      }
      entries_.erase(it);
      ++evictions_;
    }
    lru_.erase(victim);
  }
}

SynopsisCacheStats SynopsisCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SynopsisCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.builds = builds_;
  s.build_failures = build_failures_;
  s.single_flight_waits = single_flight_waits_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.drift_flags = drift_flags_;
  s.bytes_used = bytes_used_;
  s.entries = entries_.size();
  return s;
}

void SynopsisCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Ready entries drop; in-flight builds keep their claim and publish into
  // (what is now) an emptier cache.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.building) {
      ++it;
      continue;
    }
    it = DropReadyEntry(it);
  }
}

}  // namespace service
}  // namespace aqp
