#include "service/synopsis_cache.h"

#include <utility>

namespace aqp {
namespace service {
namespace {

std::string CacheKey(const std::string& table, uint64_t version,
                     const SynopsisSpec& spec) {
  return table + "\x1f" + std::to_string(version) + "\x1f" +
         spec.strata_column + "\x1f" + std::to_string(spec.budget) + "\x1f" +
         std::to_string(spec.seed);
}

}  // namespace

Result<std::shared_ptr<const core::StoredSample>> SynopsisCache::GetOrBuild(
    const Catalog& catalog, const std::string& table,
    const SynopsisSpec& spec) {
  AQP_ASSIGN_OR_RETURN(uint64_t version, catalog.Version(table));
  const std::string key = CacheKey(table, version, spec);

  std::unique_lock<std::mutex> lock(mu_);
  // Each call is classified as exactly one of hit / miss / single-flight
  // wait; a caller that parked behind a build is a "wait" even though it
  // also finds the published entry afterwards.
  bool waited = false;
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // Cold: this caller becomes the builder.
    if (it->second.building) {
      // Single flight: somebody is already building this key; wait for the
      // publish (or for the failed build's erase, after which we retry).
      waited = true;
      cv_.wait(lock, [this, &key] {
        auto it2 = entries_.find(key);
        return it2 == entries_.end() || !it2->second.building;
      });
      continue;
    }
    if (waited) {
      ++single_flight_waits_;
    } else {
      ++hits_;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.sample;
  }

  ++misses_;
  entries_.emplace(key, Entry{});  // building = true: the claim other
                                   // threads wait on.
  lock.unlock();

  // The build runs outside the lock — this is the whole point: one table
  // scan, with every concurrent requester parked on the cv, not rescanning.
  Result<core::StoredSample> built =
      spec.stratified()
          ? core::BuildStratifiedStoredSample(catalog, table,
                                              spec.strata_column, spec.budget,
                                              spec.seed)
          : core::BuildUniformStoredSample(catalog, table, spec.budget,
                                           spec.seed);

  lock.lock();
  if (!built.ok()) {
    // Failures are not cached: waiters observe the erase, loop, and retry
    // (the next attempt may succeed, e.g. after the table reappears).
    ++build_failures_;
    entries_.erase(key);
    cv_.notify_all();
    return built.status();
  }
  auto sample =
      std::make_shared<const core::StoredSample>(std::move(built).value());
  ++builds_;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // Clear() raced the build; hand the artifact back uncached.
    cv_.notify_all();
    return sample;
  }
  Entry& entry = it->second;
  entry.building = false;
  entry.build_status = Status::OK();
  entry.sample = sample;
  entry.bytes = sample->ApproxBytes();
  bytes_used_ += entry.bytes;
  if (tracker_ != nullptr) {
    // The tracker is accounting (the cache enforces its own byte budget);
    // a refusal from a budgeted tracker simply leaves this entry uncounted.
    if (!tracker_->TryCharge(entry.bytes, "synopsis-cache entry").ok()) {
      entry.bytes = 0;
      bytes_used_ -= sample->ApproxBytes();
    }
  }
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  EvictToBudget(key);
  cv_.notify_all();
  return sample;
}

void SynopsisCache::EvictToBudget(const std::string& keep) {
  if (byte_budget_ == 0) return;
  while (bytes_used_ > byte_budget_ && !lru_.empty()) {
    // Victim: least recently used that is not the entry being protected.
    auto victim = std::prev(lru_.end());
    if (*victim == keep) {
      if (lru_.size() == 1) return;  // Only the protected entry remains.
      victim = std::prev(victim);
    }
    auto it = entries_.find(*victim);
    if (it != entries_.end()) {
      bytes_used_ -= it->second.bytes;
      if (tracker_ != nullptr && it->second.bytes > 0) {
        tracker_->Release(it->second.bytes);
      }
      entries_.erase(it);
      ++evictions_;
    }
    lru_.erase(victim);
  }
}

SynopsisCacheStats SynopsisCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SynopsisCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.builds = builds_;
  s.build_failures = build_failures_;
  s.single_flight_waits = single_flight_waits_;
  s.evictions = evictions_;
  s.bytes_used = bytes_used_;
  s.entries = entries_.size();
  return s;
}

void SynopsisCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Ready entries drop; in-flight builds keep their claim and publish into
  // (what is now) an emptier cache.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.building) {
      ++it;
      continue;
    }
    if (tracker_ != nullptr && it->second.bytes > 0) {
      tracker_->Release(it->second.bytes);
    }
    bytes_used_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    it = entries_.erase(it);
  }
}

}  // namespace service
}  // namespace aqp
