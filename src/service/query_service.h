#ifndef AQP_SERVICE_QUERY_SERVICE_H_
#define AQP_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/memory_tracker.h"
#include "common/result.h"
#include "core/approx_executor.h"
#include "engine/catalog.h"
#include "gov/governed_executor.h"
#include "obs/query_log.h"
#include "service/accuracy_auditor.h"
#include "service/admission.h"
#include "service/circuit_breaker.h"
#include "service/drift_monitor.h"
#include "service/result_cache.h"
#include "service/synopsis_cache.h"
#include "service/watchdog.h"

namespace aqp {
namespace service {

/// Everything the service needs to run queries: the per-query governance
/// defaults, the admission limits, and the cross-query cache budgets.
struct ServiceOptions {
  /// Defaults applied to every submission (deadline, memory budget, AQP
  /// knobs, degradation behaviour). Submissions may override the deadline
  /// and memory budget per query.
  gov::GovernedOptions gov;

  AdmissionOptions admission;

  /// Byte budgets of the two cross-query caches (0 = unbounded).
  uint64_t result_cache_bytes = 64ull << 20;
  uint64_t synopsis_cache_bytes = 256ull << 20;

  /// Rows per cached synopsis, and the smallest table worth a synopsis
  /// (building a sample of a small table costs more than scanning it).
  uint64_t synopsis_rows = 10000;
  uint64_t synopsis_min_table_rows = 100000;

  bool use_result_cache = true;
  bool use_synopsis_cache = true;

  /// Directory for durable state (currently the synopsis sidecar
  /// `synopses.aqps`; see docs/STORAGE.md §8). Empty = in-memory only.
  /// When set, the service loads persisted synopses at construction
  /// (adopting only exact catalog-version matches) and saves the cache's
  /// ready entries at shutdown, so a restart serves warm-cache answers
  /// without rebuilding. AQP_DATA_DIR overlays this at construction; the
  /// directory must already exist.
  std::string data_dir;

  /// Always-on structured query log (one event per submission) and the
  /// background accuracy auditor. The environment overlays both at service
  /// construction (AQP_QUERY_LOG*, AQP_AUDIT_*; see the option structs), so
  /// an operator can point the log at a file or turn auditing on without a
  /// rebuild.
  obs::QueryLogOptions query_log;
  AuditOptions audit;

  /// Background synopsis drift monitor (AQP_DRIFT_* env overlays at
  /// construction). Off by default: the monitor costs periodic table
  /// rescans, so operators opt in.
  DriftMonitorOptions drift;

  /// Hung-query watchdog (AQP_WATCHDOG_* env overlays at construction). On
  /// by default: it costs one mostly-idle thread and buys the guarantee
  /// that a query which stops cooperating cannot leak its admission slot.
  WatchdogOptions watchdog;

  /// Per-(table, rung) circuit breakers + poison-query quarantine
  /// (AQP_BREAKER_* env overlays at construction). On by default; breakers
  /// only act once a rung actually accumulates conclusive failures.
  BreakerOptions breaker;
};

/// Per-session limits.
struct SessionOptions {
  /// Byte cap across everything the session's queries hold live at once
  /// (each query is additionally capped by its own budget); 0 = unlimited.
  uint64_t memory_budget_bytes = 0;
};

/// Per-session query counters (point-in-time copies of live atomics).
struct SessionStats {
  uint64_t submitted = 0;  // Submissions that reached admission.
  uint64_t ok = 0;
  uint64_t failed = 0;    // Admitted but execution returned a status.
  uint64_t rejected = 0;  // Refused at admission (overload/shutdown).
};

/// One client connection. Sessions exist so that (a) concurrent queries of
/// one client share a memory budget and (b) stats/limits have somewhere to
/// live that outlives a single query. Obtain via QueryService::OpenSession;
/// share freely across the session's own threads.
class Session {
 public:
  uint64_t id() const { return id_; }
  const MemoryTracker& memory() const { return memory_; }
  SessionStats stats() const {
    SessionStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.ok = ok_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  friend class QueryService;
  Session(uint64_t id, const SessionOptions& options)
      : id_(id), memory_(options.memory_budget_bytes) {}

  const uint64_t id_;
  MemoryTracker memory_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> ok_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> rejected_{0};
};

/// One query submission: SQL plus the per-query slice of the contract.
/// Unset optionals inherit the service's GovernedOptions defaults.
struct Submission {
  Submission(std::string query) : sql(std::move(query)) {}  // NOLINT(runtime/explicit)
  std::string sql;
  std::optional<int64_t> deadline_ms;          // < 0 = none.
  std::optional<uint64_t> memory_budget_bytes;  // 0 = unlimited.
};

/// The serving tier: concurrent sessions submit governed approximate
/// queries through a bounded admission controller onto the shared thread
/// pool, and two cross-query caches amortize work across submissions:
///
///   submit ──► AdmissionController (bounded queue, fast ResourceExhausted
///          │    on overload)
///          ├─► ResultCache — identical (SQL, table versions, contract)
///          │    answered from memory, no execution
///          ├─► SynopsisCache — shared stored samples (single-flight build)
///          │    adopted into the query's offline rung
///          └─► GovernedExecutor under a QueryContext chained to the
///               session's MemoryTracker
///
/// Admission wait, queue depth, and cache involvement are recorded on each
/// result's ExecutionProfile; service-level counters/histograms go to the
/// global MetricsRegistry when observability is enabled.
///
/// Thread-safe. Submit() blocks the calling thread for admission
/// (backpressure to the submitter) and returns a future for the execution
/// itself; Execute() is the blocking convenience wrapper. The destructor
/// drains in-flight queries. `catalog` must outlive the service.
/// Everything the service can report about itself, in one coherent grab:
/// admission, both caches, in-flight work, service-wide query outcomes, the
/// query log, and the accuracy auditor. PublishStats() mirrors it into the
/// global MetricsRegistry for Prometheus export.
/// What synopsis persistence did at startup (and, for `save_*`, at the
/// previous snapshot of a shutdown-in-progress; normally read post-mortem
/// through logs or the E19 bench, which constructs and destroys services).
struct SynopsisPersistenceStats {
  bool enabled = false;          // data_dir was set.
  uint64_t load_found = 0;       // Entries in the sidecar file.
  uint64_t loaded = 0;           // Entries that parsed intact.
  uint64_t adopted = 0;          // Entries the cache accepted (version match).
  uint64_t skipped_corrupt = 0;  // CRC/decode failures, skipped individually.
  bool load_failed = false;      // Sidecar unreadable (missing file is NOT a
                                 // failure — first boot has no sidecar).
};

struct ServiceStatsSnapshot {
  AdmissionStats admission;
  ResultCacheStats result_cache;
  SynopsisCacheStats synopsis_cache;
  uint64_t cache_bytes = 0;  // Combined live footprint of both caches.
  size_t outstanding = 0;    // Admitted submissions not yet completed.
  uint64_t sessions_opened = 0;
  uint64_t queries_ok = 0;
  uint64_t queries_failed = 0;
  uint64_t queries_rejected = 0;
  obs::QueryLogStats query_log;
  AuditorStats audit;
  DriftMonitorStats drift;
  WatchdogStats watchdog;
  BreakerStats breaker;
};

class QueryService {
 public:
  explicit QueryService(const Catalog* catalog, ServiceOptions options = {});
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  std::shared_ptr<Session> OpenSession(SessionOptions options = {});

  /// Admits (blocking, bounded by the admission queue timeout) and then
  /// executes asynchronously on the shared pool. Overload and shutdown are
  /// reported through the returned future, which is always valid.
  std::future<Result<core::ApproxResult>> Submit(std::shared_ptr<Session> session,
                                                 Submission submission);

  /// Submit + wait.
  Result<core::ApproxResult> Execute(std::shared_ptr<Session> session,
                                     Submission submission);

  AdmissionStats admission_stats() const { return admission_.stats(); }
  SynopsisCacheStats synopsis_cache_stats() const {
    return synopsis_cache_.stats();
  }
  ResultCacheStats result_cache_stats() const { return result_cache_.stats(); }

  /// One coherent snapshot of everything above plus outstanding work,
  /// session/query counters, the query log, and the auditor.
  ServiceStatsSnapshot StatsSnapshot() const;
  /// Mirrors StatsSnapshot() into `service.*` gauges in the global
  /// MetricsRegistry so obs::ExportPrometheus carries the service state.
  void PublishStats() const;

  const obs::QueryLog& query_log() const { return query_log_; }
  const AccuracyAuditor& auditor() const { return auditor_; }
  AccuracyAuditor& auditor() { return auditor_; }
  const DriftMonitor& drift_monitor() const { return drift_monitor_; }
  DriftMonitor& drift_monitor() { return drift_monitor_; }
  const Watchdog& watchdog() const { return watchdog_; }
  Watchdog& watchdog() { return watchdog_; }
  const CircuitBreaker& circuit_breaker() const { return breaker_; }
  CircuitBreaker& circuit_breaker() { return breaker_; }
  SynopsisCache& synopsis_cache() { return synopsis_cache_; }
  const ServiceOptions& options() const { return options_; }
  SynopsisPersistenceStats persistence_stats() const {
    return persistence_stats_;
  }

 private:
  /// Runs one admitted submission end to end (pool thread). `wait_seconds`
  /// and `queue_depth` describe the admission the submission just went
  /// through and are stamped onto the result's profile; `trace` (null when
  /// observability is off) is the submit-scoped span tree the admission
  /// span already lives in. `ticket_out`, when non-null, receives the
  /// watchdog ticket so the completion path can coordinate the admission
  /// release with a possible watchdog reclaim.
  Result<core::ApproxResult> RunAdmitted(
      Session& session, const Submission& submission, double wait_seconds,
      uint64_t queue_depth, obs::QueryTrace* trace,
      std::shared_ptr<Watchdog::Ticket>* ticket_out);

  /// Loads the synopsis sidecar into the cache (constructor tail) / saves
  /// the cache's ready entries (destructor, after drain). Both no-op when
  /// data_dir is empty or the synopsis cache is off.
  void LoadPersistedSynopses();
  void SavePersistedSynopses();

  const Catalog* catalog_;
  const ServiceOptions options_;
  SynopsisPersistenceStats persistence_stats_;

  AdmissionController admission_;
  /// Accounting-only parent for both caches: budget 0 (the caches enforce
  /// their own byte budgets), but used_bytes() shows the combined footprint.
  MemoryTracker cache_memory_;
  SynopsisCache synopsis_cache_;
  ResultCache result_cache_;
  /// Declared before the auditor: the auditor's worker appends verdicts to
  /// the log, so it must be destroyed first (reverse declaration order).
  obs::QueryLog query_log_;
  /// Appends transition events to the log: declared after it.
  CircuitBreaker breaker_;
  AccuracyAuditor auditor_;
  /// Declared after the cache/log/auditor it writes into: destroyed first.
  DriftMonitor drift_monitor_;
  /// Declared LAST: its scanner touches the admission controller and live
  /// tickets, so it must be destroyed before everything it watches.
  Watchdog watchdog_;

  /// Last-seen catalog version per table, used to nudge the drift monitor
  /// when a query observes version movement.
  std::mutex versions_mu_;
  std::unordered_map<std::string, uint64_t> seen_versions_;

  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> queries_rejected_{0};

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  bool closed_ = false;
  size_t outstanding_ = 0;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_QUERY_SERVICE_H_
