#include "service/watchdog.h"

#include <cstdlib>
#include <utility>

#include "obs/metrics.h"

namespace aqp {
namespace service {

WatchdogOptions WatchdogOptions::FromEnv(WatchdogOptions base) {
  if (const char* e = std::getenv("AQP_WATCHDOG_ENABLED")) {
    base.enabled = (e[0] == '1' || e[0] == 't' || e[0] == 'T' ||
                    e[0] == 'y' || e[0] == 'Y');
  }
  auto load_i64 = [](const char* name, int64_t* out) {
    if (const char* v = std::getenv(name)) {
      char* end = nullptr;
      long long parsed = std::strtoll(v, &end, 10);
      if (end != v) *out = parsed;
    }
  };
  load_i64("AQP_WATCHDOG_PERIOD_MS", &base.period_ms);
  load_i64("AQP_WATCHDOG_GRACE_MS", &base.grace_ms);
  return base;
}

Watchdog::Watchdog(AdmissionController* admission, WatchdogOptions options,
                   obs::QueryLog* log)
    : admission_(admission), options_(std::move(options)), log_(log) {
  if (options_.enabled && options_.period_ms > 0) {
    worker_ = std::thread([this] { Loop(); });
  }
}

Watchdog::~Watchdog() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    worker_.join();
  }
}

std::shared_ptr<Watchdog::Ticket> Watchdog::Register(
    uint64_t session_id, const std::string& sql, uint64_t sql_fingerprint,
    gov::QueryContext* ctx, int64_t deadline_ms) {
  if (!options_.enabled) return nullptr;
  auto ticket = std::make_shared<Ticket>();
  ticket->session_id = session_id;
  ticket->sql = sql.substr(0, 192);
  ticket->sql_fingerprint = sql_fingerprint;
  ticket->ctx = ctx;
  ticket->registered_at = std::chrono::steady_clock::now();
  if (deadline_ms >= 0) {
    ticket->has_deadline = true;
    ticket->deadline =
        ticket->registered_at + std::chrono::milliseconds(deadline_ms);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ticket->id = next_id_++;
  ++registered_;
  tickets_.emplace(ticket->id, ticket);
  return ticket;
}

void Watchdog::Unregister(const std::shared_ptr<Ticket>& ticket) {
  if (ticket == nullptr) return;
  {
    // Detach the context BEFORE the caller destroys it; a concurrent scan
    // holding ticket->mu either sees the live context or a null.
    std::lock_guard<std::mutex> ctx_lock(ticket->mu);
    ticket->ctx = nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  tickets_.erase(ticket->id);
  if (ticket->hung.load(std::memory_order_relaxed)) ++completed_late_;
}

void Watchdog::CheckNow() {
  if (!options_.enabled) return;
  Scan();
}

WatchdogStats Watchdog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WatchdogStats s;
  s.registered = registered_;
  s.tracked = tickets_.size();
  s.hung = hung_;
  s.reclaimed_slots = reclaimed_slots_;
  s.completed_late = completed_late_;
  return s;
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait_for(lock, std::chrono::milliseconds(options_.period_ms),
                      [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    Scan();
    lock.lock();
  }
}

void Watchdog::Scan() {
  const auto now = std::chrono::steady_clock::now();
  const auto grace = std::chrono::milliseconds(options_.grace_ms);

  std::vector<std::shared_ptr<Ticket>> overdue;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, ticket] : tickets_) {
      if (ticket->has_deadline && now >= ticket->deadline + grace &&
          !ticket->hung.load(std::memory_order_relaxed)) {
        overdue.push_back(ticket);
      }
    }
  }

  for (const std::shared_ptr<Ticket>& ticket : overdue) {
    if (ticket->hung.exchange(true)) continue;  // Another scan beat us.

    // Hard cancellation: whatever the query is doing, its next cooperative
    // check fails with DeadlineExceeded. (A morsel that never checks again
    // is exactly why the slot below is reclaimed regardless.)
    {
      std::lock_guard<std::mutex> ctx_lock(ticket->mu);
      if (ticket->ctx != nullptr) {
        ticket->ctx->source().RequestCancel(
            StopCause::kDeadline,
            "watchdog: hard cancellation at deadline + grace");
      }
    }

    // Reclaim the admission slot unless the completion path already released
    // it (the exchange makes the release exactly-once either way). No
    // service-time sample: a hung query is not representative work.
    const bool reclaimed = !ticket->slot_released.exchange(true);
    if (reclaimed) admission_->Release(0.0);

    const double age_ms =
        std::chrono::duration<double, std::milli>(now - ticket->registered_at)
            .count();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++hung_;
      if (reclaimed) ++reclaimed_slots_;
    }
    PublishIncident(*ticket, age_ms, reclaimed);
  }
}

void Watchdog::PublishIncident(const Ticket& ticket, double age_ms,
                               bool slot_reclaimed) {
  if (obs::Enabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("service.watchdog.hung")->Increment();
    if (slot_reclaimed) {
      reg.GetCounter("service.watchdog.reclaimed_slots")->Increment();
    }
  }
  if (log_ != nullptr) {
    obs::QueryLogEvent e;
    e.kind = "watchdog";
    e.status = "hung";
    e.sql = ticket.sql;
    e.sql_fingerprint = ticket.sql_fingerprint;
    e.session_id = ticket.session_id;
    e.wall_ms = age_ms;  // Age of the submission when declared hung.
    log_->Append(std::move(e));
  }
}

}  // namespace service
}  // namespace aqp
