#ifndef AQP_SERVICE_SYNOPSIS_STORE_H_
#define AQP_SERVICE_SYNOPSIS_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "service/synopsis_cache.h"

namespace aqp {
namespace service {

/// Outcome of one LoadSynopses call.
struct SynopsisLoadStats {
  size_t entries_in_file = 0;  // What the file header claimed.
  size_t loaded = 0;           // Entries deserialized intact.
  size_t skipped_corrupt = 0;  // Entries whose CRC or decode failed.
};

/// Writes the synopsis sidecar (docs/STORAGE.md §8): file header, then one
/// length-prefixed, CRC32-guarded record per entry. The write goes to
/// `path + ".tmp"` and renames into place, so a crash mid-save leaves the
/// previous sidecar (or nothing) — never a torn file under `path`.
/// Registered fault site: `synopsis.save`. Returns the file size in bytes.
Result<uint64_t> SaveSynopses(const std::string& path,
                              const std::vector<PersistedSynopsis>& entries);

/// Reads a synopsis sidecar back. Integrity is per-record: an entry whose
/// CRC or decode fails is skipped (counted in `stats`) without poisoning
/// its neighbours; a bad header/magic/version fails the whole call, as does
/// a missing file. Version gating against the live catalog is NOT done
/// here — pass the result to SynopsisCache::Preload, which adopts only
/// exact-version matches. Registered fault site: `synopsis.load`.
Result<std::vector<PersistedSynopsis>> LoadSynopses(
    const std::string& path, SynopsisLoadStats* stats = nullptr);

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_SYNOPSIS_STORE_H_
