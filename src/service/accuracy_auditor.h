#ifndef AQP_SERVICE_ACCURACY_AUDITOR_H_
#define AQP_SERVICE_ACCURACY_AUDITOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/approx_executor.h"
#include "engine/catalog.h"
#include "obs/query_log.h"

namespace aqp {
namespace service {

/// Accuracy-auditor knobs. `FromEnv` overlays the environment:
///   AQP_AUDIT_FRACTION     sampling fraction in [0, 1] (0 disables)
///   AQP_AUDIT_DEADLINE_MS  ground-truth re-execution deadline
struct AuditOptions {
  /// Fraction of completed approximate answers re-checked exactly.
  /// Sampling is deterministic (every round(1/fraction)-th eligible answer)
  /// so coverage statistics accumulate at a predictable rate. 0 disables
  /// the auditor entirely (no thread is started).
  double fraction = 0.0;
  /// Governed budget of one ground-truth re-execution; the audit is
  /// abandoned (counted, not retried) when it cannot finish within these.
  int64_t deadline_ms = 10000;  // < 0 = none.
  uint64_t memory_budget_bytes = 0;
  /// Answers waiting to be audited; when full, new candidates are DROPPED
  /// (counted) — the auditor must never back-pressure foreground queries.
  size_t queue_capacity = 64;
  /// Rolling window (in audited CI cells, per (table, rung) key) over which
  /// empirical coverage and observed error are maintained.
  size_t window_cells = 512;
  /// Empirical coverage below nominal-confidence − slack (with at least 50
  /// cells in the window) raises the coverage-regression flag.
  double coverage_slack = 0.03;

  static AuditOptions FromEnv(AuditOptions base);
  static AuditOptions FromEnv() { return FromEnv(AuditOptions()); }
};

/// Point-in-time auditor counters. `cells`/`covered` aggregate over ALL
/// audited CI cells since startup; `coverage()` is the all-time empirical
/// coverage (the per-key rolling windows feed the metrics registry).
struct AuditorStats {
  uint64_t eligible = 0;   // Answers offered to MaybeEnqueue.
  uint64_t sampled = 0;    // Answers picked by the sampling fraction.
  uint64_t dropped = 0;    // Sampled but the queue was full.
  uint64_t audited = 0;    // Ground-truth runs that completed.
  uint64_t failed = 0;     // Ground-truth runs that errored / timed out.
  uint64_t cells = 0;      // CI cells compared.
  uint64_t covered = 0;    // CI cells whose interval contained the truth.
  bool coverage_regression = false;
  double coverage() const {
    return cells == 0 ? 0.0 : static_cast<double>(covered) / cells;
  }
};

/// Background accuracy auditor: the empirical check on the system's central
/// promise. It samples a configurable fraction of completed approximate
/// answers, re-executes their SQL EXACTLY (error clause stripped) on its own
/// low-priority thread under its own governed deadline/memory budget, and
/// compares the ground truth against each claimed confidence interval.
/// Rolling empirical-coverage and observed-vs-claimed-error metrics are
/// maintained per (table, degradation rung) in the global MetricsRegistry:
///
///   service.audit.cells.<table>.rung<k>        counter
///   service.audit.covered.<table>.rung<k>      counter
///   service.audit.coverage.<table>.rung<k>     gauge (rolling window)
///   service.audit.observed_error.<table>.rung<k> gauge (rolling mean)
///   service.audit.coverage_regression          gauge (0/1, any key)
///
/// Ground truth runs single-threaded (never on the shared morsel pool) and
/// candidates are dropped, never queued unboundedly, so the auditor cannot
/// block or slow foreground admission. Each verdict is also appended to the
/// query log (kind="audit") when one is attached.
class AccuracyAuditor {
 public:
  /// `catalog` must outlive the auditor; `log` may be null. When
  /// `options.fraction` <= 0 the auditor is inert (no thread).
  AccuracyAuditor(const Catalog* catalog, AuditOptions options,
                  obs::QueryLog* log = nullptr);
  ~AccuracyAuditor();
  AccuracyAuditor(const AccuracyAuditor&) = delete;
  AccuracyAuditor& operator=(const AccuracyAuditor&) = delete;

  /// Offers one completed approximate answer for auditing. Returns true iff
  /// the answer was enqueued (sampled and the queue had room). Cheap and
  /// non-blocking; call from the foreground result path.
  bool MaybeEnqueue(const std::string& sql, const core::ApproxResult& result);

  /// Marks `table` as audit-priority: its next `budget` eligible answers
  /// bypass the sampling interval (still bounded by the queue). The
  /// DriftMonitor calls this when it flags a table, so ground-truth checks
  /// concentrate where staleness is suspected.
  void PrioritizeTable(const std::string& table, uint64_t budget = 8);

  /// Blocks until every enqueued audit has been processed (tests/bench).
  void Drain();

  AuditorStats stats() const;
  bool enabled() const { return interval_ > 0; }

 private:
  struct Pending {
    std::string sql;
    Table answer;
    std::vector<std::vector<stats::ConfidenceInterval>> cis;
    std::string table;   // Sampled table (metrics key; may be empty).
    int rung = 0;
    double nominal_confidence = 0.95;
    double estimated_error = 0.0;
    double pre_inflation_error = 0.0;
  };
  /// One (table, rung) key's rolling cell window.
  struct Window {
    std::deque<std::pair<bool, double>> cells;  // (covered, observed error).
    uint64_t covered = 0;
    double error_sum = 0.0;
  };

  void Loop();
  void AuditOne(const Pending& p);
  /// Re-executes `p.sql` exactly and compares; returns the verdict cells or
  /// a status when ground truth could not be computed.
  Result<std::pair<uint64_t, uint64_t>> CompareAgainstTruth(
      const Pending& p, double* worst_observed_error);
  void RecordVerdict(const Pending& p, uint64_t cells, uint64_t covered,
                     double worst_observed_error);

  const Catalog* catalog_;
  const AuditOptions options_;
  obs::QueryLog* log_;
  const uint64_t interval_;  // Every interval_-th eligible answer is sampled.

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drained_cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  bool idle_ = true;
  uint64_t eligible_ = 0;
  uint64_t sampled_ = 0;
  uint64_t dropped_ = 0;
  uint64_t audited_ = 0;
  uint64_t failed_ = 0;
  uint64_t cells_ = 0;
  uint64_t covered_ = 0;
  bool coverage_regression_ = false;
  std::map<std::string, Window> windows_;  // Keyed "<table>.rung<k>".
  /// Remaining bypass-the-interval audits per prioritized table.
  std::map<std::string, uint64_t> priority_tables_;

  std::thread worker_;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_ACCURACY_AUDITOR_H_
