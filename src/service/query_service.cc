#include "service/query_service.h"

#include <algorithm>
#include <cstdlib>
#include <chrono>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "gov/fault_injector.h"
#include "obs/metrics.h"
#include "service/synopsis_store.h"
#include "sql/parser.h"

namespace aqp {
namespace service {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Stamps the service-tier fields onto a result's profile and installs the
/// submit-scoped trace (admission → cache → rungs → morsels) as the
/// profile's span tree, so EXPLAIN ANALYZE shows the time spent waiting at
/// the front door next to the time spent executing. `trace` is finished
/// here — the submission is over.
void StampProfile(core::ApproxResult* result, double wait_seconds,
                  uint64_t queue_depth, std::string cache_source,
                  obs::QueryTrace* trace) {
  obs::ExecutionProfile& profile = result->profile;
  profile.admission_wait_seconds = wait_seconds;
  profile.queue_depth_at_admission = queue_depth;
  profile.cache_source = std::move(cache_source);
  if (trace != nullptr) {
    trace->Finish();
    // Move, not copy: the submission is over and nobody reads the original
    // again, so the span tree transfers without re-allocating every node.
    profile.trace = std::move(*trace);
  }
}

/// One query-log event from a completed (or refused) submission.
obs::QueryLogEvent MakeEvent(const std::string& sql, uint64_t session_id,
                             const char* status, double wait_seconds,
                             uint64_t queue_depth, double wall_seconds,
                             const obs::ExecutionProfile* profile) {
  obs::QueryLogEvent e;
  e.sql = sql;
  e.sql_fingerprint = HashString(sql);
  e.session_id = session_id;
  e.status = status;
  e.admission_wait_ms = wait_seconds * 1e3;
  e.queue_depth = queue_depth;
  e.wall_ms = wall_seconds * 1e3;
  if (profile != nullptr) {
    e.cache_source = profile->cache_source;
    e.degradation_rung = profile->degradation_rung;
    e.degraded_reason = profile->degraded_reason;
    e.estimated_error = profile->estimated_error;
    e.pre_inflation_error = profile->pre_inflation_error;
    e.memory_peak_bytes = profile->memory_peak_bytes;
    e.pilot_ms = profile->pilot_seconds * 1e3;
    e.plan_ms = profile->planning_seconds * 1e3;
    e.final_ms = profile->final_seconds * 1e3;
    e.synopsis_drift_score = profile->synopsis_drift_score;
    e.synopsis_age_seconds = profile->synopsis_age_seconds;
    e.retry_count = profile->retry_count;
    e.retry_wait_ms = profile->retry_wait_seconds * 1e3;
  }
  return e;
}

void RecordQueryMetrics(double wait_seconds, double exec_seconds,
                        const char* outcome) {
  if (!obs::Enabled()) return;
  auto& reg = obs::MetricsRegistry::Global();
  static obs::LatencyHistogram* wait_ms =
      reg.GetHistogram("service.admission_wait_ms");
  static obs::LatencyHistogram* query_ms =
      reg.GetHistogram("service.query_ms");
  wait_ms->Observe(wait_seconds * 1e3);
  query_ms->Observe(exec_seconds * 1e3);
  reg.GetCounter(std::string("service.queries.") + outcome)->Increment();
}

std::string StripQualifier(const std::string& column) {
  auto dot = column.rfind('.');
  return dot == std::string::npos ? column : column.substr(dot + 1);
}

/// Applies the environment overlays that other members read during
/// construction (the drift options configure BOTH the monitor and the
/// cache's baseline capture, so they resolve once, up front).
ServiceOptions ResolveOptions(ServiceOptions options) {
  options.drift = DriftMonitorOptions::FromEnv(options.drift);
  options.gov.retry = gov::RetryOptions::FromEnv(options.gov.retry);
  options.watchdog = WatchdogOptions::FromEnv(options.watchdog);
  options.breaker = BreakerOptions::FromEnv(options.breaker);
  if (const char* v = std::getenv("AQP_DATA_DIR")) options.data_dir = v;
  return options;
}

/// Baseline capture mirrors the monitor switch: without a monitor nobody
/// would read the baselines, so the extra build-time scan is skipped.
SynopsisCache::Options CacheOptions(const ServiceOptions& options) {
  SynopsisCache::Options o;
  o.capture_baselines = options.drift.enabled;
  o.baseline.sketch = options.drift.sketch;
  return o;
}

}  // namespace

QueryService::QueryService(const Catalog* catalog, ServiceOptions options)
    : catalog_(catalog),
      options_(ResolveOptions(std::move(options))),
      admission_(options_.admission),
      synopsis_cache_(options_.synopsis_cache_bytes, &cache_memory_,
                      CacheOptions(options_)),
      result_cache_(options_.result_cache_bytes, &cache_memory_),
      query_log_(obs::QueryLogOptions::FromEnv(options_.query_log)),
      breaker_(options_.breaker, &query_log_),
      auditor_(catalog, AuditOptions::FromEnv(options_.audit), &query_log_),
      drift_monitor_(catalog, &synopsis_cache_, options_.drift, &query_log_,
                     &auditor_),
      watchdog_(&admission_, options_.watchdog, &query_log_) {
  // Without enough pool workers, admitted queries would queue behind each
  // other inside the pool and the admission bound would be a fiction.
  ThreadPool::Shared().EnsureAtLeast(options_.admission.max_inflight);
  LoadPersistedSynopses();
}

QueryService::~QueryService() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    closed_ = true;
    drained_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }
  // After drain: no builds are in flight, so the snapshot is complete.
  SavePersistedSynopses();
}

static std::string SynopsisSidecarPath(const std::string& data_dir) {
  return data_dir + "/synopses.aqps";
}

void QueryService::LoadPersistedSynopses() {
  persistence_stats_.enabled =
      !options_.data_dir.empty() && options_.use_synopsis_cache;
  if (!persistence_stats_.enabled) return;
  const std::string path = SynopsisSidecarPath(options_.data_dir);
  SynopsisLoadStats load;
  Result<std::vector<PersistedSynopsis>> entries = LoadSynopses(path, &load);
  if (!entries.ok()) {
    // First boot (no sidecar yet) is the normal cold path, not a failure.
    // Anything else — torn header, version skew, unreadable file — leaves
    // the cache cold and is surfaced via persistence_stats(); serving
    // cannot proceed from questionable synopses (docs/STORAGE.md §10).
    persistence_stats_.load_failed =
        entries.status().code() != StatusCode::kNotFound;
    if (obs::Enabled() && persistence_stats_.load_failed) {
      obs::MetricsRegistry::Global()
          .GetCounter("service.synopsis_persistence.load_failures")
          ->Increment();
    }
    return;
  }
  persistence_stats_.load_found = load.entries_in_file;
  persistence_stats_.loaded = load.loaded;
  persistence_stats_.skipped_corrupt = load.skipped_corrupt;
  persistence_stats_.adopted =
      synopsis_cache_.Preload(*catalog_, std::move(entries).value());
  if (obs::Enabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("service.synopsis_persistence.loaded")
        ->Increment(persistence_stats_.loaded);
    reg.GetCounter("service.synopsis_persistence.adopted")
        ->Increment(persistence_stats_.adopted);
    reg.GetCounter("service.synopsis_persistence.skipped_corrupt")
        ->Increment(persistence_stats_.skipped_corrupt);
  }
}

void QueryService::SavePersistedSynopses() {
  if (options_.data_dir.empty() || !options_.use_synopsis_cache) return;
  std::vector<PersistedSynopsis> snapshot =
      synopsis_cache_.SnapshotForPersist();
  if (snapshot.empty()) return;  // Keep whatever sidecar already exists.
  Result<uint64_t> saved =
      SaveSynopses(SynopsisSidecarPath(options_.data_dir), snapshot);
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter(saved.ok() ? "service.synopsis_persistence.saved"
                               : "service.synopsis_persistence.save_failures")
        ->Increment();
  }
}

std::shared_ptr<Session> QueryService::OpenSession(SessionOptions options) {
  return std::shared_ptr<Session>(
      new Session(next_session_id_.fetch_add(1), options));
}

std::future<Result<core::ApproxResult>> QueryService::Submit(
    std::shared_ptr<Session> session, Submission submission) {
  auto promise =
      std::make_shared<std::promise<Result<core::ApproxResult>>>();
  std::future<Result<core::ApproxResult>> future = promise->get_future();
  if (session == nullptr) {
    promise->set_value(Status::InvalidArgument("Submit: null session"));
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      promise->set_value(
          Status::FailedPrecondition("Submit: service is shutting down"));
      return future;
    }
  }
  session->submitted_.fetch_add(1, std::memory_order_relaxed);

  // The submission's one span tree starts here, so everything that happens
  // to it — admission wait included — nests under a single root. The trace
  // crosses the pool boundary by shared_ptr (Post needs copyable tasks).
  std::shared_ptr<obs::QueryTrace> trace;
  if (obs::Enabled()) trace = std::make_shared<obs::QueryTrace>("submit");

  // Admission blocks the SUBMITTING thread: overload is backpressure to the
  // client, not an unbounded internal queue.
  auto wait_start = std::chrono::steady_clock::now();
  obs::TraceSpan admission_span = obs::MaybeSpan(trace.get(), "admission");
  uint64_t queue_depth = 0;
  Status admitted = admission_.Acquire(&queue_depth);
  double wait_seconds = SecondsSince(wait_start);
  admission_span.AddAttr("queue_depth", queue_depth);
  admission_span.End();
  if (!admitted.ok()) {
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("service.rejected")
          ->Increment();
    }
    session->rejected_.fetch_add(1, std::memory_order_relaxed);
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    query_log_.Append(MakeEvent(submission.sql, session->id(), "rejected",
                                wait_seconds, queue_depth, wait_seconds,
                                /*profile=*/nullptr));
    promise->set_value(std::move(admitted));
    return future;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      admission_.Release();
      promise->set_value(
          Status::FailedPrecondition("Submit: service is shutting down"));
      return future;
    }
    ++outstanding_;
  }
  ThreadPool::Shared().Post([this, promise, session = std::move(session),
                             submission = std::move(submission), wait_seconds,
                             queue_depth, trace = std::move(trace)]() mutable {
    auto exec_start = std::chrono::steady_clock::now();
    std::shared_ptr<Watchdog::Ticket> ticket;
    Result<core::ApproxResult> result =
        RunAdmitted(*session, submission, wait_seconds, queue_depth,
                    trace.get(), &ticket);
    (result.ok() ? session->ok_ : session->failed_)
        .fetch_add(1, std::memory_order_relaxed);
    (result.ok() ? queries_ok_ : queries_failed_)
        .fetch_add(1, std::memory_order_relaxed);
    // The watchdog may have reclaimed this submission's admission slot
    // already (hung-query incident); whoever flips the ticket's flag first
    // owns the one Release. The service-time sample feeds the retry-after
    // hint's EWMA.
    if (ticket == nullptr || !ticket->slot_released.exchange(true)) {
      admission_.Release(SecondsSince(exec_start));
    }
    {
      // Last member access: after outstanding_ hits 0 the destructor may
      // return, so only the (self-contained) promise is touched below.
      std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
      drained_cv_.notify_all();
    }
    promise->set_value(std::move(result));
  });
  return future;
}

Result<core::ApproxResult> QueryService::Execute(
    std::shared_ptr<Session> session, Submission submission) {
  return Submit(std::move(session), std::move(submission)).get();
}

Result<core::ApproxResult> QueryService::RunAdmitted(
    Session& session, const Submission& submission, double wait_seconds,
    uint64_t queue_depth, obs::QueryTrace* trace,
    std::shared_ptr<Watchdog::Ticket>* ticket_out) {
  auto exec_start = std::chrono::steady_clock::now();

  gov::GovernedOptions gopts = options_.gov;
  if (submission.deadline_ms.has_value()) {
    gopts.deadline_ms = *submission.deadline_ms;
  }
  if (submission.memory_budget_bytes.has_value()) {
    gopts.memory_budget_bytes = *submission.memory_budget_bytes;
  }

  // A best-effort parse extracts the referenced tables (cache keys) and the
  // GROUP BY column (stratified synopsis choice). Malformed SQL skips the
  // caches and lets the executor produce the real error.
  std::vector<std::string> tables;
  std::string strata_column;
  bool parsed = false;
  if (Result<sql::SelectStmt> stmt = sql::Parse(submission.sql); stmt.ok()) {
    parsed = true;
    const sql::SelectStmt& s = stmt.value();
    tables.push_back(s.from.table);
    for (const auto& join : s.joins) {
      if (std::find(tables.begin(), tables.end(), join.table.table) ==
          tables.end()) {
        tables.push_back(join.table.table);
      }
    }
    // Stratified synopses only for single-table GROUP BY on a plain column:
    // that is the case where uniform samples lose small groups and the
    // BlinkDB-style stratified sample is the fix.
    if (s.joins.empty() && s.group_by.size() == 1 &&
        s.group_by[0]->kind == sql::SqlExpr::Kind::kColumn) {
      strata_column = StripQualifier(s.group_by[0]->column);
    }
  }

  std::vector<std::pair<std::string, uint64_t>> versions;
  bool versions_ok = parsed;
  for (const std::string& table : tables) {
    Result<uint64_t> version = catalog_->Version(table);
    if (!version.ok()) {
      versions_ok = false;
      break;
    }
    versions.emplace_back(table, version.value());
  }

  // Version movement since the last query that touched these tables nudges
  // the drift monitor: a bump means the baseline's snapshot is known-old.
  if (drift_monitor_.enabled() && versions_ok) {
    bool moved = false;
    {
      std::lock_guard<std::mutex> lock(versions_mu_);
      for (const auto& [table, version] : versions) {
        auto [it, inserted] = seen_versions_.emplace(table, version);
        if (!inserted && it->second != version) {
          it->second = version;
          moved = true;
        }
      }
    }
    if (moved) drift_monitor_.NotifyVersionActivity();
  }

  // Result cache: identical (SQL, table versions, contract) → answer from
  // memory. The fingerprint pins table versions, so appends/replaces
  // invalidate by making old keys unreachable.
  uint64_t fingerprint = 0;
  const bool fingerprint_ok = versions_ok && options_.use_result_cache;
  if (fingerprint_ok) {
    obs::TraceSpan probe_span = obs::MaybeSpan(trace, "result-cache");
    ContractFingerprint contract;
    contract.deadline_ms = gopts.deadline_ms;
    contract.memory_budget_bytes = gopts.memory_budget_bytes;
    contract.seed = gopts.aqp.seed;
    contract.confidence = gopts.confidence;
    fingerprint = FingerprintQuery(submission.sql, versions, contract);
    if (std::shared_ptr<const core::ApproxResult> cached =
            result_cache_.Lookup(fingerprint)) {
      probe_span.AddAttr("hit", "true");
      probe_span.End();
      core::ApproxResult result = *cached;  // Deep copy; cache stays immutable.
      StampProfile(&result, wait_seconds, queue_depth, "result-cache", trace);
      double wall_seconds = wait_seconds + SecondsSince(exec_start);
      query_log_.Append(MakeEvent(submission.sql, session.id(), "ok",
                                  wait_seconds, queue_depth, wall_seconds,
                                  &result.profile));
      RecordQueryMetrics(wait_seconds, SecondsSince(exec_start),
                         "result_cache_hit");
      return result;
    }
    probe_span.AddAttr("hit", "false");
  }

  // Poison-query quarantine: a fingerprint that keeps failing conclusively
  // is fast-failed here, before it burns an execution, until its quarantine
  // window lapses and one probe is let through.
  if (fingerprint_ok) {
    if (Status quarantined = breaker_.CheckQuarantine(fingerprint);
        !quarantined.ok()) {
      double wall_seconds = wait_seconds + SecondsSince(exec_start);
      obs::QueryLogEvent e =
          MakeEvent(submission.sql, session.id(), "quarantined", wait_seconds,
                    queue_depth, wall_seconds, /*profile=*/nullptr);
      e.retry_after_ms = RetryAfterMsFromStatus(quarantined);
      query_log_.Append(std::move(e));
      RecordQueryMetrics(wait_seconds, SecondsSince(exec_start), "quarantined");
      return quarantined;
    }
  }

  // Synopsis cache: adopt shared stored samples into this query's private
  // offline-rung view. Build/lookup failures are non-fatal — the ladder
  // simply has no rung 1 for that table. The drift score/age of the
  // adopted synopses travel into GovernedOptions so rung 1 can widen its
  // CIs (or decline) proportionally to measured staleness.
  core::SampleCatalog synopsis_view;
  bool adopted = false;
  double drift_score = 0.0;
  double synopsis_age_seconds = 0.0;
  if (options_.use_synopsis_cache && versions_ok) {
    obs::TraceSpan synopsis_span = obs::MaybeSpan(trace, "synopsis-cache");
    const double now_unix =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    auto adopt = [&](const std::string& table, const SynopsisSpec& spec) {
      auto cached = synopsis_cache_.GetOrBuild(*catalog_, table, spec);
      if (!cached.ok()) return;
      if (!synopsis_view.Adopt(cached.value().sample).ok()) return;
      adopted = true;
      drift_score = std::max(drift_score, cached.value().drift_score);
      if (cached.value().built_unix_seconds > 0.0) {
        synopsis_age_seconds =
            std::max(synopsis_age_seconds,
                     now_unix - cached.value().built_unix_seconds);
      }
    };
    for (const auto& [table, version] : versions) {
      (void)version;  // The cache re-reads the live version under its lock.
      Result<uint64_t> rows = catalog_->Cardinality(table);
      if (!rows.ok() || rows.value() < options_.synopsis_min_table_rows) {
        continue;
      }
      SynopsisSpec uniform;
      uniform.budget = options_.synopsis_rows;
      uniform.seed = gopts.aqp.seed;
      adopt(table, uniform);
      if (!strata_column.empty()) {
        SynopsisSpec stratified = uniform;
        stratified.strata_column = strata_column;
        adopt(table, stratified);
      }
    }
    synopsis_span.AddAttr("adopted", adopted ? "true" : "false");
  }

  // The drift consultation is its own span: what the serving path knew
  // about synopsis staleness when it chose how to answer.
  {
    obs::TraceSpan drift_span = obs::MaybeSpan(trace, "drift_check");
    gopts.synopsis_drift_score = drift_score;
    gopts.synopsis_age_seconds = synopsis_age_seconds;
    if (trace != nullptr && adopted) {
      drift_span.AddAttr("drift_score", std::to_string(drift_score));
      drift_span.AddAttr("flagged",
                         drift_score >= drift_monitor_.options().flag_threshold
                             ? "true"
                             : "false");
    }
  }

  // Per-(table, rung) circuit breakers gate the ladder's rungs for the
  // query's primary table: a rung with a tripped breaker is skipped (or the
  // query fast-fails with a retry-after hint if no rung remains).
  if (options_.breaker.enabled && !tables.empty()) {
    gopts.rung_gate = &breaker_;
    gopts.gate_table = tables[0];
  }

  // The query's own tracker chains to the session's: EITHER budget trips
  // the memory stop.
  gov::QueryContext ctx(
      gov::Limits{gopts.deadline_ms, gopts.memory_budget_bytes},
      &session.memory_);
  ctx.Start();
  // From here until Unregister the watchdog can see the context: a query
  // that blows through deadline + grace gets a hard cancel and loses its
  // admission slot to the reclaim path.
  *ticket_out = watchdog_.Register(session.id(), submission.sql,
                                   HashString(submission.sql), &ctx,
                                   gopts.deadline_ms);
  gov::GovernedExecutor executor(catalog_, adopted ? &synopsis_view : nullptr,
                                 gopts);
  Result<core::ApproxResult> result =
      executor.ExecuteWithContext(submission.sql, ctx, trace);
  // MUST precede ctx going out of scope (and every return below): detaches
  // the context from the watchdog's view.
  watchdog_.Unregister(*ticket_out);
  double wall_seconds = wait_seconds + SecondsSince(exec_start);

  // Conclusive failures feed the poison tracker; successes clear it. A
  // breaker-caused exhaustion carries a retry-after hint and is NOT poison —
  // the query never got a fair chance to run.
  if (fingerprint_ok) {
    const bool poison =
        !result.ok() &&
        (result.status().code() == StatusCode::kInternal ||
         (gov::IsLadderExhausted(result.status()) &&
          RetryAfterMsFromStatus(result.status()) == 0));
    breaker_.RecordQueryOutcome(fingerprint, poison);
  }

  if (!result.ok()) {
    obs::QueryLogEvent e =
        MakeEvent(submission.sql, session.id(), "failed", wait_seconds,
                  queue_depth, wall_seconds, /*profile=*/nullptr);
    e.retry_after_ms = RetryAfterMsFromStatus(result.status());
    query_log_.Append(std::move(e));
    RecordQueryMetrics(wait_seconds, SecondsSince(exec_start), "failed");
    return result;
  }

  core::ApproxResult& r = result.value();
  std::string cache_source;
  if (r.profile.degradation_rung == 1 && adopted) {
    cache_source = "synopsis-cache";
  }
  // Only undegraded answers are worth replaying: a degraded answer encodes
  // a transient resource situation, not the query's answer. Inserted BEFORE
  // stamping so the cached entry carries no per-submission admission fields
  // and no span tree (hits would otherwise deep-copy a dead trace).
  if (fingerprint_ok && r.profile.degradation_rung == 0) {
    result_cache_.Insert(fingerprint, r);
  }
  StampProfile(&r, wait_seconds, queue_depth, std::move(cache_source), trace);
  query_log_.Append(MakeEvent(submission.sql, session.id(), "ok", wait_seconds,
                              queue_depth, wall_seconds, &r.profile));
  // Offer the completed approximate answer to the background accuracy
  // auditor (result-cache hits returned above — the original execution was
  // already offered; re-auditing an identical answer adds no information).
  auditor_.MaybeEnqueue(submission.sql, r);
  RecordQueryMetrics(wait_seconds, SecondsSince(exec_start), "ok");
  return result;
}

ServiceStatsSnapshot QueryService::StatsSnapshot() const {
  ServiceStatsSnapshot s;
  s.admission = admission_.stats();
  s.result_cache = result_cache_.stats();
  s.synopsis_cache = synopsis_cache_.stats();
  s.cache_bytes = cache_memory_.used();
  s.sessions_opened = next_session_id_.load(std::memory_order_relaxed) - 1;
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  s.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  s.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
  s.query_log = query_log_.stats();
  s.audit = auditor_.stats();
  s.drift = drift_monitor_.stats();
  s.watchdog = watchdog_.stats();
  s.breaker = breaker_.stats();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.outstanding = outstanding_;
  }
  return s;
}

void QueryService::PublishStats() const {
  ServiceStatsSnapshot s = StatsSnapshot();
  auto& reg = obs::MetricsRegistry::Global();
  auto set = [&reg](const char* name, double v) {
    reg.GetGauge(name)->Set(v);
  };
  set("service.outstanding", static_cast<double>(s.outstanding));
  set("service.sessions_opened", static_cast<double>(s.sessions_opened));
  set("service.queries_ok", static_cast<double>(s.queries_ok));
  set("service.queries_failed", static_cast<double>(s.queries_failed));
  set("service.queries_rejected", static_cast<double>(s.queries_rejected));
  set("service.admission.inflight", static_cast<double>(s.admission.inflight));
  set("service.admission.queue_depth",
      static_cast<double>(s.admission.queue_depth));
  set("service.admission.admitted", static_cast<double>(s.admission.admitted));
  set("service.cache.bytes", static_cast<double>(s.cache_bytes));
  set("service.result_cache.hits", static_cast<double>(s.result_cache.hits));
  set("service.result_cache.misses",
      static_cast<double>(s.result_cache.misses));
  set("service.result_cache.entries",
      static_cast<double>(s.result_cache.entries));
  set("service.synopsis_cache.hits",
      static_cast<double>(s.synopsis_cache.hits));
  set("service.synopsis_cache.builds",
      static_cast<double>(s.synopsis_cache.builds));
  set("service.synopsis_cache.entries",
      static_cast<double>(s.synopsis_cache.entries));
  set("service.query_log.appended", static_cast<double>(s.query_log.appended));
  set("service.query_log.slow", static_cast<double>(s.query_log.slow));
  set("service.query_log.sink_dropped",
      static_cast<double>(s.query_log.sink_dropped));
  set("service.audit.audited", static_cast<double>(s.audit.audited));
  set("service.audit.dropped", static_cast<double>(s.audit.dropped));
  set("service.audit.coverage_all_time", s.audit.coverage());
  set("service.synopsis_cache.invalidations",
      static_cast<double>(s.synopsis_cache.invalidations));
  set("service.synopsis_cache.drift_flags",
      static_cast<double>(s.synopsis_cache.drift_flags));
  set("service.drift.sweeps", static_cast<double>(s.drift.sweeps));
  set("service.drift.checks", static_cast<double>(s.drift.checks));
  set("service.drift.failed", static_cast<double>(s.drift.failed));
  set("service.drift.flagged", static_cast<double>(s.drift.flagged));
  set("service.drift.invalidated", static_cast<double>(s.drift.invalidated));
  set("service.drift.last_max_score_ratio", s.drift.last_max_score);
  set("service.admission.rejected_fault",
      static_cast<double>(s.admission.rejected_fault));
  set("service.admission.ewma_service_seconds",
      s.admission.ewma_service_seconds);
  set("service.watchdog.tracked", static_cast<double>(s.watchdog.tracked));
  set("service.watchdog.hung_total", static_cast<double>(s.watchdog.hung));
  set("service.watchdog.reclaimed_total",
      static_cast<double>(s.watchdog.reclaimed_slots));
  set("service.watchdog.completed_late",
      static_cast<double>(s.watchdog.completed_late));
  set("service.breaker.open_circuits",
      static_cast<double>(s.breaker.open_circuits));
  set("service.breaker.denials", static_cast<double>(s.breaker.denials));
  set("service.breaker.quarantine_denials",
      static_cast<double>(s.breaker.quarantine_denials));
  // Mirror the fault injector's per-site counters so a chaos run's coverage
  // (which sites actually fired) is visible in the same scrape.
  for (const auto& [site, counters] :
       gov::FaultInjector::Global().SiteCountersSnapshot()) {
    auto labeled = [&site](const char* family) {
      return std::string(family) + "{site=\"" + site + "\"}";
    };
    reg.GetGauge(labeled("fault.site.evaluated"))
        ->Set(static_cast<double>(counters.evaluated));
    reg.GetGauge(labeled("fault.site.injected"))
        ->Set(static_cast<double>(counters.injected));
    reg.GetGauge(labeled("fault.site.hung"))
        ->Set(static_cast<double>(counters.hung));
  }
}

}  // namespace service
}  // namespace aqp
