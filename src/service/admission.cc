#include "service/admission.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/str_util.h"
#include "gov/fault_injector.h"

namespace aqp {
namespace service {
namespace {

// Assumed per-query service time until the first release is measured: the
// hint must be non-zero even when the very first arrivals are refused.
constexpr double kDefaultServiceSeconds = 0.050;

// EWMA smoothing for the observed service time; heavier on history so one
// outlier query does not swing every client's backoff.
constexpr double kEwmaAlpha = 0.2;

std::string WithRetryAfter(std::string message, int64_t retry_after_ms) {
  message += " (retry_after_ms=" + std::to_string(retry_after_ms) + ")";
  return message;
}

}  // namespace

int64_t AdmissionController::RetryAfterHintMsLocked() const {
  const double service_seconds = ewma_service_seconds_ > 0.0
                                     ? ewma_service_seconds_
                                     : kDefaultServiceSeconds;
  const size_t lanes = std::max<size_t>(1, options_.max_inflight);
  // The submission behind `waiting_` others drains after roughly
  // (waiting + 1) service times spread over the in-flight lanes.
  const double eta_seconds =
      static_cast<double>(waiting_ + 1) * service_seconds /
      static_cast<double>(lanes);
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(eta_seconds * 1000.0)));
}

Status AdmissionController::Acquire(uint64_t* queue_depth_seen) {
  // Chaos site: an injected admission fault presents as overload, so client
  // retry/backoff paths can be exercised without real saturation.
  if (Status fault = gov::FaultInjector::Global().MaybeFail("service.admit");
      !fault.ok()) {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_depth_seen != nullptr) *queue_depth_seen = waiting_;
    ++rejected_fault_;
    return Status::ResourceExhausted(WithRetryAfter(
        "injected admission fault: " + fault.message(),
        RetryAfterHintMsLocked()));
  }

  std::unique_lock<std::mutex> lock(mu_);
  if (queue_depth_seen != nullptr) *queue_depth_seen = waiting_;
  // Fast path only when nobody is queued ahead — a free slot goes to the
  // oldest waiter first, keeping admission roughly arrival-ordered.
  if (inflight_ < options_.max_inflight && waiting_ == 0) {
    ++inflight_;
    ++admitted_;
    return Status::OK();
  }
  if (waiting_ >= options_.max_queue) {
    ++rejected_queue_full_;
    return Status::ResourceExhausted(WithRetryAfter(
        "admission queue full: " + std::to_string(inflight_) +
            " in flight, " + std::to_string(waiting_) + " queued (max_queue=" +
            std::to_string(options_.max_queue) + ")",
        RetryAfterHintMsLocked()));
  }
  ++waiting_;
  bool got_slot;
  auto have_slot = [this] { return inflight_ < options_.max_inflight; };
  if (options_.queue_timeout_ms < 0) {
    cv_.wait(lock, have_slot);
    got_slot = true;
  } else {
    got_slot = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.queue_timeout_ms), have_slot);
  }
  --waiting_;
  if (!got_slot) {
    ++rejected_timeout_;
    return Status::ResourceExhausted(WithRetryAfter(
        "admission timed out after " +
            std::to_string(options_.queue_timeout_ms) + "ms (" +
            std::to_string(inflight_) + " in flight)",
        RetryAfterHintMsLocked()));
  }
  ++inflight_;
  ++admitted_;
  return Status::OK();
}

void AdmissionController::Release(double service_seconds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ > 0) --inflight_;
    if (service_seconds > 0.0) {
      ewma_service_seconds_ =
          ewma_service_seconds_ > 0.0
              ? (1.0 - kEwmaAlpha) * ewma_service_seconds_ +
                    kEwmaAlpha * service_seconds
              : service_seconds;
    }
  }
  cv_.notify_one();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats s;
  s.admitted = admitted_;
  s.rejected_queue_full = rejected_queue_full_;
  s.rejected_timeout = rejected_timeout_;
  s.rejected_fault = rejected_fault_;
  s.inflight = inflight_;
  s.queue_depth = waiting_;
  s.ewma_service_seconds = ewma_service_seconds_;
  return s;
}

int64_t RetryAfterMsFromStatus(const Status& s) {
  if (s.ok()) return 0;
  static constexpr std::string_view kTag = "(retry_after_ms=";
  const std::string& message = s.message();
  size_t pos = message.rfind(kTag);
  if (pos == std::string::npos) return 0;
  size_t begin = pos + kTag.size();
  size_t end = message.find(')', begin);
  if (end == std::string::npos || end == begin) return 0;
  auto parsed = ParseInt64(message.substr(begin, end - begin));
  if (!parsed.ok() || *parsed < 0) return 0;
  return *parsed;
}

}  // namespace service
}  // namespace aqp
