#include "service/admission.h"

#include <chrono>
#include <string>

namespace aqp {
namespace service {

Status AdmissionController::Acquire(uint64_t* queue_depth_seen) {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_depth_seen != nullptr) *queue_depth_seen = waiting_;
  // Fast path only when nobody is queued ahead — a free slot goes to the
  // oldest waiter first, keeping admission roughly arrival-ordered.
  if (inflight_ < options_.max_inflight && waiting_ == 0) {
    ++inflight_;
    ++admitted_;
    return Status::OK();
  }
  if (waiting_ >= options_.max_queue) {
    ++rejected_queue_full_;
    return Status::ResourceExhausted(
        "admission queue full: " + std::to_string(inflight_) + " in flight, " +
        std::to_string(waiting_) + " queued (max_queue=" +
        std::to_string(options_.max_queue) + ")");
  }
  ++waiting_;
  bool got_slot;
  auto have_slot = [this] { return inflight_ < options_.max_inflight; };
  if (options_.queue_timeout_ms < 0) {
    cv_.wait(lock, have_slot);
    got_slot = true;
  } else {
    got_slot = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.queue_timeout_ms), have_slot);
  }
  --waiting_;
  if (!got_slot) {
    ++rejected_timeout_;
    return Status::ResourceExhausted(
        "admission timed out after " +
        std::to_string(options_.queue_timeout_ms) + "ms (" +
        std::to_string(inflight_) + " in flight)");
  }
  ++inflight_;
  ++admitted_;
  return Status::OK();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ > 0) --inflight_;
  }
  cv_.notify_one();
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats s;
  s.admitted = admitted_;
  s.rejected_queue_full = rejected_queue_full_;
  s.rejected_timeout = rejected_timeout_;
  s.inflight = inflight_;
  s.queue_depth = waiting_;
  return s;
}

}  // namespace service
}  // namespace aqp
