#ifndef AQP_SERVICE_CIRCUIT_BREAKER_H_
#define AQP_SERVICE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "gov/governed_executor.h"
#include "obs/query_log.h"

namespace aqp {
namespace service {

/// Circuit-breaker knobs. `FromEnv` overlays the environment:
///   AQP_BREAKER_ENABLED           1/0 (master switch)
///   AQP_BREAKER_WINDOW            rolling outcome window per circuit
///   AQP_BREAKER_MIN_SAMPLES       outcomes required before a trip
///   AQP_BREAKER_FAILURE_THRESHOLD failure rate in [0, 1] that trips
///   AQP_BREAKER_OPEN_MS           how long an open circuit refuses
///   AQP_BREAKER_HALF_OPEN_PROBES  concurrent probes while half-open
///   AQP_BREAKER_POISON_THRESHOLD  consecutive poison failures to quarantine
///   AQP_BREAKER_QUARANTINE_MS     how long a quarantined fingerprint waits
struct BreakerOptions {
  bool enabled = true;
  /// Rolling window of conclusive outcomes per (table, rung) circuit.
  size_t window = 16;
  /// Outcomes the window must hold before the failure rate can trip it —
  /// one unlucky first query must not open a circuit.
  size_t min_samples = 8;
  /// Window failure rate at or above which a closed circuit trips open.
  double failure_threshold = 0.5;
  /// An open circuit refuses its rung for this long, then turns half-open.
  int64_t open_ms = 5000;
  /// Probes admitted concurrently while half-open; the first conclusive
  /// probe outcome closes (success) or re-opens (failure) the circuit.
  size_t half_open_probes = 1;
  /// Consecutive poison outcomes (kInternal or ladder exhaustion) of ONE
  /// query fingerprint before that fingerprint is quarantined.
  size_t poison_threshold = 3;
  /// A quarantined fingerprint is refused for this long, then one probe
  /// execution is let through; success lifts the quarantine.
  int64_t quarantine_ms = 5000;

  static BreakerOptions FromEnv(BreakerOptions base);
  static BreakerOptions FromEnv() { return FromEnv(BreakerOptions()); }
};

/// Point-in-time breaker counters.
struct BreakerStats {
  uint64_t trips = 0;               // closed/half-open -> open transitions.
  uint64_t closes = 0;              // half-open -> closed recoveries.
  uint64_t denials = 0;             // Rung attempts refused by open circuits.
  uint64_t probes = 0;              // Half-open attempts admitted.
  uint64_t quarantined = 0;         // Fingerprints ever quarantined.
  uint64_t quarantine_denials = 0;  // Submissions refused while quarantined.
  size_t open_circuits = 0;         // Circuits currently open or half-open.
};

/// One (table, rung) circuit as seen by Snapshot() / `aqptop --health`.
struct BreakerRungInfo {
  std::string table;
  int rung = 0;
  std::string state;  // "closed", "open", or "half-open".
  double open_age_seconds = 0.0;  // Time since the last trip; 0 when closed.
  uint64_t failures = 0;          // Conclusive failures ever recorded.
  uint64_t successes = 0;
  uint64_t trips = 0;
  double window_failure_rate = 0.0;
};

/// Per-(table, rung) circuit breaker over the degradation ladder, plus a
/// poison-query quarantine keyed on the service's result-cache fingerprint.
///
/// Implements gov::RungGate: the GovernedExecutor consults Allow() before
/// each rung attempt and reports conclusive outcomes back via
/// RecordOutcome(). A circuit is closed (allowing) until the rolling outcome
/// window holds >= min_samples outcomes with a failure rate >=
/// failure_threshold; it then trips open and the rung is skipped — the
/// ladder descends past it, exactly as if the rung had failed, but without
/// paying the rung's (possibly retried) execution cost. After open_ms the
/// circuit turns half-open and admits up to half_open_probes probe attempts;
/// a successful probe closes the circuit, a failed one re-opens it.
///
/// The quarantine is orthogonal: a query fingerprint whose submissions
/// conclusively fail poison_threshold times IN A ROW (kInternal, or the
/// ladder exhausted every rung) is refused at submit for quarantine_ms with
/// a retry-after hint — one repeatedly-crashing query must not keep eating
/// every rung's retry budget. After quarantine_ms one probe submission runs;
/// success lifts the quarantine.
///
/// State transitions emit kind="breaker" query-log events and set
/// `service.breaker.*` metrics. Thread-safe; one instance serves the whole
/// service.
class CircuitBreaker : public gov::RungGate {
 public:
  explicit CircuitBreaker(BreakerOptions options,
                          obs::QueryLog* log = nullptr);

  // gov::RungGate:
  Decision Allow(const std::string& table, int rung) override;
  void RecordOutcome(const std::string& table, int rung, bool ok) override;

  /// OK when `fingerprint` may execute; ResourceExhausted with a
  /// "(retry_after_ms=N)" hint while it is quarantined.
  Status CheckQuarantine(uint64_t fingerprint);
  /// Reports how a submission of `fingerprint` concluded. `poison` means it
  /// failed in a way that indicts the query itself (kInternal or full ladder
  /// exhaustion); any non-poison outcome resets the consecutive count and
  /// lifts an existing quarantine.
  void RecordQueryOutcome(uint64_t fingerprint, bool poison);

  /// Every circuit that has recorded at least one outcome or denial.
  std::vector<BreakerRungInfo> Snapshot() const;

  BreakerStats stats() const;
  bool enabled() const { return options_.enabled; }
  const BreakerOptions& options() const { return options_; }

 private:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Circuit {
    State state = State::kClosed;
    std::deque<bool> window;  // true = failure; bounded at options_.window.
    std::chrono::steady_clock::time_point opened_at{};
    size_t probes_outstanding = 0;
    uint64_t failures = 0;
    uint64_t successes = 0;
    uint64_t trips = 0;
  };

  struct PoisonEntry {
    size_t consecutive_failures = 0;
    bool quarantined = false;
    std::chrono::steady_clock::time_point quarantined_at{};
  };

  static const char* StateName(State s);
  double WindowFailureRateLocked(const Circuit& c) const;
  /// Emits the transition log event + labeled state gauge. mu_ may be held.
  void PublishTransition(const std::string& table, int rung, State state);
  void PublishQuarantine(uint64_t fingerprint, bool on);

  const BreakerOptions options_;
  obs::QueryLog* log_;

  mutable std::mutex mu_;
  std::map<std::pair<std::string, int>, Circuit> circuits_;
  std::unordered_map<uint64_t, PoisonEntry> poison_;
  uint64_t trips_ = 0;
  uint64_t closes_ = 0;
  uint64_t denials_ = 0;
  uint64_t probes_ = 0;
  uint64_t quarantined_ = 0;
  uint64_t quarantine_denials_ = 0;
};

}  // namespace service
}  // namespace aqp

#endif  // AQP_SERVICE_CIRCUIT_BREAKER_H_
