#ifndef AQP_SKETCH_THETA_H_
#define AQP_SKETCH_THETA_H_

#include <cstdint>
#include <set>

#include "common/result.h"

namespace aqp {
namespace sketch {

/// Theta sketch (Dasgupta, Lang, Rhodes, Thaler): a KMV-style distinct
/// sketch that additionally supports set algebra — union, intersection, and
/// difference of the *distinct sets* behind two sketches, each returning a
/// new sketch. This is what answers "how many distinct users did A AND B
/// see?" without the raw data, a question neither sampling nor HLL
/// intersection heuristics answer with guarantees.
///
/// Invariant: the sketch retains every hash below theta; when more than k
/// accumulate, theta shrinks to the k-th smallest retained hash. The
/// estimate is (retained - 1) / theta_fraction when saturated, exact below k.
class ThetaSketch {
 public:
  /// k >= 16 controls accuracy: relative standard error ~ 1/sqrt(k - 2).
  static Result<ThetaSketch> Create(uint32_t k);

  void Add(uint64_t key);

  /// Estimated distinct count of keys added.
  double Estimate() const;

  /// Relative standard error for this k (saturated regime).
  double StandardError() const;

  /// In-place union: folds `other`'s retained hashes into this sketch (the
  /// member-function form of Union, matching the Merge() interface of the
  /// other sketches so morsel-parallel partials can fold pairwise). The
  /// result keeps this sketch's k; merge order does not affect the final
  /// state, but parallel folds still merge in morsel order by convention.
  void Merge(const ThetaSketch& other);

  /// Set-algebraic combinations (results carry min(k) of the operands).
  static ThetaSketch Union(const ThetaSketch& a, const ThetaSketch& b);
  static ThetaSketch Intersect(const ThetaSketch& a, const ThetaSketch& b);
  /// Distinct keys in `a` but not in `b`.
  static ThetaSketch ANotB(const ThetaSketch& a, const ThetaSketch& b);

  uint32_t k() const { return k_; }
  /// Current theta as a fraction of the hash space in (0, 1].
  double theta() const;
  size_t retained() const { return hashes_.size(); }

 private:
  explicit ThetaSketch(uint32_t k) : k_(k) {}
  void Trim();

  uint32_t k_;
  uint64_t theta_ = UINT64_MAX;  // Retention threshold (exclusive).
  std::set<uint64_t> hashes_;    // Retained hashes, all < theta_.
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_THETA_H_
