#ifndef AQP_SKETCH_BLOOM_FILTER_H_
#define AQP_SKETCH_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace sketch {

/// Classic Bloom filter over 64-bit keys (hash your value first; see
/// common/hash.h). Double hashing derives the k probe positions from two
/// base hashes, per Kirsch & Mitzenmacher.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_items` at the target false-positive
  /// rate: m = -n ln(fpr) / (ln 2)^2 bits, k = (m/n) ln 2 hash functions.
  static Result<BloomFilter> Create(uint64_t expected_items,
                                    double false_positive_rate);

  /// Directly sized filter (`num_bits` rounded up to a multiple of 64).
  BloomFilter(uint64_t num_bits, uint32_t num_hashes);

  void Add(uint64_t key);

  /// True if the key may be present; false only if definitely absent.
  bool MayContain(uint64_t key) const;

  /// Unions another filter (must have identical geometry).
  Status Merge(const BloomFilter& other);

  uint64_t num_bits() const { return num_bits_; }
  uint32_t num_hashes() const { return num_hashes_; }

  /// Fraction of set bits — a load estimate (fpr ~ fill^k).
  double FillRatio() const;

  /// Memory footprint of the bit array in bytes.
  size_t SizeBytes() const { return bits_.size() * sizeof(uint64_t); }

  /// Compact binary encoding.
  std::string Serialize() const;
  /// Inverse of Serialize; rejects corrupt or foreign buffers.
  static Result<BloomFilter> Deserialize(std::string_view data);

 private:
  uint64_t num_bits_;
  uint32_t num_hashes_;
  std::vector<uint64_t> bits_;
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_BLOOM_FILTER_H_
