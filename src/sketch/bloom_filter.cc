#include "sketch/bloom_filter.h"

#include <cmath>

#include "common/check.h"
#include "common/bytes.h"
#include "common/hash.h"

namespace aqp {
namespace sketch {

Result<BloomFilter> BloomFilter::Create(uint64_t expected_items,
                                        double false_positive_rate) {
  if (expected_items == 0) {
    return Status::InvalidArgument("expected_items must be positive");
  }
  if (false_positive_rate <= 0.0 || false_positive_rate >= 1.0) {
    return Status::InvalidArgument("false positive rate must be in (0,1)");
  }
  const double ln2 = std::log(2.0);
  double m = -static_cast<double>(expected_items) *
             std::log(false_positive_rate) / (ln2 * ln2);
  double k = m / static_cast<double>(expected_items) * ln2;
  uint64_t num_bits = static_cast<uint64_t>(std::ceil(m));
  uint32_t num_hashes = std::max<uint32_t>(
      1, static_cast<uint32_t>(std::llround(k)));
  return BloomFilter(num_bits, num_hashes);
}

BloomFilter::BloomFilter(uint64_t num_bits, uint32_t num_hashes)
    : num_bits_((num_bits + 63) / 64 * 64), num_hashes_(num_hashes) {
  AQP_CHECK(num_bits > 0);
  AQP_CHECK(num_hashes > 0);
  bits_.assign(num_bits_ / 64, 0);
}

void BloomFilter::Add(uint64_t key) {
  uint64_t h1 = Mix64(key);
  uint64_t h2 = Mix64(key ^ 0x9e3779b97f4a7c15ULL) | 1;  // Odd step.
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t pos = (h1 + i * h2) % num_bits_;
    bits_[pos >> 6] |= (1ULL << (pos & 63));
  }
}

bool BloomFilter::MayContain(uint64_t key) const {
  uint64_t h1 = Mix64(key);
  uint64_t h2 = Mix64(key ^ 0x9e3779b97f4a7c15ULL) | 1;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t pos = (h1 + i * h2) % num_bits_;
    if ((bits_[pos >> 6] & (1ULL << (pos & 63))) == 0) return false;
  }
  return true;
}

Status BloomFilter::Merge(const BloomFilter& other) {
  if (other.num_bits_ != num_bits_ || other.num_hashes_ != num_hashes_) {
    return Status::InvalidArgument("bloom filter geometry mismatch");
  }
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
  return Status::OK();
}

namespace {
constexpr uint32_t kBloomMagic = 0x424c4d31;  // "BLM1".
}  // namespace

std::string BloomFilter::Serialize() const {
  ByteWriter w;
  w.PutU32(kBloomMagic);
  w.PutU64(num_bits_);
  w.PutU32(num_hashes_);
  w.PutBytes(bits_.data(), bits_.size() * sizeof(uint64_t));
  return w.Take();
}

Result<BloomFilter> BloomFilter::Deserialize(std::string_view data) {
  ByteReader r(data);
  AQP_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kBloomMagic) {
    return Status::InvalidArgument("not a serialized Bloom filter");
  }
  AQP_ASSIGN_OR_RETURN(uint64_t num_bits, r.GetU64());
  AQP_ASSIGN_OR_RETURN(uint32_t num_hashes, r.GetU32());
  if (num_bits == 0 || num_bits % 64 != 0 || num_hashes == 0 ||
      num_hashes > 64 || num_bits > (1ull << 40)) {
    return Status::InvalidArgument("implausible Bloom filter geometry");
  }
  BloomFilter filter(num_bits, num_hashes);
  if (r.remaining() != filter.bits_.size() * sizeof(uint64_t)) {
    return Status::InvalidArgument("Bloom filter payload mismatch");
  }
  AQP_RETURN_IF_ERROR(r.GetBytes(filter.bits_.data(),
                                 filter.bits_.size() * sizeof(uint64_t)));
  return filter;
}

double BloomFilter::FillRatio() const {
  uint64_t set = 0;
  for (uint64_t word : bits_) set += __builtin_popcountll(word);
  return static_cast<double>(set) / static_cast<double>(num_bits_);
}

}  // namespace sketch
}  // namespace aqp
