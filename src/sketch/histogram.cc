#include "sketch/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqp {
namespace sketch {
namespace {

// Fraction of bucket [b.low, b.high) overlapped by the query [low, high],
// assuming uniform spread.
double OverlapFraction(const Bucket& b, double low, double high) {
  double width = b.high - b.low;
  if (width <= 0.0) {
    // Degenerate (single-value) bucket: in or out.
    return (b.low >= low && b.low <= high) ? 1.0 : 0.0;
  }
  double lo = std::max(b.low, low);
  double hi = std::min(b.high, high);
  if (hi <= lo) return 0.0;
  return (hi - lo) / width;
}

}  // namespace

Result<Histogram> Histogram::EquiWidth(const std::vector<double>& values,
                                       uint32_t num_buckets) {
  if (values.empty()) return Status::InvalidArgument("empty input");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  double mn = *mn_it;
  double mx = *mx_it;
  if (mn == mx) mx = mn + 1.0;  // Avoid zero-width domain.
  double width = (mx - mn) / static_cast<double>(num_buckets);

  Histogram h;
  h.buckets_.resize(num_buckets);
  for (uint32_t b = 0; b < num_buckets; ++b) {
    h.buckets_[b].low = mn + width * b;
    h.buckets_[b].high = mn + width * (b + 1);
  }
  h.buckets_.back().high = mx;
  for (double v : values) {
    uint32_t b = static_cast<uint32_t>((v - mn) / width);
    if (b >= num_buckets) b = num_buckets - 1;
    h.buckets_[b].count++;
    h.buckets_[b].sum += v;
  }
  h.total_count_ = values.size();
  return h;
}

Result<Histogram> Histogram::EquiDepth(const std::vector<double>& values,
                                       uint32_t num_buckets) {
  if (values.empty()) return Status::InvalidArgument("empty input");
  if (num_buckets == 0) return Status::InvalidArgument("need >= 1 bucket");
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  num_buckets = static_cast<uint32_t>(
      std::min<size_t>(num_buckets, n));

  Histogram h;
  h.total_count_ = n;
  size_t start = 0;
  for (uint32_t b = 0; b < num_buckets; ++b) {
    size_t end = (b + 1 == num_buckets)
                     ? n
                     : (n * (b + 1)) / num_buckets;
    // Extend over ties so a value never straddles two buckets.
    while (end < n && end > start && sorted[end] == sorted[end - 1]) ++end;
    if (end <= start) continue;
    Bucket bucket;
    bucket.low = sorted[start];
    bucket.high = (end == n) ? sorted[n - 1] : sorted[end];
    for (size_t i = start; i < end; ++i) {
      bucket.count++;
      bucket.sum += sorted[i];
    }
    h.buckets_.push_back(bucket);
    start = end;
  }
  return h;
}

double Histogram::EstimateRangeCount(double low, double high) const {
  if (high < low) return 0.0;
  double total = 0.0;
  for (const Bucket& b : buckets_) {
    total += OverlapFraction(b, low, high) * static_cast<double>(b.count);
  }
  return total;
}

double Histogram::EstimateRangeSum(double low, double high) const {
  if (high < low) return 0.0;
  double total = 0.0;
  for (const Bucket& b : buckets_) {
    total += OverlapFraction(b, low, high) * b.sum;
  }
  return total;
}

double Histogram::EstimateSelectivity(double low, double high) const {
  if (total_count_ == 0) return 0.0;
  return EstimateRangeCount(low, high) / static_cast<double>(total_count_);
}

}  // namespace sketch
}  // namespace aqp
