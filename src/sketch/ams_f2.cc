#include "sketch/ams_f2.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace aqp {
namespace sketch {

AmsF2Sketch::AmsF2Sketch(uint32_t rows, uint32_t cols, uint64_t seed)
    : rows_(rows), cols_(cols), seed_(seed) {
  AQP_CHECK(rows > 0 && cols > 0);
  counters_.assign(static_cast<size_t>(rows_) * cols_, 0);
}

int64_t AmsF2Sketch::Sign(uint32_t row, uint32_t col, uint64_t key) const {
  uint64_t h = Mix64(key ^ Mix64(seed_ + row * 0x100000001b3ULL + col));
  return (h & 1) ? 1 : -1;
}

void AmsF2Sketch::Add(uint64_t key, int64_t count) {
  for (uint32_t r = 0; r < rows_; ++r) {
    for (uint32_t c = 0; c < cols_; ++c) {
      counters_[static_cast<size_t>(r) * cols_ + c] +=
          Sign(r, c, key) * count;
    }
  }
}

double AmsF2Sketch::Estimate() const {
  std::vector<double> row_means(rows_);
  for (uint32_t r = 0; r < rows_; ++r) {
    double sum_sq = 0.0;
    for (uint32_t c = 0; c < cols_; ++c) {
      double v =
          static_cast<double>(counters_[static_cast<size_t>(r) * cols_ + c]);
      sum_sq += v * v;
    }
    row_means[r] = sum_sq / static_cast<double>(cols_);
  }
  std::nth_element(row_means.begin(), row_means.begin() + rows_ / 2,
                   row_means.end());
  return row_means[rows_ / 2];
}

Status AmsF2Sketch::Merge(const AmsF2Sketch& other) {
  if (other.rows_ != rows_ || other.cols_ != cols_ || other.seed_ != seed_) {
    return Status::InvalidArgument("AMS sketch geometry/seed mismatch");
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  return Status::OK();
}

}  // namespace sketch
}  // namespace aqp
