#ifndef AQP_SKETCH_DISTINCT_SAMPLER_H_
#define AQP_SKETCH_DISTINCT_SAMPLER_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace sketch {

/// KMV ("k minimum values") distinct sketch (Bar-Yossef et al. 2002): keep
/// the k smallest hash values seen; the k-th smallest, viewed as a fraction
/// of the hash space, estimates the density of distinct values, giving
///   D_hat = (k - 1) / t_k.
/// Besides cardinality it yields a uniform sample of the *distinct* values
/// (not of the rows), which is what "distinct sampling" needs.
class KmvSketch {
 public:
  explicit KmvSketch(uint32_t k);

  void Add(uint64_t key);

  /// Estimated number of distinct keys.
  double Estimate() const;

  /// Relative standard error ~ 1/sqrt(k - 2).
  double StandardError() const;

  /// The retained minimum hash values (a uniform sample of distinct keys'
  /// hashes).
  std::vector<uint64_t> MinHashes() const;

  /// Merges another KMV sketch (same k recommended; result uses this k).
  void Merge(const KmvSketch& other);

  /// Jaccard similarity estimate between the distinct sets summarized by
  /// two sketches (resemblance over the union's k minima).
  static double EstimateJaccard(const KmvSketch& a, const KmvSketch& b);

  uint32_t k() const { return k_; }

  /// Serializes k and the retained minima (the full sketch state).
  std::string Serialize() const;
  /// Inverse of Serialize; rejects corrupt or foreign buffers.
  static Result<KmvSketch> Deserialize(std::string_view data);

 private:
  uint32_t k_;
  std::set<uint64_t> minima_;  // At most k smallest hashes, deduplicated.
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_DISTINCT_SAMPLER_H_
