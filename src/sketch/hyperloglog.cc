#include "sketch/hyperloglog.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"
#include "common/hash.h"

namespace aqp {
namespace sketch {

Result<HyperLogLog> HyperLogLog::Create(uint32_t precision) {
  if (precision < 4 || precision > 18) {
    return Status::InvalidArgument("HLL precision must be in [4, 18]");
  }
  return HyperLogLog(precision);
}

HyperLogLog::HyperLogLog(uint32_t precision) : precision_(precision) {
  registers_.assign(1u << precision_, 0);
}

void HyperLogLog::Add(uint64_t key) {
  uint64_t h = Mix64(key);
  uint32_t idx = static_cast<uint32_t>(h >> (64 - precision_));
  uint64_t rest = h << precision_;
  // Rank: position of the leftmost 1-bit in the remaining bits (1-based).
  uint8_t rank = rest == 0
                     ? static_cast<uint8_t>(64 - precision_ + 1)
                     : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  registers_[idx] = std::max(registers_[idx], rank);
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() == 16) {
    alpha = 0.673;
  } else if (registers_.size() == 32) {
    alpha = 0.697;
  } else if (registers_.size() == 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double inverse_sum = 0.0;
  uint32_t zeros = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double raw = alpha * m * m / inverse_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("HLL precision mismatch");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  return Status::OK();
}

namespace {
constexpr uint32_t kHllMagic = 0x484c4c31;  // "HLL1".
}  // namespace

std::string HyperLogLog::Serialize() const {
  ByteWriter w;
  w.PutU32(kHllMagic);
  w.PutU32(precision_);
  w.PutBytes(registers_.data(), registers_.size());
  return w.Take();
}

Result<HyperLogLog> HyperLogLog::Deserialize(std::string_view data) {
  ByteReader r(data);
  AQP_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kHllMagic) {
    return Status::InvalidArgument("not a serialized HyperLogLog");
  }
  AQP_ASSIGN_OR_RETURN(uint32_t precision, r.GetU32());
  AQP_ASSIGN_OR_RETURN(HyperLogLog hll, Create(precision));
  if (r.remaining() != hll.registers_.size()) {
    return Status::InvalidArgument("HyperLogLog register payload mismatch");
  }
  AQP_RETURN_IF_ERROR(r.GetBytes(hll.registers_.data(),
                                 hll.registers_.size()));
  return hll;
}

double HyperLogLog::StandardError() const {
  return 1.04 / std::sqrt(static_cast<double>(registers_.size()));
}

}  // namespace sketch
}  // namespace aqp
