#ifndef AQP_SKETCH_WAVELET_H_
#define AQP_SKETCH_WAVELET_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace sketch {

/// Haar wavelet synopsis (Matias, Vitter, Wang 1998): transform a frequency
/// vector into the Haar basis, keep only the B largest-magnitude normalized
/// coefficients, reconstruct approximately on demand. Compresses smooth or
/// piecewise-flat distributions dramatically; the summary-based AQP family
/// in the paper's taxonomy.
class WaveletSynopsis {
 public:
  /// Builds from a frequency/measure vector (padded to a power of two
  /// internally), keeping `num_coefficients` coefficients.
  static Result<WaveletSynopsis> Build(const std::vector<double>& data,
                                       uint32_t num_coefficients);

  /// Reconstructed value at index i (0 for padded tail).
  double ValueAt(size_t i) const;

  /// Approximate sum of data[lo..hi] (inclusive bounds, clamped).
  double RangeSum(size_t lo, size_t hi) const;

  /// Full reconstruction (length = original data size).
  std::vector<double> Reconstruct() const;

  size_t original_size() const { return original_size_; }
  size_t coefficients_kept() const { return kept_.size(); }

  /// Forward Haar transform (exposed for tests): length must be a power of
  /// two. Uses the orthonormal normalization.
  static std::vector<double> HaarTransform(std::vector<double> data);

  /// Inverse of HaarTransform.
  static std::vector<double> InverseHaarTransform(std::vector<double> coeffs);

 private:
  struct Coefficient {
    uint32_t index;
    double value;
  };

  size_t original_size_ = 0;
  size_t padded_size_ = 0;
  std::vector<Coefficient> kept_;
  mutable std::vector<double> cache_;  // Lazy full reconstruction.
  mutable bool cache_valid_ = false;

  void EnsureCache() const;
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_WAVELET_H_
