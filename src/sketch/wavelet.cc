#include "sketch/wavelet.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqp {
namespace sketch {
namespace {

bool IsPowerOfTwo(size_t n) { return n != 0 && (n & (n - 1)) == 0; }

size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::vector<double> WaveletSynopsis::HaarTransform(std::vector<double> data) {
  AQP_CHECK(IsPowerOfTwo(data.size()));
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  std::vector<double> tmp(data.size());
  for (size_t len = data.size(); len > 1; len /= 2) {
    for (size_t i = 0; i < len / 2; ++i) {
      tmp[i] = (data[2 * i] + data[2 * i + 1]) * inv_sqrt2;           // Avg.
      tmp[len / 2 + i] = (data[2 * i] - data[2 * i + 1]) * inv_sqrt2;  // Diff.
    }
    std::copy(tmp.begin(), tmp.begin() + static_cast<int64_t>(len),
              data.begin());
  }
  return data;
}

std::vector<double> WaveletSynopsis::InverseHaarTransform(
    std::vector<double> coeffs) {
  AQP_CHECK(IsPowerOfTwo(coeffs.size()));
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  std::vector<double> tmp(coeffs.size());
  for (size_t len = 2; len <= coeffs.size(); len *= 2) {
    for (size_t i = 0; i < len / 2; ++i) {
      tmp[2 * i] = (coeffs[i] + coeffs[len / 2 + i]) * inv_sqrt2;
      tmp[2 * i + 1] = (coeffs[i] - coeffs[len / 2 + i]) * inv_sqrt2;
    }
    std::copy(tmp.begin(), tmp.begin() + static_cast<int64_t>(len),
              coeffs.begin());
  }
  return coeffs;
}

Result<WaveletSynopsis> WaveletSynopsis::Build(const std::vector<double>& data,
                                               uint32_t num_coefficients) {
  if (data.empty()) return Status::InvalidArgument("empty input");
  if (num_coefficients == 0) {
    return Status::InvalidArgument("need >= 1 coefficient");
  }
  WaveletSynopsis synopsis;
  synopsis.original_size_ = data.size();
  synopsis.padded_size_ = NextPowerOfTwo(data.size());
  std::vector<double> padded(data);
  padded.resize(synopsis.padded_size_, 0.0);
  std::vector<double> coeffs = HaarTransform(std::move(padded));

  // Keep the B largest-magnitude coefficients (orthonormal basis => this is
  // the L2-optimal B-term approximation).
  std::vector<uint32_t> order(coeffs.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  size_t keep = std::min<size_t>(num_coefficients, coeffs.size());
  std::nth_element(order.begin(), order.begin() + static_cast<int64_t>(keep),
                   order.end(), [&](uint32_t a, uint32_t b) {
                     return std::fabs(coeffs[a]) > std::fabs(coeffs[b]);
                   });
  for (size_t i = 0; i < keep; ++i) {
    synopsis.kept_.push_back({order[i], coeffs[order[i]]});
  }
  std::sort(synopsis.kept_.begin(), synopsis.kept_.end(),
            [](const Coefficient& a, const Coefficient& b) {
              return a.index < b.index;
            });
  return synopsis;
}

void WaveletSynopsis::EnsureCache() const {
  if (cache_valid_) return;
  std::vector<double> coeffs(padded_size_, 0.0);
  for (const Coefficient& c : kept_) coeffs[c.index] = c.value;
  cache_ = InverseHaarTransform(std::move(coeffs));
  cache_valid_ = true;
}

double WaveletSynopsis::ValueAt(size_t i) const {
  EnsureCache();
  return i < padded_size_ ? cache_[i] : 0.0;
}

double WaveletSynopsis::RangeSum(size_t lo, size_t hi) const {
  EnsureCache();
  hi = std::min(hi, original_size_ - 1);
  double total = 0.0;
  for (size_t i = lo; i <= hi && i < cache_.size(); ++i) total += cache_[i];
  return total;
}

std::vector<double> WaveletSynopsis::Reconstruct() const {
  EnsureCache();
  return std::vector<double>(cache_.begin(),
                             cache_.begin() +
                                 static_cast<int64_t>(original_size_));
}

}  // namespace sketch
}  // namespace aqp
