#ifndef AQP_SKETCH_KLL_H_
#define AQP_SKETCH_KLL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/result.h"

namespace aqp {
namespace sketch {

/// KLL-style quantile sketch (Karnin, Lang, Liberty 2016, simplified): a
/// hierarchy of compactor buffers; a full level is sorted and every other
/// element (random offset) promoted to the next level, so items at level h
/// carry weight 2^h. Space is O(k log(n/k)); rank error concentrates around
/// O(1/k) of the stream length. Answers quantile and rank queries over
/// streams far too large to sort.
class KllSketch {
 public:
  /// k controls accuracy (per-level buffer capacity). Deterministic given
  /// the seed.
  explicit KllSketch(uint32_t k = 200, uint64_t seed = 1);

  void Add(double value);

  /// Estimated q-quantile (q in [0, 1]); error if the sketch is empty.
  Result<double> Quantile(double q) const;

  /// Estimated number of stream items <= value.
  double Rank(double value) const;

  /// Estimated CDF value in [0,1] at `value`.
  double Cdf(double value) const;

  /// Merges another sketch built with any k.
  void Merge(const KllSketch& other);

  uint64_t count() const { return count_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Total buffered items across levels (memory proxy).
  size_t StoredItems() const;

  /// Serializes k, count, min/max, and every level buffer. The compaction
  /// RNG's position is deliberately not captured: a deserialized sketch
  /// answers identical quantile/rank/CDF queries, and continues ingesting
  /// with a fresh RNG — only the random promotion offsets of *future*
  /// compactions differ, which stays within the sketch's error bound.
  std::string Serialize() const;
  /// Inverse of Serialize; rejects corrupt or foreign buffers.
  static Result<KllSketch> Deserialize(std::string_view data);

 private:
  void Compact();

  uint32_t k_;
  Pcg32 rng_;
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::vector<double>> levels_;  // levels_[h]: weight 2^h items.
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_KLL_H_
