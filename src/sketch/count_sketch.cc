#include "sketch/count_sketch.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace aqp {
namespace sketch {

CountSketch::CountSketch(uint32_t depth, uint32_t width)
    : depth_(depth), width_(width) {
  AQP_CHECK(depth > 0 && width > 0);
  table_.assign(static_cast<size_t>(depth_) * width_, 0);
}

uint64_t CountSketch::Bucket(uint32_t row, uint64_t key) const {
  uint64_t h = Mix64(key + 0x9e3779b97f4a7c15ULL * (row + 1));
  return static_cast<uint64_t>(row) * width_ + (h % width_);
}

int64_t CountSketch::Sign(uint32_t row, uint64_t key) const {
  uint64_t h = Mix64(key ^ (0xda942042e4dd58b5ULL * (row + 1)));
  return (h & 1) ? 1 : -1;
}

void CountSketch::Add(uint64_t key, int64_t count) {
  for (uint32_t r = 0; r < depth_; ++r) {
    table_[Bucket(r, key)] += Sign(r, key) * count;
  }
}

int64_t CountSketch::Estimate(uint64_t key) const {
  std::vector<int64_t> estimates;
  estimates.reserve(depth_);
  for (uint32_t r = 0; r < depth_; ++r) {
    estimates.push_back(Sign(r, key) * table_[Bucket(r, key)]);
  }
  std::nth_element(estimates.begin(),
                   estimates.begin() + estimates.size() / 2, estimates.end());
  int64_t upper_median = estimates[estimates.size() / 2];
  if (estimates.size() % 2 == 1) return upper_median;
  std::nth_element(estimates.begin(),
                   estimates.begin() + estimates.size() / 2 - 1,
                   estimates.end());
  return (estimates[estimates.size() / 2 - 1] + upper_median) / 2;
}

Status CountSketch::Merge(const CountSketch& other) {
  if (other.depth_ != depth_ || other.width_ != width_) {
    return Status::InvalidArgument("count-sketch geometry mismatch");
  }
  for (size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
  return Status::OK();
}

}  // namespace sketch
}  // namespace aqp
