#ifndef AQP_SKETCH_COUNT_SKETCH_H_
#define AQP_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace sketch {

/// Count sketch (Charikar, Chen, Farach-Colton): like Count-Min but with
/// random ±1 signs per row, making estimates unbiased (two-sided error of
/// order ||f||_2 / sqrt(w) per row, median over d rows). Better than
/// Count-Min when frequencies are spread rather than concentrated.
class CountSketch {
 public:
  CountSketch(uint32_t depth, uint32_t width);

  void Add(uint64_t key, int64_t count = 1);

  /// Unbiased frequency estimate: median across rows of sign * cell.
  int64_t Estimate(uint64_t key) const;

  /// Merges another sketch (same geometry).
  Status Merge(const CountSketch& other);

  uint32_t depth() const { return depth_; }
  uint32_t width() const { return width_; }
  size_t SizeBytes() const { return table_.size() * sizeof(int64_t); }

 private:
  uint64_t Bucket(uint32_t row, uint64_t key) const;
  int64_t Sign(uint32_t row, uint64_t key) const;

  uint32_t depth_;
  uint32_t width_;
  std::vector<int64_t> table_;
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_COUNT_SKETCH_H_
