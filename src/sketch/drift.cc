#include "sketch/drift.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "common/bytes.h"

namespace aqp {
namespace sketch {

namespace {

double Clamp01(double v) {
  if (!(v > 0.0)) return 0.0;  // Also maps NaN to 0.
  return v > 1.0 ? 1.0 : v;
}

/// KS statistic between two KLL sketches: evaluate both CDFs at the probe
/// quantiles of each sketch and take the sup of the gap. Probing at both
/// sketches' own quantiles (rather than a fixed grid) keeps the statistic
/// scale-free and sensitive where either distribution has mass.
double KsStatistic(const KllSketch& a, const KllSketch& b) {
  if (a.count() == 0 && b.count() == 0) return 0.0;
  if (a.count() == 0 || b.count() == 0) return 1.0;
  constexpr int kProbes = 33;
  double sup = 0.0;
  for (const KllSketch* s : {&a, &b}) {
    for (int i = 0; i <= kProbes; ++i) {
      const double q = static_cast<double>(i) / kProbes;
      auto v = s->Quantile(q);
      if (!v.ok()) continue;
      const double gap = std::fabs(a.Cdf(v.value()) - b.Cdf(v.value()));
      sup = std::max(sup, gap);
    }
  }
  return Clamp01(sup);
}

/// Fraction of the baseline's distinct domain that is no longer present,
/// estimated from the k-minimum-value samples: among the union's k smallest
/// hashes, how many of the baseline's survived into `current`? Under a pure
/// append the current sketch retains every union-k hash the baseline had
/// (its minima are over a superset), so containment is exactly 1 and growth
/// alone never reads as churn — replacement/deletion does.
double KmvContainment(const KmvSketch& baseline, const KmvSketch& current) {
  const std::vector<uint64_t> base = baseline.MinHashes();
  const std::vector<uint64_t> cur = current.MinHashes();
  if (base.empty()) return 1.0;
  if (cur.empty()) return 0.0;
  std::set<uint64_t> unioned(base.begin(), base.end());
  unioned.insert(cur.begin(), cur.end());
  const size_t k = std::min(
      unioned.size(),
      static_cast<size_t>(std::min(baseline.k(), current.k())));
  const std::set<uint64_t> cur_set(cur.begin(), cur.end());
  const std::set<uint64_t> base_set(base.begin(), base.end());
  size_t in_base = 0;
  size_t survived = 0;
  size_t seen = 0;
  for (uint64_t h : unioned) {
    if (seen++ >= k) break;
    if (base_set.count(h) == 0) continue;
    ++in_base;
    if (cur_set.count(h) != 0) ++survived;
  }
  if (in_base == 0) return 1.0;
  return static_cast<double>(survived) / static_cast<double>(in_base);
}

/// Lost frequency share of the baseline's guaranteed heavy hitters: for each
/// key the baseline tracked above the N/(k+1) guarantee, compare its share
/// of the stream then vs now and sum the shrinkage. 0 = every hitter kept
/// its share, 1 = all of them vanished.
double HeavyHitterTurnover(const MisraGries& baseline,
                           const MisraGries& current) {
  const uint64_t total_b = baseline.total_count();
  const uint64_t total_c = current.total_count();
  if (total_b == 0) return 0.0;
  if (total_c == 0) return 1.0;
  const uint64_t threshold =
      std::max<uint64_t>(1, total_b / (baseline.capacity() + 1));
  const auto hitters = baseline.HeavyHitters(threshold);
  if (hitters.empty()) return 0.0;
  double share_b_sum = 0.0;
  double lost = 0.0;
  for (const auto& [key, count_b] : hitters) {
    const double share_b = static_cast<double>(count_b) / total_b;
    const double share_c =
        static_cast<double>(current.Estimate(key)) / total_c;
    share_b_sum += share_b;
    lost += std::max(0.0, share_b - share_c);
  }
  if (share_b_sum <= 0.0) return 0.0;
  return Clamp01(lost / share_b_sum);
}

}  // namespace

ColumnDriftSketch::ColumnDriftSketch(const DriftSketchOptions& opts)
    : opts_(opts),
      kll_(opts.kll_k, opts.seed),
      kmv_(std::max<uint32_t>(3, opts.kmv_k)),
      mg_(std::max<uint32_t>(1, opts.heavy_hitters)) {}

void ColumnDriftSketch::AddNumeric(double value, uint64_t hash) {
  ++count_;
  ++numeric_count_;
  kll_.Add(value);
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(numeric_count_);
  m2_ += delta * (value - mean_);
  kmv_.Add(hash);
  mg_.Add(hash);
}

void ColumnDriftSketch::AddHashed(uint64_t hash) {
  ++count_;
  kmv_.Add(hash);
  mg_.Add(hash);
}

void ColumnDriftSketch::Merge(const ColumnDriftSketch& other) {
  kll_.Merge(other.kll_);
  kmv_.Merge(other.kmv_);
  mg_.Merge(other.mg_);
  if (other.numeric_count_ > 0) {
    const uint64_t n = numeric_count_ + other.numeric_count_;
    const double delta = other.mean_ - mean_;
    const double na = static_cast<double>(numeric_count_);
    const double nb = static_cast<double>(other.numeric_count_);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    mean_ += delta * nb / static_cast<double>(n);
    numeric_count_ = n;
  }
  count_ += other.count_;
  null_count_ += other.null_count_;
}

double ColumnDriftSketch::mean() const {
  return numeric_count_ == 0 ? 0.0 : mean_;
}

double ColumnDriftSketch::variance() const {
  return numeric_count_ == 0 ? 0.0
                             : m2_ / static_cast<double>(numeric_count_);
}

uint64_t ColumnDriftSketch::ApproxBytes() const {
  return sizeof(*this) + kll_.StoredItems() * sizeof(double) +
         kmv_.MinHashes().size() * sizeof(uint64_t) * 2 +
         static_cast<uint64_t>(mg_.capacity()) * 3 * sizeof(uint64_t);
}

namespace {
constexpr uint32_t kDriftMagic = 0x44524631;  // "DRF1".

void PutBlob(ByteWriter& w, const std::string& blob) {
  w.PutU64(blob.size());
  w.PutBytes(blob.data(), blob.size());
}

Result<std::string> GetBlob(ByteReader& r) {
  AQP_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  if (n > r.remaining()) {
    return Status::InvalidArgument("nested sketch blob truncated");
  }
  std::string blob(n, '\0');
  AQP_RETURN_IF_ERROR(r.GetBytes(blob.data(), n));
  return blob;
}
}  // namespace

std::string ColumnDriftSketch::Serialize() const {
  ByteWriter w;
  w.PutU32(kDriftMagic);
  w.PutU32(opts_.kll_k);
  w.PutU32(opts_.kmv_k);
  w.PutU32(opts_.heavy_hitters);
  w.PutU64(opts_.seed);
  w.PutU64(count_);
  w.PutU64(null_count_);
  w.PutU64(numeric_count_);
  w.PutDouble(mean_);
  w.PutDouble(m2_);
  PutBlob(w, kll_.Serialize());
  PutBlob(w, kmv_.Serialize());
  PutBlob(w, mg_.Serialize());
  return w.Take();
}

Result<ColumnDriftSketch> ColumnDriftSketch::Deserialize(
    std::string_view data) {
  ByteReader r(data);
  AQP_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kDriftMagic) {
    return Status::InvalidArgument("not a serialized drift sketch");
  }
  DriftSketchOptions opts;
  AQP_ASSIGN_OR_RETURN(opts.kll_k, r.GetU32());
  AQP_ASSIGN_OR_RETURN(opts.kmv_k, r.GetU32());
  AQP_ASSIGN_OR_RETURN(opts.heavy_hitters, r.GetU32());
  AQP_ASSIGN_OR_RETURN(opts.seed, r.GetU64());
  ColumnDriftSketch s(opts);
  AQP_ASSIGN_OR_RETURN(s.count_, r.GetU64());
  AQP_ASSIGN_OR_RETURN(s.null_count_, r.GetU64());
  AQP_ASSIGN_OR_RETURN(s.numeric_count_, r.GetU64());
  AQP_ASSIGN_OR_RETURN(s.mean_, r.GetDouble());
  AQP_ASSIGN_OR_RETURN(s.m2_, r.GetDouble());
  AQP_ASSIGN_OR_RETURN(std::string kll_blob, GetBlob(r));
  AQP_ASSIGN_OR_RETURN(s.kll_, KllSketch::Deserialize(kll_blob));
  AQP_ASSIGN_OR_RETURN(std::string kmv_blob, GetBlob(r));
  AQP_ASSIGN_OR_RETURN(s.kmv_, KmvSketch::Deserialize(kmv_blob));
  AQP_ASSIGN_OR_RETURN(std::string mg_blob, GetBlob(r));
  AQP_ASSIGN_OR_RETURN(s.mg_, MisraGries::Deserialize(mg_blob));
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after drift sketch");
  }
  return s;
}

ColumnDriftScore ScoreColumnDrift(const ColumnDriftSketch& baseline,
                                  const ColumnDriftSketch& current) {
  ColumnDriftScore out;
  const uint64_t nb = baseline.count();
  const uint64_t nc = current.count();
  if (nb == 0 && nc == 0) return out;
  if (nb == 0 || nc == 0) {
    out.ks = out.domain_churn = out.hh_turnover = out.moment_shift = 1.0;
    out.score = 1.0;
    return out;
  }

  if (baseline.has_numeric() || current.has_numeric()) {
    out.ks = KsStatistic(baseline.quantiles(), current.quantiles());
  }

  // Domain churn: the issue's Jaccard signal, corrected for growth. Pure
  // appends shrink Jaccard (the domain legitimately grew) without any of
  // the baseline's domain disappearing, so we take the better of symmetric
  // resemblance and baseline-survival containment before inverting.
  const double jaccard =
      KmvSketch::EstimateJaccard(baseline.distincts(), current.distincts());
  const double containment =
      KmvContainment(baseline.distincts(), current.distincts());
  out.domain_churn = Clamp01(1.0 - std::max(jaccard, containment));

  out.hh_turnover = HeavyHitterTurnover(baseline.heavy(), current.heavy());

  // Moment shift: max of four normalized deltas. Size matters because a
  // stored sample scales totals by the population count frozen at build
  // time — doubling the table halves every SUM's effective coverage even
  // if the distribution is unchanged.
  double shift = 0.0;
  if (baseline.has_numeric() && current.has_numeric()) {
    const double sd_b = std::sqrt(baseline.variance());
    const double sd_c = std::sqrt(current.variance());
    const double mean_denom =
        sd_b > 0.0 ? sd_b
                   : (std::fabs(baseline.mean()) > 0.0
                          ? std::fabs(baseline.mean())
                          : 1.0);
    shift = std::max(
        shift, Clamp01(std::fabs(current.mean() - baseline.mean()) /
                       mean_denom));
    if (sd_b > 0.0) {
      shift = std::max(shift, Clamp01(std::fabs(sd_c - sd_b) / sd_b));
    } else if (sd_c > 0.0) {
      shift = 1.0;
    }
  }
  const double size_shift =
      Clamp01(std::fabs(static_cast<double>(nc) - static_cast<double>(nb)) /
              static_cast<double>(std::max<uint64_t>(nb, 1)));
  shift = std::max(shift, size_shift);
  const double null_b =
      static_cast<double>(baseline.null_count()) /
      static_cast<double>(nb + baseline.null_count());
  const double null_c = static_cast<double>(current.null_count()) /
                        static_cast<double>(nc + current.null_count());
  shift = std::max(shift, Clamp01(std::fabs(null_c - null_b)));
  out.moment_shift = shift;

  out.score = std::max({out.ks, out.domain_churn, out.hh_turnover,
                        out.moment_shift});
  return out;
}

}  // namespace sketch
}  // namespace aqp
