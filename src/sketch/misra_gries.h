#ifndef AQP_SKETCH_MISRA_GRIES_H_
#define AQP_SKETCH_MISRA_GRIES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace sketch {

/// Misra–Gries heavy-hitters summary: with k counters, every key whose true
/// frequency exceeds N/(k+1) is guaranteed to be present, and each reported
/// count undershoots the truth by at most N/(k+1). Deterministic — no hash
/// collisions to reason about — which is why it pairs well with Count-Min
/// for count refinement.
class MisraGries {
 public:
  explicit MisraGries(uint32_t k);

  void Add(uint64_t key, uint64_t count = 1);

  /// Lower-bound count for the key (0 if not tracked).
  uint64_t Estimate(uint64_t key) const;

  /// Maximum undercount of any estimate: (N - sum of counters) / (k+1) is a
  /// bound; we return the exact decrement total accrued so far.
  uint64_t MaxUndercount() const { return decrements_; }

  /// Keys whose estimated count is at least `threshold`, sorted by count
  /// descending.
  std::vector<std::pair<uint64_t, uint64_t>> HeavyHitters(
      uint64_t threshold) const;

  /// Merges another summary (same k semantics preserved with 2k counters
  /// collapsed back to k).
  void Merge(const MisraGries& other);

  uint64_t total_count() const { return total_; }
  uint32_t capacity() const { return k_; }

  /// Serializes k, totals, and the counters (sorted by key, so equal-state
  /// summaries serialize byte-identically).
  std::string Serialize() const;
  /// Inverse of Serialize; rejects corrupt or foreign buffers.
  static Result<MisraGries> Deserialize(std::string_view data);

 private:
  void Shrink();

  uint32_t k_;
  uint64_t total_ = 0;
  uint64_t decrements_ = 0;
  std::unordered_map<uint64_t, uint64_t> counters_;
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_MISRA_GRIES_H_
