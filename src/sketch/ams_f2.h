#ifndef AQP_SKETCH_AMS_F2_H_
#define AQP_SKETCH_AMS_F2_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace sketch {

/// AMS sketch for the second frequency moment F2 = sum_k f_k^2 (Alon,
/// Matias, Szegedy 1996): each of r x c counters accumulates ±1-signed
/// updates; F2 is estimated as the median over r rows of the mean of squared
/// counters. F2 drives self-join size estimation — the classic sketch
/// application in query optimization.
class AmsF2Sketch {
 public:
  /// `rows` medians over `cols` averaged squares; error ~ F2 / sqrt(cols)
  /// with failure probability exp(-rows).
  AmsF2Sketch(uint32_t rows, uint32_t cols, uint64_t seed = 1);

  void Add(uint64_t key, int64_t count = 1);

  /// Estimate of F2 (equivalently, the self-join size of the keyed column).
  double Estimate() const;

  /// Merges another sketch (same geometry and seed).
  Status Merge(const AmsF2Sketch& other);

  size_t SizeBytes() const { return counters_.size() * sizeof(int64_t); }

 private:
  int64_t Sign(uint32_t row, uint32_t col, uint64_t key) const;

  uint32_t rows_;
  uint32_t cols_;
  uint64_t seed_;
  std::vector<int64_t> counters_;  // rows_ x cols_.
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_AMS_F2_H_
