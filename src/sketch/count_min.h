#ifndef AQP_SKETCH_COUNT_MIN_H_
#define AQP_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace sketch {

/// Count-Min sketch (Cormode & Muthukrishnan): d×w counter matrix answering
/// point frequency queries with one-sided error — estimates never undershoot
/// and overshoot by at most eps*N with probability 1-delta, for
/// w = ceil(e/eps), d = ceil(ln(1/delta)).
class CountMinSketch {
 public:
  /// Sizes the sketch from the (eps, delta) guarantee.
  static Result<CountMinSketch> Create(double epsilon, double delta);

  /// Directly sized sketch.
  CountMinSketch(uint32_t depth, uint32_t width);

  /// Adds `count` occurrences of the key.
  void Add(uint64_t key, uint64_t count = 1);

  /// Conservative update: only raises counters to the new minimum estimate —
  /// strictly tighter estimates for the same space.
  void AddConservative(uint64_t key, uint64_t count = 1);

  /// Frequency estimate (upper bound in expectation).
  uint64_t Estimate(uint64_t key) const;

  /// Merges another sketch (same geometry). Conservative-update sketches
  /// lose their extra tightness after merge but remain valid upper bounds.
  Status Merge(const CountMinSketch& other);

  /// Compact binary encoding.
  std::string Serialize() const;
  /// Inverse of Serialize; rejects corrupt or foreign buffers.
  static Result<CountMinSketch> Deserialize(std::string_view data);

  uint64_t total_count() const { return total_; }
  uint32_t depth() const { return depth_; }
  uint32_t width() const { return width_; }
  size_t SizeBytes() const { return table_.size() * sizeof(uint64_t); }

 private:
  uint64_t CellIndex(uint32_t row, uint64_t key) const;

  uint32_t depth_;
  uint32_t width_;
  uint64_t total_ = 0;
  std::vector<uint64_t> table_;  // depth_ x width_, row-major.
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_COUNT_MIN_H_
