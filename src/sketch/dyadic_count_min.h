#ifndef AQP_SKETCH_DYADIC_COUNT_MIN_H_
#define AQP_SKETCH_DYADIC_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "sketch/count_min.h"

namespace aqp {
namespace sketch {

/// Range-query Count-Min: one Count-Min sketch per dyadic level over the
/// integer universe [0, 2^universe_bits). A range [lo, hi] decomposes into
/// at most 2*universe_bits dyadic intervals, so range counts cost
/// O(log U) point queries, each with the usual one-sided eps*N guarantee.
/// This is the sketch counterpart of a histogram: mergeable, streaming, and
/// it also yields approximate quantiles over the universe via binary search
/// on prefix counts.
class DyadicCountMin {
 public:
  /// universe_bits in [1, 32]; (epsilon, delta) sizes each level's sketch.
  static Result<DyadicCountMin> Create(uint32_t universe_bits, double epsilon,
                                       double delta);

  /// Adds `count` occurrences of `value` (must be < 2^universe_bits).
  Status Add(uint64_t value, uint64_t count = 1);

  /// Estimated number of stream items in [lo, hi] (inclusive; clamped).
  uint64_t EstimateRange(uint64_t lo, uint64_t hi) const;

  /// Estimated number of items <= value.
  uint64_t EstimateRank(uint64_t value) const {
    return EstimateRange(0, value);
  }

  /// Smallest value whose rank reaches q * N (approximate q-quantile).
  Result<uint64_t> Quantile(double q) const;

  /// Merges another sketch (same geometry).
  Status Merge(const DyadicCountMin& other);

  uint64_t total_count() const { return total_; }
  size_t SizeBytes() const;

 private:
  DyadicCountMin(uint32_t universe_bits, uint32_t depth, uint32_t width);

  uint32_t universe_bits_;
  uint64_t universe_size_;
  uint64_t total_ = 0;
  // levels_[l]: values bucketed by (value >> l); level 0 is exact values.
  std::vector<CountMinSketch> levels_;
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_DYADIC_COUNT_MIN_H_
