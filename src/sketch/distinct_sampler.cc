#include "sketch/distinct_sampler.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"
#include "common/check.h"
#include "common/hash.h"

namespace aqp {
namespace sketch {

KmvSketch::KmvSketch(uint32_t k) : k_(k) { AQP_CHECK(k >= 3); }

void KmvSketch::Add(uint64_t key) {
  uint64_t h = Mix64(key);
  if (minima_.size() < k_) {
    minima_.insert(h);
    return;
  }
  uint64_t largest = *minima_.rbegin();
  if (h >= largest || minima_.count(h) > 0) return;
  minima_.insert(h);
  minima_.erase(std::prev(minima_.end()));
}

double KmvSketch::Estimate() const {
  if (minima_.size() < k_) {
    // Saw fewer than k distinct hashes: the set size IS the answer.
    return static_cast<double>(minima_.size());
  }
  uint64_t kth = *minima_.rbegin();
  double fraction =
      static_cast<double>(kth) / static_cast<double>(UINT64_MAX);
  AQP_CHECK(fraction > 0.0);
  return (static_cast<double>(k_) - 1.0) / fraction;
}

double KmvSketch::StandardError() const {
  return 1.0 / std::sqrt(static_cast<double>(k_) - 2.0);
}

std::vector<uint64_t> KmvSketch::MinHashes() const {
  return std::vector<uint64_t>(minima_.begin(), minima_.end());
}

void KmvSketch::Merge(const KmvSketch& other) {
  for (uint64_t h : other.minima_) {
    if (minima_.size() < k_) {
      minima_.insert(h);
      continue;
    }
    uint64_t largest = *minima_.rbegin();
    if (h >= largest || minima_.count(h) > 0) continue;
    minima_.insert(h);
    minima_.erase(std::prev(minima_.end()));
  }
}

namespace {
constexpr uint32_t kKmvMagic = 0x4b4d5631;  // "KMV1".
}  // namespace

std::string KmvSketch::Serialize() const {
  ByteWriter w;
  w.PutU32(kKmvMagic);
  w.PutU32(k_);
  w.PutU64(minima_.size());
  for (uint64_t h : minima_) w.PutU64(h);  // std::set: ascending, canonical.
  return w.Take();
}

Result<KmvSketch> KmvSketch::Deserialize(std::string_view data) {
  ByteReader r(data);
  AQP_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kKmvMagic) {
    return Status::InvalidArgument("not a serialized KMV sketch");
  }
  AQP_ASSIGN_OR_RETURN(uint32_t k, r.GetU32());
  if (k < 3) return Status::InvalidArgument("KMV k must be >= 3");
  KmvSketch s(k);
  AQP_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  if (n > k || n * sizeof(uint64_t) > r.remaining()) {
    return Status::InvalidArgument("KMV minima count out of range");
  }
  for (uint64_t i = 0; i < n; ++i) {
    AQP_ASSIGN_OR_RETURN(uint64_t h, r.GetU64());
    s.minima_.insert(h);
  }
  if (s.minima_.size() != n) {
    return Status::InvalidArgument("duplicate KMV minima");
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after KMV sketch");
  }
  return s;
}

double KmvSketch::EstimateJaccard(const KmvSketch& a, const KmvSketch& b) {
  // k minima of the union, then the fraction also present in both.
  std::vector<uint64_t> au = a.MinHashes();
  std::vector<uint64_t> bu = b.MinHashes();
  std::vector<uint64_t> unioned;
  std::set_union(au.begin(), au.end(), bu.begin(), bu.end(),
                 std::back_inserter(unioned));
  size_t k = std::min<size_t>(std::min(a.k_, b.k_), unioned.size());
  if (k == 0) return 0.0;
  size_t in_both = 0;
  for (size_t i = 0; i < k; ++i) {
    bool in_a = std::binary_search(au.begin(), au.end(), unioned[i]);
    bool in_b = std::binary_search(bu.begin(), bu.end(), unioned[i]);
    if (in_a && in_b) ++in_both;
  }
  return static_cast<double>(in_both) / static_cast<double>(k);
}

}  // namespace sketch
}  // namespace aqp
