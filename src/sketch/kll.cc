#include "sketch/kll.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bytes.h"
#include "common/check.h"

namespace aqp {
namespace sketch {
namespace {

// Per-level capacity: geometric decay toward lower levels, floor of 8.
// Lower levels see more churn, so they may be smaller; the top level keeps
// full resolution k.
uint32_t LevelCapacity(uint32_t k, size_t level, size_t num_levels) {
  double c = 2.0 / 3.0;
  double cap = static_cast<double>(k) *
               std::pow(c, static_cast<double>(num_levels - 1 - level));
  return std::max<uint32_t>(8, static_cast<uint32_t>(std::ceil(cap)));
}

}  // namespace

KllSketch::KllSketch(uint32_t k, uint64_t seed) : k_(std::max(k, 8u)),
                                                  rng_(seed) {
  levels_.emplace_back();
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void KllSketch::Add(double value) {
  levels_[0].push_back(value);
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (levels_[0].size() >= LevelCapacity(k_, 0, levels_.size())) {
    Compact();
  }
}

void KllSketch::Compact() {
  for (size_t h = 0; h < levels_.size(); ++h) {
    if (levels_[h].size() < LevelCapacity(k_, h, levels_.size())) continue;
    if (h + 1 == levels_.size()) levels_.emplace_back();
    std::vector<double>& buf = levels_[h];
    std::sort(buf.begin(), buf.end());
    size_t offset = rng_.NextUint32() & 1;
    for (size_t i = offset; i < buf.size(); i += 2) {
      levels_[h + 1].push_back(buf[i]);
    }
    buf.clear();
  }
}

size_t KllSketch::StoredItems() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

double KllSketch::Rank(double value) const {
  double rank = 0.0;
  double weight = 1.0;
  for (const auto& level : levels_) {
    for (double v : level) {
      if (v <= value) rank += weight;
    }
    weight *= 2.0;
  }
  return rank;
}

double KllSketch::Cdf(double value) const {
  if (count_ == 0) return 0.0;
  // Compaction of odd-sized buffers makes total stored weight drift by
  // O(levels) around count_; clamp so the CDF stays in [0, 1].
  return std::min(1.0, Rank(value) / static_cast<double>(count_));
}

Result<double> KllSketch::Quantile(double q) const {
  if (count_ == 0) {
    return Status::FailedPrecondition("quantile of empty sketch");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("q must be in [0,1]");
  }
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Materialize (value, weight) pairs, sort, walk cumulative weight.
  std::vector<std::pair<double, double>> items;
  items.reserve(StoredItems());
  double weight = 1.0;
  for (const auto& level : levels_) {
    for (double v : level) items.emplace_back(v, weight);
    weight *= 2.0;
  }
  if (items.empty()) return min_;
  std::sort(items.begin(), items.end());
  double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (const auto& [v, w] : items) {
    cumulative += w;
    if (cumulative >= target) return v;
  }
  return items.back().first;
}

namespace {
constexpr uint32_t kKllMagic = 0x4b4c4c31;  // "KLL1".
// Levels grow logarithmically in stream length; 64 covers any uint64 count.
constexpr uint32_t kKllMaxLevels = 64;
}  // namespace

std::string KllSketch::Serialize() const {
  ByteWriter w;
  w.PutU32(kKllMagic);
  w.PutU32(k_);
  w.PutU64(count_);
  w.PutDouble(min_);
  w.PutDouble(max_);
  w.PutU32(static_cast<uint32_t>(levels_.size()));
  for (const auto& level : levels_) {
    w.PutU64(level.size());
    for (double v : level) w.PutDouble(v);
  }
  return w.Take();
}

Result<KllSketch> KllSketch::Deserialize(std::string_view data) {
  ByteReader r(data);
  AQP_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kKllMagic) {
    return Status::InvalidArgument("not a serialized KLL sketch");
  }
  AQP_ASSIGN_OR_RETURN(uint32_t k, r.GetU32());
  KllSketch s(k);
  AQP_ASSIGN_OR_RETURN(s.count_, r.GetU64());
  AQP_ASSIGN_OR_RETURN(s.min_, r.GetDouble());
  AQP_ASSIGN_OR_RETURN(s.max_, r.GetDouble());
  AQP_ASSIGN_OR_RETURN(uint32_t num_levels, r.GetU32());
  if (num_levels == 0 || num_levels > kKllMaxLevels) {
    return Status::InvalidArgument("KLL level count out of range");
  }
  s.levels_.assign(num_levels, {});
  for (uint32_t h = 0; h < num_levels; ++h) {
    AQP_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
    if (n * sizeof(double) > r.remaining()) {
      return Status::InvalidArgument("KLL level larger than its buffer");
    }
    s.levels_[h].reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      AQP_ASSIGN_OR_RETURN(double v, r.GetDouble());
      s.levels_[h].push_back(v);
    }
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after KLL sketch");
  }
  return s;
}

void KllSketch::Merge(const KllSketch& other) {
  if (other.count_ == 0) return;
  while (levels_.size() < other.levels_.size()) levels_.emplace_back();
  for (size_t h = 0; h < other.levels_.size(); ++h) {
    levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                      other.levels_[h].end());
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  Compact();
}

}  // namespace sketch
}  // namespace aqp
