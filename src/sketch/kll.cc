#include "sketch/kll.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace aqp {
namespace sketch {
namespace {

// Per-level capacity: geometric decay toward lower levels, floor of 8.
// Lower levels see more churn, so they may be smaller; the top level keeps
// full resolution k.
uint32_t LevelCapacity(uint32_t k, size_t level, size_t num_levels) {
  double c = 2.0 / 3.0;
  double cap = static_cast<double>(k) *
               std::pow(c, static_cast<double>(num_levels - 1 - level));
  return std::max<uint32_t>(8, static_cast<uint32_t>(std::ceil(cap)));
}

}  // namespace

KllSketch::KllSketch(uint32_t k, uint64_t seed) : k_(std::max(k, 8u)),
                                                  rng_(seed) {
  levels_.emplace_back();
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void KllSketch::Add(double value) {
  levels_[0].push_back(value);
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (levels_[0].size() >= LevelCapacity(k_, 0, levels_.size())) {
    Compact();
  }
}

void KllSketch::Compact() {
  for (size_t h = 0; h < levels_.size(); ++h) {
    if (levels_[h].size() < LevelCapacity(k_, h, levels_.size())) continue;
    if (h + 1 == levels_.size()) levels_.emplace_back();
    std::vector<double>& buf = levels_[h];
    std::sort(buf.begin(), buf.end());
    size_t offset = rng_.NextUint32() & 1;
    for (size_t i = offset; i < buf.size(); i += 2) {
      levels_[h + 1].push_back(buf[i]);
    }
    buf.clear();
  }
}

size_t KllSketch::StoredItems() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

double KllSketch::Rank(double value) const {
  double rank = 0.0;
  double weight = 1.0;
  for (const auto& level : levels_) {
    for (double v : level) {
      if (v <= value) rank += weight;
    }
    weight *= 2.0;
  }
  return rank;
}

double KllSketch::Cdf(double value) const {
  if (count_ == 0) return 0.0;
  // Compaction of odd-sized buffers makes total stored weight drift by
  // O(levels) around count_; clamp so the CDF stays in [0, 1].
  return std::min(1.0, Rank(value) / static_cast<double>(count_));
}

Result<double> KllSketch::Quantile(double q) const {
  if (count_ == 0) {
    return Status::FailedPrecondition("quantile of empty sketch");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("q must be in [0,1]");
  }
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  // Materialize (value, weight) pairs, sort, walk cumulative weight.
  std::vector<std::pair<double, double>> items;
  items.reserve(StoredItems());
  double weight = 1.0;
  for (const auto& level : levels_) {
    for (double v : level) items.emplace_back(v, weight);
    weight *= 2.0;
  }
  if (items.empty()) return min_;
  std::sort(items.begin(), items.end());
  double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (const auto& [v, w] : items) {
    cumulative += w;
    if (cumulative >= target) return v;
  }
  return items.back().first;
}

void KllSketch::Merge(const KllSketch& other) {
  if (other.count_ == 0) return;
  while (levels_.size() < other.levels_.size()) levels_.emplace_back();
  for (size_t h = 0; h < other.levels_.size(); ++h) {
    levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                      other.levels_[h].end());
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  Compact();
}

}  // namespace sketch
}  // namespace aqp
