#include "sketch/theta.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/hash.h"

namespace aqp {
namespace sketch {

Result<ThetaSketch> ThetaSketch::Create(uint32_t k) {
  if (k < 16) return Status::InvalidArgument("theta sketch needs k >= 16");
  return ThetaSketch(k);
}

void ThetaSketch::Add(uint64_t key) {
  uint64_t h = Mix64(key);
  if (h >= theta_) return;
  hashes_.insert(h);
  Trim();
}

void ThetaSketch::Trim() {
  while (hashes_.size() > k_) {
    // Shrink theta to the current maximum retained hash (exclusive bound).
    auto last = std::prev(hashes_.end());
    theta_ = *last;
    hashes_.erase(last);
  }
}

double ThetaSketch::theta() const {
  return static_cast<double>(theta_) / static_cast<double>(UINT64_MAX);
}

double ThetaSketch::Estimate() const {
  if (theta_ == UINT64_MAX) {
    return static_cast<double>(hashes_.size());  // Exact mode.
  }
  return static_cast<double>(hashes_.size()) / theta();
}

double ThetaSketch::StandardError() const {
  return 1.0 / std::sqrt(static_cast<double>(k_) - 2.0);
}

void ThetaSketch::Merge(const ThetaSketch& other) {
  theta_ = std::min(theta_, other.theta_);
  // Our own retained hashes may now sit at or above the tightened theta.
  hashes_.erase(hashes_.lower_bound(theta_), hashes_.end());
  for (uint64_t h : other.hashes_) {
    if (h < theta_) hashes_.insert(h);
  }
  Trim();
}

ThetaSketch ThetaSketch::Union(const ThetaSketch& a, const ThetaSketch& b) {
  ThetaSketch out(std::min(a.k_, b.k_));
  out.theta_ = std::min(a.theta_, b.theta_);
  for (uint64_t h : a.hashes_) {
    if (h < out.theta_) out.hashes_.insert(h);
  }
  for (uint64_t h : b.hashes_) {
    if (h < out.theta_) out.hashes_.insert(h);
  }
  out.Trim();
  return out;
}

ThetaSketch ThetaSketch::Intersect(const ThetaSketch& a,
                                   const ThetaSketch& b) {
  ThetaSketch out(std::min(a.k_, b.k_));
  out.theta_ = std::min(a.theta_, b.theta_);
  for (uint64_t h : a.hashes_) {
    if (h < out.theta_ && b.hashes_.count(h) > 0) out.hashes_.insert(h);
  }
  return out;
}

ThetaSketch ThetaSketch::ANotB(const ThetaSketch& a, const ThetaSketch& b) {
  ThetaSketch out(a.k_);
  out.theta_ = std::min(a.theta_, b.theta_);
  for (uint64_t h : a.hashes_) {
    if (h < out.theta_ && b.hashes_.count(h) == 0) out.hashes_.insert(h);
  }
  return out;
}

}  // namespace sketch
}  // namespace aqp
