#ifndef AQP_SKETCH_DRIFT_H_
#define AQP_SKETCH_DRIFT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sketch/distinct_sampler.h"
#include "sketch/kll.h"
#include "sketch/misra_gries.h"

namespace aqp {
namespace sketch {

/// Sizing for one column's drift signature. Defaults keep a column under
/// ~40 KiB so a whole-table baseline rides along with its synopsis in the
/// SynopsisCache byte budget.
struct DriftSketchOptions {
  uint32_t kll_k = 200;        // Quantile accuracy (rank error ~ 1/k).
  uint32_t kmv_k = 256;        // Distinct/Jaccard accuracy (~1/sqrt(k-2)).
  uint32_t heavy_hitters = 32; // Misra-Gries counters.
  uint64_t seed = 1;           // KLL compaction seed (determinism).
};

/// One column's drift signature: a KLL quantile sketch over numeric values,
/// a KMV distinct sketch + Misra-Gries heavy hitters over hashed values, and
/// exact count/mean/variance moments (Welford). Built once at synopsis
/// build time (the baseline) and again by the DriftMonitor (the current
/// state); ScoreColumnDrift compares the pair.
///
/// Numeric columns feed both sides (values into KLL/moments, hashed values
/// into KMV/MG); string/bool columns feed only the hashed side. Not
/// thread-safe; build per-thread and Merge.
class ColumnDriftSketch {
 public:
  explicit ColumnDriftSketch(const DriftSketchOptions& opts = {});

  /// Numeric observation: value into KLL + moments, `hash` (of the
  /// canonical value) into KMV + MG.
  void AddNumeric(double value, uint64_t hash);

  /// Non-numeric observation (string/bool): hash only.
  void AddHashed(uint64_t hash);

  void AddNull() { ++null_count_; }

  /// Merges a sketch built with the same options (per-thread partials).
  void Merge(const ColumnDriftSketch& other);

  uint64_t count() const { return count_; }
  uint64_t null_count() const { return null_count_; }
  bool has_numeric() const { return numeric_count_ > 0; }
  double mean() const;
  double variance() const;  // Population variance.
  const KllSketch& quantiles() const { return kll_; }
  const KmvSketch& distincts() const { return kmv_; }
  const MisraGries& heavy() const { return mg_; }
  const DriftSketchOptions& options() const { return opts_; }

  /// Memory proxy for budget accounting.
  uint64_t ApproxBytes() const;

  /// Serializes options, moments, and the three nested sketches, so a
  /// baseline survives a process restart (the DriftMonitor then compares
  /// fresh observations against the durable baseline instead of silently
  /// re-baselining on drifted data).
  std::string Serialize() const;
  /// Inverse of Serialize; rejects corrupt or foreign buffers.
  static Result<ColumnDriftSketch> Deserialize(std::string_view data);

 private:
  DriftSketchOptions opts_;
  uint64_t count_ = 0;         // Non-null observations.
  uint64_t null_count_ = 0;
  uint64_t numeric_count_ = 0;
  double mean_ = 0.0;          // Welford running mean over numeric values.
  double m2_ = 0.0;            // Welford sum of squared deviations.
  KllSketch kll_;
  KmvSketch kmv_;
  MisraGries mg_;
};

/// Per-column drift decomposition. Every component is normalized to [0, 1];
/// `score` is the max of the components (any single failure mode is enough
/// to invalidate a synopsis, so averaging would mask it).
struct ColumnDriftScore {
  double ks = 0.0;            // KS statistic: sup |CDF_base - CDF_now|.
  double domain_churn = 0.0;  // 1 - Jaccard(distinct sets).
  double hh_turnover = 0.0;   // Lost frequency share of baseline hitters.
  double moment_shift = 0.0;  // Mean/scale/size/null-fraction shift.
  double score = 0.0;         // max(ks, domain_churn, hh_turnover, moment_shift).
};

/// Scores how far `current` has drifted from `baseline`. Both sketches must
/// describe the same column; an empty pair scores 0, an empty-vs-populated
/// pair scores 1 (total drift). Deterministic given the sketch contents.
ColumnDriftScore ScoreColumnDrift(const ColumnDriftSketch& baseline,
                                  const ColumnDriftSketch& current);

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_DRIFT_H_
