#include "sketch/misra_gries.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/check.h"

namespace aqp {
namespace sketch {

MisraGries::MisraGries(uint32_t k) : k_(k) {
  AQP_CHECK(k > 0);
  counters_.reserve(k + 1);
}

void MisraGries::Add(uint64_t key, uint64_t count) {
  total_ += count;
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second += count;
    return;
  }
  counters_[key] = count;
  if (counters_.size() > k_) Shrink();
}

void MisraGries::Shrink() {
  // Decrement all counters by the minimum counter value and drop zeros —
  // the multi-decrement generalization of classic Misra–Gries.
  uint64_t min_count = UINT64_MAX;
  for (const auto& [key, c] : counters_) min_count = std::min(min_count, c);
  decrements_ += min_count;
  for (auto it = counters_.begin(); it != counters_.end();) {
    it->second -= min_count;
    if (it->second == 0) {
      it = counters_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t MisraGries::Estimate(uint64_t key) const {
  auto it = counters_.find(key);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<uint64_t, uint64_t>> MisraGries::HeavyHitters(
    uint64_t threshold) const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (const auto& [key, c] : counters_) {
    if (c >= threshold) out.emplace_back(key, c);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  return out;
}

void MisraGries::Merge(const MisraGries& other) {
  total_ += other.total_;
  decrements_ += other.decrements_;
  for (const auto& [key, c] : other.counters_) {
    counters_[key] += c;
  }
  while (counters_.size() > k_) Shrink();
}

namespace {
constexpr uint32_t kMgMagic = 0x4d475331;  // "MGS1".
}  // namespace

std::string MisraGries::Serialize() const {
  std::vector<std::pair<uint64_t, uint64_t>> sorted(counters_.begin(),
                                                    counters_.end());
  std::sort(sorted.begin(), sorted.end());
  ByteWriter w;
  w.PutU32(kMgMagic);
  w.PutU32(k_);
  w.PutU64(total_);
  w.PutU64(decrements_);
  w.PutU64(sorted.size());
  for (const auto& [key, c] : sorted) {
    w.PutU64(key);
    w.PutU64(c);
  }
  return w.Take();
}

Result<MisraGries> MisraGries::Deserialize(std::string_view data) {
  ByteReader r(data);
  AQP_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kMgMagic) {
    return Status::InvalidArgument("not a serialized Misra-Gries summary");
  }
  AQP_ASSIGN_OR_RETURN(uint32_t k, r.GetU32());
  if (k == 0) return Status::InvalidArgument("Misra-Gries k must be > 0");
  MisraGries s(k);
  AQP_ASSIGN_OR_RETURN(s.total_, r.GetU64());
  AQP_ASSIGN_OR_RETURN(s.decrements_, r.GetU64());
  AQP_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  if (n > k || n * 2 * sizeof(uint64_t) > r.remaining()) {
    return Status::InvalidArgument("Misra-Gries counter count out of range");
  }
  for (uint64_t i = 0; i < n; ++i) {
    AQP_ASSIGN_OR_RETURN(uint64_t key, r.GetU64());
    AQP_ASSIGN_OR_RETURN(uint64_t count, r.GetU64());
    if (count == 0 || s.counters_.count(key) > 0) {
      return Status::InvalidArgument("malformed Misra-Gries counter");
    }
    s.counters_[key] = count;
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing bytes after Misra-Gries");
  }
  return s;
}

}  // namespace sketch
}  // namespace aqp
