#ifndef AQP_SKETCH_HISTOGRAM_H_
#define AQP_SKETCH_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace sketch {

/// One histogram bucket [low, high) (the final bucket is closed).
struct Bucket {
  double low = 0.0;
  double high = 0.0;
  uint64_t count = 0;
  double sum = 0.0;  // Sum of values in the bucket (for range-SUM answers).
};

/// Bucketed numeric synopsis answering range COUNT/SUM/selectivity queries —
/// the oldest form of AQP, still what every optimizer uses for selectivity
/// estimation. Supports equi-width (fixed bucket width) and equi-depth
/// (quantile-boundary) construction.
class Histogram {
 public:
  /// Equi-width over [min, max] of the data.
  static Result<Histogram> EquiWidth(const std::vector<double>& values,
                                     uint32_t num_buckets);

  /// Equi-depth: boundaries at data quantiles, so each bucket holds roughly
  /// the same number of rows — much better on skewed data.
  static Result<Histogram> EquiDepth(const std::vector<double>& values,
                                     uint32_t num_buckets);

  /// Estimated number of rows in [low, high] assuming uniform spread inside
  /// each bucket (the textbook interpolation).
  double EstimateRangeCount(double low, double high) const;

  /// Estimated SUM of values in [low, high].
  double EstimateRangeSum(double low, double high) const;

  /// Estimated selectivity of [low, high] in [0, 1].
  double EstimateSelectivity(double low, double high) const;

  const std::vector<Bucket>& buckets() const { return buckets_; }
  uint64_t total_count() const { return total_count_; }

 private:
  std::vector<Bucket> buckets_;
  uint64_t total_count_ = 0;
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_HISTOGRAM_H_
