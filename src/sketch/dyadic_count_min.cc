#include "sketch/dyadic_count_min.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace aqp {
namespace sketch {

Result<DyadicCountMin> DyadicCountMin::Create(uint32_t universe_bits,
                                              double epsilon, double delta) {
  if (universe_bits == 0 || universe_bits > 32) {
    return Status::InvalidArgument("universe_bits must be in [1, 32]");
  }
  AQP_ASSIGN_OR_RETURN(CountMinSketch prototype,
                       CountMinSketch::Create(epsilon, delta));
  return DyadicCountMin(universe_bits, prototype.depth(), prototype.width());
}

DyadicCountMin::DyadicCountMin(uint32_t universe_bits, uint32_t depth,
                               uint32_t width)
    : universe_bits_(universe_bits),
      universe_size_(1ULL << universe_bits) {
  levels_.reserve(universe_bits_ + 1);
  for (uint32_t l = 0; l <= universe_bits_; ++l) {
    levels_.emplace_back(depth, width);
  }
}

Status DyadicCountMin::Add(uint64_t value, uint64_t count) {
  if (value >= universe_size_) {
    return Status::OutOfRange("value outside the sketch universe");
  }
  for (uint32_t l = 0; l <= universe_bits_; ++l) {
    levels_[l].Add(value >> l, count);
  }
  total_ += count;
  return Status::OK();
}

uint64_t DyadicCountMin::EstimateRange(uint64_t lo, uint64_t hi) const {
  if (hi >= universe_size_) hi = universe_size_ - 1;
  if (lo > hi) return 0;
  // Canonical dyadic decomposition: greedily take the largest aligned block
  // starting at lo that fits within [lo, hi].
  uint64_t estimate = 0;
  uint64_t cursor = lo;
  while (cursor <= hi) {
    uint32_t level = 0;
    // Largest level where cursor is aligned and the block fits.
    while (level < universe_bits_) {
      uint64_t block = 1ULL << (level + 1);
      if ((cursor & (block - 1)) != 0 || cursor + block - 1 > hi) break;
      ++level;
    }
    estimate += levels_[level].Estimate(cursor >> level);
    uint64_t step = 1ULL << level;
    if (cursor > UINT64_MAX - step) break;
    cursor += step;
  }
  return estimate;
}

Result<uint64_t> DyadicCountMin::Quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("q must be in [0, 1]");
  }
  if (total_ == 0) {
    return Status::FailedPrecondition("quantile of empty sketch");
  }
  uint64_t target = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  // Binary search the smallest v with rank(v) >= target.
  uint64_t lo = 0;
  uint64_t hi = universe_size_ - 1;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (EstimateRank(mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

Status DyadicCountMin::Merge(const DyadicCountMin& other) {
  if (other.universe_bits_ != universe_bits_) {
    return Status::InvalidArgument("universe size mismatch");
  }
  for (size_t l = 0; l < levels_.size(); ++l) {
    AQP_RETURN_IF_ERROR(levels_[l].Merge(other.levels_[l]));
  }
  total_ += other.total_;
  return Status::OK();
}

size_t DyadicCountMin::SizeBytes() const {
  size_t total = 0;
  for (const CountMinSketch& level : levels_) total += level.SizeBytes();
  return total;
}

}  // namespace sketch
}  // namespace aqp
