#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/bytes.h"
#include "common/hash.h"

namespace aqp {
namespace sketch {

Result<CountMinSketch> CountMinSketch::Create(double epsilon, double delta) {
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    return Status::InvalidArgument("epsilon must be in (0,1)");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0,1)");
  }
  uint32_t width = static_cast<uint32_t>(std::ceil(M_E / epsilon));
  uint32_t depth = static_cast<uint32_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(std::max<uint32_t>(depth, 1),
                        std::max<uint32_t>(width, 1));
}

CountMinSketch::CountMinSketch(uint32_t depth, uint32_t width)
    : depth_(depth), width_(width) {
  AQP_CHECK(depth > 0 && width > 0);
  table_.assign(static_cast<size_t>(depth_) * width_, 0);
}

uint64_t CountMinSketch::CellIndex(uint32_t row, uint64_t key) const {
  uint64_t h = Mix64(key + 0x9e3779b97f4a7c15ULL * (row + 1));
  return static_cast<uint64_t>(row) * width_ + (h % width_);
}

void CountMinSketch::Add(uint64_t key, uint64_t count) {
  for (uint32_t r = 0; r < depth_; ++r) {
    table_[CellIndex(r, key)] += count;
  }
  total_ += count;
}

void CountMinSketch::AddConservative(uint64_t key, uint64_t count) {
  uint64_t current = Estimate(key);
  uint64_t target = current + count;
  for (uint32_t r = 0; r < depth_; ++r) {
    uint64_t& cell = table_[CellIndex(r, key)];
    cell = std::max(cell, target);
  }
  total_ += count;
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint64_t best = std::numeric_limits<uint64_t>::max();
  for (uint32_t r = 0; r < depth_; ++r) {
    best = std::min(best, table_[CellIndex(r, key)]);
  }
  return best;
}

namespace {
constexpr uint32_t kCmsMagic = 0x434d5331;  // "CMS1".
}  // namespace

std::string CountMinSketch::Serialize() const {
  ByteWriter w;
  w.PutU32(kCmsMagic);
  w.PutU32(depth_);
  w.PutU32(width_);
  w.PutU64(total_);
  w.PutBytes(table_.data(), table_.size() * sizeof(uint64_t));
  return w.Take();
}

Result<CountMinSketch> CountMinSketch::Deserialize(std::string_view data) {
  ByteReader r(data);
  AQP_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kCmsMagic) {
    return Status::InvalidArgument("not a serialized Count-Min sketch");
  }
  AQP_ASSIGN_OR_RETURN(uint32_t depth, r.GetU32());
  AQP_ASSIGN_OR_RETURN(uint32_t width, r.GetU32());
  if (depth == 0 || width == 0 || depth > 64 ||
      width > (1u << 28)) {
    return Status::InvalidArgument("implausible Count-Min geometry");
  }
  CountMinSketch cms(depth, width);
  AQP_ASSIGN_OR_RETURN(cms.total_, r.GetU64());
  if (r.remaining() != cms.table_.size() * sizeof(uint64_t)) {
    return Status::InvalidArgument("Count-Min payload mismatch");
  }
  AQP_RETURN_IF_ERROR(
      r.GetBytes(cms.table_.data(), cms.table_.size() * sizeof(uint64_t)));
  return cms;
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (other.depth_ != depth_ || other.width_ != width_) {
    return Status::InvalidArgument("count-min geometry mismatch");
  }
  for (size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
  total_ += other.total_;
  return Status::OK();
}

}  // namespace sketch
}  // namespace aqp
