#ifndef AQP_SKETCH_HYPERLOGLOG_H_
#define AQP_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace aqp {
namespace sketch {

/// HyperLogLog cardinality estimator (Flajolet et al. 2007) with the small-
/// range linear-counting correction. 2^precision single-byte registers give
/// a relative standard error of ~1.04 / sqrt(2^precision) — the canonical
/// answer to COUNT(DISTINCT), the aggregate sampling fundamentally cannot
/// estimate.
class HyperLogLog {
 public:
  /// precision in [4, 18]: 2^precision registers.
  static Result<HyperLogLog> Create(uint32_t precision);

  void Add(uint64_t key);

  /// Estimated number of distinct keys added.
  double Estimate() const;

  /// Merges another sketch (same precision): register-wise max.
  Status Merge(const HyperLogLog& other);

  uint32_t precision() const { return precision_; }
  size_t SizeBytes() const { return registers_.size(); }

  /// Theoretical relative standard error for this precision.
  double StandardError() const;

  /// Compact binary encoding (magic + version + precision + registers).
  std::string Serialize() const;
  /// Inverse of Serialize; rejects corrupt or foreign buffers.
  static Result<HyperLogLog> Deserialize(std::string_view data);

 private:
  explicit HyperLogLog(uint32_t precision);

  uint32_t precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace sketch
}  // namespace aqp

#endif  // AQP_SKETCH_HYPERLOGLOG_H_
