#ifndef AQP_OBS_METRICS_H_
#define AQP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sketch/kll.h"

namespace aqp {
namespace obs {

/// Monotonically increasing event count. Thread-safe, lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written point-in-time value (e.g. the most recent planned sampling
/// rate). Thread-safe.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Latency/size distribution whose quantiles are served by the repo's own
/// KLL quantile sketch (src/sketch/kll.h) — the observability layer dogfoods
/// the paper's sketch taxonomy instead of storing raw observations.
/// Thread-safe via a mutex; Observe is off the per-row hot path (it is
/// called once per query / stage, not per tuple).
class LatencyHistogram {
 public:
  explicit LatencyHistogram(uint32_t k = 200) : sketch_(k, /*seed=*/1) {}

  void Observe(double value);

  /// Estimated q-quantile of everything observed; 0 when empty.
  double Quantile(double q) const;
  uint64_t count() const;
  double sum() const;
  double min() const;
  double max() const;

 private:
  mutable std::mutex mu_;
  sketch::KllSketch sketch_;
  double sum_ = 0.0;
};

/// One metric's exported state (see MetricsRegistry::Snapshot).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  uint64_t counter_value = 0;
  double gauge_value = 0.0;
  // Histogram summary: count/sum plus fixed quantiles.
  uint64_t hist_count = 0;
  double hist_sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double hist_min = 0.0;
  double hist_max = 0.0;
};

/// Process-wide registry of named metrics. Handles returned by Get* are
/// stable for the registry's lifetime, so hot call sites cache the pointer
/// (typically in a function-local static) and pay only an atomic add per
/// event.
///
/// The registry carries the observability enable flag: when disabled
/// (`set_enabled(false)`, or environment `AQP_OBS=0` at startup), the
/// executors skip span creation and metric updates entirely, keeping
/// instrumentation off the hot path. Metric *handles* keep working either
/// way — gating is the instrumented code's responsibility via `enabled()`.
class MetricsRegistry {
 public:
  /// The process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates; never returns nullptr. A name registered as one kind
  /// stays that kind (asking for the same name as another kind returns a
  /// fresh unexported dummy rather than crashing).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name, uint32_t k = 200);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Point-in-time export of every registered metric, name-sorted.
  std::vector<MetricSample> Snapshot() const;

  /// Drops every registered metric (tests).
  void Clear();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;
  std::atomic<bool> enabled_{true};
};

/// Shorthand for MetricsRegistry::Global().enabled() — the single branch
/// every built-in instrumentation site checks first.
bool Enabled();

}  // namespace obs
}  // namespace aqp

#endif  // AQP_OBS_METRICS_H_
