#ifndef AQP_OBS_PROFILE_H_
#define AQP_OBS_PROFILE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace aqp {
namespace obs {

/// The (requested, achieved) halves of an accuracy contract, attached to a
/// profile when the query carried a WITH ERROR clause.
struct ContractReport {
  double requested_error = 0.0;       // Relative, e.g. 0.05.
  double requested_confidence = 0.0;  // e.g. 0.95.
  /// Widest relative CI half-width across all output cells — the error the
  /// system can actually attest a posteriori. 0 for exact answers.
  double achieved_error = 0.0;
  bool met() const { return achieved_error <= requested_error; }
};

/// Morsel-parallel execution summary for one query: how many threads were
/// resolved, how many morsels ran, how many were stolen off their owner's
/// run, and how many rows each worker slot processed (slot 0 is the
/// coordinating thread). Filled by executors that ran parallel regions;
/// absent means the query ran entirely serial.
struct ParallelReport {
  uint64_t num_threads = 0;
  uint64_t morsels = 0;
  uint64_t steals = 0;
  std::vector<uint64_t> worker_rows;  // Rows per worker slot.
};

/// What the system actually did to answer one query — the paper's central
/// adoption complaint ("users cannot see what the AQP system did") turned
/// into a first-class result field. Every executor (two-stage online,
/// offline-sample, online aggregation, exact fallback) fills one in; it
/// renders as an EXPLAIN ANALYZE-style text tree or as JSON.
struct ExecutionProfile {
  std::string query;
  /// Which execution strategy answered: "online-two-stage", "offline-sample",
  /// "online-aggregation", or "exact".
  std::string executor;

  bool approximated = false;
  std::string fallback_reason;  // Why exact execution was chosen, if it was.

  /// Resource governance. When a governed query could not run its preferred
  /// strategy (deadline, memory budget, or a runtime fault), the governor
  /// descends a degradation ladder and records here which rung answered and
  /// why: rung 0 = preferred strategy, 1 = stored offline sample, 2 =
  /// online-aggregation early answer (CI widened by the degradation
  /// inflation). `degraded_reason` is empty for ungoverned / undegraded runs.
  std::string degraded_reason;
  int degradation_rung = 0;
  /// Widest finite relative CI half-width across the answer's output cells —
  /// the error the system ESTIMATES it returned (0 for exact answers). For
  /// degraded answers this is measured AFTER the degradation CI inflation;
  /// `pre_inflation_error` keeps the raw estimator half-width so the
  /// accuracy auditor can attribute a coverage miss to estimation error
  /// (pre-inflation CI already too narrow) vs. insufficient inflation.
  double estimated_error = 0.0;
  double pre_inflation_error = 0.0;  // 0 for undegraded answers.
  /// Peak live bytes the query's MemoryTracker saw, and the bytes still
  /// charged when the profile was taken (must be 0 — anything else is a
  /// governance accounting leak).
  uint64_t memory_peak_bytes = 0;
  uint64_t memory_leaked_bytes = 0;

  /// Service tier (filled only for queries that went through a
  /// service::QueryService). How long the query waited for admission, how
  /// many submissions were already queued when it arrived, and which
  /// cross-query cache shaped the answer: "result-cache" (served without
  /// executing), "synopsis-cache" (degraded rung answered from a shared
  /// cached synopsis), or empty (no cache involvement).
  double admission_wait_seconds = 0.0;
  uint64_t queue_depth_at_admission = 0;
  std::string cache_source;
  /// Drift context of the synopsis that served (or was available to) this
  /// answer: the DriftMonitor's latest score for it and its age at answer
  /// time. Both 0 when no cached synopsis was involved or never scored.
  double synopsis_drift_score = 0.0;
  double synopsis_age_seconds = 0.0;
  /// Bounded-retry accounting: how many rung attempts were re-run after a
  /// transient Internal failure, and the total backoff slept doing so. Both
  /// 0 for queries that never retried.
  uint64_t retry_count = 0;
  double retry_wait_seconds = 0.0;

  /// Sampling decisions.
  std::string sampling_design;   // e.g. "system-block(block_size=128)".
  std::string sampled_table;     // Which table was substituted/sampled.
  double sampled_fraction = 1.0;  // Final-stage rate; 1.0 = full scan.
  double pilot_rate = 0.0;
  double worst_required_rate = 0.0;  // Planner's uncapped requirement.

  /// Cost actually paid.
  uint64_t rows_scanned = 0;
  uint64_t blocks_read = 0;
  uint64_t rows_joined = 0;
  uint64_t pilot_rows_scanned = 0;
  double pilot_seconds = 0.0;
  double planning_seconds = 0.0;
  double final_seconds = 0.0;
  double total_seconds = 0.0;

  std::optional<ContractReport> contract;

  /// Morsel/steal/per-worker attribution when any stage ran parallel.
  std::optional<ParallelReport> parallel;

  /// Nested span timings (parse -> bind -> pilot -> plan -> final -> ...),
  /// with per-operator row counts when engine tracing was on.
  QueryTrace trace{"query"};

  /// EXPLAIN ANALYZE-style rendering: a header block of decisions/costs
  /// followed by the span tree.
  std::string ToText() const;

  /// Everything above as one JSON object (spans under "trace").
  std::string ToJson() const;
};

}  // namespace obs
}  // namespace aqp

#endif  // AQP_OBS_PROFILE_H_
