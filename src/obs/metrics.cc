#include "obs/metrics.h"

#include <cstdlib>
#include <cstring>

namespace aqp {
namespace obs {

void LatencyHistogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  sketch_.Add(value);
  sum_ += value;
}

double LatencyHistogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (sketch_.count() == 0) return 0.0;
  auto r = sketch_.Quantile(q);
  return r.ok() ? r.value() : 0.0;
}

uint64_t LatencyHistogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sketch_.count();
}

double LatencyHistogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double LatencyHistogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sketch_.count() == 0 ? 0.0 : sketch_.min();
}

double LatencyHistogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sketch_.count() == 0 ? 0.0 : sketch_.max();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    const char* env = std::getenv("AQP_OBS");
    if (env != nullptr &&
        (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)) {
      r->set_enabled(false);
    }
    return r;
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.gauge != nullptr || e.histogram != nullptr) {
    static Counter dummy;
    return &dummy;
  }
  if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.counter != nullptr || e.histogram != nullptr) {
    static Gauge dummy;
    return &dummy;
  }
  if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                uint32_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.counter != nullptr || e.gauge != nullptr) {
    static LatencyHistogram dummy;
    return &dummy;
  }
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<LatencyHistogram>(k);
  }
  return e.histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSample s;
    s.name = name;
    if (entry.counter != nullptr) {
      s.kind = MetricSample::Kind::kCounter;
      s.counter_value = entry.counter->value();
    } else if (entry.gauge != nullptr) {
      s.kind = MetricSample::Kind::kGauge;
      s.gauge_value = entry.gauge->value();
    } else if (entry.histogram != nullptr) {
      s.kind = MetricSample::Kind::kHistogram;
      s.hist_count = entry.histogram->count();
      s.hist_sum = entry.histogram->sum();
      s.p50 = entry.histogram->Quantile(0.5);
      s.p90 = entry.histogram->Quantile(0.9);
      s.p99 = entry.histogram->Quantile(0.99);
      s.hist_min = entry.histogram->min();
      s.hist_max = entry.histogram->max();
    } else {
      continue;
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.clear();
}

bool Enabled() { return MetricsRegistry::Global().enabled(); }

}  // namespace obs
}  // namespace aqp
