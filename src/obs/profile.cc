#include "obs/profile.h"

#include <cstdio>

#include "obs/json.h"

namespace aqp {
namespace obs {
namespace {

std::string Pct(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f%%", v * 100.0);
  return buf;
}

std::string Ms(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fms", seconds * 1000.0);
  return buf;
}

}  // namespace

std::string ExecutionProfile::ToText() const {
  std::string out;
  out += "EXPLAIN ANALYZE\n";
  out += "  query:      " + query + "\n";
  out += "  executor:   " + executor +
         (approximated ? " (approximate)" : " (exact)") + "\n";
  if (!fallback_reason.empty()) {
    out += "  fallback:   " + fallback_reason + "\n";
  }
  if (!degraded_reason.empty()) {
    out += "  degraded:   rung " + std::to_string(degradation_rung) + " — " +
           degraded_reason + "\n";
  }
  if (estimated_error > 0.0) {
    out += "  est. error: " + Pct(estimated_error);
    if (pre_inflation_error > 0.0) {
      out += " (pre-inflation " + Pct(pre_inflation_error) + ")";
    }
    out += "\n";
  }
  if (memory_peak_bytes > 0 || memory_leaked_bytes > 0) {
    out += "  memory:     peak=" + std::to_string(memory_peak_bytes) +
           "B leaked=" + std::to_string(memory_leaked_bytes) + "B\n";
  }
  if (admission_wait_seconds > 0.0 || queue_depth_at_admission > 0) {
    out += "  admission:  waited " + Ms(admission_wait_seconds) +
           " behind " + std::to_string(queue_depth_at_admission) +
           " queued\n";
  }
  if (!cache_source.empty()) {
    out += "  cache:      " + cache_source + "\n";
  }
  if (synopsis_drift_score > 0.0 || synopsis_age_seconds > 0.0) {
    out += "  synopsis:   drift_score=" + Pct(synopsis_drift_score) +
           " age=" + std::to_string(synopsis_age_seconds) + "s\n";
  }
  if (retry_count > 0) {
    out += "  retries:    " + std::to_string(retry_count) + " (backoff " +
           Ms(retry_wait_seconds) + ")\n";
  }
  if (!sampling_design.empty()) {
    out += "  sampling:   " + sampling_design;
    if (!sampled_table.empty()) out += " over '" + sampled_table + "'";
    out += ", final rate " + Pct(sampled_fraction);
    if (pilot_rate > 0.0) out += ", pilot rate " + Pct(pilot_rate);
    if (worst_required_rate > 0.0) {
      out += ", required " + Pct(worst_required_rate);
    }
    out += "\n";
  }
  out += "  cost:       rows_scanned=" + std::to_string(rows_scanned) +
         " blocks_read=" + std::to_string(blocks_read) +
         " rows_joined=" + std::to_string(rows_joined);
  if (pilot_rows_scanned > 0) {
    out += " (pilot rows " + std::to_string(pilot_rows_scanned) + ")";
  }
  out += "\n";
  if (pilot_seconds > 0.0 || final_seconds > 0.0) {
    out += "  stages:     pilot " + Ms(pilot_seconds) + " + plan " +
           Ms(planning_seconds) + " + final " + Ms(final_seconds) + "\n";
  }
  if (total_seconds > 0.0) {
    out += "  total:      " + Ms(total_seconds) + "\n";
  }
  if (contract.has_value()) {
    out += "  contract:   requested error " + Pct(contract->requested_error) +
           " @ confidence " + Pct(contract->requested_confidence) +
           "; achieved (a posteriori) " + Pct(contract->achieved_error) +
           (contract->met() ? "  [MET]" : "  [EXCEEDED]") + "\n";
  }
  if (parallel.has_value()) {
    out += "  parallel:   threads=" + std::to_string(parallel->num_threads) +
           " morsels=" + std::to_string(parallel->morsels) +
           " steals=" + std::to_string(parallel->steals);
    if (!parallel->worker_rows.empty()) {
      out += " worker_rows=[";
      for (size_t i = 0; i < parallel->worker_rows.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(parallel->worker_rows[i]);
      }
      out += "]";
    }
    out += "\n";
  }
  out += "  spans:\n";
  std::string spans = trace.ToText();
  // Indent the span tree under the header.
  size_t pos = 0;
  while (pos < spans.size()) {
    size_t eol = spans.find('\n', pos);
    if (eol == std::string::npos) eol = spans.size();
    out += "    " + spans.substr(pos, eol - pos) + "\n";
    pos = eol + 1;
  }
  return out;
}

std::string ExecutionProfile::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("query").Value(query);
  w.Key("executor").Value(executor);
  w.Key("approximated").Value(approximated);
  if (!fallback_reason.empty()) {
    w.Key("fallback_reason").Value(fallback_reason);
  }
  if (!degraded_reason.empty()) {
    w.Key("degraded_reason").Value(degraded_reason);
    w.Key("degradation_rung").Value(static_cast<int64_t>(degradation_rung));
  }
  if (estimated_error > 0.0) {
    w.Key("estimated_error").Value(estimated_error);
  }
  if (pre_inflation_error > 0.0) {
    w.Key("pre_inflation_error").Value(pre_inflation_error);
  }
  if (memory_peak_bytes > 0 || memory_leaked_bytes > 0) {
    w.Key("memory_peak_bytes").Value(memory_peak_bytes);
    w.Key("memory_leaked_bytes").Value(memory_leaked_bytes);
  }
  if (admission_wait_seconds > 0.0 || queue_depth_at_admission > 0) {
    w.Key("admission_wait_seconds").Value(admission_wait_seconds);
    w.Key("queue_depth_at_admission").Value(queue_depth_at_admission);
  }
  if (!cache_source.empty()) w.Key("cache_source").Value(cache_source);
  if (synopsis_drift_score > 0.0 || synopsis_age_seconds > 0.0) {
    w.Key("synopsis_drift_score").Value(synopsis_drift_score);
    w.Key("synopsis_age_seconds").Value(synopsis_age_seconds);
  }
  if (retry_count > 0) {
    w.Key("retry_count").Value(retry_count);
    w.Key("retry_wait_seconds").Value(retry_wait_seconds);
  }
  if (!sampling_design.empty()) {
    w.Key("sampling_design").Value(sampling_design);
  }
  if (!sampled_table.empty()) w.Key("sampled_table").Value(sampled_table);
  w.Key("sampled_fraction").Value(sampled_fraction);
  if (pilot_rate > 0.0) w.Key("pilot_rate").Value(pilot_rate);
  if (worst_required_rate > 0.0) {
    w.Key("worst_required_rate").Value(worst_required_rate);
  }
  w.Key("rows_scanned").Value(rows_scanned);
  w.Key("blocks_read").Value(blocks_read);
  w.Key("rows_joined").Value(rows_joined);
  if (pilot_rows_scanned > 0) {
    w.Key("pilot_rows_scanned").Value(pilot_rows_scanned);
  }
  w.Key("pilot_seconds").Value(pilot_seconds);
  w.Key("planning_seconds").Value(planning_seconds);
  w.Key("final_seconds").Value(final_seconds);
  w.Key("total_seconds").Value(total_seconds);
  if (contract.has_value()) {
    w.Key("contract").BeginObject();
    w.Key("requested_error").Value(contract->requested_error);
    w.Key("requested_confidence").Value(contract->requested_confidence);
    w.Key("achieved_error").Value(contract->achieved_error);
    w.Key("met").Value(contract->met());
    w.EndObject();
  }
  if (parallel.has_value()) {
    w.Key("parallel").BeginObject();
    w.Key("num_threads").Value(parallel->num_threads);
    w.Key("morsels").Value(parallel->morsels);
    w.Key("steals").Value(parallel->steals);
    w.Key("worker_rows").BeginArray();
    for (uint64_t rows : parallel->worker_rows) w.Value(rows);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  // Splice the trace's own JSON rendering in as a raw sub-document.
  std::string body = w.str();
  body.pop_back();  // Drop the closing '}'.
  body += ",\"trace\":" + trace.ToJson() + "}";
  return body;
}

}  // namespace obs
}  // namespace aqp
