#ifndef AQP_OBS_EXPORT_H_
#define AQP_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace aqp {
namespace obs {

/// The registry as one JSON object: {"metrics":[{name,kind,...}, ...]}.
/// Counters export {value}, gauges {value}, histograms
/// {count,sum,min,max,p50,p90,p99} (quantiles from the KLL sketch).
std::string ExportJson(const MetricsRegistry& registry);

/// The registry in Prometheus text exposition format (v0.0.4). Every family
/// gets `# HELP` and `# TYPE` once; counters export as counter, gauges as
/// gauge, histograms as a summary with quantile-labelled samples plus
/// _count/_sum. Registry names are sanitized to the Prometheus charset
/// (dots become underscores), and flat names that embed a label block
/// ('family{table="x"}', the registry's labeling convention) are split so
/// the family is sanitized while the labels survive as real Prometheus
/// labels.
std::string ExportPrometheus(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace aqp

#endif  // AQP_OBS_EXPORT_H_
