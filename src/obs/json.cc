#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace aqp {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty() && has_element_.back()) out_ += ',';
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  if (!has_element_.empty()) has_element_.back() = true;
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
  if (!has_element_.empty()) has_element_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  if (!has_element_.empty()) has_element_.back() = true;
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
  if (!has_element_.empty()) has_element_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  MaybeComma();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view s) {
  MaybeComma();
  if (!has_element_.empty()) has_element_.back() = true;
  out_ += '"';
  out_ += JsonEscape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* s) {
  return Value(std::string_view(s));
}

JsonWriter& JsonWriter::Value(double v) {
  if (!std::isfinite(v)) return Null();
  MaybeComma();
  if (!has_element_.empty()) has_element_.back() = true;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  MaybeComma();
  if (!has_element_.empty()) has_element_.back() = true;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  MaybeComma();
  if (!has_element_.empty()) has_element_.back() = true;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  MaybeComma();
  if (!has_element_.empty()) has_element_.back() = true;
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  if (!has_element_.empty()) has_element_.back() = true;
  out_ += "null";
  return *this;
}

}  // namespace obs
}  // namespace aqp
