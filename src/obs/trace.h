#ifndef AQP_OBS_TRACE_H_
#define AQP_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace aqp {
namespace obs {

/// One completed (or still-open) timed span in a query trace. Spans form a
/// tree: parse -> bind -> plan -> pilot -> ... with operator spans nested
/// under their stage. Times are seconds relative to the trace start.
struct SpanRecord {
  std::string name;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  bool open = true;
  /// Key/value annotations (row counts, table names, rates) in insertion
  /// order; values pre-formatted to strings.
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::unique_ptr<SpanRecord>> children;
};

class QueryTrace;

/// RAII handle on an open span: closes (stamps the duration) on
/// destruction or on an explicit End(). Move-only. A default-constructed
/// TraceSpan is an inert no-op, which is how call sites behave when handed
/// a null QueryTrace.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { End(); }

  /// Annotates the span; no-op on an inert span.
  void AddAttr(std::string key, std::string value);
  void AddAttr(std::string key, uint64_t value);
  void AddAttr(std::string key, double value);

  /// Closes the span now (idempotent).
  void End();

  bool active() const { return record_ != nullptr; }

 private:
  friend class QueryTrace;
  TraceSpan(QueryTrace* trace, SpanRecord* record)
      : trace_(trace), record_(record) {}

  QueryTrace* trace_ = nullptr;
  SpanRecord* record_ = nullptr;
};

/// The span tree of one query execution. Spans open under the innermost
/// still-open span (a cursor maintained by the trace), so plain lexical
/// scoping of TraceSpan values produces the correct nesting:
///
///   QueryTrace trace("SELECT ...");
///   {
///     TraceSpan pilot = trace.Span("pilot");
///     TraceSpan scan = trace.Span("scan");   // child of pilot
///     scan.AddAttr("rows", uint64_t{1024});
///   }                                        // both closed, LIFO
///   std::printf("%s", trace.ToText().c_str());
///
/// Movable (the span tree lives behind a stable pointer); not thread-safe —
/// one trace belongs to one query execution thread.
class QueryTrace {
 public:
  explicit QueryTrace(std::string root_name = "query");

  QueryTrace(QueryTrace&&) = default;
  QueryTrace& operator=(QueryTrace&&) = default;

  /// Deep-copies the span tree. The copy's open-span cursor resets to the
  /// root, so copy a trace only after the spans of interest are closed
  /// (results carrying profiles are naturally copied post-Finish).
  QueryTrace(const QueryTrace& other);
  QueryTrace& operator=(const QueryTrace& other);

  /// Opens a span nested under the innermost open span.
  TraceSpan Span(std::string name);

  /// Closes every open span (including the root) — call when execution is
  /// done; rendering does this implicitly for still-open spans.
  void Finish();

  /// Root of the span tree (named at construction, duration = whole query).
  const SpanRecord& root() const { return *root_; }
  SpanRecord& mutable_root() { return *root_; }

  /// Seconds since the trace was constructed.
  double ElapsedSeconds() const;

  /// Indented one-span-per-line rendering:
  ///   query  12.431ms
  ///     pilot  1.207ms  [rate=0.01]
  std::string ToText() const;

  /// The span tree as nested JSON objects.
  std::string ToJson() const;

 private:
  friend class TraceSpan;
  void Close(SpanRecord* record);

  std::chrono::steady_clock::time_point start_;
  std::unique_ptr<SpanRecord> root_;
  /// Innermost-open-span stack; back() is where the next span attaches.
  std::vector<SpanRecord*> open_;
};

/// Opens a span on `trace`, or returns an inert span when `trace` is null —
/// the pattern for optionally-traced code paths (the engine executor).
TraceSpan MaybeSpan(QueryTrace* trace, std::string name);

}  // namespace obs
}  // namespace aqp

#endif  // AQP_OBS_TRACE_H_
