#include "obs/export.h"

#include <cstdio>
#include <set>
#include <string>

#include "obs/json.h"

namespace aqp {
namespace obs {
namespace {

const char* KindName(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

bool ValidNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// Registry names use dots ("service.queries.ok"); Prometheus metric names
/// allow only [a-zA-Z_:][a-zA-Z0-9_:]*. Every invalid character becomes '_'.
std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    out.push_back(ValidNameChar(name[i], i == 0) ? name[i] : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

/// The registry is flat-name, so labeled metrics embed their label block in
/// the name ('family{table="x"}', composed by the producer). The family part
/// is sanitized; the label block rides through verbatim except for newline
/// escaping (the producer already escapes backslash and quote in values).
struct ParsedName {
  std::string family;  // Sanitized.
  std::string labels;  // "{k=\"v\",...}" or empty.
};

ParsedName ParseName(const std::string& name) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    // No label block (or a malformed one — then the whole name is treated
    // as a family and the braces are sanitized away).
    return {SanitizeName(name), ""};
  }
  std::string labels;
  labels.reserve(name.size() - brace);
  for (size_t i = brace; i < name.size(); ++i) {
    if (name[i] == '\n') {
      labels += "\\n";
    } else {
      labels.push_back(name[i]);
    }
  }
  return {SanitizeName(name.substr(0, brace)), std::move(labels)};
}

/// HELP docstrings for the metric families an operator will alert on; the
/// fallback names the kind so no family exports without HELP.
std::string HelpFor(const std::string& family, MetricSample::Kind kind) {
  if (family == "synopsis_drift_score_ratio") {
    return "Latest drift score of a table's cached synopses "
           "(max component over columns; 0 = fresh, 1 = total drift).";
  }
  if (family == "synopsis_drift_ks_ratio") {
    return "Kolmogorov-Smirnov statistic between baseline and current "
           "value distributions (worst column).";
  }
  if (family == "synopsis_drift_domain_churn_ratio") {
    return "Fraction of the baseline distinct-value domain no longer "
           "present (worst column).";
  }
  if (family == "synopsis_drift_hh_turnover_ratio") {
    return "Frequency share lost by the baseline's heavy-hitter values "
           "(worst column).";
  }
  if (family == "synopsis_drift_moment_shift_ratio") {
    return "Mean/scale/row-count/null-fraction shift against the baseline "
           "(worst column).";
  }
  if (family == "synopsis_staleness_seconds") {
    return "Age of the serving synopsis baseline at its last drift check.";
  }
  if (family == "synopsis_drift_checks") {
    return "Baseline/current drift comparisons completed by the monitor.";
  }
  if (family == "synopsis_drift_flags") {
    return "Soft-drift verdicts (synopses kept serving with widened CIs).";
  }
  if (family == "synopsis_drift_invalidations") {
    return "Hard-drift verdicts (cached synopses dropped for rebuild).";
  }
  if (family == "synopsis_drift_check_ms") {
    return "Wall milliseconds per drift check (rescan + score).";
  }
  return std::string("AQP ") + KindName(kind) + " metric.";
}

/// HELP text escaping per the exposition format: backslash and newline.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string ExportJson(const MetricsRegistry& registry) {
  JsonWriter w;
  w.BeginObject().Key("metrics").BeginArray();
  for (const MetricSample& s : registry.Snapshot()) {
    w.BeginObject();
    w.Key("name").Value(s.name);
    w.Key("kind").Value(KindName(s.kind));
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        w.Key("value").Value(s.counter_value);
        break;
      case MetricSample::Kind::kGauge:
        w.Key("value").Value(s.gauge_value);
        break;
      case MetricSample::Kind::kHistogram:
        w.Key("count").Value(s.hist_count);
        w.Key("sum").Value(s.hist_sum);
        w.Key("min").Value(s.hist_min);
        w.Key("max").Value(s.hist_max);
        w.Key("p50").Value(s.p50);
        w.Key("p90").Value(s.p90);
        w.Key("p99").Value(s.p99);
        break;
    }
    w.EndObject();
  }
  w.EndArray().EndObject();
  return w.str();
}

std::string ExportPrometheus(const MetricsRegistry& registry) {
  std::string out;
  // The snapshot is name-sorted, so a labeled family's instances arrive
  // contiguously — but sanitization can merge distinct raw names, so HELP/
  // TYPE emission is deduplicated by sanitized family, not by adjacency.
  std::set<std::string> described;
  for (const MetricSample& s : registry.Snapshot()) {
    const ParsedName parsed = ParseName(s.name);
    const std::string& family = parsed.family;
    if (described.insert(family).second) {
      out += "# HELP " + family + " " +
             EscapeHelp(HelpFor(family, s.kind)) + "\n";
      const char* type =
          s.kind == MetricSample::Kind::kHistogram ? "summary"
                                                   : KindName(s.kind);
      out += "# TYPE " + family + " " + type + "\n";
    }
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += family + parsed.labels + " " +
               std::to_string(s.counter_value) + "\n";
        break;
      case MetricSample::Kind::kGauge:
        out += family + parsed.labels + " " + Num(s.gauge_value) + "\n";
        break;
      case MetricSample::Kind::kHistogram: {
        // Quantile labels merge with any producer labels: '{a="b"}' +
        // quantile -> '{a="b",quantile="..."}'.
        auto quantiled = [&](const char* q) {
          if (parsed.labels.empty()) {
            return family + "{quantile=\"" + q + "\"}";
          }
          std::string merged = parsed.labels;
          merged.insert(merged.size() - 1,
                        std::string(",quantile=\"") + q + "\"");
          return family + merged;
        };
        out += quantiled("0.5") + " " + Num(s.p50) + "\n";
        out += quantiled("0.9") + " " + Num(s.p90) + "\n";
        out += quantiled("0.99") + " " + Num(s.p99) + "\n";
        out += family + "_sum" + parsed.labels + " " + Num(s.hist_sum) + "\n";
        out += family + "_count" + parsed.labels + " " +
               std::to_string(s.hist_count) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace aqp
