#include "obs/export.h"

#include <cstdio>

#include "obs/json.h"

namespace aqp {
namespace obs {
namespace {

const char* KindName(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

std::string ExportJson(const MetricsRegistry& registry) {
  JsonWriter w;
  w.BeginObject().Key("metrics").BeginArray();
  for (const MetricSample& s : registry.Snapshot()) {
    w.BeginObject();
    w.Key("name").Value(s.name);
    w.Key("kind").Value(KindName(s.kind));
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        w.Key("value").Value(s.counter_value);
        break;
      case MetricSample::Kind::kGauge:
        w.Key("value").Value(s.gauge_value);
        break;
      case MetricSample::Kind::kHistogram:
        w.Key("count").Value(s.hist_count);
        w.Key("sum").Value(s.hist_sum);
        w.Key("min").Value(s.hist_min);
        w.Key("max").Value(s.hist_max);
        w.Key("p50").Value(s.p50);
        w.Key("p90").Value(s.p90);
        w.Key("p99").Value(s.p99);
        break;
    }
    w.EndObject();
  }
  w.EndArray().EndObject();
  return w.str();
}

std::string ExportPrometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const MetricSample& s : registry.Snapshot()) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += "# TYPE " + s.name + " counter\n";
        out += s.name + " " + std::to_string(s.counter_value) + "\n";
        break;
      case MetricSample::Kind::kGauge:
        out += "# TYPE " + s.name + " gauge\n";
        out += s.name + " " + Num(s.gauge_value) + "\n";
        break;
      case MetricSample::Kind::kHistogram:
        out += "# TYPE " + s.name + " summary\n";
        out += s.name + "{quantile=\"0.5\"} " + Num(s.p50) + "\n";
        out += s.name + "{quantile=\"0.9\"} " + Num(s.p90) + "\n";
        out += s.name + "{quantile=\"0.99\"} " + Num(s.p99) + "\n";
        out += s.name + "_sum " + Num(s.hist_sum) + "\n";
        out += s.name + "_count " + std::to_string(s.hist_count) + "\n";
        break;
    }
  }
  return out;
}

}  // namespace obs
}  // namespace aqp
