#include "obs/query_log.h"

#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/json.h"

namespace aqp {
namespace obs {
namespace {

double NowUnixSeconds() {
  auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

}  // namespace

std::string QueryLogEvent::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("kind").Value(kind);
  w.Key("unix_seconds").Value(unix_seconds);
  w.Key("sql_fingerprint").Value(sql_fingerprint);
  w.Key("sql").Value(sql);
  w.Key("session_id").Value(session_id);
  w.Key("status").Value(status);
  w.Key("cache_source").Value(cache_source);
  w.Key("degradation_rung").Value(static_cast<int64_t>(degradation_rung));
  w.Key("degraded_reason").Value(degraded_reason);
  w.Key("estimated_error").Value(estimated_error);
  w.Key("pre_inflation_error").Value(pre_inflation_error);
  w.Key("admission_wait_ms").Value(admission_wait_ms);
  w.Key("queue_depth").Value(queue_depth);
  w.Key("memory_peak_bytes").Value(memory_peak_bytes);
  w.Key("wall_ms").Value(wall_ms);
  w.Key("pilot_ms").Value(pilot_ms);
  w.Key("plan_ms").Value(plan_ms);
  w.Key("final_ms").Value(final_ms);
  w.Key("slow").Value(slow);
  if (synopsis_drift_score > 0.0 || synopsis_age_seconds > 0.0) {
    w.Key("synopsis_drift_score").Value(synopsis_drift_score);
    w.Key("synopsis_age_seconds").Value(synopsis_age_seconds);
  }
  if (retry_count > 0 || retry_wait_ms > 0.0) {
    w.Key("retry_count").Value(retry_count);
    w.Key("retry_wait_ms").Value(retry_wait_ms);
  }
  if (retry_after_ms > 0) w.Key("retry_after_ms").Value(retry_after_ms);
  if (kind == "breaker" || !breaker_table.empty() || !breaker_state.empty()) {
    w.Key("breaker_table").Value(breaker_table);
    w.Key("breaker_rung").Value(static_cast<int64_t>(breaker_rung));
    w.Key("breaker_state").Value(breaker_state);
  }
  if (kind == "audit") {
    w.Key("audited_table").Value(audited_table);
    w.Key("audit_cells").Value(audit_cells);
    w.Key("audit_covered").Value(audit_covered);
    w.Key("observed_error").Value(observed_error);
  }
  if (kind == "drift") {
    w.Key("drift_table").Value(drift_table);
    w.Key("drift_score").Value(drift_score);
    w.Key("drift_ks").Value(drift_ks);
    w.Key("drift_domain_churn").Value(drift_domain_churn);
    w.Key("drift_hh_turnover").Value(drift_hh_turnover);
    w.Key("drift_moment_shift").Value(drift_moment_shift);
    w.Key("drift_worst_column").Value(drift_worst_column);
    w.Key("drift_action").Value(drift_action);
    w.Key("staleness_seconds").Value(staleness_seconds);
  }
  w.EndObject();
  return w.str();
}

QueryLogOptions QueryLogOptions::FromEnv(QueryLogOptions base) {
  if (const char* path = std::getenv("AQP_QUERY_LOG")) {
    base.sink_path = path;
  }
  if (const char* slow = std::getenv("AQP_QUERY_LOG_SLOW_MS")) {
    char* end = nullptr;
    double v = std::strtod(slow, &end);
    if (end != slow) base.slow_query_ms = v;
  }
  if (const char* cap = std::getenv("AQP_QUERY_LOG_MAX_BYTES")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(cap, &end, 10);
    if (end != cap) base.max_file_bytes = v;
  }
  return base;
}

QueryLog::QueryLog(QueryLogOptions options) : options_(std::move(options)) {
  ring_.resize(options_.capacity > 0 ? options_.capacity : 1);
  if (!options_.sink_path.empty()) {
    file_ = std::fopen(options_.sink_path.c_str(), "ab");
    if (file_ != nullptr) {
      // Unbuffered: each drained chunk goes down in ONE write(2), and with
      // O_APPEND the kernel serializes whole writes — two QueryLogs pointed
      // at the same path (e.g. via AQP_QUERY_LOG) interleave per event, not
      // mid-line, so every line stays valid JSON.
      std::setvbuf(file_, nullptr, _IONBF, 0);
      long pos = std::ftell(file_);
      file_bytes_ = pos > 0 ? static_cast<uint64_t>(pos) : 0;
      flusher_ = std::thread([this] { FlusherLoop(); });
    }
  }
}

QueryLog::~QueryLog() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
  if (file_ != nullptr) std::fclose(file_);
}

void QueryLog::Append(QueryLogEvent event) {
  if (event.unix_seconds == 0.0) event.unix_seconds = NowUnixSeconds();
  if (options_.sql_prefix_chars > 0 &&
      event.sql.size() > options_.sql_prefix_chars) {
    event.sql.resize(options_.sql_prefix_chars);
  }
  event.slow = options_.slow_query_ms > 0.0 &&
               event.wall_ms >= options_.slow_query_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (event.slow) ++slow_;
    ring_[seq_ % ring_.size()] = event;
    ++seq_;
    if (file_ != nullptr) {
      // Bound the flusher backlog: drop the oldest pending events rather
      // than letting a slow disk grow the queue (or block this thread).
      size_t limit = ring_.size() * 4;
      while (pending_.size() >= limit) {
        pending_.pop_front();
        ++sink_dropped_;
      }
      pending_.push_back(std::move(event));
    }
  }
  // Deliberately no notify: the flusher polls on a short timeout, so Append
  // never wakes another thread from the query path (a forced context switch
  // would cost more than the append itself on small machines).
}

std::vector<QueryLogEvent> QueryLog::Snapshot(size_t last_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t held = seq_ < ring_.size() ? static_cast<size_t>(seq_) : ring_.size();
  size_t n = (last_n == 0 || last_n > held) ? held : last_n;
  std::vector<QueryLogEvent> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t idx = seq_ - n + i;
    out.push_back(ring_[idx % ring_.size()]);
  }
  return out;
}

void QueryLog::Flush() {
  if (file_ == nullptr) return;
  std::unique_lock<std::mutex> lock(mu_);
  flushed_cv_.wait(lock, [this] { return pending_.empty() && flusher_idle_; });
  lock.unlock();
  std::lock_guard<std::mutex> file_lock(file_mu_);
  std::fflush(file_);
}

QueryLogStats QueryLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryLogStats s;
  s.appended = seq_;
  s.slow = slow_;
  s.sink_written = sink_written_;
  s.sink_dropped = sink_dropped_;
  s.rotations = rotations_;
  return s;
}

void QueryLog::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Poll on a short timeout instead of a per-Append notification: batching
    // a couple of milliseconds of events costs nothing for a log, and it
    // keeps Append() free of any cross-thread wakeup. Shutdown still
    // notifies so destruction is prompt.
    flusher_cv_.wait_for(lock, std::chrono::milliseconds(2),
                         [this] { return stop_; });
    if (pending_.empty()) {
      if (stop_) break;
      flushed_cv_.notify_all();  // Flush() waiters see empty + idle.
      continue;
    }
    std::vector<QueryLogEvent> batch(pending_.begin(), pending_.end());
    pending_.clear();
    flusher_idle_ = false;
    lock.unlock();
    WriteEvents(batch);  // Serialization + I/O happen outside mu_.
    lock.lock();
    sink_written_ += batch.size();
    flusher_idle_ = true;
    flushed_cv_.notify_all();
  }
}

void QueryLog::WriteEvents(const std::vector<QueryLogEvent>& batch) {
  std::lock_guard<std::mutex> lock(file_mu_);
  if (file_ == nullptr) return;
  // The cap is enforced per event, not per batch: one large drained batch
  // must still rotate mid-batch, never produce an oversized file.
  std::string buf;
  for (const QueryLogEvent& e : batch) {
    std::string line = e.ToJson();
    line += '\n';
    if (options_.max_file_bytes > 0 && file_bytes_ + buf.size() > 0 &&
        file_bytes_ + buf.size() + line.size() > options_.max_file_bytes) {
      std::fwrite(buf.data(), 1, buf.size(), file_);
      file_bytes_ += buf.size();
      buf.clear();
      RotateLocked();
    }
    buf += line;
  }
  std::fwrite(buf.data(), 1, buf.size(), file_);
  file_bytes_ += buf.size();
}

void QueryLog::RotateLocked() {
  std::fclose(file_);
  std::string rotated = options_.sink_path + ".1";
  std::remove(rotated.c_str());
  std::rename(options_.sink_path.c_str(), rotated.c_str());
  file_ = std::fopen(options_.sink_path.c_str(), "ab");
  if (file_ != nullptr) std::setvbuf(file_, nullptr, _IONBF, 0);
  file_bytes_ = 0;
  std::lock_guard<std::mutex> lock(mu_);
  ++rotations_;
}

}  // namespace obs
}  // namespace aqp
