#include "obs/trace.h"

#include <cstdio>

#include "common/str_util.h"
#include "obs/json.h"

namespace aqp {
namespace obs {
namespace {

void RenderText(const SpanRecord& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(span.name);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "  %.3fms", span.duration_seconds * 1000.0);
  out->append(buf);
  if (!span.attrs.empty()) {
    out->append("  [");
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) out->append(" ");
      out->append(span.attrs[i].first);
      out->append("=");
      out->append(span.attrs[i].second);
    }
    out->append("]");
  }
  out->append("\n");
  for (const auto& child : span.children) {
    RenderText(*child, depth + 1, out);
  }
}

void RenderJson(const SpanRecord& span, JsonWriter* w) {
  w->BeginObject();
  w->Key("name").Value(span.name);
  w->Key("start_seconds").Value(span.start_seconds);
  w->Key("duration_seconds").Value(span.duration_seconds);
  if (!span.attrs.empty()) {
    w->Key("attrs").BeginObject();
    for (const auto& [k, v] : span.attrs) w->Key(k).Value(v);
    w->EndObject();
  }
  if (!span.children.empty()) {
    w->Key("children").BeginArray();
    for (const auto& child : span.children) RenderJson(*child, w);
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    trace_ = other.trace_;
    record_ = other.record_;
    other.trace_ = nullptr;
    other.record_ = nullptr;
  }
  return *this;
}

void TraceSpan::AddAttr(std::string key, std::string value) {
  if (record_ == nullptr) return;
  record_->attrs.emplace_back(std::move(key), std::move(value));
}

void TraceSpan::AddAttr(std::string key, uint64_t value) {
  AddAttr(std::move(key), std::to_string(value));
}

void TraceSpan::AddAttr(std::string key, double value) {
  AddAttr(std::move(key), FormatDouble(value));
}

void TraceSpan::End() {
  if (record_ == nullptr) return;
  trace_->Close(record_);
  trace_ = nullptr;
  record_ = nullptr;
}

namespace {

std::unique_ptr<SpanRecord> CloneSpan(const SpanRecord& span) {
  auto out = std::make_unique<SpanRecord>();
  out->name = span.name;
  out->start_seconds = span.start_seconds;
  out->duration_seconds = span.duration_seconds;
  out->open = span.open;
  out->attrs = span.attrs;
  out->children.reserve(span.children.size());
  for (const auto& child : span.children) {
    out->children.push_back(CloneSpan(*child));
  }
  return out;
}

}  // namespace

QueryTrace::QueryTrace(const QueryTrace& other)
    : start_(other.start_), root_(CloneSpan(*other.root_)) {
  open_.push_back(root_.get());
}

QueryTrace& QueryTrace::operator=(const QueryTrace& other) {
  if (this != &other) {
    start_ = other.start_;
    root_ = CloneSpan(*other.root_);
    open_.clear();
    open_.push_back(root_.get());
  }
  return *this;
}

QueryTrace::QueryTrace(std::string root_name)
    : start_(std::chrono::steady_clock::now()),
      root_(std::make_unique<SpanRecord>()) {
  root_->name = std::move(root_name);
  open_.push_back(root_.get());
}

double QueryTrace::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

TraceSpan QueryTrace::Span(std::string name) {
  auto record = std::make_unique<SpanRecord>();
  record->name = std::move(name);
  record->start_seconds = ElapsedSeconds();
  SpanRecord* raw = record.get();
  open_.back()->children.push_back(std::move(record));
  open_.push_back(raw);
  return TraceSpan(this, raw);
}

void QueryTrace::Close(SpanRecord* record) {
  // Closing a span implicitly closes any still-open descendants (LIFO).
  double now = ElapsedSeconds();
  while (!open_.empty()) {
    SpanRecord* top = open_.back();
    if (top == root_.get()) break;  // The root closes only via Finish().
    open_.pop_back();
    top->duration_seconds = now - top->start_seconds;
    top->open = false;
    if (top == record) return;
  }
}

void QueryTrace::Finish() {
  double now = ElapsedSeconds();
  while (!open_.empty()) {
    SpanRecord* top = open_.back();
    open_.pop_back();
    top->duration_seconds = now - top->start_seconds;
    top->open = false;
  }
}

std::string QueryTrace::ToText() const {
  std::string out;
  SpanRecord& root = *root_;
  // Render a still-running trace sensibly: stamp open spans at "now".
  double now = ElapsedSeconds();
  if (root.open) root.duration_seconds = now - root.start_seconds;
  RenderText(root, 0, &out);
  return out;
}

std::string QueryTrace::ToJson() const {
  double now = ElapsedSeconds();
  if (root_->open) root_->duration_seconds = now - root_->start_seconds;
  JsonWriter w;
  RenderJson(*root_, &w);
  return w.str();
}

TraceSpan MaybeSpan(QueryTrace* trace, std::string name) {
  if (trace == nullptr) return TraceSpan();
  return trace->Span(std::move(name));
}

}  // namespace obs
}  // namespace aqp
