#ifndef AQP_OBS_QUERY_LOG_H_
#define AQP_OBS_QUERY_LOG_H_

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace aqp {
namespace obs {

/// One structured record per query submission — the durable, queryable twin
/// of the per-result ExecutionProfile. Events are FLAT (no nesting) so the
/// JSONL sink stays trivially parseable by `jq`, awk, or the aqptop tailer;
/// stage durations are flattened to per-stage milliseconds. Three kinds
/// share the schema:
///   kind="query": one per submission (answered, failed, or rejected);
///   kind="audit": one per background accuracy-audit verdict (the auditor
///                 re-executed a sampled answer exactly and compared CIs);
///   kind="drift": one per DriftMonitor table verdict (a baseline/current
///                 sketch comparison, with the action the monitor took);
///   kind="watchdog": one per hung-query incident (a query the Watchdog
///                 hard-cancelled and whose admission slot it reclaimed);
///   kind="breaker": one per CircuitBreaker state transition of a
///                 (table, rung) circuit (or a quarantine verdict).
struct QueryLogEvent {
  std::string kind = "query";
  /// Wall-clock seconds since the Unix epoch at event completion.
  double unix_seconds = 0.0;
  /// 64-bit hash of the SQL text — stable across restarts, join key between
  /// query and audit records.
  uint64_t sql_fingerprint = 0;
  /// Leading `sql_prefix_chars` characters of the SQL (whole statement when
  /// it fits) — enough to recognize the query without unbounded log growth.
  std::string sql;
  uint64_t session_id = 0;
  /// "ok", "failed", or "rejected" (admission refused; nothing executed).
  std::string status;
  std::string cache_source;  // "result-cache", "synopsis-cache", or empty.
  int degradation_rung = 0;
  std::string degraded_reason;
  /// Widest relative CI half-width of the returned answer (post-inflation),
  /// and the pre-inflation width for degraded answers. 0 for exact answers.
  double estimated_error = 0.0;
  double pre_inflation_error = 0.0;
  double admission_wait_ms = 0.0;
  uint64_t queue_depth = 0;
  uint64_t memory_peak_bytes = 0;
  /// Submit-to-result wall time (admission wait included).
  double wall_ms = 0.0;
  /// Flattened stage durations (query kind; 0 when the stage did not run).
  double pilot_ms = 0.0;
  double plan_ms = 0.0;
  double final_ms = 0.0;
  bool slow = false;  // wall_ms >= the log's slow-query threshold.

  /// Synopsis context of a query-kind answer (0 when the answer did not
  /// come from a cached synopsis): the serving synopsis's latest drift
  /// score and its age at answer time.
  double synopsis_drift_score = 0.0;
  double synopsis_age_seconds = 0.0;

  /// Bounded-retry accounting of a query-kind event (0 when none).
  uint64_t retry_count = 0;
  double retry_wait_ms = 0.0;
  /// Client backoff hint attached to rejections and fast-fails, parsed from
  /// the status message's "(retry_after_ms=N)" suffix. 0 = no hint.
  int64_t retry_after_ms = 0;

  /// Breaker-kind payload (also stamped on "quarantined" query events):
  /// which (table, rung) circuit transitioned and into which state
  /// ("closed", "open", "half-open"), or "quarantined" for a poisoned
  /// fingerprint. rung -1 = not rung-specific (quarantine).
  std::string breaker_table;
  int breaker_rung = -1;
  std::string breaker_state;

  /// Audit-kind payload (0/empty on query events): which table/rung the
  /// audited answer came from, how many CI cells were checked, how many
  /// contained the exact answer, and the worst observed relative error.
  std::string audited_table;
  uint64_t audit_cells = 0;
  uint64_t audit_covered = 0;
  double observed_error = 0.0;

  /// Drift-kind payload: per-table verdict from one DriftMonitor sweep.
  std::string drift_table;
  double drift_score = 0.0;
  double drift_ks = 0.0;
  double drift_domain_churn = 0.0;
  double drift_hh_turnover = 0.0;
  double drift_moment_shift = 0.0;
  std::string drift_worst_column;
  std::string drift_action;  // "none", "flag", or "invalidate".
  double staleness_seconds = 0.0;

  /// The event as one flat JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Query-log knobs. `FromEnv` overlays the environment on a base config:
///   AQP_QUERY_LOG            sink path ("" disables the file sink)
///   AQP_QUERY_LOG_SLOW_MS    slow-query threshold in ms
///   AQP_QUERY_LOG_MAX_BYTES  sink rotation size cap in bytes
struct QueryLogOptions {
  /// In-memory ring capacity in events (most recent kept). Must be >= 1.
  size_t capacity = 1024;
  /// JSONL sink path; empty = in-memory ring only.
  std::string sink_path;
  /// Events with wall_ms at or above this are flagged slow. <= 0 disables.
  double slow_query_ms = 500.0;
  /// When the sink file exceeds this many bytes it is rotated to
  /// "<path>.1" (replacing any previous rotation) and restarted. 0 = never.
  uint64_t max_file_bytes = 64ull << 20;
  /// SQL text stored per event (prefix); the fingerprint always hashes the
  /// full statement.
  size_t sql_prefix_chars = 192;

  static QueryLogOptions FromEnv(QueryLogOptions base);
  static QueryLogOptions FromEnv() { return FromEnv(QueryLogOptions()); }
};

/// Point-in-time log counters.
struct QueryLogStats {
  uint64_t appended = 0;      // Events accepted into the ring.
  uint64_t slow = 0;          // Events flagged slow.
  uint64_t sink_written = 0;  // Events flushed to the JSONL sink.
  uint64_t sink_dropped = 0;  // Events dropped because the flusher lagged.
  uint64_t rotations = 0;     // Sink file rotations performed.
};

/// Always-on, bounded, lock-light query log: a fixed-capacity in-memory
/// ring of the most recent events plus an optional JSONL file sink drained
/// by a background flusher thread. Append() does no I/O and no JSON
/// serialization — it stamps the slow flag, copies the event into the ring,
/// and (when a sink is configured) enqueues it for the flusher — so logging
/// stays off the foreground latency path by construction. The flusher
/// queue is bounded at 4x the ring capacity; if the flusher cannot keep up
/// the OLDEST pending events are dropped and counted (`sink_dropped`)
/// rather than ever back-pressuring query threads. Thread-safe.
class QueryLog {
 public:
  explicit QueryLog(QueryLogOptions options = {});
  ~QueryLog();
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Records one event (stamps `slow`; `unix_seconds` is stamped here when
  /// the caller left it 0).
  void Append(QueryLogEvent event);

  /// The most recent `last_n` events, oldest first (0 = everything the ring
  /// holds).
  std::vector<QueryLogEvent> Snapshot(size_t last_n = 0) const;

  /// Blocks until every event appended so far is on disk (no-op without a
  /// sink). Tests and shutdown use this; production never needs to.
  void Flush();

  QueryLogStats stats() const;
  const QueryLogOptions& options() const { return options_; }

 private:
  void FlusherLoop();
  void WriteEvents(const std::vector<QueryLogEvent>& batch);
  void RotateLocked();  // Called from the flusher with file_mu_ held.

  const QueryLogOptions options_;

  mutable std::mutex mu_;
  std::vector<QueryLogEvent> ring_;  // Capacity-sized; seq_ % capacity slots.
  uint64_t seq_ = 0;                 // Events ever appended.
  uint64_t slow_ = 0;
  std::deque<QueryLogEvent> pending_;  // Awaiting the flusher.
  uint64_t sink_written_ = 0;
  uint64_t sink_dropped_ = 0;
  uint64_t rotations_ = 0;
  bool stop_ = false;
  std::condition_variable flusher_cv_;  // Wakes the flusher.
  std::condition_variable flushed_cv_;  // Wakes Flush() waiters.
  bool flusher_idle_ = true;

  std::mutex file_mu_;
  std::FILE* file_ = nullptr;
  uint64_t file_bytes_ = 0;
  std::thread flusher_;
};

}  // namespace obs
}  // namespace aqp

#endif  // AQP_OBS_QUERY_LOG_H_
