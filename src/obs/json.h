#ifndef AQP_OBS_JSON_H_
#define AQP_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace aqp {
namespace obs {

/// Minimal streaming JSON writer: objects/arrays with automatic comma
/// placement and string escaping. Used by the metrics exporters, the
/// EXPLAIN ANALYZE profile renderer, and the bench JSON emitter — no
/// third-party JSON dependency.
///
///   JsonWriter w;
///   w.BeginObject().Key("rows").Value(int64_t{42}).EndObject();
///   w.str();  // {"rows":42}
///
/// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Writes an object key; must be followed by a value or Begin*.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view s);
  JsonWriter& Value(const char* s);
  JsonWriter& Value(double v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(bool v);
  JsonWriter& Null();

  /// The JSON text written so far.
  const std::string& str() const { return out_; }

 private:
  void MaybeComma();

  std::string out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// Escapes `s` for inclusion in a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace aqp

#endif  // AQP_OBS_JSON_H_
