#include "expr/vector_eval.h"

#include <algorithm>

#include "common/check.h"
#include "common/memory_tracker.h"
#include "expr/eval.h"

namespace aqp {
namespace {

using simd::kMaskFalse;
using simd::kMaskNull;
using simd::kMaskTrue;

simd::CmpOp ToCmpOp(OpKind op) {
  switch (op) {
    case OpKind::kEq:
      return simd::CmpOp::kEq;
    case OpKind::kNe:
      return simd::CmpOp::kNe;
    case OpKind::kLt:
      return simd::CmpOp::kLt;
    case OpKind::kLe:
      return simd::CmpOp::kLe;
    case OpKind::kGt:
      return simd::CmpOp::kGt;
    default:
      return simd::CmpOp::kGe;
  }
}

// a OP b  ==  b MIRROR(OP) a — used when the literal is on the left.
OpKind MirrorOp(OpKind op) {
  switch (op) {
    case OpKind::kLt:
      return OpKind::kGt;
    case OpKind::kLe:
      return OpKind::kGe;
    case OpKind::kGt:
      return OpKind::kLt;
    case OpKind::kGe:
      return OpKind::kLe;
    default:
      return op;  // Eq/Ne are symmetric.
  }
}

bool IsComparison(OpKind op) {
  return op == OpKind::kEq || op == OpKind::kNe || op == OpKind::kLt ||
         op == OpKind::kLe || op == OpKind::kGt || op == OpKind::kGe;
}

// Three-way comparison in double space following the row engine's
// comparator: NaN pairs compare "equal".
inline bool HoldsF64(OpKind op, double x, double y) {
  switch (op) {
    case OpKind::kEq:
      return !(x < y) && !(x > y);
    case OpKind::kNe:
      return x < y || x > y;
    case OpKind::kLt:
      return x < y;
    case OpKind::kLe:
      return !(x > y);
    case OpKind::kGt:
      return x > y;
    default:
      return !(x < y);
  }
}

inline bool HoldsI64(OpKind op, int64_t x, int64_t y) {
  switch (op) {
    case OpKind::kEq:
      return x == y;
    case OpKind::kNe:
      return x != y;
    case OpKind::kLt:
      return x < y;
    case OpKind::kLe:
      return x <= y;
    case OpKind::kGt:
      return x > y;
    default:
      return x >= y;
  }
}

enum class NK : uint8_t {
  kConst,      // const_val for every row
  kBoolCol,    // bare boolean column reference
  kCmpF64,     // DOUBLE column vs numeric literal (double space)
  kCmpI64F64,  // INT64 column vs numeric literal, widened to double space
  kCmpI64,     // INT64 column vs INT64 bound in int64 space (BETWEEN rule)
  kCmpBool,    // BOOL column vs bool literal
  kStrRange,   // dictionary code in [lo, hi), optionally negated
  kStrBitmap,  // dictionary code bitmap membership (IN / LIKE)
  kInNum,      // numeric column IN sorted double set
  kCmpColCol,  // numeric column vs numeric column
  kAnd,
  kOr,
  kNot,
  kFallback,  // row-at-a-time interpreter over the span
};

}  // namespace

struct BatchPredicate::Node {
  NK kind;
  const Column* col = nullptr;
  const Column* col2 = nullptr;  // kCmpColCol right side
  simd::CmpOp cmp = simd::CmpOp::kEq;
  OpKind op = OpKind::kEq;  // kCmpColCol / kCmpBool
  double dval = 0.0;
  int64_t ival = 0;
  uint8_t const_val = kMaskFalse;
  bool neg = false;        // kStrRange: true for Ne
  bool miss_null = false;  // kStrBitmap: unmatched row is NULL (IN w/ NULL)
  uint32_t lo = 0;         // kStrRange
  uint32_t hi = 0;
  std::shared_ptr<const StringDictionary> dict;
  std::vector<uint8_t> bits;    // kStrBitmap, one byte per code
  std::vector<double> in_vals;  // kInNum sorted values (kCmpColCol unused)
  bool in_has_null = false;
  std::unique_ptr<Node> a;
  std::unique_ptr<Node> b;
  // kFallback: the subtree plus its referenced columns.
  const Expr* fexpr = nullptr;
  Schema fschema;
  std::vector<const Column*> fcols;
};

namespace {

using Node = BatchPredicate::Node;
using NodePtr = std::unique_ptr<Node>;

NodePtr MakeConst(uint8_t v) {
  auto n = std::make_unique<Node>();
  n->kind = NK::kConst;
  n->const_val = v;
  return n;
}

struct Binder {
  const std::vector<std::string>* names;
  const std::vector<const Column*>* cols;

  // Same two-pass resolution as Schema::FieldIndex: exact match first, then
  // a unique unqualified-vs-"<qualifier>.<name>" suffix match, so the batch
  // compiler binds exactly the columns the scalar evaluator would (nullptr
  // on both not-found and ambiguous).
  const Column* Find(const std::string& name) const {
    for (size_t i = 0; i < names->size(); ++i) {
      if ((*names)[i] == name) return (*cols)[i];
    }
    if (name.find('.') != std::string::npos) return nullptr;
    const std::string suffix = "." + name;
    const Column* found = nullptr;
    int matches = 0;
    for (size_t i = 0; i < names->size(); ++i) {
      const std::string& f = (*names)[i];
      if (f.size() > suffix.size() &&
          f.compare(f.size() - suffix.size(), suffix.size(), suffix) == 0) {
        found = (*cols)[i];
        ++matches;
      }
    }
    return matches == 1 ? found : nullptr;
  }
};

// Compiles a subtree the kernel set cannot express into a scalar-interpreter
// node. A constant subtree (no column references) folds at compile time so
// EvalSpan never pays for it — the fold runs the interpreter once, exactly
// as the scalar path would per row.
Result<NodePtr> MakeFallback(const Expr& expr, const Binder& binder) {
  std::vector<std::string> refs = expr.ReferencedColumns();
  if (refs.empty()) {
    Schema dummy_schema;
    dummy_schema.AddField({"__row", DataType::kInt64});
    std::vector<Column> dummy_cols;
    dummy_cols.push_back(Column::FromInt64({0}));
    AQP_ASSIGN_OR_RETURN(
        Table one_row,
        Table::Make(std::move(dummy_schema), std::move(dummy_cols)));
    AQP_ASSIGN_OR_RETURN(Column v, Eval(expr, one_row));
    if (v.type() != DataType::kBool) {
      return Status::InvalidArgument("predicate is not boolean: " +
                                     expr.ToString());
    }
    return MakeConst(v.IsNull(0) ? kMaskNull
                                 : (v.BoolAt(0) ? kMaskTrue : kMaskFalse));
  }
  auto n = std::make_unique<Node>();
  n->kind = NK::kFallback;
  n->fexpr = &expr;
  for (const std::string& name : refs) {
    const Column* col = binder.Find(name);
    if (col == nullptr) {
      return Status::InvalidArgument("unknown column: " + name);
    }
    n->fschema.AddField({name, col->type()});
    n->fcols.push_back(col);
  }
  return n;
}

// col OP literal with the binary-comparison promotion rule: numeric
// comparisons run in double space regardless of column type.
Result<NodePtr> MakeCmpColLit(const Column* col, OpKind op, const Value& lit,
                              const Expr& whole, const Binder& binder) {
  if (lit.is_null()) return MakeConst(kMaskNull);
  auto n = std::make_unique<Node>();
  if (IsNumeric(col->type()) && IsNumeric(lit.type())) {
    n->kind = col->type() == DataType::kInt64 ? NK::kCmpI64F64 : NK::kCmpF64;
    n->col = col;
    n->cmp = ToCmpOp(op);
    n->dval = lit.AsDouble();
    return n;
  }
  if (col->type() == DataType::kString && lit.is_string()) {
    auto dict = col->EnsureDictionary();
    const uint32_t ncodes = static_cast<uint32_t>(dict->num_values());
    n->kind = NK::kStrRange;
    n->col = col;
    n->dict = std::move(dict);
    switch (op) {
      case OpKind::kEq:
      case OpKind::kNe: {
        uint32_t c = 0;
        if (n->dict->CodeOf(lit.str(), &c)) {
          n->lo = c;
          n->hi = c + 1;
        } else {
          n->lo = n->hi = 0;  // empty range: nothing matches
        }
        n->neg = op == OpKind::kNe;
        break;
      }
      case OpKind::kLt:
        n->lo = 0;
        n->hi = n->dict->LowerBound(lit.str());
        break;
      case OpKind::kLe:
        n->lo = 0;
        n->hi = n->dict->UpperBound(lit.str());
        break;
      case OpKind::kGt:
        n->lo = n->dict->UpperBound(lit.str());
        n->hi = ncodes;
        break;
      default:  // kGe
        n->lo = n->dict->LowerBound(lit.str());
        n->hi = ncodes;
        break;
    }
    return n;
  }
  if (col->type() == DataType::kBool && lit.is_bool()) {
    n->kind = NK::kCmpBool;
    n->col = col;
    n->op = op;
    n->ival = lit.boolean() ? 1 : 0;
    return n;
  }
  // Type mixes the kernels don't cover (the interpreter may still reject
  // them — fallback reproduces whatever it does).
  return MakeFallback(whole, binder);
}

// One BETWEEN bound, with the BETWEEN promotion rule: the scalar evaluator
// materializes literal bounds as columns and compares via CompareSlots, so
// INT64 column vs INT64 bound compares in int64 space (unlike binary
// comparisons, which always widen to double).
NodePtr MakeBetweenBound(const Column* col, OpKind op, const Value& bound) {
  auto n = std::make_unique<Node>();
  n->col = col;
  n->cmp = ToCmpOp(op);
  if (col->type() == DataType::kInt64 && bound.is_int64()) {
    n->kind = NK::kCmpI64;
    n->ival = bound.int64();
  } else {
    n->kind = col->type() == DataType::kInt64 ? NK::kCmpI64F64 : NK::kCmpF64;
    n->dval = bound.AsDouble();
  }
  return n;
}

Result<NodePtr> CompileBool(const Expr& expr, const Binder& binder);

Result<NodePtr> CompileBinary(const Expr& expr, const Binder& binder) {
  const OpKind op = expr.op();
  if (op == OpKind::kAnd || op == OpKind::kOr) {
    auto n = std::make_unique<Node>();
    n->kind = op == OpKind::kAnd ? NK::kAnd : NK::kOr;
    AQP_ASSIGN_OR_RETURN(n->a, CompileBool(*expr.child(0), binder));
    AQP_ASSIGN_OR_RETURN(n->b, CompileBool(*expr.child(1), binder));
    return n;
  }
  if (!IsComparison(op)) return MakeFallback(expr, binder);
  const Expr& l = *expr.child(0);
  const Expr& r = *expr.child(1);
  if (l.kind() == ExprKind::kColumnRef && r.kind() == ExprKind::kLiteral) {
    const Column* col = binder.Find(l.column_name());
    if (col == nullptr) {
      return Status::InvalidArgument("unknown column: " + l.column_name());
    }
    return MakeCmpColLit(col, op, r.literal(), expr, binder);
  }
  if (l.kind() == ExprKind::kLiteral && r.kind() == ExprKind::kColumnRef) {
    const Column* col = binder.Find(r.column_name());
    if (col == nullptr) {
      return Status::InvalidArgument("unknown column: " + r.column_name());
    }
    return MakeCmpColLit(col, MirrorOp(op), l.literal(), expr, binder);
  }
  if (l.kind() == ExprKind::kColumnRef && r.kind() == ExprKind::kColumnRef) {
    const Column* lc = binder.Find(l.column_name());
    const Column* rc = binder.Find(r.column_name());
    if (lc == nullptr || rc == nullptr) {
      return Status::InvalidArgument("unknown column in comparison");
    }
    if (IsNumeric(lc->type()) && IsNumeric(rc->type())) {
      auto n = std::make_unique<Node>();
      n->kind = NK::kCmpColCol;
      n->col = lc;
      n->col2 = rc;
      n->op = op;
      return n;
    }
    return MakeFallback(expr, binder);  // string/bool column pairs
  }
  return MakeFallback(expr, binder);  // computed operands
}

Result<NodePtr> CompileIn(const Expr& expr, const Binder& binder) {
  const Expr& operand = *expr.child(0);
  if (operand.kind() != ExprKind::kColumnRef) {
    return MakeFallback(expr, binder);
  }
  const Column* col = binder.Find(operand.column_name());
  if (col == nullptr) {
    return Status::InvalidArgument("unknown column: " + operand.column_name());
  }
  bool has_null = false;
  for (const Value& v : expr.in_list()) {
    if (v.is_null()) has_null = true;
  }
  if (IsNumeric(col->type())) {
    // Numeric IN probes a sorted double set per row — the same double-space
    // equality the scalar evaluator applies to each list element.
    auto n = std::make_unique<Node>();
    n->kind = NK::kInNum;
    n->col = col;
    n->in_has_null = has_null;
    for (const Value& v : expr.in_list()) {
      if (!v.is_null()) n->in_vals.push_back(v.AsDouble());
    }
    std::sort(n->in_vals.begin(), n->in_vals.end());
    return n;
  }
  if (col->type() == DataType::kString) {
    auto n = std::make_unique<Node>();
    n->kind = NK::kStrBitmap;
    n->col = col;
    n->dict = col->EnsureDictionary();
    n->bits.assign(n->dict->num_values(), 0);
    for (const Value& v : expr.in_list()) {
      if (v.is_null()) continue;
      uint32_t c = 0;
      if (n->dict->CodeOf(v.str(), &c)) n->bits[c] = 1;
    }
    n->miss_null = has_null;
    return n;
  }
  return MakeFallback(expr, binder);  // bool IN — rare
}

Result<NodePtr> CompileBool(const Expr& expr, const Binder& binder) {
  switch (expr.kind()) {
    case ExprKind::kLiteral: {
      const Value& v = expr.literal();
      if (v.is_null()) return MakeConst(kMaskNull);
      if (v.is_bool()) {
        return MakeConst(v.boolean() ? kMaskTrue : kMaskFalse);
      }
      return MakeFallback(expr, binder);  // non-bool literal: let Eval reject
    }
    case ExprKind::kColumnRef: {
      const Column* col = binder.Find(expr.column_name());
      if (col == nullptr) {
        return Status::InvalidArgument("unknown column: " +
                                       expr.column_name());
      }
      if (col->type() != DataType::kBool) return MakeFallback(expr, binder);
      auto n = std::make_unique<Node>();
      n->kind = NK::kBoolCol;
      n->col = col;
      return n;
    }
    case ExprKind::kUnary: {
      if (expr.op() != OpKind::kNot) return MakeFallback(expr, binder);
      auto n = std::make_unique<Node>();
      n->kind = NK::kNot;
      AQP_ASSIGN_OR_RETURN(n->a, CompileBool(*expr.child(0), binder));
      return n;
    }
    case ExprKind::kBinary:
      return CompileBinary(expr, binder);
    case ExprKind::kIn:
      return CompileIn(expr, binder);
    case ExprKind::kBetween: {
      const Expr& operand = *expr.child(0);
      const Expr& low = *expr.child(1);
      const Expr& high = *expr.child(2);
      if (operand.kind() != ExprKind::kColumnRef ||
          low.kind() != ExprKind::kLiteral ||
          high.kind() != ExprKind::kLiteral) {
        return MakeFallback(expr, binder);
      }
      const Column* col = binder.Find(operand.column_name());
      if (col == nullptr) {
        return Status::InvalidArgument("unknown column: " +
                                       operand.column_name());
      }
      if (low.literal().is_null() || high.literal().is_null()) {
        return MakeConst(kMaskNull);
      }
      if (IsNumeric(col->type()) && IsNumeric(low.literal().type()) &&
          IsNumeric(high.literal().type())) {
        auto n = std::make_unique<Node>();
        n->kind = NK::kAnd;
        n->a = MakeBetweenBound(col, OpKind::kGe, low.literal());
        n->b = MakeBetweenBound(col, OpKind::kLe, high.literal());
        return n;
      }
      if (col->type() == DataType::kString && low.literal().is_string() &&
          high.literal().is_string()) {
        auto n = std::make_unique<Node>();
        n->kind = NK::kStrRange;
        n->col = col;
        n->dict = col->EnsureDictionary();
        n->lo = n->dict->LowerBound(low.literal().str());
        n->hi = n->dict->UpperBound(high.literal().str());
        return n;
      }
      return MakeFallback(expr, binder);
    }
    case ExprKind::kLike: {
      const Expr& operand = *expr.child(0);
      if (operand.kind() != ExprKind::kColumnRef) {
        return MakeFallback(expr, binder);
      }
      const Column* col = binder.Find(operand.column_name());
      if (col == nullptr) {
        return Status::InvalidArgument("unknown column: " +
                                       operand.column_name());
      }
      if (col->type() != DataType::kString) return MakeFallback(expr, binder);
      auto n = std::make_unique<Node>();
      n->kind = NK::kStrBitmap;
      n->col = col;
      n->dict = col->EnsureDictionary();
      n->bits.resize(n->dict->num_values());
      // LIKE over the distinct values only — each pattern match runs once
      // per dictionary entry instead of once per row.
      for (uint32_t c = 0; c < n->bits.size(); ++c) {
        n->bits[c] = LikeMatch(n->dict->ValueOf(c), expr.like_pattern()) ? 1 : 0;
      }
      n->miss_null = false;
      return n;
    }
    default:
      return MakeFallback(expr, binder);
  }
}

// Evaluates one node over rows [begin, begin+n) into out.
Status EvalNode(const Node& node, size_t begin, size_t n, uint8_t* out) {
  switch (node.kind) {
    case NK::kConst:
      simd::FillMask(out, n, node.const_val);
      return Status::OK();
    case NK::kBoolCol: {
      const uint8_t* v = node.col->bool_data() + begin;
      const uint8_t* valid = node.col->validity() + begin;
      if (!node.col->has_nulls()) {
        for (size_t i = 0; i < n; ++i) out[i] = v[i] ? kMaskTrue : kMaskFalse;
      } else {
        for (size_t i = 0; i < n; ++i) {
          out[i] = valid[i] ? (v[i] ? kMaskTrue : kMaskFalse) : kMaskNull;
        }
      }
      return Status::OK();
    }
    case NK::kCmpF64:
      simd::CmpMaskF64(
          node.col->double_data() + begin,
          node.col->has_nulls() ? node.col->validity() + begin : nullptr, n,
          node.dval, node.cmp, out);
      return Status::OK();
    case NK::kCmpI64F64:
      simd::CmpMaskI64AsF64(
          node.col->int64_data() + begin,
          node.col->has_nulls() ? node.col->validity() + begin : nullptr, n,
          node.dval, node.cmp, out);
      return Status::OK();
    case NK::kCmpI64:
      simd::CmpMaskI64(
          node.col->int64_data() + begin,
          node.col->has_nulls() ? node.col->validity() + begin : nullptr, n,
          node.ival, node.cmp, out);
      return Status::OK();
    case NK::kCmpBool: {
      const uint8_t* v = node.col->bool_data() + begin;
      const uint8_t* valid = node.col->validity() + begin;
      // Precompute the verdict for both possible slot values.
      const int lit = static_cast<int>(node.ival);
      const uint8_t hit0 =
          HoldsI64(node.op, 0, lit) ? kMaskTrue : kMaskFalse;
      const uint8_t hit1 =
          HoldsI64(node.op, 1, lit) ? kMaskTrue : kMaskFalse;
      for (size_t i = 0; i < n; ++i) {
        out[i] = valid[i] ? (v[i] ? hit1 : hit0) : kMaskNull;
      }
      return Status::OK();
    }
    case NK::kStrRange: {
      const uint32_t* codes = node.dict->codes().data() + begin;
      const uint32_t lo = node.lo;
      const uint32_t hi = node.hi;
      const bool neg = node.neg;
      for (size_t i = 0; i < n; ++i) {
        uint32_t c = codes[i];
        if (c == StringDictionary::kNullCode) {
          out[i] = kMaskNull;
        } else {
          bool in = lo <= c && c < hi;
          out[i] = (in != neg) ? kMaskTrue : kMaskFalse;
        }
      }
      return Status::OK();
    }
    case NK::kStrBitmap: {
      const uint32_t* codes = node.dict->codes().data() + begin;
      const uint8_t* bits = node.bits.data();
      const uint8_t miss = node.miss_null ? kMaskNull : kMaskFalse;
      for (size_t i = 0; i < n; ++i) {
        uint32_t c = codes[i];
        if (c == StringDictionary::kNullCode) {
          out[i] = kMaskNull;
        } else {
          out[i] = bits[c] ? kMaskTrue : miss;
        }
      }
      return Status::OK();
    }
    case NK::kInNum: {
      const Column& col = *node.col;
      const uint8_t* valid = col.validity() + begin;
      const std::vector<double>& vals = node.in_vals;
      const uint8_t miss = node.in_has_null ? kMaskNull : kMaskFalse;
      const bool is_int = col.type() == DataType::kInt64;
      const int64_t* xi = is_int ? col.int64_data() + begin : nullptr;
      const double* xd = is_int ? nullptr : col.double_data() + begin;
      for (size_t i = 0; i < n; ++i) {
        if (!valid[i]) {
          out[i] = kMaskNull;
          continue;
        }
        double x = is_int ? static_cast<double>(xi[i]) : xd[i];
        bool found = false;
        if (!vals.empty()) {
          auto it = std::lower_bound(vals.begin(), vals.end(), x);
          // Three-way-comparator equality: unordered (NaN) counts as equal,
          // so probe the first non-less element (or the first element, for a
          // NaN that compares less than nothing).
          if (it == vals.end()) --it;
          found = !(x < *it) && !(x > *it);
        }
        out[i] = found ? kMaskTrue : miss;
      }
      return Status::OK();
    }
    case NK::kCmpColCol: {
      const Column& a = *node.col;
      const Column& b = *node.col2;
      const uint8_t* va = a.validity() + begin;
      const uint8_t* vb = b.validity() + begin;
      const OpKind op = node.op;
      if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
        const int64_t* xa = a.int64_data() + begin;
        const int64_t* xb = b.int64_data() + begin;
        for (size_t i = 0; i < n; ++i) {
          out[i] = (va[i] && vb[i])
                       ? (HoldsI64(op, xa[i], xb[i]) ? kMaskTrue : kMaskFalse)
                       : kMaskNull;
        }
        return Status::OK();
      }
      const bool a_int = a.type() == DataType::kInt64;
      const bool b_int = b.type() == DataType::kInt64;
      const int64_t* ai = a_int ? a.int64_data() + begin : nullptr;
      const double* ad = a_int ? nullptr : a.double_data() + begin;
      const int64_t* bi = b_int ? b.int64_data() + begin : nullptr;
      const double* bd = b_int ? nullptr : b.double_data() + begin;
      for (size_t i = 0; i < n; ++i) {
        if (!va[i] || !vb[i]) {
          out[i] = kMaskNull;
          continue;
        }
        double x = a_int ? static_cast<double>(ai[i]) : ad[i];
        double y = b_int ? static_cast<double>(bi[i]) : bd[i];
        out[i] = HoldsF64(op, x, y) ? kMaskTrue : kMaskFalse;
      }
      return Status::OK();
    }
    case NK::kAnd:
    case NK::kOr: {
      AQP_RETURN_IF_ERROR(EvalNode(*node.a, begin, n, out));
      std::vector<uint8_t> tmp(n);
      AQP_RETURN_IF_ERROR(EvalNode(*node.b, begin, n, tmp.data()));
      if (node.kind == NK::kAnd) {
        simd::And3(out, tmp.data(), n);
      } else {
        simd::Or3(out, tmp.data(), n);
      }
      return Status::OK();
    }
    case NK::kNot:
      AQP_RETURN_IF_ERROR(EvalNode(*node.a, begin, n, out));
      simd::Not3(out, n);
      return Status::OK();
    case NK::kFallback: {
      std::vector<Column> cols;
      cols.reserve(node.fcols.size());
      for (const Column* c : node.fcols) cols.push_back(c->SliceBatch(begin, n));
      AQP_ASSIGN_OR_RETURN(Table span,
                           Table::Make(node.fschema, std::move(cols)));
      AQP_ASSIGN_OR_RETURN(Column mask, Eval(*node.fexpr, span));
      if (mask.type() != DataType::kBool) {
        return Status::InvalidArgument("predicate is not boolean: " +
                                       node.fexpr->ToString());
      }
      for (size_t i = 0; i < n; ++i) {
        out[i] = mask.IsNull(i) ? kMaskNull
                                : (mask.BoolAt(i) ? kMaskTrue : kMaskFalse);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable batch node kind");
}

uint64_t NodeAuxBytes(const Node& node, std::vector<const void*>* seen_dicts) {
  uint64_t bytes = node.bits.capacity() +
                   node.in_vals.capacity() * sizeof(double);
  if (node.dict != nullptr) {
    const void* p = node.dict.get();
    if (std::find(seen_dicts->begin(), seen_dicts->end(), p) ==
        seen_dicts->end()) {
      seen_dicts->push_back(p);
      bytes += node.dict->ApproxBytes();
    }
  }
  if (node.a != nullptr) bytes += NodeAuxBytes(*node.a, seen_dicts);
  if (node.b != nullptr) bytes += NodeAuxBytes(*node.b, seen_dicts);
  return bytes;
}

// Deepest set of concurrently live mask buffers: AND/OR evaluate the left
// child into the output, then the right child into one temp.
uint64_t NodeMaskDepth(const Node& node) {
  switch (node.kind) {
    case NK::kAnd:
    case NK::kOr:
      return std::max(NodeMaskDepth(*node.a), 1 + NodeMaskDepth(*node.b));
    case NK::kNot:
      return NodeMaskDepth(*node.a);
    default:
      return 1;
  }
}

bool NodeHasFallback(const Node& node) {
  if (node.kind == NK::kFallback) return true;
  if (node.a != nullptr && NodeHasFallback(*node.a)) return true;
  if (node.b != nullptr && NodeHasFallback(*node.b)) return true;
  return false;
}

}  // namespace

BatchPredicate::BatchPredicate() = default;
BatchPredicate::BatchPredicate(BatchPredicate&&) noexcept = default;
BatchPredicate& BatchPredicate::operator=(BatchPredicate&&) noexcept =
    default;
BatchPredicate::~BatchPredicate() = default;

Result<BatchPredicate> BatchPredicate::Compile(
    const Expr& expr, const std::vector<std::string>& names,
    const std::vector<const Column*>& cols) {
  AQP_CHECK(names.size() == cols.size());
  // Same up-front type check (and error) as the scalar morsel evaluator.
  Schema schema;
  for (size_t i = 0; i < names.size(); ++i) {
    schema.AddField({names[i], cols[i]->type()});
  }
  AQP_ASSIGN_OR_RETURN(DataType pred_type, expr.TypeCheck(schema));
  if (pred_type != DataType::kBool) {
    return Status::InvalidArgument("predicate is not boolean: " +
                                   expr.ToString());
  }
  Binder binder{&names, &cols};
  BatchPredicate pred;
  AQP_ASSIGN_OR_RETURN(pred.root_, CompileBool(expr, binder));
  std::vector<const void*> seen;
  pred.aux_bytes_ = NodeAuxBytes(*pred.root_, &seen);
  return pred;
}

Result<BatchPredicate> BatchPredicate::Compile(const Expr& expr,
                                               const Table& table) {
  std::vector<std::string> names;
  std::vector<const Column*> cols;
  names.reserve(table.num_columns());
  cols.reserve(table.num_columns());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    names.push_back(table.schema().field(i).name);
    cols.push_back(&table.column(i));
  }
  return Compile(expr, names, cols);
}

Status BatchPredicate::EvalSpan(size_t begin, size_t n, uint8_t* out) const {
  return EvalNode(*root_, begin, n, out);
}

uint64_t BatchPredicate::AuxBytes() const { return aux_bytes_; }

uint64_t BatchPredicate::ScratchBytesPerRow() const {
  return NodeMaskDepth(*root_);
}

bool BatchPredicate::HasFallback() const { return NodeHasFallback(*root_); }

Result<std::vector<uint32_t>> EvalPredicateBatch(
    const Expr& expr, const Table& table, size_t morsel_rows,
    size_t num_threads, ParallelRunStats* run_stats,
    const CancellationToken* cancel, MemoryTracker* memory) {
  const size_t n = table.num_rows();
  std::vector<std::string> refs = expr.ReferencedColumns();
  // Constant predicates and empty inputs take the serial scalar path, same
  // as the morsel evaluator.
  if (refs.empty() || n == 0) return EvalPredicate(expr, table);
  if (morsel_rows == 0) morsel_rows = n;
  AQP_ASSIGN_OR_RETURN(BatchPredicate pred,
                       BatchPredicate::Compile(expr, table));
  // Batch buffers are real query memory: dictionary pages and lookup tables
  // for the predicate's lifetime, plus one mask span per in-flight morsel.
  const uint64_t scratch =
      pred.ScratchBytesPerRow() *
      std::min<uint64_t>(n, morsel_rows * std::max<size_t>(num_threads, 1));
  ScopedMemoryCharge charge;
  AQP_ASSIGN_OR_RETURN(
      charge, ScopedMemoryCharge::Make(memory, pred.AuxBytes() + scratch,
                                       "predicate batch buffers"));
  const size_t num_morsels = (n + morsel_rows - 1) / morsel_rows;
  if (num_threads <= 1 || num_morsels <= 1) {
    std::vector<uint8_t> mask(std::min<size_t>(n, morsel_rows));
    std::vector<uint32_t> selected;
    for (size_t begin = 0; begin < n; begin += morsel_rows) {
      AQP_RETURN_IF_ERROR(CheckCancelled(cancel));
      const size_t len = std::min(morsel_rows, n - begin);
      AQP_RETURN_IF_ERROR(pred.EvalSpan(begin, len, mask.data()));
      simd::SelectTrue(mask.data(), len, static_cast<uint32_t>(begin),
                       &selected);
    }
    return selected;
  }
  std::vector<std::vector<uint32_t>> local(num_morsels);
  std::vector<Status> errors(num_morsels, Status::OK());
  ParallelRunStats rs = ThreadPool::Shared().ParallelFor(
      n, morsel_rows, num_threads, ThreadPool::ParallelForOptions{cancel},
      [&](size_t, size_t m, size_t begin, size_t end) {
        std::vector<uint8_t> mask(end - begin);
        Status s = pred.EvalSpan(begin, end - begin, mask.data());
        if (!s.ok()) {
          errors[m] = std::move(s);
          return;
        }
        simd::SelectTrue(mask.data(), end - begin,
                         static_cast<uint32_t>(begin), &local[m]);
      });
  AQP_RETURN_IF_ERROR(CheckCancelled(cancel));
  for (const Status& s : errors) {
    AQP_RETURN_IF_ERROR(s);
  }
  size_t total = 0;
  for (const std::vector<uint32_t>& v : local) total += v.size();
  std::vector<uint32_t> selected;
  selected.reserve(total);
  for (const std::vector<uint32_t>& v : local) {
    selected.insert(selected.end(), v.begin(), v.end());
  }
  if (run_stats != nullptr) run_stats->MergeFrom(rs);
  return selected;
}

}  // namespace aqp
