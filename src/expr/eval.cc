#include "expr/eval.h"

#include <cmath>

#include "common/check.h"

namespace aqp {
namespace {

// Three-valued boolean: 0 = false, 1 = true, 2 = null.
enum : uint8_t { kFalse = 0, kTrue = 1, kNull = 2 };

uint8_t SlotBool3(const Column& c, size_t i) {
  if (c.IsNull(i)) return kNull;
  return c.BoolAt(i) ? kTrue : kFalse;
}

void AppendBool3(Column* c, uint8_t b3) {
  if (b3 == kNull) {
    c->AppendNull();
  } else {
    c->AppendBool(b3 == kTrue);
  }
}

// Compares non-null slots with numeric promotion; -1/0/+1.
int CompareSlots(const Column& a, size_t i, const Column& b, size_t j) {
  if (IsNumeric(a.type()) && IsNumeric(b.type())) {
    if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
      int64_t x = a.Int64At(i);
      int64_t y = b.Int64At(j);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.NumericAt(i);
    double y = b.NumericAt(j);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  AQP_CHECK(a.type() == b.type()) << "incomparable slot types";
  switch (a.type()) {
    case DataType::kString:
      return a.StringAt(i).compare(b.StringAt(j)) < 0
                 ? -1
                 : (a.StringAt(i) == b.StringAt(j) ? 0 : 1);
    case DataType::kBool: {
      int x = a.BoolAt(i) ? 1 : 0;
      int y = b.BoolAt(j) ? 1 : 0;
      return x - y;
    }
    default:
      AQP_CHECK(false) << "unreachable";
      return 0;
  }
}

// Compares a non-null column slot against a non-null Value.
int CompareSlotValue(const Column& c, size_t i, const Value& v) {
  if (IsNumeric(c.type()) && IsNumeric(v.type())) {
    double x = c.NumericAt(i);
    double y = v.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  AQP_CHECK(c.type() == v.type()) << "incomparable value types";
  switch (c.type()) {
    case DataType::kString:
      return c.StringAt(i).compare(v.str()) < 0
                 ? -1
                 : (c.StringAt(i) == v.str() ? 0 : 1);
    case DataType::kBool:
      return (c.BoolAt(i) ? 1 : 0) - (v.boolean() ? 1 : 0);
    default:
      AQP_CHECK(false) << "unreachable";
      return 0;
  }
}

bool ComparisonHolds(OpKind op, int cmp) {
  switch (op) {
    case OpKind::kEq:
      return cmp == 0;
    case OpKind::kNe:
      return cmp != 0;
    case OpKind::kLt:
      return cmp < 0;
    case OpKind::kLe:
      return cmp <= 0;
    case OpKind::kGt:
      return cmp > 0;
    case OpKind::kGe:
      return cmp >= 0;
    default:
      AQP_CHECK(false) << "not a comparison";
      return false;
  }
}

Result<Column> EvalArithmetic(OpKind op, const Column& lhs, const Column& rhs,
                              DataType out_type) {
  size_t n = lhs.size();
  Column out(out_type);
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (lhs.IsNull(i) || rhs.IsNull(i)) {
      out.AppendNull();
      continue;
    }
    if (out_type == DataType::kInt64) {
      int64_t a = lhs.Int64At(i);
      int64_t b = rhs.Int64At(i);
      int64_t r = 0;
      switch (op) {
        case OpKind::kAdd:
          r = a + b;
          break;
        case OpKind::kSub:
          r = a - b;
          break;
        case OpKind::kMul:
          r = a * b;
          break;
        case OpKind::kMod:
          if (b == 0) {
            return Status::InvalidArgument("modulo by zero");
          }
          r = a % b;
          break;
        default:
          return Status::Internal("bad int arithmetic op");
      }
      out.AppendInt64(r);
    } else {
      double a = lhs.NumericAt(i);
      double b = rhs.NumericAt(i);
      double r = 0.0;
      switch (op) {
        case OpKind::kAdd:
          r = a + b;
          break;
        case OpKind::kSub:
          r = a - b;
          break;
        case OpKind::kMul:
          r = a * b;
          break;
        case OpKind::kDiv:
          if (b == 0.0) {
            out.AppendNull();  // SQL-style: division by zero yields NULL here.
            continue;
          }
          r = a / b;
          break;
        default:
          return Status::Internal("bad double arithmetic op");
      }
      out.AppendDouble(r);
    }
  }
  return out;
}

}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard matching with backtracking on the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Column> Eval(const Expr& expr, const Table& table) {
  const size_t n = table.num_rows();
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      AQP_ASSIGN_OR_RETURN(size_t idx,
                           table.schema().FieldIndex(expr.column_name()));
      return table.column(idx);
    }
    case ExprKind::kLiteral: {
      const Value& v = expr.literal();
      DataType t = v.is_null() ? DataType::kDouble : v.type();
      Column out(t);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        Status s = out.AppendValue(v);
        AQP_CHECK(s.ok());
      }
      return out;
    }
    case ExprKind::kUnary: {
      AQP_ASSIGN_OR_RETURN(Column operand, Eval(*expr.child(0), table));
      if (expr.op() == OpKind::kNeg) {
        if (!IsNumeric(operand.type())) {
          return Status::InvalidArgument("unary - on non-numeric operand");
        }
        Column out(operand.type());
        out.Reserve(n);
        for (size_t i = 0; i < n; ++i) {
          if (operand.IsNull(i)) {
            out.AppendNull();
          } else if (operand.type() == DataType::kInt64) {
            out.AppendInt64(-operand.Int64At(i));
          } else {
            out.AppendDouble(-operand.DoubleAt(i));
          }
        }
        return out;
      }
      // NOT.
      if (operand.type() != DataType::kBool) {
        return Status::InvalidArgument("NOT on non-boolean operand");
      }
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        uint8_t b = SlotBool3(operand, i);
        AppendBool3(&out, b == kNull ? kNull : (b == kTrue ? kFalse : kTrue));
      }
      return out;
    }
    case ExprKind::kBinary: {
      OpKind op = expr.op();
      AQP_ASSIGN_OR_RETURN(Column lhs, Eval(*expr.child(0), table));
      AQP_ASSIGN_OR_RETURN(Column rhs, Eval(*expr.child(1), table));
      if (op == OpKind::kAnd || op == OpKind::kOr) {
        if (lhs.type() != DataType::kBool || rhs.type() != DataType::kBool) {
          return Status::InvalidArgument("AND/OR on non-boolean operands");
        }
        Column out(DataType::kBool);
        out.Reserve(n);
        for (size_t i = 0; i < n; ++i) {
          uint8_t a = SlotBool3(lhs, i);
          uint8_t b = SlotBool3(rhs, i);
          uint8_t r;
          if (op == OpKind::kAnd) {
            r = (a == kFalse || b == kFalse)
                    ? kFalse
                    : ((a == kNull || b == kNull) ? kNull : kTrue);
          } else {
            r = (a == kTrue || b == kTrue)
                    ? kTrue
                    : ((a == kNull || b == kNull) ? kNull : kFalse);
          }
          AppendBool3(&out, r);
        }
        return out;
      }
      if (op == OpKind::kEq || op == OpKind::kNe || op == OpKind::kLt ||
          op == OpKind::kLe || op == OpKind::kGt || op == OpKind::kGe) {
        bool both_numeric = IsNumeric(lhs.type()) && IsNumeric(rhs.type());
        if (!both_numeric && lhs.type() != rhs.type()) {
          return Status::InvalidArgument("comparison type mismatch");
        }
        Column out(DataType::kBool);
        out.Reserve(n);
        for (size_t i = 0; i < n; ++i) {
          if (lhs.IsNull(i) || rhs.IsNull(i)) {
            out.AppendNull();
            continue;
          }
          out.AppendBool(ComparisonHolds(op, CompareSlots(lhs, i, rhs, i)));
        }
        return out;
      }
      // Arithmetic.
      if (!IsNumeric(lhs.type()) || !IsNumeric(rhs.type())) {
        return Status::InvalidArgument("arithmetic on non-numeric operands");
      }
      DataType out_type;
      if (op == OpKind::kDiv) {
        out_type = DataType::kDouble;
      } else if (op == OpKind::kMod) {
        if (lhs.type() != DataType::kInt64 || rhs.type() != DataType::kInt64) {
          return Status::InvalidArgument("% requires integer operands");
        }
        out_type = DataType::kInt64;
      } else {
        out_type = (lhs.type() == DataType::kDouble ||
                    rhs.type() == DataType::kDouble)
                       ? DataType::kDouble
                       : DataType::kInt64;
      }
      return EvalArithmetic(op, lhs, rhs, out_type);
    }
    case ExprKind::kIn: {
      AQP_ASSIGN_OR_RETURN(Column operand, Eval(*expr.child(0), table));
      bool list_has_null = false;
      for (const Value& v : expr.in_list()) {
        if (v.is_null()) list_has_null = true;
      }
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (operand.IsNull(i)) {
          out.AppendNull();
          continue;
        }
        bool found = false;
        for (const Value& v : expr.in_list()) {
          if (!v.is_null() && CompareSlotValue(operand, i, v) == 0) {
            found = true;
            break;
          }
        }
        if (found) {
          out.AppendBool(true);
        } else if (list_has_null) {
          out.AppendNull();  // x IN (..., NULL) is NULL when unmatched.
        } else {
          out.AppendBool(false);
        }
      }
      return out;
    }
    case ExprKind::kBetween: {
      AQP_ASSIGN_OR_RETURN(Column operand, Eval(*expr.child(0), table));
      AQP_ASSIGN_OR_RETURN(Column low, Eval(*expr.child(1), table));
      AQP_ASSIGN_OR_RETURN(Column high, Eval(*expr.child(2), table));
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (operand.IsNull(i) || low.IsNull(i) || high.IsNull(i)) {
          out.AppendNull();
          continue;
        }
        bool ge_low = CompareSlots(operand, i, low, i) >= 0;
        bool le_high = CompareSlots(operand, i, high, i) <= 0;
        out.AppendBool(ge_low && le_high);
      }
      return out;
    }
    case ExprKind::kLike: {
      AQP_ASSIGN_OR_RETURN(Column operand, Eval(*expr.child(0), table));
      if (operand.type() != DataType::kString) {
        return Status::InvalidArgument("LIKE on non-string operand");
      }
      Column out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (operand.IsNull(i)) {
          out.AppendNull();
          continue;
        }
        out.AppendBool(LikeMatch(operand.StringAt(i), expr.like_pattern()));
      }
      return out;
    }
    case ExprKind::kFunction: {
      // Type-check against the table's schema to resolve the result type
      // (also validates arity and argument types).
      AQP_ASSIGN_OR_RETURN(DataType out_type, expr.TypeCheck(table.schema()));
      std::vector<Column> args;
      for (size_t c = 0; c < expr.num_children(); ++c) {
        AQP_ASSIGN_OR_RETURN(Column col, Eval(*expr.child(c), table));
        args.push_back(std::move(col));
      }
      const std::string& fn = expr.function_name();
      Column out(out_type);
      out.Reserve(n);
      if (fn == "COALESCE") {
        for (size_t i = 0; i < n; ++i) {
          bool filled = false;
          for (const Column& arg : args) {
            if (arg.IsNull(i)) continue;
            if (out_type == DataType::kDouble && IsNumeric(arg.type())) {
              out.AppendDouble(arg.NumericAt(i));
            } else {
              AQP_RETURN_IF_ERROR(out.AppendValue(arg.GetValue(i)));
            }
            filled = true;
            break;
          }
          if (!filled) out.AppendNull();
        }
        return out;
      }
      for (size_t i = 0; i < n; ++i) {
        bool any_null = false;
        for (const Column& arg : args) any_null = any_null || arg.IsNull(i);
        if (any_null) {
          out.AppendNull();
          continue;
        }
        if (fn == "ABS") {
          if (out_type == DataType::kInt64) {
            int64_t v = args[0].Int64At(i);
            out.AppendInt64(v < 0 ? -v : v);
          } else {
            out.AppendDouble(std::fabs(args[0].DoubleAt(i)));
          }
          continue;
        }
        double x = args[0].NumericAt(i);
        if (fn == "ROUND") {
          out.AppendInt64(std::llround(x));
        } else if (fn == "FLOOR") {
          out.AppendInt64(static_cast<int64_t>(std::floor(x)));
        } else if (fn == "CEIL") {
          out.AppendInt64(static_cast<int64_t>(std::ceil(x)));
        } else if (fn == "SQRT") {
          if (x < 0.0) {
            out.AppendNull();
          } else {
            out.AppendDouble(std::sqrt(x));
          }
        } else if (fn == "LN") {
          if (x <= 0.0) {
            out.AppendNull();
          } else {
            out.AppendDouble(std::log(x));
          }
        } else if (fn == "EXP") {
          out.AppendDouble(std::exp(x));
        } else if (fn == "POWER") {
          out.AppendDouble(std::pow(x, args[1].NumericAt(i)));
        } else {
          return Status::InvalidArgument("unknown function: " + fn);
        }
      }
      return out;
    }
  }
  return Status::Internal("unreachable expr kind");
}

Result<std::vector<uint32_t>> EvalPredicate(const Expr& expr,
                                            const Table& table) {
  AQP_ASSIGN_OR_RETURN(Column mask, Eval(expr, table));
  if (mask.type() != DataType::kBool) {
    return Status::InvalidArgument("predicate is not boolean: " +
                                   expr.ToString());
  }
  std::vector<uint32_t> selected;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (!mask.IsNull(i) && mask.BoolAt(i)) {
      selected.push_back(static_cast<uint32_t>(i));
    }
  }
  return selected;
}

Result<std::vector<uint32_t>> EvalPredicateMorsel(
    const Expr& expr, const Table& table, size_t morsel_rows,
    size_t num_threads, ParallelRunStats* run_stats,
    const CancellationToken* cancel) {
  const size_t n = table.num_rows();
  if (morsel_rows == 0) morsel_rows = n == 0 ? 1 : n;
  // Each morsel slices only the columns the predicate actually reads; a
  // predicate with no column references (constant) degenerates to the serial
  // path since there is nothing to slice per morsel.
  std::vector<std::string> refs = expr.ReferencedColumns();
  if (refs.empty() || n == 0) return EvalPredicate(expr, table);
  Schema ref_schema;
  std::vector<size_t> ref_idx;
  ref_idx.reserve(refs.size());
  for (const std::string& name : refs) {
    AQP_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(name));
    ref_schema.AddField({name, table.column(idx).type()});
    ref_idx.push_back(idx);
  }
  // Type-check up front so a bad predicate fails with a clean error instead
  // of per-morsel ones.
  AQP_ASSIGN_OR_RETURN(DataType pred_type, expr.TypeCheck(ref_schema));
  if (pred_type != DataType::kBool) {
    return Status::InvalidArgument("predicate is not boolean: " +
                                   expr.ToString());
  }

  const size_t num_morsels = (n + morsel_rows - 1) / morsel_rows;
  std::vector<std::vector<uint32_t>> local(num_morsels);
  std::vector<Status> errors(num_morsels, Status::OK());
  ParallelRunStats rs = ThreadPool::Shared().ParallelFor(
      n, morsel_rows, num_threads, ThreadPool::ParallelForOptions{cancel},
      [&](size_t, size_t m, size_t begin, size_t end) {
        std::vector<Column> cols;
        cols.reserve(ref_idx.size());
        for (size_t idx : ref_idx) {
          cols.push_back(table.column(idx).Slice(begin, end - begin));
        }
        Result<Table> morsel_table =
            Table::Make(ref_schema, std::move(cols));
        if (!morsel_table.ok()) {
          errors[m] = morsel_table.status();
          return;
        }
        Result<std::vector<uint32_t>> sel =
            EvalPredicate(expr, morsel_table.value());
        if (!sel.ok()) {
          errors[m] = sel.status();
          return;
        }
        local[m].reserve(sel.value().size());
        for (uint32_t i : sel.value()) {
          local[m].push_back(static_cast<uint32_t>(begin) + i);
        }
      });
  AQP_RETURN_IF_ERROR(CheckCancelled(cancel));
  for (const Status& s : errors) {
    AQP_RETURN_IF_ERROR(s);
  }
  size_t total = 0;
  for (const std::vector<uint32_t>& v : local) total += v.size();
  std::vector<uint32_t> selected;
  selected.reserve(total);
  for (const std::vector<uint32_t>& v : local) {
    selected.insert(selected.end(), v.begin(), v.end());
  }
  if (run_stats != nullptr) run_stats->MergeFrom(rs);
  return selected;
}

}  // namespace aqp
