#ifndef AQP_EXPR_VECTOR_EVAL_H_
#define AQP_EXPR_VECTOR_EVAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/memory_tracker.h"
#include "common/result.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace aqp {

/// A boolean predicate compiled for batch evaluation over contiguous column
/// spans. Comparisons, BETWEEN, IN, LIKE, and the Kleene combinators over
/// bare column references compile to tight mask kernels (string comparisons
/// become integer range/bitmap tests over order-preserving dictionary
/// codes); any other node — arithmetic, functions, nested expressions —
/// compiles to a scalar fallback that evaluates the row-at-a-time
/// interpreter over the span, so results are bit-identical to Eval() for
/// every expression.
///
/// Compile once per (predicate, table); EvalSpan is const and thread-safe,
/// so morsel workers share one compiled predicate.
class BatchPredicate {
 public:
  /// Compiles `expr` against columns addressed by name. Fails with the same
  /// type errors the scalar evaluator reports (the predicate is type-checked
  /// up front). Builds string dictionaries and IN/LIKE lookup bitmaps
  /// eagerly; the columns must outlive the predicate and not be appended to.
  static Result<BatchPredicate> Compile(const Expr& expr,
                                        const std::vector<std::string>& names,
                                        const std::vector<const Column*>& cols);

  /// Convenience overload compiling against all columns of `table`.
  static Result<BatchPredicate> Compile(const Expr& expr, const Table& table);

  BatchPredicate(BatchPredicate&&) noexcept;
  BatchPredicate& operator=(BatchPredicate&&) noexcept;
  ~BatchPredicate();

  /// Evaluates rows [begin, begin+n) of the bound columns into `out` — one
  /// three-valued mask byte per row (simd::kMaskFalse/True/Null). Errors
  /// only from scalar-fallback nodes (e.g. modulo by zero), matching the
  /// interpreter.
  Status EvalSpan(size_t begin, size_t n, uint8_t* out) const;

  /// Bytes of auxiliary lookup structures this predicate pinned (dictionary
  /// pages, IN/LIKE bitmaps) — what a governed query charges for the
  /// predicate's lifetime.
  uint64_t AuxBytes() const;

  /// Mask scratch bytes one EvalSpan call needs per row in the span (the
  /// deepest set of concurrently live mask buffers).
  uint64_t ScratchBytesPerRow() const;

  /// True when any node fell back to the scalar interpreter. Fallback nodes
  /// evaluate every row of the span, so callers composing over a selection
  /// vector must materialize first to preserve error behavior.
  bool HasFallback() const;

  /// Opaque compiled node (defined in vector_eval.cc).
  struct Node;

 private:
  BatchPredicate();
  std::unique_ptr<Node> root_;
  uint64_t aux_bytes_ = 0;
};

/// Drop-in batch counterpart of EvalPredicateMorsel/EvalPredicate: evaluates
/// the predicate over every row of `table` and returns the TRUE row indices
/// ascending. Morsel-parallel with ordered merge, so the selection is
/// bit-identical to the scalar evaluators for every thread count and morsel
/// size. When `memory` is non-null, dictionary pages and mask scratch are
/// charged for the duration of the call; a refused charge returns
/// ResourceExhausted (the gov ladder's degradation trigger).
Result<std::vector<uint32_t>> EvalPredicateBatch(
    const Expr& expr, const Table& table, size_t morsel_rows,
    size_t num_threads, ParallelRunStats* run_stats = nullptr,
    const CancellationToken* cancel = nullptr,
    MemoryTracker* memory = nullptr);

}  // namespace aqp

#endif  // AQP_EXPR_VECTOR_EVAL_H_
