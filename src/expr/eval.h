#ifndef AQP_EXPR_EVAL_H_
#define AQP_EXPR_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace aqp {

/// Evaluates `expr` over every row of `table`, producing a column of the
/// expression's result type. SQL NULL semantics: NULL operands propagate
/// through arithmetic and comparisons; AND/OR use three-valued logic.
Result<Column> Eval(const Expr& expr, const Table& table);

/// Evaluates a boolean predicate and returns the indices of rows where it is
/// TRUE (NULL and FALSE rows are excluded, per SQL WHERE semantics).
Result<std::vector<uint32_t>> EvalPredicate(const Expr& expr,
                                            const Table& table);

/// Morsel-parallel EvalPredicate: rows are split into `morsel_rows`-sized
/// morsels evaluated on up to `num_threads` workers; each morsel slices only
/// the predicate's referenced columns. Selected indices come back in
/// ascending row order — bit-identical to the serial EvalPredicate for every
/// thread count (predicate evaluation is exact, and per-morsel results are
/// concatenated in morsel order). `run_stats`, when non-null, accumulates
/// the parallel-run counters. `cancel`, when non-null, is polled at morsel
/// boundaries; a tripped token makes the call return the token's Status
/// (Cancelled / DeadlineExceeded / ResourceExhausted) instead of a partial
/// selection.
Result<std::vector<uint32_t>> EvalPredicateMorsel(
    const Expr& expr, const Table& table, size_t morsel_rows,
    size_t num_threads, ParallelRunStats* run_stats = nullptr,
    const CancellationToken* cancel = nullptr);

/// SQL LIKE matching with % (any run) and _ (any single char) wildcards.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace aqp

#endif  // AQP_EXPR_EVAL_H_
