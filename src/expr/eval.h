#ifndef AQP_EXPR_EVAL_H_
#define AQP_EXPR_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace aqp {

/// Evaluates `expr` over every row of `table`, producing a column of the
/// expression's result type. SQL NULL semantics: NULL operands propagate
/// through arithmetic and comparisons; AND/OR use three-valued logic.
Result<Column> Eval(const Expr& expr, const Table& table);

/// Evaluates a boolean predicate and returns the indices of rows where it is
/// TRUE (NULL and FALSE rows are excluded, per SQL WHERE semantics).
Result<std::vector<uint32_t>> EvalPredicate(const Expr& expr,
                                            const Table& table);

/// SQL LIKE matching with % (any run) and _ (any single char) wildcards.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace aqp

#endif  // AQP_EXPR_EVAL_H_
