#include "expr/expr.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"

namespace aqp {
namespace {

bool IsArithmetic(OpKind op) {
  return op == OpKind::kAdd || op == OpKind::kSub || op == OpKind::kMul ||
         op == OpKind::kDiv || op == OpKind::kMod;
}

bool IsComparison(OpKind op) {
  return op == OpKind::kEq || op == OpKind::kNe || op == OpKind::kLt ||
         op == OpKind::kLe || op == OpKind::kGt || op == OpKind::kGe;
}

bool IsLogical(OpKind op) { return op == OpKind::kAnd || op == OpKind::kOr; }

// Two operand types are comparable if equal, or both numeric.
bool Comparable(DataType a, DataType b) {
  return a == b || (IsNumeric(a) && IsNumeric(b));
}

}  // namespace

std::string_view OpName(OpKind op) {
  switch (op) {
    case OpKind::kNeg:
      return "-";
    case OpKind::kNot:
      return "NOT";
    case OpKind::kAdd:
      return "+";
    case OpKind::kSub:
      return "-";
    case OpKind::kMul:
      return "*";
    case OpKind::kDiv:
      return "/";
    case OpKind::kMod:
      return "%";
    case OpKind::kEq:
      return "=";
    case OpKind::kNe:
      return "<>";
    case OpKind::kLt:
      return "<";
    case OpKind::kLe:
      return "<=";
    case OpKind::kGt:
      return ">";
    case OpKind::kGe:
      return ">=";
    case OpKind::kAnd:
      return "AND";
    case OpKind::kOr:
      return "OR";
  }
  return "?";
}

ExprPtr Expr::MakeColumnRef(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::MakeUnary(OpKind op, ExprPtr operand) {
  AQP_CHECK(op == OpKind::kNeg || op == OpKind::kNot);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->op_ = op;
  e->children_ = {std::move(operand)};
  return e;
}

ExprPtr Expr::MakeBinary(OpKind op, ExprPtr lhs, ExprPtr rhs) {
  AQP_CHECK(IsArithmetic(op) || IsComparison(op) || IsLogical(op));
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeIn(ExprPtr operand, std::vector<Value> list) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kIn;
  e->children_ = {std::move(operand)};
  e->in_list_ = std::move(list);
  return e;
}

ExprPtr Expr::MakeBetween(ExprPtr operand, ExprPtr low, ExprPtr high) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBetween;
  e->children_ = {std::move(operand), std::move(low), std::move(high)};
  return e;
}

ExprPtr Expr::MakeLike(ExprPtr operand, std::string pattern) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLike;
  e->children_ = {std::move(operand)};
  e->like_pattern_ = std::move(pattern);
  return e;
}

ExprPtr Expr::MakeFunction(std::string name, std::vector<ExprPtr> args) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kFunction;
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) {
    upper += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  e->function_name_ = std::move(upper);
  e->children_ = std::move(args);
  return e;
}

Result<DataType> Expr::TypeCheck(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kColumnRef: {
      AQP_ASSIGN_OR_RETURN(size_t idx, schema.FieldIndex(column_name_));
      return schema.field(idx).type;
    }
    case ExprKind::kLiteral:
      if (literal_.is_null()) {
        // A bare NULL literal has no intrinsic type; treat as DOUBLE, the
        // most permissive numeric carrier.
        return DataType::kDouble;
      }
      return literal_.type();
    case ExprKind::kUnary: {
      AQP_ASSIGN_OR_RETURN(DataType t, children_[0]->TypeCheck(schema));
      if (op_ == OpKind::kNeg) {
        if (!IsNumeric(t)) {
          return Status::InvalidArgument("unary - on non-numeric operand");
        }
        return t;
      }
      if (t != DataType::kBool) {
        return Status::InvalidArgument("NOT on non-boolean operand");
      }
      return DataType::kBool;
    }
    case ExprKind::kBinary: {
      AQP_ASSIGN_OR_RETURN(DataType lt, children_[0]->TypeCheck(schema));
      AQP_ASSIGN_OR_RETURN(DataType rt, children_[1]->TypeCheck(schema));
      if (IsArithmetic(op_)) {
        if (!IsNumeric(lt) || !IsNumeric(rt)) {
          return Status::InvalidArgument(
              std::string("arithmetic ") + std::string(OpName(op_)) +
              " on non-numeric operands");
        }
        if (op_ == OpKind::kMod) {
          if (lt != DataType::kInt64 || rt != DataType::kInt64) {
            return Status::InvalidArgument("% requires integer operands");
          }
          return DataType::kInt64;
        }
        if (op_ == OpKind::kDiv) return DataType::kDouble;
        return (lt == DataType::kDouble || rt == DataType::kDouble)
                   ? DataType::kDouble
                   : DataType::kInt64;
      }
      if (IsComparison(op_)) {
        if (!Comparable(lt, rt)) {
          return Status::InvalidArgument(
              "cannot compare " + std::string(DataTypeName(lt)) + " with " +
              std::string(DataTypeName(rt)));
        }
        return DataType::kBool;
      }
      // Logical.
      if (lt != DataType::kBool || rt != DataType::kBool) {
        return Status::InvalidArgument("AND/OR on non-boolean operands");
      }
      return DataType::kBool;
    }
    case ExprKind::kIn: {
      AQP_ASSIGN_OR_RETURN(DataType t, children_[0]->TypeCheck(schema));
      for (const Value& v : in_list_) {
        if (!v.is_null() && !Comparable(t, v.type())) {
          return Status::InvalidArgument("IN list type mismatch");
        }
      }
      return DataType::kBool;
    }
    case ExprKind::kBetween: {
      AQP_ASSIGN_OR_RETURN(DataType t, children_[0]->TypeCheck(schema));
      AQP_ASSIGN_OR_RETURN(DataType lo, children_[1]->TypeCheck(schema));
      AQP_ASSIGN_OR_RETURN(DataType hi, children_[2]->TypeCheck(schema));
      if (!Comparable(t, lo) || !Comparable(t, hi)) {
        return Status::InvalidArgument("BETWEEN bound type mismatch");
      }
      return DataType::kBool;
    }
    case ExprKind::kLike: {
      AQP_ASSIGN_OR_RETURN(DataType t, children_[0]->TypeCheck(schema));
      if (t != DataType::kString) {
        return Status::InvalidArgument("LIKE on non-string operand");
      }
      return DataType::kBool;
    }
    case ExprKind::kFunction: {
      std::vector<DataType> arg_types;
      for (const ExprPtr& c : children_) {
        AQP_ASSIGN_OR_RETURN(DataType t, c->TypeCheck(schema));
        arg_types.push_back(t);
      }
      const std::string& fn = function_name_;
      if (fn == "ABS" || fn == "ROUND" || fn == "FLOOR" || fn == "CEIL" ||
          fn == "SQRT" || fn == "LN" || fn == "EXP") {
        if (arg_types.size() != 1 || !IsNumeric(arg_types[0])) {
          return Status::InvalidArgument(fn + " takes one numeric argument");
        }
        if (fn == "ABS") return arg_types[0];
        if (fn == "ROUND" || fn == "FLOOR" || fn == "CEIL") {
          return DataType::kInt64;
        }
        return DataType::kDouble;
      }
      if (fn == "POWER") {
        if (arg_types.size() != 2 || !IsNumeric(arg_types[0]) ||
            !IsNumeric(arg_types[1])) {
          return Status::InvalidArgument("POWER takes two numeric arguments");
        }
        return DataType::kDouble;
      }
      if (fn == "COALESCE") {
        if (arg_types.empty()) {
          return Status::InvalidArgument("COALESCE needs arguments");
        }
        DataType t = arg_types[0];
        for (DataType other : arg_types) {
          if (other != t && !(IsNumeric(other) && IsNumeric(t))) {
            return Status::InvalidArgument("COALESCE argument type mismatch");
          }
          if (other == DataType::kDouble) t = DataType::kDouble;
        }
        return t;
      }
      return Status::InvalidArgument("unknown function: " + fn);
    }
  }
  return Status::Internal("unreachable expr kind");
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    out->push_back(column_name_);
  }
  for (const ExprPtr& c : children_) c->CollectColumns(out);
}

std::vector<std::string> Expr::ReferencedColumns() const {
  std::vector<std::string> out;
  CollectColumns(&out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return column_name_;
    case ExprKind::kLiteral:
      if (literal_.is_string()) return "'" + literal_.str() + "'";
      return literal_.ToString();
    case ExprKind::kUnary:
      if (op_ == OpKind::kNot) return "NOT (" + children_[0]->ToString() + ")";
      return "-(" + children_[0]->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + children_[0]->ToString() + " " +
             std::string(OpName(op_)) + " " + children_[1]->ToString() + ")";
    case ExprKind::kIn: {
      std::string out = children_[0]->ToString() + " IN (";
      for (size_t i = 0; i < in_list_.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_list_[i].is_string() ? "'" + in_list_[i].str() + "'"
                                       : in_list_[i].ToString();
      }
      return out + ")";
    }
    case ExprKind::kBetween:
      return children_[0]->ToString() + " BETWEEN " +
             children_[1]->ToString() + " AND " + children_[2]->ToString();
    case ExprKind::kLike:
      return children_[0]->ToString() + " LIKE '" + like_pattern_ + "'";
    case ExprKind::kFunction: {
      std::string out = function_name_ + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace aqp
