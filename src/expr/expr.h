#ifndef AQP_EXPR_EXPR_H_
#define AQP_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace aqp {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Expression node kinds.
enum class ExprKind {
  kColumnRef,
  kLiteral,
  kUnary,
  kBinary,
  kIn,
  kBetween,
  kLike,
  kFunction,
};

/// Operators for unary/binary expression nodes.
enum class OpKind {
  // Unary.
  kNeg,
  kNot,
  // Arithmetic.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  // Comparison.
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // Logical.
  kAnd,
  kOr,
};

/// Printable operator token ("+", "AND", ...).
std::string_view OpName(OpKind op);

/// Immutable expression tree node. Construct via the factory helpers below
/// (Col, Lit, Add, Eq, ...). Evaluation lives in expr/eval.h.
class Expr {
 public:
  ExprKind kind() const { return kind_; }
  OpKind op() const { return op_; }
  const std::string& column_name() const { return column_name_; }
  const Value& literal() const { return literal_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }
  size_t num_children() const { return children_.size(); }
  const std::vector<Value>& in_list() const { return in_list_; }
  const std::string& like_pattern() const { return like_pattern_; }
  const std::string& function_name() const { return function_name_; }

  /// Resolves column references and checks operand types against `schema`;
  /// returns the expression's result type.
  Result<DataType> TypeCheck(const Schema& schema) const;

  /// Column names referenced anywhere in this tree (deduplicated).
  std::vector<std::string> ReferencedColumns() const;

  /// SQL-ish rendering for diagnostics.
  std::string ToString() const;

  // --- Node constructors (prefer the free factory functions below) --------
  static ExprPtr MakeColumnRef(std::string name);
  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeUnary(OpKind op, ExprPtr operand);
  static ExprPtr MakeBinary(OpKind op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeIn(ExprPtr operand, std::vector<Value> list);
  static ExprPtr MakeBetween(ExprPtr operand, ExprPtr low, ExprPtr high);
  static ExprPtr MakeLike(ExprPtr operand, std::string pattern);
  /// Scalar function call. Supported (case-insensitive names, canonicalized
  /// to upper-case): ABS, ROUND, FLOOR, CEIL, SQRT, LN, EXP, POWER(x, y),
  /// COALESCE(a, b, ...). Arity is validated at TypeCheck/Eval time.
  static ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  OpKind op_ = OpKind::kAdd;
  std::string column_name_;
  Value literal_;
  std::vector<ExprPtr> children_;
  std::vector<Value> in_list_;
  std::string like_pattern_;
  std::string function_name_;

  void CollectColumns(std::vector<std::string>* out) const;
};

// --- Factory helpers (ergonomic tree building in tests and planners) -------

inline ExprPtr Col(std::string name) {
  return Expr::MakeColumnRef(std::move(name));
}
inline ExprPtr Lit(int64_t v) { return Expr::MakeLiteral(Value(v)); }
inline ExprPtr Lit(double v) { return Expr::MakeLiteral(Value(v)); }
inline ExprPtr Lit(const char* v) {
  return Expr::MakeLiteral(Value(std::string(v)));
}
inline ExprPtr Lit(std::string v) {
  return Expr::MakeLiteral(Value(std::move(v)));
}
inline ExprPtr Lit(bool v) { return Expr::MakeLiteral(Value(v)); }
inline ExprPtr NullLit() { return Expr::MakeLiteral(Value::Null()); }

inline ExprPtr Neg(ExprPtr e) {
  return Expr::MakeUnary(OpKind::kNeg, std::move(e));
}
inline ExprPtr Not(ExprPtr e) {
  return Expr::MakeUnary(OpKind::kNot, std::move(e));
}

inline ExprPtr Add(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kAdd, std::move(a), std::move(b));
}
inline ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kSub, std::move(a), std::move(b));
}
inline ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kMul, std::move(a), std::move(b));
}
inline ExprPtr Div(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kDiv, std::move(a), std::move(b));
}
inline ExprPtr Mod(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kMod, std::move(a), std::move(b));
}

inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kNe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kGe, std::move(a), std::move(b));
}

inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kAnd, std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(OpKind::kOr, std::move(a), std::move(b));
}

inline ExprPtr In(ExprPtr e, std::vector<Value> list) {
  return Expr::MakeIn(std::move(e), std::move(list));
}
inline ExprPtr Between(ExprPtr e, ExprPtr low, ExprPtr high) {
  return Expr::MakeBetween(std::move(e), std::move(low), std::move(high));
}
inline ExprPtr Like(ExprPtr e, std::string pattern) {
  return Expr::MakeLike(std::move(e), std::move(pattern));
}
inline ExprPtr Fn(std::string name, std::vector<ExprPtr> args) {
  return Expr::MakeFunction(std::move(name), std::move(args));
}

}  // namespace aqp

#endif  // AQP_EXPR_EXPR_H_
