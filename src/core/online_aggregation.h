#ifndef AQP_CORE_ONLINE_AGGREGATION_H_
#define AQP_CORE_ONLINE_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "common/memory_tracker.h"
#include "common/random.h"
#include "common/result.h"
#include "engine/exec_options.h"
#include "expr/expr.h"
#include "obs/profile.h"
#include "stats/confidence.h"
#include "stats/descriptive.h"
#include "storage/table.h"

namespace aqp {
namespace core {

/// Progressive snapshot after a chunk of rows has been consumed.
struct OlaProgress {
  uint64_t rows_seen = 0;
  double fraction = 0.0;  // rows_seen / table rows.
  stats::ConfidenceInterval sum_ci;
  stats::ConfidenceInterval avg_ci;
  stats::ConfidenceInterval count_ci;  // Qualifying-row count.
  bool complete = false;               // Entire table consumed: exact result.
};

/// Online aggregation (Hellerstein, Haas, Wang 1997): consume the table in a
/// random order and keep refreshing running estimates with shrinking
/// confidence intervals. The caller — or an interactive UI — may stop as
/// soon as the interval is tight enough. Intervals use the finite-population
/// correction, so they collapse to zero width at 100%.
///
/// The paper's caveat applies and is part of the contract here: intervals
/// are valid *pointwise*; stopping the first time a monitored interval looks
/// good ("peeking") consumes more than the nominal error budget.
class OnlineAggregator {
 public:
  /// Aggregates `measure` over rows of `table` matching `predicate`
  /// (nullptr = all rows). The random consumption order is fixed by `seed`.
  /// `exec` controls morsel-parallel setup and stepping; the consumption
  /// order, every estimate, and every interval are identical for every
  /// thread count (epoch semantics below).
  static Result<OnlineAggregator> Create(const Table& table, ExprPtr measure,
                                         ExprPtr predicate, uint64_t seed,
                                         ExecOptions exec = {});

  /// Consumes up to `chunk_rows` more rows and returns the refreshed
  /// estimates at the given confidence. Each Step is one epoch: the chunk is
  /// folded morsel-parallel into per-morsel partial accumulators, which
  /// merge in morsel order into the shared running accumulator once, at the
  /// epoch boundary. Estimates therefore refresh per epoch (never
  /// mid-chunk), and the CI half-width tightens monotonically in expectation
  /// as epochs consume more rows — collapsing to zero at 100% via the
  /// finite-population correction.
  OlaProgress Step(size_t chunk_rows, double confidence);

  /// Steps until the SUM interval's relative half-width drops to
  /// `target_relative_error` (or the table is exhausted).
  OlaProgress RunToTarget(double target_relative_error, double confidence,
                          size_t chunk_rows);

  bool done() const { return consumed_ >= order_.size(); }
  uint64_t rows_seen() const { return consumed_; }

  /// Snapshot of what the aggregator has done so far: setup span (measure
  /// eval + permutation), rows consumed, steps taken, and the fraction of
  /// the table it cost. Callable mid-stream — OLA's profile is progressive
  /// like its answer.
  obs::ExecutionProfile Profile() const;

 private:
  OnlineAggregator() = default;

  std::vector<uint32_t> order_;       // Random permutation of row indices.
  std::vector<double> values_;        // Measure per row (NaN if null).
  std::vector<uint8_t> qualifies_;    // Predicate mask per row.
  size_t consumed_ = 0;
  uint64_t population_ = 0;
  stats::Accumulator acc_;            // Over qualifying, non-null measures.
  uint64_t qualifying_seen_ = 0;
  uint64_t steps_ = 0;
  ExecOptions exec_;
  // Budget charge for order_/values_/qualifies_; released on destruction.
  ScopedMemoryCharge memory_charge_;
  obs::ExecutionProfile profile_;
};

}  // namespace core
}  // namespace aqp

#endif  // AQP_CORE_ONLINE_AGGREGATION_H_
