#include "core/missing_groups.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/bounds.h"

namespace aqp {
namespace core {

double BlockGroupMissProbability(uint64_t group_size, uint32_t block_size,
                                 double rate) {
  AQP_CHECK(block_size > 0);
  AQP_CHECK(rate >= 0.0 && rate <= 1.0);
  if (group_size == 0) return 1.0;
  uint64_t blocks = (group_size + block_size - 1) / block_size;
  return std::pow(1.0 - rate, static_cast<double>(blocks));
}

double BlockRateForGroupCoverage(uint64_t group_size, uint32_t block_size,
                                 double delta) {
  AQP_CHECK(block_size > 0);
  AQP_CHECK(group_size > 0);
  uint64_t blocks = (group_size + block_size - 1) / block_size;
  return stats::RateForGroupCoverage(blocks, delta);
}

double ExpectedMissedGroups(const std::vector<uint64_t>& group_sizes,
                            double rate) {
  double expected = 0.0;
  for (uint64_t m : group_sizes) {
    expected += stats::GroupMissProbability(m, rate);
  }
  return expected;
}

}  // namespace core
}  // namespace aqp
