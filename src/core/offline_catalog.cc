#include "core/offline_catalog.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/random.h"
#include "sampling/reservoir.h"
#include "sampling/stratified.h"

namespace aqp {
namespace core {

uint64_t StoredSample::ApproxBytes() const {
  uint64_t bytes = sample.table.ApproxBytes();
  bytes += sample.weights.capacity() * sizeof(double);
  bytes += sample.unit_ids.capacity() * sizeof(uint32_t);
  bytes += sample.unit_sizes.capacity() * sizeof(double);
  bytes += base_table.size() + strata_column.size() + sizeof(StoredSample);
  return bytes;
}

Result<StoredSample> BuildUniformStoredSample(const Catalog& catalog,
                                              const std::string& table,
                                              uint64_t budget, uint64_t seed) {
  AQP_ASSIGN_OR_RETURN(std::shared_ptr<const Table> base, catalog.Get(table));
  AQP_ASSIGN_OR_RETURN(Sample sample, ReservoirSample(*base, budget, seed));
  StoredSample stored;
  stored.base_table = table;
  stored.budget = budget;
  stored.base_rows_at_build = base->num_rows();
  stored.sample = std::move(sample);
  return stored;
}

Result<StoredSample> BuildStratifiedStoredSample(
    const Catalog& catalog, const std::string& table,
    const std::string& strata_column, uint64_t budget, uint64_t seed) {
  if (strata_column.empty()) {
    return Status::InvalidArgument("strata column must be named");
  }
  AQP_ASSIGN_OR_RETURN(std::shared_ptr<const Table> base, catalog.Get(table));
  AQP_ASSIGN_OR_RETURN(
      StratifiedSampleResult result,
      StratifiedSample(*base, strata_column, budget, Allocation::kEqual,
                       seed));
  StoredSample stored;
  stored.base_table = table;
  stored.strata_column = strata_column;
  stored.budget = budget;
  stored.base_rows_at_build = base->num_rows();
  stored.sample = std::move(result.sample);
  return stored;
}

Status SampleCatalog::BuildUniform(const Catalog& catalog,
                                   const std::string& table, uint64_t budget,
                                   uint64_t seed) {
  AQP_ASSIGN_OR_RETURN(StoredSample stored,
                       BuildUniformStoredSample(catalog, table, budget, seed));
  maintenance_rows_ += stored.base_rows_at_build;  // Building scans the table.
  samples_[Key(table, "")] =
      std::make_shared<const StoredSample>(std::move(stored));
  return Status::OK();
}

Status SampleCatalog::BuildStratified(const Catalog& catalog,
                                      const std::string& table,
                                      const std::string& strata_column,
                                      uint64_t budget, uint64_t seed) {
  AQP_ASSIGN_OR_RETURN(StoredSample stored,
                       BuildStratifiedStoredSample(catalog, table,
                                                   strata_column, budget,
                                                   seed));
  maintenance_rows_ += stored.base_rows_at_build;
  samples_[Key(table, strata_column)] =
      std::make_shared<const StoredSample>(std::move(stored));
  return Status::OK();
}

Status SampleCatalog::Adopt(std::shared_ptr<const StoredSample> sample) {
  if (sample == nullptr) {
    return Status::InvalidArgument("cannot adopt a null sample");
  }
  std::string key = Key(sample->base_table, sample->strata_column);
  samples_[key] = std::move(sample);
  return Status::OK();
}

Result<const StoredSample*> SampleCatalog::Find(
    const std::string& table, const std::string& strata_column) const {
  auto it = samples_.find(Key(table, strata_column));
  if (it == samples_.end()) {
    return Status::NotFound("no sample for " + table +
                            (strata_column.empty()
                                 ? " (uniform)"
                                 : " stratified on " + strata_column));
  }
  return it->second.get();
}

Result<const StoredSample*> SampleCatalog::FindBest(
    const std::string& table, const std::string& preferred_column) const {
  if (!preferred_column.empty()) {
    Result<const StoredSample*> stratified = Find(table, preferred_column);
    if (stratified.ok()) return stratified;
  }
  return Find(table, "");
}

Status SampleCatalog::OnAppend(const Catalog& catalog,
                               const std::string& table, const Table& appended,
                               uint64_t seed) {
  for (auto& [key, stored_ptr] : samples_) {
    if (stored_ptr->base_table != table) continue;
    bool can_increment =
        policy_ == MaintenancePolicy::kIncremental &&
        stored_ptr->strata_column.empty();
    if (!can_increment) {
      // Full rebuild against the (already updated) base table.
      if (stored_ptr->strata_column.empty()) {
        AQP_RETURN_IF_ERROR(
            BuildUniform(catalog, table, stored_ptr->budget,
                         seed + (next_stream_++)));
      } else {
        AQP_RETURN_IF_ERROR(BuildStratified(catalog, table,
                                            stored_ptr->strata_column,
                                            stored_ptr->budget,
                                            seed + (next_stream_++)));
      }
      continue;
    }
    // Incremental reservoir continuation: each appended row (global ordinal
    // N_old + j) replaces a uniform slot with probability k / ordinal. The
    // update runs on a private copy and swaps in at the end, so any
    // cache-shared reader of the old sample stays consistent.
    StoredSample updated = *stored_ptr;
    Pcg32 rng(seed + (next_stream_++));
    Sample& sample = updated.sample;
    uint64_t seen = updated.base_rows_at_build;
    const uint64_t k = sample.table.num_rows();
    for (size_t j = 0; j < appended.num_rows(); ++j) {
      ++seen;
      if (k == 0) break;
      if (rng.NextDouble() <
          static_cast<double>(k) / static_cast<double>(seen)) {
        uint64_t slot = rng.UniformUint64(k);
        // Replace row `slot` by building a patched table (columnar storage
        // has no in-place row write; k is small so this is acceptable).
        std::vector<uint32_t> keep;
        keep.reserve(k);
        for (uint32_t i = 0; i < k; ++i) {
          if (i != slot) keep.push_back(i);
        }
        Table patched = sample.table.Take(keep);
        patched.AppendRowFrom(appended, j);
        sample.table = std::move(patched);
      }
    }
    updated.base_rows_at_build = seen;
    // Refresh design metadata: weights are N/k for all rows.
    double weight = k == 0 ? 1.0
                           : static_cast<double>(seen) /
                                 static_cast<double>(k);
    sample.weights.assign(sample.table.num_rows(), weight);
    sample.unit_ids.resize(sample.table.num_rows());
    for (size_t i = 0; i < sample.unit_ids.size(); ++i) {
      sample.unit_ids[i] = static_cast<uint32_t>(i);
    }
    sample.num_units_sampled = sample.table.num_rows();
    sample.num_units_population = seen;
    sample.population_rows = seen;
    sample.nominal_rate =
        seen == 0 ? 1.0
                  : static_cast<double>(k) / static_cast<double>(seen);
    maintenance_rows_ += appended.num_rows();  // Only the delta is scanned.
    stored_ptr = std::make_shared<const StoredSample>(std::move(updated));
  }
  return Status::OK();
}

uint64_t SampleCatalog::storage_rows() const {
  uint64_t total = 0;
  for (const auto& [key, stored] : samples_) {
    total += stored->sample.table.num_rows();
  }
  return total;
}

std::string SampleCatalog::ChooseStratificationColumn(
    const std::vector<workload::QuerySpec>& workload) {
  std::unordered_map<std::string, int> frequency;
  for (const workload::QuerySpec& q : workload) {
    if (!q.group_by_column.empty()) frequency[q.group_by_column]++;
  }
  std::string best;
  int best_count = 0;
  for (const auto& [column, count] : frequency) {
    if (count > best_count || (count == best_count && column < best)) {
      best = column;
      best_count = count;
    }
  }
  return best;
}

}  // namespace core
}  // namespace aqp
