#ifndef AQP_CORE_CONTRACT_H_
#define AQP_CORE_CONTRACT_H_

#include <cstddef>

#include "sql/ast.h"

namespace aqp {
namespace core {

/// Per-estimate requirement derived from a user contract by splitting the
/// joint guarantee across all returned estimates.
struct PerEstimateTarget {
  double relative_error = 0.0;
  double confidence = 0.0;
};

/// Splits a joint contract over `num_estimates` simultaneous estimates using
/// Boole's inequality: if each estimate individually fails with probability
/// at most (1 - confidence) / m, the union of failures has probability at
/// most 1 - confidence. Conservative but assumption-free.
PerEstimateTarget AllocateContract(const sql::ErrorSpec& spec,
                                   size_t num_estimates);

/// Splits a relative-error budget across the `num_factors` simple aggregates
/// inside one composite expression (product/quotient/sum of aggregates):
/// by the error-propagation rules, rel_err(composite) <= sum of factor
/// rel_errs (to first order), so each factor gets an equal share.
double AllocateCompositeError(double relative_error, size_t num_factors);

/// True if every aggregate in the query is linearly estimable (SUM / COUNT /
/// AVG) — the class a sampling-based contract can cover. MIN/MAX/COUNT
/// DISTINCT/VAR force exact execution (or sketches, outside the contract
/// path); this is the paper's central "no silver bullet" boundary.
bool ContractCoversAggregates(const std::vector<AggKind>& kinds);

}  // namespace core
}  // namespace aqp

#endif  // AQP_CORE_CONTRACT_H_
