#include "core/rewriter.h"

#include <functional>

#include "common/check.h"
#include "obs/metrics.h"

namespace aqp {
namespace core {
namespace {

// Rebuilds `plan` with each scan transformed by `fn(table_name, spec)`.
PlanPtr MapScans(const PlanPtr& plan,
                 const std::function<SampleSpec(const std::string&,
                                                const SampleSpec&)>& fn) {
  switch (plan->kind()) {
    case PlanKind::kScan:
      return PlanNode::Scan(plan->table_name(),
                            fn(plan->table_name(), plan->sample()));
    case PlanKind::kFilter:
      return PlanNode::Filter(MapScans(plan->child(), fn), plan->predicate());
    case PlanKind::kProject:
      return PlanNode::Project(MapScans(plan->child(), fn), plan->exprs(),
                               plan->names());
    case PlanKind::kJoin:
      return PlanNode::Join(MapScans(plan->child(0), fn),
                            MapScans(plan->child(1), fn), plan->join_type(),
                            plan->left_keys(), plan->right_keys());
    case PlanKind::kAggregate:
      return PlanNode::Aggregate(MapScans(plan->child(), fn),
                                 plan->group_exprs(), plan->group_names(),
                                 plan->aggs());
    case PlanKind::kSort:
      return PlanNode::Sort(MapScans(plan->child(), fn), plan->sort_keys());
    case PlanKind::kLimit:
      return PlanNode::Limit(MapScans(plan->child(), fn), plan->limit());
    case PlanKind::kUnionAll: {
      std::vector<PlanPtr> children;
      for (size_t i = 0; i < plan->num_children(); ++i) {
        children.push_back(MapScans(plan->child(i), fn));
      }
      return PlanNode::UnionAll(std::move(children));
    }
  }
  AQP_CHECK(false) << "unreachable plan kind";
  return nullptr;
}

void Walk(const PlanPtr& plan,
          const std::function<void(const PlanNode&)>& visit) {
  visit(*plan);
  for (size_t i = 0; i < plan->num_children(); ++i) {
    Walk(plan->child(i), visit);
  }
}

}  // namespace

Result<PlanPtr> InjectSample(const PlanPtr& plan,
                             const std::string& table_name,
                             const SampleSpec& spec) {
  if (obs::Enabled()) {
    static obs::Counter* injects = obs::MetricsRegistry::Global().GetCounter(
        "aqp_rewrites_sampler_injected_total");
    injects->Increment();
  }
  bool found = false;
  PlanPtr out = MapScans(
      plan, [&](const std::string& name, const SampleSpec& old) {
        if (name == table_name) {
          found = true;
          return spec;
        }
        return old;
      });
  if (!found) {
    return Status::NotFound("plan never scans table " + table_name);
  }
  return out;
}

PlanPtr StripSamples(const PlanPtr& plan) {
  if (obs::Enabled()) {
    static obs::Counter* strips = obs::MetricsRegistry::Global().GetCounter(
        "aqp_rewrites_sampler_stripped_total");
    strips->Increment();
  }
  return MapScans(plan, [](const std::string&, const SampleSpec&) {
    return SampleSpec{};
  });
}

std::vector<std::string> ScannedTables(const PlanPtr& plan) {
  std::vector<std::string> names;
  Walk(plan, [&](const PlanNode& node) {
    if (node.kind() == PlanKind::kScan) names.push_back(node.table_name());
  });
  return names;
}

double SampleScaleFactor(const PlanPtr& plan) {
  double scale = 1.0;
  Walk(plan, [&](const PlanNode& node) {
    if (node.kind() == PlanKind::kScan && node.sample().is_sampled()) {
      scale /= node.sample().rate;
    }
  });
  return scale;
}

}  // namespace core
}  // namespace aqp
