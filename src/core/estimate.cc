#include "core/estimate.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "expr/eval.h"

namespace aqp {
namespace core {
namespace {

// Accumulated totals of one (group, unit) cell for one aggregate.
struct Cell {
  double y = 0.0;  // Sum of the measure over the cell's rows.
  double c = 0.0;  // Count of non-null qualifying rows (COUNT semantics).
  double w = 0.0;  // The unit's HT weight (constant within a unit).
};

uint64_t CellKey(uint32_t group, uint32_t unit) {
  return (static_cast<uint64_t>(group) << 32) | unit;
}

}  // namespace

Result<GroupedEstimates> EstimateGroupedAggregates(
    const Sample& sample, const std::vector<ExprPtr>& group_exprs,
    const std::vector<AggSpec>& aggs) {
  for (const AggSpec& spec : aggs) {
    if (!IsLinearAgg(spec.kind)) {
      return Status::InvalidArgument(
          std::string("non-linear aggregate not estimable from samples: ") +
          std::string(AggKindName(spec.kind)));
    }
  }
  const Table& t = sample.table;
  const size_t n = t.num_rows();
  AQP_CHECK(sample.weights.size() == n);
  AQP_CHECK(sample.unit_ids.size() == n);

  AQP_ASSIGN_OR_RETURN(GroupIndex index, BuildGroupIndex(t, group_exprs));

  GroupedEstimates out;
  out.num_groups = group_exprs.empty() ? 1 : index.num_groups;
  // Materialize group keys table.
  {
    Schema key_schema;
    std::vector<Column> key_cols;
    for (size_t g = 0; g < group_exprs.size(); ++g) {
      key_schema.AddField({"key_" + std::to_string(g),
                           index.key_columns[g].type()});
      key_cols.push_back(index.key_columns[g]);
    }
    AQP_ASSIGN_OR_RETURN(out.group_keys,
                         Table::Make(std::move(key_schema),
                                     std::move(key_cols)));
  }

  // Evaluate aggregate arguments once.
  std::vector<Column> arg_cols;
  for (const AggSpec& spec : aggs) {
    if (spec.kind == AggKind::kCountStar || spec.arg == nullptr) {
      arg_cols.emplace_back(DataType::kDouble);  // Placeholder.
      continue;
    }
    AQP_ASSIGN_OR_RETURN(Column c, Eval(*spec.arg, t));
    if (!IsNumeric(c.type())) {
      return Status::InvalidArgument("aggregate argument must be numeric");
    }
    arg_cols.push_back(std::move(c));
  }

  // Accumulate (group, unit) cells per aggregate.
  std::vector<std::unordered_map<uint64_t, Cell>> cells(aggs.size());
  for (auto& m : cells) m.reserve(n / 4 + 8);
  for (size_t i = 0; i < n; ++i) {
    uint32_t g = index.group_ids[i];
    uint32_t u = sample.unit_ids[i];
    double w = sample.weights[i];
    for (size_t a = 0; a < aggs.size(); ++a) {
      const AggSpec& spec = aggs[a];
      Cell& cell = cells[a][CellKey(g, u)];
      cell.w = w;
      if (spec.kind == AggKind::kCountStar) {
        cell.c += 1.0;
        continue;
      }
      const Column& arg = arg_cols[a];
      if (spec.kind == AggKind::kCount) {
        if (!arg.IsNull(i)) cell.c += 1.0;
        continue;
      }
      // SUM / AVG.
      if (!arg.IsNull(i)) {
        cell.y += arg.NumericAt(i);
        cell.c += 1.0;
      }
    }
  }

  // Equal-probability designs (Bernoulli row/block, reservoir) admit the
  // mean-expansion estimator T = M * mean_u(y_u), whose variance is driven
  // by per-unit DISPERSION rather than raw unit totals — dramatically
  // tighter than Horvitz–Thompson for SUM/COUNT because the random sample
  // size cancels. Unequal-weight designs fall back to the HT-Poisson law.
  bool equal_weights = true;
  for (size_t i = 1; i < n; ++i) {
    if (std::fabs(sample.weights[i] - sample.weights[0]) >
        1e-9 * std::fabs(sample.weights[0])) {
      equal_weights = false;
      break;
    }
  }
  const uint64_t m_units = sample.num_units_sampled;
  const double big_m = static_cast<double>(sample.num_units_population);
  const bool mean_expansion = equal_weights && m_units >= 2 &&
                              sample.num_units_population >= m_units &&
                              sample.num_units_population > 0;
  // Ratio-to-size refinement: when per-unit base sizes are known, totals are
  // estimated as N * (sum y / sum n) — exact for COUNT(*) and immune to
  // ragged block sizes.
  const bool ratio_to_size = mean_expansion &&
                             sample.unit_sizes.size() == m_units &&
                             sample.population_rows > 0;
  double sum_n = 0.0;
  double sum_n2 = 0.0;
  if (ratio_to_size) {
    for (double nu : sample.unit_sizes) {
      sum_n += nu;
      sum_n2 += nu * nu;
    }
  }

  out.estimates.assign(aggs.size(),
                       std::vector<PointEstimate>(out.num_groups));
  for (size_t a = 0; a < aggs.size(); ++a) {
    const AggSpec& spec = aggs[a];
    // Per-group sums over *present* cells; units absent from a group
    // contribute zero and are accounted for analytically.
    std::vector<double> sum_y(out.num_groups, 0.0);
    std::vector<double> sum_y2(out.num_groups, 0.0);
    std::vector<double> sum_c(out.num_groups, 0.0);
    std::vector<double> sum_c2(out.num_groups, 0.0);
    std::vector<double> t_y(out.num_groups, 0.0);   // HT totals.
    std::vector<double> t_c(out.num_groups, 0.0);
    std::vector<uint64_t> present(out.num_groups, 0);
    std::vector<double> ht_var(out.num_groups, 0.0);
    for (const auto& [key, cell] : cells[a]) {
      uint32_t g = static_cast<uint32_t>(key >> 32);
      sum_y[g] += cell.y;
      sum_y2[g] += cell.y * cell.y;
      sum_c[g] += cell.c;
      sum_c2[g] += cell.c * cell.c;
      t_y[g] += cell.w * cell.y;
      t_c[g] += cell.w * cell.c;
      present[g]++;
    }
    // Residual sums for the AVG ratio (needs the ratio first, hence second
    // pass).
    std::vector<double> sum_d(out.num_groups, 0.0);
    std::vector<double> sum_d2(out.num_groups, 0.0);
    if (spec.kind == AggKind::kAvg) {
      for (const auto& [key, cell] : cells[a]) {
        uint32_t g = static_cast<uint32_t>(key >> 32);
        double ratio = sum_c[g] != 0.0 ? sum_y[g] / sum_c[g] : 0.0;
        double d = cell.y - ratio * cell.c;
        sum_d[g] += d;
        sum_d2[g] += d * d;
      }
    }
    // Residual sums for ratio-to-size totals (present cells; absent cells'
    // contribution R^2 * n^2 is added analytically at reduce time).
    std::vector<double> res_y(out.num_groups, 0.0);
    std::vector<double> res_c(out.num_groups, 0.0);
    std::vector<double> n2_present(out.num_groups, 0.0);
    if (ratio_to_size) {
      for (const auto& [key, cell] : cells[a]) {
        uint32_t g = static_cast<uint32_t>(key >> 32);
        uint32_t u = static_cast<uint32_t>(key & 0xffffffffu);
        double nu = sample.unit_sizes[u];
        double ry = sum_n > 0.0 ? sum_y[g] / sum_n : 0.0;
        double rc = sum_n > 0.0 ? sum_c[g] / sum_n : 0.0;
        double ey = cell.y - ry * nu;
        double ec = cell.c - rc * nu;
        res_y[g] += ey * ey;
        res_c[g] += ec * ec;
        n2_present[g] += nu * nu;
      }
    }
    if (!mean_expansion) {
      // HT-Poisson variance: sum of w(w-1) v^2 over present cells.
      bool is_avg = spec.kind == AggKind::kAvg;
      for (const auto& [key, cell] : cells[a]) {
        uint32_t g = static_cast<uint32_t>(key >> 32);
        double v;
        if (is_avg) {
          double ratio = t_c[g] != 0.0 ? t_y[g] / t_c[g] : 0.0;
          double d = cell.y - ratio * cell.c;
          v = d * d;
        } else if (spec.kind == AggKind::kSum) {
          v = cell.y * cell.y;
        } else {
          v = cell.c * cell.c;
        }
        ht_var[g] += cell.w * std::max(cell.w - 1.0, 0.0) * v;
      }
    }

    for (size_t g = 0; g < out.num_groups; ++g) {
      PointEstimate& pe = out.estimates[a][g];
      if (mean_expansion) {
        const double m = static_cast<double>(m_units);
        const double fpc = 1.0 - m / big_m;
        pe.df = m_units - 1;
        // Sample variance over all m units, absent units counting as zero:
        // sum of squares over present cells already equals the full sum.
        auto unit_variance = [&](double sum, double sum_sq) {
          double mean = sum / m;
          double ss = sum_sq - m * mean * mean;
          return std::max(ss, 0.0) / (m - 1.0);
        };
        // Ratio-to-size total: N * (sum v / sum n) with residual variance
        // e_u = v_u - R n_u (mean of e is exactly zero).
        auto ratio_total = [&](double sum_v, double res_sq_present,
                               double n2_present, PointEstimate* est) {
          double ratio = sum_n > 0.0 ? sum_v / sum_n : 0.0;
          double big_nrows = static_cast<double>(sample.population_rows);
          est->estimate = big_nrows * ratio;
          double res_sq =
              res_sq_present + ratio * ratio * std::max(sum_n2 - n2_present,
                                                        0.0);
          double s_e2 = res_sq / (m - 1.0);
          double n_bar = sum_n / m;
          est->variance = n_bar > 0.0
                              ? big_nrows * big_nrows * fpc * s_e2 /
                                    (m * n_bar * n_bar)
                              : 0.0;
        };
        switch (spec.kind) {
          case AggKind::kSum: {
            if (ratio_to_size) {
              ratio_total(sum_y[g], res_y[g], n2_present[g], &pe);
              break;
            }
            double mean = sum_y[g] / m;
            pe.estimate = big_m * mean;
            pe.variance =
                big_m * big_m * fpc * unit_variance(sum_y[g], sum_y2[g]) / m;
            break;
          }
          case AggKind::kCount:
          case AggKind::kCountStar: {
            if (ratio_to_size) {
              ratio_total(sum_c[g], res_c[g], n2_present[g], &pe);
              break;
            }
            double mean = sum_c[g] / m;
            pe.estimate = big_m * mean;
            pe.variance =
                big_m * big_m * fpc * unit_variance(sum_c[g], sum_c2[g]) / m;
            break;
          }
          case AggKind::kAvg: {
            if (sum_c[g] == 0.0) {
              pe.estimate = 0.0;
              pe.variance = 0.0;
              break;
            }
            pe.estimate = sum_y[g] / sum_c[g];
            double c_bar = sum_c[g] / m;
            double s_d2 = unit_variance(sum_d[g], sum_d2[g]);
            pe.variance = fpc * s_d2 / (m * c_bar * c_bar);
            break;
          }
          default:
            return Status::Internal("unreachable agg kind");
        }
      } else {
        pe.df = present[g] > 0 ? present[g] - 1 : 0;
        switch (spec.kind) {
          case AggKind::kSum:
            pe.estimate = t_y[g];
            pe.variance = ht_var[g];
            break;
          case AggKind::kCount:
          case AggKind::kCountStar:
            pe.estimate = t_c[g];
            pe.variance = ht_var[g];
            break;
          case AggKind::kAvg:
            if (t_c[g] == 0.0) {
              pe.estimate = 0.0;
              pe.variance = 0.0;
            } else {
              pe.estimate = t_y[g] / t_c[g];
              pe.variance = ht_var[g] / (t_c[g] * t_c[g]);
            }
            break;
          default:
            return Status::Internal("unreachable agg kind");
        }
      }
    }
  }
  return out;
}

}  // namespace core
}  // namespace aqp
