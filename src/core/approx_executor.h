#ifndef AQP_CORE_APPROX_EXECUTOR_H_
#define AQP_CORE_APPROX_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/sample_planner.h"
#include "engine/catalog.h"
#include "engine/executor.h"
#include "obs/profile.h"
#include "sql/binder.h"
#include "stats/confidence.h"

namespace aqp {
namespace core {

/// Knobs of the approximate executor.
struct AqpOptions {
  /// Pilot-stage sampling rate (raised automatically for GROUP BY queries to
  /// keep groups of at least `min_group_rows` covered w.p. 1 - 0.05).
  double pilot_rate = 0.01;
  uint64_t min_group_rows = 100;

  /// Sampling method for both stages. Block sampling is the default: it is
  /// what actually skips I/O; the executor's estimators stay valid because
  /// they aggregate per block (unit).
  SampleSpec::Method method = SampleSpec::Method::kSystemBlock;
  uint32_t block_size = kDefaultBlockSize;

  /// Plans above this rate fall back to exact execution (sampling overhead
  /// no longer pays for itself).
  double max_rate = 0.1;
  /// Tables smaller than this are never sampled.
  uint64_t min_table_rows = 5000;
  /// Inflation on the planned rate to absorb pilot noise.
  double safety_factor = 2.0;
  /// Both stages must be expected to draw at least this many sampling units
  /// (blocks for block sampling, rows for row sampling).
  uint64_t min_units = 30;

  uint64_t seed = 42;

  /// Morsel-parallel execution knobs forwarded to the engine and the
  /// samplers for every stage (pilot, final, exact fallback). The default
  /// resolves to all hardware threads; set `exec.num_threads = 1` for
  /// strictly serial execution. Results never depend on the thread count.
  ExecOptions exec;
};

/// Result of an approximate execution. `table` always has the exact query's
/// output shape; when `approximated` is false it IS the exact answer and
/// `fallback_reason` says why sampling was declined.
struct ApproxResult {
  Table table;
  bool approximated = false;
  std::string fallback_reason;

  double final_rate = 1.0;
  std::string sampled_table;

  /// cis[row][item]: confidence interval of each output cell at the
  /// contract's (allocated) confidence; zero-width for group-key items.
  std::vector<std::vector<stats::ConfidenceInterval>> cis;

  /// Latency decomposition (seconds).
  double pilot_seconds = 0.0;
  double planning_seconds = 0.0;
  double final_seconds = 0.0;

  ExecStats exec_stats;

  /// What the executor actually did: sampling design, rates, per-stage span
  /// timings, contract requested vs. achieved. Render with
  /// `profile.ToText()` (EXPLAIN ANALYZE tree) or `profile.ToJson()`.
  /// Span collection is gated on the global observability flag
  /// (`obs::MetricsRegistry::Global().set_enabled(...)` / env `AQP_OBS=0`);
  /// the scalar fields are always filled.
  obs::ExecutionProfile profile;
};

/// Widest finite relative CI half-width across all of `cis`' cells — the
/// error the system can attest a posteriori (0 when every cell is exact).
/// Shared by the contract report, the governed executor's degraded-answer
/// accounting, and the service query log.
double MaxRelativeCiHalfWidth(
    const std::vector<std::vector<stats::ConfidenceInterval>>& cis);

/// Two-stage online approximate SQL executor with a-priori error contracts:
///
///   1. PILOT: block-sample the largest scanned table at a small rate,
///      execute the query's pre-aggregation pipeline over the sample (the
///      sampling-equivalence rules make this a valid sample of the
///      aggregate's input), and estimate every aggregate with a unit-aware
///      variance.
///   2. PLAN: allocate the user's joint (error, confidence) contract across
///      all estimates (Boole), invert the HT variance law for the smallest
///      sufficient rate, and decline (exact fallback) when sampling cannot
///      win.
///   3. FINAL: resample at the planned rate, re-estimate, and assemble the
///      original query's output shape with per-cell confidence intervals.
///
/// The executor never modifies the underlying engine: sampling happens via
/// plain table substitution + ordinary query execution, the middleware
/// posture the AQP-adoption literature argues for.
class ApproxExecutor {
 public:
  /// `catalog` must outlive the executor.
  ApproxExecutor(const Catalog* catalog, AqpOptions options);

  /// Executes `sql`. Queries without a WITH ERROR clause, without
  /// aggregates, with non-linear aggregates (MIN/MAX/COUNT DISTINCT/VAR),
  /// with HAVING, or whose planned rate is infeasible run exactly.
  ///
  /// When `parent_trace` is non-null the executor's spans (parse, bind,
  /// pilot, plan, final, per-operator) open under the parent's current
  /// cursor instead of the result profile's own trace, so a caller that
  /// already owns a submit-scoped trace (the service tier) gets ONE span
  /// tree for the whole submission. The parent is never Finish()ed here —
  /// the caller owns its lifecycle — and `result.profile.trace` is left
  /// empty for the caller to fill (the service deep-copies the finished
  /// parent in).
  Result<ApproxResult> Execute(std::string_view sql,
                               obs::QueryTrace* parent_trace = nullptr);

 private:
  const Catalog* catalog_;
  AqpOptions options_;
  uint64_t invocation_ = 0;  // Salts stage seeds across calls.
};

}  // namespace core
}  // namespace aqp

#endif  // AQP_CORE_APPROX_EXECUTOR_H_
