#include "core/offline_executor.h"

#include "common/check.h"
#include "core/contract.h"
#include "core/result_assembly.h"
#include "expr/eval.h"
#include "sql/parser.h"

namespace aqp {
namespace core {
namespace {

// Base column name: the part after the last '.'.
std::string BaseName(const std::string& name) {
  size_t pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

// Restricts a sample to the rows matching `predicate`, keeping the design
// metadata intact (units that lose all rows simply stop contributing).
Result<Sample> FilterSample(const Sample& sample, const ExprPtr& predicate) {
  AQP_ASSIGN_OR_RETURN(std::vector<uint32_t> selected,
                       EvalPredicate(*predicate, sample.table));
  Sample out;
  out.table = sample.table.Take(selected);
  out.weights.reserve(selected.size());
  out.unit_ids.reserve(selected.size());
  for (uint32_t i : selected) {
    out.weights.push_back(sample.weights[i]);
    out.unit_ids.push_back(sample.unit_ids[i]);
  }
  out.unit_sizes = sample.unit_sizes;
  out.num_units_sampled = sample.num_units_sampled;
  out.num_units_population = sample.num_units_population;
  out.nominal_rate = sample.nominal_rate;
  out.population_rows = sample.population_rows;
  return out;
}

}  // namespace

OfflineExecutor::OfflineExecutor(const Catalog* catalog,
                                 const SampleCatalog* samples)
    : catalog_(catalog), samples_(samples) {
  AQP_CHECK(catalog != nullptr);
  AQP_CHECK(samples != nullptr);
}

Result<ApproxResult> OfflineExecutor::Execute(std::string_view sql,
                                              double confidence) {
  AQP_ASSIGN_OR_RETURN(sql::SelectStmt stmt, sql::Parse(sql));
  AQP_ASSIGN_OR_RETURN(sql::BoundQuery bound, sql::Bind(stmt, *catalog_));
  if (!bound.has_aggregates) {
    return Status::Unimplemented("offline AQP answers aggregate queries only");
  }
  if (!stmt.joins.empty()) {
    return Status::Unimplemented(
        "offline AQP over joins needs a join synopsis; fall back");
  }
  if (stmt.having != nullptr) {
    return Status::Unimplemented("HAVING unsupported offline; fall back");
  }
  std::vector<AggKind> kinds;
  for (const sql::BoundAggregate& agg : bound.aggregates) {
    kinds.push_back(agg.kind);
  }
  if (!ContractCoversAggregates(kinds)) {
    return Status::Unimplemented(
        "non-linear aggregates unsupported offline; fall back");
  }

  // Pick the best stored sample: prefer one stratified on the GROUP BY
  // column (sample selection, the BlinkDB step).
  std::string preferred;
  if (stmt.group_by.size() == 1 &&
      stmt.group_by[0]->kind == sql::SqlExpr::Kind::kColumn) {
    preferred = BaseName(stmt.group_by[0]->column);
  }
  AQP_ASSIGN_OR_RETURN(const StoredSample* stored,
                       samples_->FindBest(stmt.from.table, preferred));

  // Qualify the stored sample's columns to the query's table alias so both
  // qualified and bare references resolve.
  Sample sample = stored->sample;
  {
    std::vector<std::string> names;
    for (const Field& f : sample.table.schema().fields()) {
      names.push_back(stmt.from.qualifier() + "." + BaseName(f.name));
    }
    AQP_RETURN_IF_ERROR(sample.table.RenameColumns(names));
  }

  if (stmt.where != nullptr) {
    AQP_ASSIGN_OR_RETURN(ExprPtr predicate, sql::LowerSqlExpr(stmt.where));
    AQP_ASSIGN_OR_RETURN(sample, FilterSample(sample, predicate));
  }

  std::vector<ExprPtr> group_exprs;
  for (const sql::SqlExprPtr& g : stmt.group_by) {
    AQP_ASSIGN_OR_RETURN(ExprPtr e, sql::LowerSqlExpr(g));
    group_exprs.push_back(std::move(e));
  }
  std::vector<AggSpec> agg_specs;
  for (const sql::BoundAggregate& agg : bound.aggregates) {
    agg_specs.push_back({agg.kind, agg.arg, agg.internal_alias});
  }
  AQP_ASSIGN_OR_RETURN(GroupedEstimates estimates,
                       EstimateGroupedAggregates(sample, group_exprs,
                                                 agg_specs));

  AQP_ASSIGN_OR_RETURN(
      AssembledResult assembled,
      AssembleOutput(stmt, bound, estimates, *catalog_, confidence));
  ApproxResult result;
  result.table = std::move(assembled.table);
  result.cis = std::move(assembled.cis);
  result.approximated = true;
  result.sampled_table = stmt.from.table;
  result.final_rate = stored->sample.nominal_rate;
  return result;
}

}  // namespace core
}  // namespace aqp
