#include "core/offline_executor.h"

#include <chrono>
#include <cmath>

#include "common/cancellation.h"
#include "common/check.h"
#include "core/contract.h"
#include "core/result_assembly.h"
#include "expr/eval.h"
#include "expr/vector_eval.h"
#include "obs/metrics.h"
#include "sql/parser.h"

namespace aqp {
namespace core {
namespace {

// Base column name: the part after the last '.'.
std::string BaseName(const std::string& name) {
  size_t pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

// Restricts a sample to the rows matching `predicate`, keeping the design
// metadata intact (units that lose all rows simply stop contributing).
// Predicate evaluation and the gather run morsel-parallel when the sample is
// big enough; either way the output is identical to the serial path.
Result<Sample> FilterSample(const Sample& sample, const ExprPtr& predicate,
                            const ExecOptions& exec,
                            ParallelRunStats* run_stats) {
  const bool use_morsels = exec.UseMorsels(sample.table.num_rows());
  const bool vectorized = exec.ResolvedPath() == ExecPath::kVectorized;
  std::vector<uint32_t> selected;
  if (vectorized) {
    // Batch kernels over the sample's column spans; the selection is
    // bit-identical to the scalar evaluators for every thread count.
    AQP_ASSIGN_OR_RETURN(
        selected,
        EvalPredicateBatch(*predicate, sample.table, exec.morsel_rows,
                           use_morsels ? exec.ResolvedThreads() : 1, run_stats,
                           exec.cancel, exec.memory));
  } else if (use_morsels) {
    AQP_ASSIGN_OR_RETURN(
        selected, EvalPredicateMorsel(*predicate, sample.table,
                                      exec.morsel_rows, exec.ResolvedThreads(),
                                      run_stats, exec.cancel));
  } else {
    AQP_ASSIGN_OR_RETURN(selected, EvalPredicate(*predicate, sample.table));
  }
  AQP_RETURN_IF_ERROR(CheckCancelled(exec.cancel));
  Sample out;
  if (vectorized) {
    out.table = use_morsels ? sample.table.TakeBatch(
                                  selected, exec.ResolvedThreads(), run_stats)
                            : sample.table.TakeBatch(selected);
  } else {
    out.table = use_morsels ? sample.table.Take(selected,
                                                exec.ResolvedThreads(),
                                                run_stats)
                            : sample.table.Take(selected);
  }
  out.weights.reserve(selected.size());
  out.unit_ids.reserve(selected.size());
  for (uint32_t i : selected) {
    out.weights.push_back(sample.weights[i]);
    out.unit_ids.push_back(sample.unit_ids[i]);
  }
  out.unit_sizes = sample.unit_sizes;
  out.num_units_sampled = sample.num_units_sampled;
  out.num_units_population = sample.num_units_population;
  out.nominal_rate = sample.nominal_rate;
  out.population_rows = sample.population_rows;
  return out;
}

}  // namespace

OfflineExecutor::OfflineExecutor(const Catalog* catalog,
                                 const SampleCatalog* samples,
                                 ExecOptions exec)
    : catalog_(catalog), samples_(samples), exec_(exec) {
  AQP_CHECK(catalog != nullptr);
  AQP_CHECK(samples != nullptr);
}

Result<ApproxResult> OfflineExecutor::Execute(std::string_view sql,
                                              double confidence,
                                              obs::QueryTrace* parent_trace) {
  const auto start = std::chrono::steady_clock::now();
  AQP_RETURN_IF_ERROR(CheckCancelled(exec_.cancel));
  const bool instrumented = obs::Enabled();
  ApproxResult result;
  obs::ExecutionProfile& prof = result.profile;
  prof.query = std::string(sql);
  prof.executor = "offline-sample";
  const bool external_trace = parent_trace != nullptr;
  obs::QueryTrace* tr =
      external_trace ? parent_trace : (instrumented ? &prof.trace : nullptr);

  obs::TraceSpan bind_span = obs::MaybeSpan(tr, "parse+bind");
  AQP_ASSIGN_OR_RETURN(sql::SelectStmt stmt, sql::Parse(sql));
  AQP_ASSIGN_OR_RETURN(sql::BoundQuery bound, sql::Bind(stmt, *catalog_));
  bind_span.End();
  if (!bound.has_aggregates) {
    return Status::Unimplemented("offline AQP answers aggregate queries only");
  }
  if (!stmt.joins.empty()) {
    return Status::Unimplemented(
        "offline AQP over joins needs a join synopsis; fall back");
  }
  if (stmt.having != nullptr) {
    return Status::Unimplemented("HAVING unsupported offline; fall back");
  }
  std::vector<AggKind> kinds;
  for (const sql::BoundAggregate& agg : bound.aggregates) {
    kinds.push_back(agg.kind);
  }
  if (!ContractCoversAggregates(kinds)) {
    return Status::Unimplemented(
        "non-linear aggregates unsupported offline; fall back");
  }

  // Pick the best stored sample: prefer one stratified on the GROUP BY
  // column (sample selection, the BlinkDB step).
  std::string preferred;
  if (stmt.group_by.size() == 1 &&
      stmt.group_by[0]->kind == sql::SqlExpr::Kind::kColumn) {
    preferred = BaseName(stmt.group_by[0]->column);
  }
  obs::TraceSpan select_span = obs::MaybeSpan(tr, "select-sample");
  AQP_ASSIGN_OR_RETURN(const StoredSample* stored,
                       samples_->FindBest(stmt.from.table, preferred));
  prof.sampling_design =
      stored->strata_column.empty()
          ? "stored-uniform(budget=" + std::to_string(stored->budget) + ")"
          : "stored-stratified(" + stored->strata_column +
                ", budget=" + std::to_string(stored->budget) + ")";
  select_span.AddAttr("sample_rows",
                      static_cast<uint64_t>(stored->sample.num_rows()));
  select_span.End();

  // Qualify the stored sample's columns to the query's table alias so both
  // qualified and bare references resolve.
  Sample sample = stored->sample;
  {
    std::vector<std::string> names;
    for (const Field& f : sample.table.schema().fields()) {
      names.push_back(stmt.from.qualifier() + "." + BaseName(f.name));
    }
    AQP_RETURN_IF_ERROR(sample.table.RenameColumns(names));
  }

  if (stmt.where != nullptr) {
    obs::TraceSpan filter_span = obs::MaybeSpan(tr, "filter-sample");
    AQP_ASSIGN_OR_RETURN(ExprPtr predicate, sql::LowerSqlExpr(stmt.where));
    AQP_ASSIGN_OR_RETURN(
        sample,
        FilterSample(sample, predicate, exec_, &result.exec_stats.parallel));
    filter_span.AddAttr("rows_out",
                        static_cast<uint64_t>(sample.num_rows()));
  }

  std::vector<ExprPtr> group_exprs;
  for (const sql::SqlExprPtr& g : stmt.group_by) {
    AQP_ASSIGN_OR_RETURN(ExprPtr e, sql::LowerSqlExpr(g));
    group_exprs.push_back(std::move(e));
  }
  std::vector<AggSpec> agg_specs;
  for (const sql::BoundAggregate& agg : bound.aggregates) {
    agg_specs.push_back({agg.kind, agg.arg, agg.internal_alias});
  }
  obs::TraceSpan estimate_span = obs::MaybeSpan(tr, "estimate");
  AQP_ASSIGN_OR_RETURN(GroupedEstimates estimates,
                       EstimateGroupedAggregates(sample, group_exprs,
                                                 agg_specs));
  estimate_span.End();

  obs::TraceSpan assemble_span = obs::MaybeSpan(tr, "assemble");
  AQP_ASSIGN_OR_RETURN(
      AssembledResult assembled,
      AssembleOutput(stmt, bound, estimates, *catalog_, confidence));
  assemble_span.End();
  result.table = std::move(assembled.table);
  result.cis = std::move(assembled.cis);
  result.approximated = true;
  result.sampled_table = stmt.from.table;
  result.final_rate = stored->sample.nominal_rate;

  prof.approximated = true;
  prof.sampled_table = result.sampled_table;
  prof.sampled_fraction = result.final_rate;
  prof.estimated_error = MaxRelativeCiHalfWidth(result.cis);
  // Query-time cost of the offline path: only the stored sample is read.
  prof.rows_scanned = stored->sample.num_rows();
  if (result.exec_stats.parallel.morsels > 0) {
    obs::ParallelReport par;
    par.num_threads = exec_.ResolvedThreads();
    par.morsels = result.exec_stats.parallel.morsels;
    par.steals = result.exec_stats.parallel.steals;
    par.worker_rows = result.exec_stats.parallel.worker_items;
    prof.parallel = std::move(par);
  }
  result.final_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  prof.final_seconds = result.final_seconds;
  prof.total_seconds = result.final_seconds;
  if (tr != nullptr && !external_trace) prof.trace.Finish();
  if (instrumented) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    static obs::Counter* queries = reg.GetCounter("aqp_offline_queries_total");
    static obs::LatencyHistogram* latency =
        reg.GetHistogram("aqp_offline_query_seconds");
    queries->Increment();
    latency->Observe(prof.total_seconds);
  }
  return result;
}

}  // namespace core
}  // namespace aqp
