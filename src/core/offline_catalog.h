#ifndef AQP_CORE_OFFLINE_CATALOG_H_
#define AQP_CORE_OFFLINE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/catalog.h"
#include "sampling/sample.h"
#include "workload/querygen.h"

namespace aqp {
namespace core {

/// One pre-computed sample and the bookkeeping needed to answer "is it still
/// valid?" — the offline-AQP artifact whose maintenance cost is the P2
/// problem the paper dwells on.
struct StoredSample {
  std::string base_table;
  std::string strata_column;  // Empty = uniform sample.
  uint64_t budget = 0;
  uint64_t base_rows_at_build = 0;  // Table cardinality when (re)built.
  Sample sample;

  /// Approximate heap footprint (sample table plus design vectors) — what a
  /// synopsis cache charges per entry.
  uint64_t ApproxBytes() const;
};

/// Builds a uniform reservoir StoredSample of `budget` rows of `table` —
/// the build step shared by SampleCatalog and the cross-query SynopsisCache
/// (which deduplicates builds and shares the artifact across sessions).
Result<StoredSample> BuildUniformStoredSample(const Catalog& catalog,
                                              const std::string& table,
                                              uint64_t budget, uint64_t seed);

/// Builds a stratified StoredSample on `strata_column` (equal allocation).
Result<StoredSample> BuildStratifiedStoredSample(const Catalog& catalog,
                                                 const std::string& table,
                                                 const std::string& strata_column,
                                                 uint64_t budget, uint64_t seed);

/// Catalog of pre-computed (offline) samples with explicit maintenance
/// accounting. Every build or refresh records how many base rows had to be
/// scanned; experiments read the counters to price maintenance against the
/// query-time savings.
class SampleCatalog {
 public:
  enum class MaintenancePolicy {
    kRebuild,      // Re-scan the full table on every append batch.
    kIncremental,  // Stream appended rows through the reservoir (uniform
                   // samples only; stratified samples still rebuild).
  };

  explicit SampleCatalog(MaintenancePolicy policy = MaintenancePolicy::kRebuild)
      : policy_(policy) {}

  /// Builds a uniform reservoir sample of `budget` rows of `table`.
  Status BuildUniform(const Catalog& catalog, const std::string& table,
                      uint64_t budget, uint64_t seed);

  /// Builds a stratified sample on `strata_column` (equal allocation, the
  /// BlinkDB-style rare-group hedge).
  Status BuildStratified(const Catalog& catalog, const std::string& table,
                         const std::string& strata_column, uint64_t budget,
                         uint64_t seed);

  /// Adopts an externally built (typically cache-shared) sample under its
  /// own (base_table, strata_column) key, replacing any existing entry. No
  /// maintenance cost is charged: the build was paid for (once) wherever the
  /// sample came from — this is how a per-query view of the SynopsisCache is
  /// assembled without copying sample data.
  Status Adopt(std::shared_ptr<const StoredSample> sample);

  /// The stored sample for (table, strata_column); with an empty
  /// strata_column returns the uniform sample; NotFound when absent.
  Result<const StoredSample*> Find(const std::string& table,
                                   const std::string& strata_column = "") const;

  /// Any sample for `table`, preferring one stratified on `preferred_column`
  /// then uniform — the (simplified) BlinkDB sample-selection step.
  Result<const StoredSample*> FindBest(
      const std::string& table, const std::string& preferred_column) const;

  /// Maintenance hook: `appended` rows were appended to `table` (the engine
  /// catalog must already reflect the append). Refreshes all samples of the
  /// table per the policy and charges the cost counters.
  Status OnAppend(const Catalog& catalog, const std::string& table,
                  const Table& appended, uint64_t seed);

  /// Rows scanned for building + maintaining samples so far.
  uint64_t maintenance_rows_scanned() const { return maintenance_rows_; }
  /// Rows held across all stored samples (storage cost).
  uint64_t storage_rows() const;
  size_t num_samples() const { return samples_.size(); }

  /// Workload-aware stratification choice: the most frequent GROUP BY column
  /// in the workload (empty if the workload never groups) — the "aggressive
  /// use of workload knowledge" axis of the paper's taxonomy.
  static std::string ChooseStratificationColumn(
      const std::vector<workload::QuerySpec>& workload);

 private:
  std::string Key(const std::string& table,
                  const std::string& strata_column) const {
    return table + "\x1f" + strata_column;
  }

  MaintenancePolicy policy_;
  /// Samples are held by shared_ptr so a catalog view can alias artifacts
  /// owned by a cross-query cache; in-place maintenance copies-then-swaps so
  /// aliased readers never observe a mutation.
  std::map<std::string, std::shared_ptr<const StoredSample>> samples_;
  uint64_t maintenance_rows_ = 0;
  uint64_t next_stream_ = 0;  // Distinct RNG streams per refresh.
};

}  // namespace core
}  // namespace aqp

#endif  // AQP_CORE_OFFLINE_CATALOG_H_
