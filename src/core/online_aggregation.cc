#include "core/online_aggregation.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "expr/eval.h"
#include "expr/vector_eval.h"
#include "gov/fault_injector.h"
#include "obs/metrics.h"

namespace aqp {
namespace core {

Result<OnlineAggregator> OnlineAggregator::Create(const Table& table,
                                                  ExprPtr measure,
                                                  ExprPtr predicate,
                                                  uint64_t seed,
                                                  ExecOptions exec) {
  if (measure == nullptr) {
    return Status::InvalidArgument("OLA requires a measure expression");
  }
  AQP_RETURN_IF_ERROR(gov::FaultInjector::Global().MaybeFail("ola.create"));
  AQP_RETURN_IF_ERROR(CheckCancelled(exec.cancel));
  OnlineAggregator ola;
  ola.exec_ = exec;
  ola.profile_.executor = "online-aggregation";
  ola.profile_.approximated = true;
  obs::QueryTrace* tr = obs::Enabled() ? &ola.profile_.trace : nullptr;
  obs::TraceSpan init_span = obs::MaybeSpan(tr, "init(eval+shuffle)");
  ola.population_ = table.num_rows();
  AQP_ASSIGN_OR_RETURN(Column values, Eval(*measure, table));
  if (!IsNumeric(values.type())) {
    return Status::InvalidArgument("OLA measure must be numeric");
  }
  ola.values_.resize(table.num_rows());
  std::vector<uint8_t> nulls(table.num_rows(), 0);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    if (values.IsNull(i)) {
      nulls[i] = 1;
      ola.values_[i] = 0.0;
    } else {
      ola.values_[i] = values.NumericAt(i);
    }
  }
  ola.qualifies_.assign(table.num_rows(), 1);
  if (predicate != nullptr) {
    std::vector<uint32_t> sel;
    if (exec.ResolvedPath() == ExecPath::kVectorized) {
      AQP_ASSIGN_OR_RETURN(
          sel, EvalPredicateBatch(
                   *predicate, table, exec.morsel_rows,
                   exec.UseMorsels(table.num_rows()) ? exec.ResolvedThreads()
                                                     : 1,
                   /*run_stats=*/nullptr, exec.cancel, exec.memory));
    } else if (exec.UseMorsels(table.num_rows())) {
      AQP_ASSIGN_OR_RETURN(
          sel, EvalPredicateMorsel(*predicate, table, exec.morsel_rows,
                                   exec.ResolvedThreads(),
                                   /*run_stats=*/nullptr, exec.cancel));
    } else {
      AQP_ASSIGN_OR_RETURN(sel, EvalPredicate(*predicate, table));
    }
    std::fill(ola.qualifies_.begin(), ola.qualifies_.end(), 0);
    for (uint32_t i : sel) ola.qualifies_[i] = 1;
  }
  // NULL measures never contribute to SUM/AVG; fold into the mask for the
  // qualifying accumulator but keep COUNT semantics via a separate flag (a
  // row can qualify with a NULL measure; it counts but adds 0).
  for (size_t i = 0; i < nulls.size(); ++i) {
    if (nulls[i]) ola.values_[i] = 0.0;
  }
  Pcg32 rng(seed);
  ola.order_ = rng.Permutation(static_cast<uint32_t>(table.num_rows()));
  // The aggregator's working set (permutation + measures + mask) lives for
  // the whole OLA session; charge it against the query budget up front.
  const uint64_t working_set =
      ola.order_.capacity() * sizeof(uint32_t) +
      ola.values_.capacity() * sizeof(double) + ola.qualifies_.capacity();
  AQP_ASSIGN_OR_RETURN(
      ola.memory_charge_,
      ScopedMemoryCharge::Make(exec.memory, working_set, "ola working set"));
  init_span.AddAttr("rows", static_cast<uint64_t>(table.num_rows()));
  init_span.End();
  return ola;
}

OlaProgress OnlineAggregator::Step(size_t chunk_rows, double confidence) {
  // Batch-boundary cancellation point: a tripped token freezes the
  // aggregator — this Step consumes nothing and the returned progress simply
  // restates the current (still statistically valid) estimates. OLA's
  // partial answer IS its answer, so cancellation needs no unwinding.
  if (exec_.cancel != nullptr && exec_.cancel->IsCancelled()) {
    chunk_rows = 0;
  }
  ++steps_;
  if (obs::Enabled()) {
    static obs::Counter* steps = obs::MetricsRegistry::Global().GetCounter(
        "aqp_ola_steps_total");
    steps->Increment();
  }
  const size_t end = std::min(consumed_ + chunk_rows, order_.size());
  const size_t chunk = end - consumed_;
  if (exec_.UseMorsels(chunk)) {
    // Epoch fold: per-morsel partial accumulators over the chunk, merged in
    // morsel order into the shared state once per Step. Algorithm choice is
    // gated on chunk size only, so the estimates are identical for every
    // thread count.
    const size_t morsel_rows = exec_.morsel_rows;
    const size_t num_morsels = (chunk + morsel_rows - 1) / morsel_rows;
    struct Partial {
      stats::Accumulator acc;
      uint64_t qualifying = 0;
    };
    std::vector<Partial> partials(num_morsels);
    const size_t base = consumed_;
    // No in-flight cancellation inside an epoch: partials merged after a
    // skipped morsel would undercount, so the epoch runs to completion (it
    // is already bounded by chunk_rows) and the NEXT Step observes the token.
    ThreadPool::Shared().ParallelFor(
        chunk, morsel_rows, exec_.ResolvedThreads(),
        [&](size_t, size_t m, size_t begin, size_t mend) {
          Partial& p = partials[m];
          for (size_t k = begin; k < mend; ++k) {
            uint32_t row = order_[base + k];
            p.acc.Add(qualifies_[row] ? values_[row] : 0.0);
            if (qualifies_[row]) ++p.qualifying;
          }
        });
    for (const Partial& p : partials) {
      acc_.Merge(p.acc);
      qualifying_seen_ += p.qualifying;
    }
    consumed_ = end;
  } else {
    for (; consumed_ < end; ++consumed_) {
      uint32_t row = order_[consumed_];
      double contribution = qualifies_[row] ? values_[row] : 0.0;
      acc_.Add(contribution);
      if (qualifies_[row]) ++qualifying_seen_;
    }
  }

  OlaProgress progress;
  progress.rows_seen = consumed_;
  progress.fraction =
      population_ == 0
          ? 1.0
          : static_cast<double>(consumed_) / static_cast<double>(population_);
  progress.complete = consumed_ >= order_.size();

  const uint64_t n = acc_.count();
  const double big_n = static_cast<double>(population_);
  // SUM: N * mean(contribution), CLT CI with finite-population correction.
  stats::ConfidenceInterval mean_ci =
      stats::MeanCi(acc_.mean(), acc_.sample_variance(), n, confidence,
                    population_);
  progress.sum_ci.estimate = mean_ci.estimate * big_n;
  progress.sum_ci.low = mean_ci.low * big_n;
  progress.sum_ci.high = mean_ci.high * big_n;
  progress.sum_ci.confidence = confidence;

  // COUNT of qualifying rows: N * proportion, normal-approx CI with FPC.
  double q_hat =
      n == 0 ? 0.0
             : static_cast<double>(qualifying_seen_) / static_cast<double>(n);
  double prop_var = q_hat * (1.0 - q_hat);
  progress.count_ci =
      stats::MeanCi(q_hat, prop_var, n, confidence, population_);
  progress.count_ci.estimate *= big_n;
  progress.count_ci.low = std::max(0.0, progress.count_ci.low * big_n);
  progress.count_ci.high = progress.count_ci.high * big_n;

  // AVG over qualifying rows: ratio of the two estimates; delta-method-free
  // conservative interval from the SUM and COUNT bounds.
  if (progress.count_ci.estimate > 0.0) {
    progress.avg_ci.estimate =
        progress.sum_ci.estimate / progress.count_ci.estimate;
    double count_low = std::max(progress.count_ci.low, 1.0);
    progress.avg_ci.low = progress.sum_ci.low / progress.count_ci.high;
    progress.avg_ci.high = progress.sum_ci.high / count_low;
    if (progress.avg_ci.low > progress.avg_ci.high) {
      std::swap(progress.avg_ci.low, progress.avg_ci.high);
    }
    progress.avg_ci.confidence = confidence;
  }
  if (progress.complete) {
    // Fully consumed: estimates are exact.
    progress.sum_ci.low = progress.sum_ci.high = progress.sum_ci.estimate;
    progress.count_ci.low = progress.count_ci.high =
        progress.count_ci.estimate;
    progress.avg_ci.low = progress.avg_ci.high = progress.avg_ci.estimate;
  }
  return progress;
}

obs::ExecutionProfile OnlineAggregator::Profile() const {
  obs::ExecutionProfile profile = profile_;
  profile.rows_scanned = consumed_;
  profile.sampled_fraction =
      population_ == 0
          ? 1.0
          : static_cast<double>(consumed_) / static_cast<double>(population_);
  profile.approximated = consumed_ < order_.size();
  profile.total_seconds = profile.trace.ElapsedSeconds();
  obs::SpanRecord& root = profile.trace.mutable_root();
  root.attrs.emplace_back("steps", std::to_string(steps_));
  root.attrs.emplace_back("rows_seen", std::to_string(consumed_));
  profile.trace.Finish();
  return profile;
}

OlaProgress OnlineAggregator::RunToTarget(double target_relative_error,
                                          double confidence,
                                          size_t chunk_rows) {
  OlaProgress progress;
  do {
    progress = Step(chunk_rows, confidence);
    if (progress.sum_ci.estimate != 0.0 &&
        progress.sum_ci.relative_half_width() <= target_relative_error) {
      return progress;
    }
    // A tripped token makes Step a no-op; looping further would spin.
    if (exec_.cancel != nullptr && exec_.cancel->IsCancelled()) break;
  } while (!progress.complete);
  return progress;
}

}  // namespace core
}  // namespace aqp
