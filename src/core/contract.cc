#include "core/contract.h"

#include "common/check.h"
#include "engine/aggregate.h"

namespace aqp {
namespace core {

PerEstimateTarget AllocateContract(const sql::ErrorSpec& spec,
                                   size_t num_estimates) {
  AQP_CHECK(num_estimates > 0);
  PerEstimateTarget target;
  target.relative_error = spec.relative_error;
  double failure = (1.0 - spec.confidence) / static_cast<double>(num_estimates);
  target.confidence = 1.0 - failure;
  return target;
}

double AllocateCompositeError(double relative_error, size_t num_factors) {
  AQP_CHECK(num_factors > 0);
  return relative_error / static_cast<double>(num_factors);
}

bool ContractCoversAggregates(const std::vector<AggKind>& kinds) {
  for (AggKind kind : kinds) {
    if (!IsLinearAgg(kind)) return false;
  }
  return true;
}

}  // namespace core
}  // namespace aqp
