#include "core/drift_baseline.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/hash.h"
#include "storage/column.h"
#include "storage/value.h"

namespace aqp {
namespace core {

namespace {

constexpr size_t kCancelCheckRows = 16384;

double NowUnixSeconds() {
  auto now = std::chrono::system_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

/// Upper bound on one column sketch's footprint, charged before the scan so
/// a budget refusal aborts the build instead of overshooting mid-scan.
uint64_t PerColumnBound(const sketch::DriftSketchOptions& s) {
  const uint64_t kll = static_cast<uint64_t>(s.kll_k) * 24 * sizeof(double);
  const uint64_t kmv = static_cast<uint64_t>(s.kmv_k) * 6 * sizeof(uint64_t);
  const uint64_t mg = static_cast<uint64_t>(s.heavy_hitters) * 6 *
                      sizeof(uint64_t);
  return kll + kmv + mg + 512;
}

void ScanColumn(const Column& col, size_t rows,
                sketch::ColumnDriftSketch* sketch_out,
                const CancellationToken* cancel, Status* status) {
  const uint8_t* valid = col.validity();
  const bool nulls = col.has_nulls();
  for (size_t i = 0; i < rows; ++i) {
    if ((i % kCancelCheckRows) == 0) {
      *status = CheckCancelled(cancel);
      if (!status->ok()) return;
    }
    if (nulls && valid[i] == 0) {
      sketch_out->AddNull();
      continue;
    }
    switch (col.type()) {
      case DataType::kInt64: {
        const int64_t v = col.int64_data()[i];
        sketch_out->AddNumeric(static_cast<double>(v), HashInt64(v));
        break;
      }
      case DataType::kDouble: {
        const double v = col.double_data()[i];
        sketch_out->AddNumeric(v, HashDouble(v));
        break;
      }
      case DataType::kString:
      case DataType::kBool:
        sketch_out->AddHashed(col.HashAt(i));
        break;
    }
  }
}

}  // namespace

uint64_t TableDriftBaseline::ApproxBytes() const {
  uint64_t bytes = sizeof(*this) + table.size();
  for (const auto& [name, sketch] : columns) {
    bytes += name.size() + sketch.ApproxBytes();
  }
  return bytes;
}

Result<TableDriftBaseline> BuildDriftBaseline(
    const Table& table, const std::string& name, uint64_t catalog_version,
    const DriftBaselineOptions& opts, MemoryTracker* tracker,
    const CancellationToken* cancel) {
  TableDriftBaseline out;
  out.table = name;
  out.catalog_version = catalog_version;
  out.built_unix_seconds = NowUnixSeconds();

  size_t rows = table.num_rows();
  if (opts.max_rows > 0) {
    rows = std::min(rows, static_cast<size_t>(opts.max_rows));
  }
  out.rows = rows;

  const uint64_t bound =
      PerColumnBound(opts.sketch) * std::max<size_t>(table.num_columns(), 1);
  auto charge = ScopedMemoryCharge::Make(tracker, bound, "drift_baseline");
  if (!charge.ok()) return charge.status();

  out.columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    sketch::ColumnDriftSketch sketch(opts.sketch);
    Status status = Status::OK();
    ScanColumn(table.column(c), rows, &sketch, cancel, &status);
    if (!status.ok()) return status;
    out.columns.emplace_back(table.schema().field(c).name,
                             std::move(sketch));
  }
  return out;
}

TableDriftReport ScoreDrift(const TableDriftBaseline& baseline,
                            const TableDriftBaseline& current) {
  TableDriftReport report;
  report.table = baseline.table;
  for (const auto& [name, base_sketch] : baseline.columns) {
    ColumnDriftEntry entry;
    entry.column = name;
    const sketch::ColumnDriftSketch* cur = nullptr;
    for (const auto& [cname, csketch] : current.columns) {
      if (cname == name) {
        cur = &csketch;
        break;
      }
    }
    if (cur == nullptr) {
      // Column vanished: total drift for this column.
      entry.score.ks = entry.score.domain_churn = entry.score.hh_turnover =
          entry.score.moment_shift = entry.score.score = 1.0;
    } else {
      entry.score = sketch::ScoreColumnDrift(base_sketch, *cur);
    }
    report.ks = std::max(report.ks, entry.score.ks);
    report.domain_churn =
        std::max(report.domain_churn, entry.score.domain_churn);
    report.hh_turnover = std::max(report.hh_turnover, entry.score.hh_turnover);
    report.moment_shift =
        std::max(report.moment_shift, entry.score.moment_shift);
    if (entry.score.score >= report.score &&
        (entry.score.score > report.score || report.worst_column.empty())) {
      report.score = entry.score.score;
      report.worst_column = entry.column;
    }
    report.columns.push_back(std::move(entry));
  }
  // Columns added since the baseline also count as schema drift.
  for (const auto& [cname, csketch] : current.columns) {
    bool known = false;
    for (const auto& [bname, bsketch] : baseline.columns) {
      if (bname == cname) {
        known = true;
        break;
      }
    }
    if (!known) {
      ColumnDriftEntry entry;
      entry.column = cname;
      entry.score.ks = entry.score.domain_churn = entry.score.hh_turnover =
          entry.score.moment_shift = entry.score.score = 1.0;
      report.score = 1.0;
      report.worst_column = entry.column;
      report.ks = report.domain_churn = report.hh_turnover =
          report.moment_shift = 1.0;
      report.columns.push_back(std::move(entry));
    }
  }
  return report;
}

}  // namespace core
}  // namespace aqp
