#include "core/result_assembly.h"

#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "engine/executor.h"

namespace aqp {
namespace core {
namespace {

// Counts occurrences of each aggregate display inside one select item.
void CountAggOccurrences(const sql::SqlExprPtr& e,
                         std::unordered_map<std::string, int>* counts) {
  if (e == nullptr) return;
  if (e->kind == sql::SqlExpr::Kind::kAggCall) {
    (*counts)[e->ToString()]++;
    return;
  }
  for (const sql::SqlExprPtr& c : e->children) CountAggOccurrences(c, counts);
}

}  // namespace

Result<Table> MaterializeAggTable(const GroupedEstimates& estimates,
                                  const sql::BoundQuery& bound) {
  const size_t groups = estimates.num_groups;
  Schema schema;
  std::vector<Column> cols;
  for (size_t g = 0; g < bound.group_names.size(); ++g) {
    schema.AddField({bound.group_names[g],
                     estimates.group_keys.column(g).type()});
    cols.push_back(estimates.group_keys.column(g));
  }
  for (size_t a = 0; a < bound.aggregates.size(); ++a) {
    const sql::BoundAggregate& agg = bound.aggregates[a];
    bool integral =
        agg.kind == AggKind::kCount || agg.kind == AggKind::kCountStar;
    Column col(integral ? DataType::kInt64 : DataType::kDouble);
    for (size_t g = 0; g < groups; ++g) {
      double v = estimates.estimates[a][g].estimate;
      if (integral) {
        col.AppendInt64(static_cast<int64_t>(std::llround(v)));
      } else {
        col.AppendDouble(v);
      }
    }
    schema.AddField({agg.internal_alias, col.type()});
    cols.push_back(std::move(col));
  }
  Column row_id(DataType::kInt64);
  for (size_t g = 0; g < groups; ++g) {
    row_id.AppendInt64(static_cast<int64_t>(g));
  }
  schema.AddField({"__row_id", DataType::kInt64});
  cols.push_back(std::move(row_id));
  return Table::Make(std::move(schema), std::move(cols));
}

Result<AssembledResult> AssembleOutput(const sql::SelectStmt& stmt,
                                       const sql::BoundQuery& bound,
                                       const GroupedEstimates& estimates,
                                       const Catalog& catalog,
                                       double confidence) {
  AQP_ASSIGN_OR_RETURN(Table agg_table,
                       MaterializeAggTable(estimates, bound));
  Catalog staged = catalog;
  staged.RegisterOrReplace("__aqp_groups",
                           std::make_shared<Table>(std::move(agg_table)));
  AQP_ASSIGN_OR_RETURN(
      PlanPtr tail,
      sql::BindPostAggregation(stmt, bound, "__aqp_groups", staged,
                               /*append_row_id=*/true));
  AQP_ASSIGN_OR_RETURN(Table with_ids, Execute(tail, staged));

  // Split off the trailing __row_id column, remembering the row -> group map.
  size_t id_col = with_ids.num_columns() - 1;
  std::vector<uint32_t> group_of_row(with_ids.num_rows());
  for (size_t i = 0; i < with_ids.num_rows(); ++i) {
    group_of_row[i] =
        static_cast<uint32_t>(with_ids.column(id_col).Int64At(i));
  }
  AssembledResult out;
  {
    Schema schema;
    std::vector<Column> cols;
    for (size_t c = 0; c + 1 < with_ids.num_columns(); ++c) {
      schema.AddField(with_ids.schema().field(c));
      cols.push_back(with_ids.column(c));
    }
    AQP_ASSIGN_OR_RETURN(out.table,
                         Table::Make(std::move(schema), std::move(cols)));
  }

  std::unordered_map<std::string, size_t> agg_index;
  for (size_t a = 0; a < bound.aggregates.size(); ++a) {
    agg_index[bound.aggregates[a].display] = a;
  }
  out.cis.resize(out.table.num_rows());
  for (size_t row = 0; row < out.table.num_rows(); ++row) {
    uint32_t g = group_of_row[row];
    out.cis[row].resize(stmt.items.size());
    for (size_t it = 0; it < stmt.items.size(); ++it) {
      std::unordered_map<std::string, int> counts;
      CountAggOccurrences(stmt.items[it].expr, &counts);
      double cell = 0.0;
      if (IsNumeric(out.table.column(it).type()) &&
          !out.table.column(it).IsNull(row)) {
        cell = out.table.column(it).NumericAt(row);
      }
      stats::ConfidenceInterval ci;
      ci.estimate = cell;
      ci.confidence = confidence;
      if (counts.empty()) {
        ci.low = ci.high = cell;  // Group key: exact.
      } else if (counts.size() == 1 && counts.begin()->second == 1 &&
                 stmt.items[it].expr->kind == sql::SqlExpr::Kind::kAggCall) {
        size_t a = agg_index.at(counts.begin()->first);
        ci = estimates.estimates[a][g].Ci(confidence);
      } else {
        // Composite: propagate relative errors (sum of factor widths).
        double rel = 0.0;
        for (const auto& [display, occurrences] : counts) {
          size_t a = agg_index.at(display);
          stats::ConfidenceInterval part =
              estimates.estimates[a][g].Ci(confidence);
          double r = part.relative_half_width();
          if (std::isfinite(r)) rel += r * occurrences;
        }
        double half = std::fabs(cell) * rel;
        ci.low = cell - half;
        ci.high = cell + half;
      }
      out.cis[row][it] = ci;
    }
  }
  return out;
}

}  // namespace core
}  // namespace aqp
