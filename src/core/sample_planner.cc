#include "core/sample_planner.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"
#include "stats/distributions.h"

namespace aqp {
namespace core {
namespace {

// Counts every planning decision so operators can watch the
// feasible/infeasible ratio (the contract-decline rate) drift with the
// workload.
void RecordPlanOutcome(const SamplingPlan& plan) {
  if (!obs::Enabled()) return;
  static obs::Counter* feasible = obs::MetricsRegistry::Global().GetCounter(
      "aqp_plans_feasible_total");
  static obs::Counter* infeasible = obs::MetricsRegistry::Global().GetCounter(
      "aqp_plans_infeasible_total");
  static obs::Gauge* rate =
      obs::MetricsRegistry::Global().GetGauge("aqp_last_planned_rate");
  (plan.feasible ? feasible : infeasible)->Increment();
  rate->Set(plan.rate);
}

}  // namespace

SamplingPlan PlanSamplingRate(const PlanningInputs& inputs) {
  AQP_CHECK(inputs.pilot != nullptr);
  AQP_CHECK(inputs.pilot_rate > 0.0 && inputs.pilot_rate < 1.0);
  SamplingPlan plan;

  const double p = inputs.pilot_rate;
  const double eps = inputs.target.relative_error;
  const double z = stats::NormalQuantile(
      1.0 - (1.0 - inputs.target.confidence) / 2.0);
  // Variance at rate r relates to the pilot's variance estimate by the
  // Bernoulli design factor (1-r)/r; pilot factor is (1-p)/p.
  const double pilot_factor = (1.0 - p) / p;
  if (pilot_factor <= 0.0) {
    plan.reason = "degenerate pilot rate";
    RecordPlanOutcome(plan);
    return plan;
  }

  double worst = 0.0;
  size_t usable = 0;
  for (const auto& per_group : inputs.pilot->estimates) {
    for (const PointEstimate& pe : per_group) {
      if (pe.estimate == 0.0) continue;  // Empty group: coverage logic owns it.
      ++usable;
      // S2 (design-free dispersion) implied by the pilot variance.
      double s2 = pe.variance / pilot_factor;
      if (s2 <= 0.0) continue;  // Pilot saw no dispersion: any rate works.
      double tol = eps * std::fabs(pe.estimate);
      // Solve ((1-r)/r) * s2 * z^2 <= tol^2   =>   r >= 1/(1 + tol^2/(z^2 s2)).
      double required = 1.0 / (1.0 + tol * tol / (z * z * s2));
      worst = std::max(worst, required);
    }
  }
  if (usable == 0) {
    plan.reason = "pilot produced no usable estimates (all-zero aggregates)";
    RecordPlanOutcome(plan);
    return plan;
  }

  plan.worst_required_rate = worst;
  double rate = std::min(1.0, worst * inputs.safety_factor);
  rate = std::max(rate, 1e-6);
  // CLT floor: guarantee an expected minimum number of sampling units — a
  // variance formula is only as good as the units that feed it.
  if (inputs.population_units > 0) {
    double floor_rate = static_cast<double>(inputs.min_units) /
                        static_cast<double>(inputs.population_units);
    rate = std::max(rate, std::min(1.0, floor_rate));
  }
  if (rate > inputs.max_rate) {
    plan.reason = "required rate " + std::to_string(rate) +
                  " exceeds max feasible rate " +
                  std::to_string(inputs.max_rate) +
                  "; exact execution is cheaper";
    plan.rate = rate;
    RecordPlanOutcome(plan);
    return plan;
  }
  plan.feasible = true;
  plan.rate = rate;
  RecordPlanOutcome(plan);
  return plan;
}

}  // namespace core
}  // namespace aqp
