#ifndef AQP_CORE_OFFLINE_EXECUTOR_H_
#define AQP_CORE_OFFLINE_EXECUTOR_H_

#include <string>

#include "common/result.h"
#include "core/approx_executor.h"
#include "core/offline_catalog.h"
#include "engine/catalog.h"
#include "sql/binder.h"

namespace aqp {
namespace core {

/// BlinkDB-style offline AQP: answer aggregation SQL from pre-computed
/// samples in the SampleCatalog, never touching the base table at query
/// time. The other corner of the paper's design space from ApproxExecutor:
///   + query latency independent of data size (only the sample is read)
///   - a-priori guarantees only hold for workloads the samples were built
///     for; the error is REPORTED (a posteriori CI), not promised
///   - maintenance cost on every update (see SampleCatalog)
///
/// Supported queries: single-table SELECT with linear aggregates, optional
/// WHERE / GROUP BY / ORDER BY / LIMIT. Joins, HAVING, and non-linear
/// aggregates report Unimplemented, signalling the caller to fall back.
class OfflineExecutor {
 public:
  /// Both registries must outlive the executor. `exec` controls
  /// morsel-parallel sample filtering/gathering at query time (results are
  /// identical for every thread count).
  OfflineExecutor(const Catalog* catalog, const SampleCatalog* samples,
                  ExecOptions exec = {});

  /// Executes `sql` against the best stored sample (preferring one
  /// stratified on the query's GROUP BY column). The result has the same
  /// shape as the exact query; `cis` carries a posteriori intervals at
  /// `confidence`. A non-null `parent_trace` receives this executor's spans
  /// in place of the profile's own trace (same ownership contract as
  /// ApproxExecutor::Execute — the parent is never Finish()ed here).
  Result<ApproxResult> Execute(std::string_view sql, double confidence = 0.95,
                               obs::QueryTrace* parent_trace = nullptr);

 private:
  const Catalog* catalog_;
  const SampleCatalog* samples_;
  ExecOptions exec_;
};

}  // namespace core
}  // namespace aqp

#endif  // AQP_CORE_OFFLINE_EXECUTOR_H_
