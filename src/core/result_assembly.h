#ifndef AQP_CORE_RESULT_ASSEMBLY_H_
#define AQP_CORE_RESULT_ASSEMBLY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/estimate.h"
#include "engine/catalog.h"
#include "sql/binder.h"
#include "stats/confidence.h"

namespace aqp {
namespace core {

/// Output shape + per-cell confidence intervals, shared by the online and
/// offline approximate executors.
struct AssembledResult {
  Table table;  // Same shape as the exact query output.
  /// cis[row][item] at the given confidence; zero-width for group keys,
  /// error-propagated for composite aggregate expressions.
  std::vector<std::vector<stats::ConfidenceInterval>> cis;
};

/// Materializes per-group estimates into the aggregate node's output shape:
/// bound.group_names columns, one column per aggregate (internal alias,
/// INT64 for counts / DOUBLE otherwise), plus an INT64 "__row_id" column
/// mapping rows back to group ordinals.
Result<Table> MaterializeAggTable(const GroupedEstimates& estimates,
                                  const sql::BoundQuery& bound);

/// Runs the query's post-aggregation tail (projection, ORDER BY, LIMIT)
/// over the materialized estimates and attaches per-cell confidence
/// intervals at `confidence`. `catalog` provides any context tables the
/// tail may need (none today, but binding requires one).
Result<AssembledResult> AssembleOutput(const sql::SelectStmt& stmt,
                                       const sql::BoundQuery& bound,
                                       const GroupedEstimates& estimates,
                                       const Catalog& catalog,
                                       double confidence);

}  // namespace core
}  // namespace aqp

#endif  // AQP_CORE_RESULT_ASSEMBLY_H_
