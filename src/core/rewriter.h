#ifndef AQP_CORE_REWRITER_H_
#define AQP_CORE_REWRITER_H_

#include <string>

#include "common/result.h"
#include "engine/plan.h"

namespace aqp {
namespace core {

/// Plan rewrites for query-time (online) sampling, in the spirit of Quickr's
/// sampler placement: samplers commute with selection and project, and may
/// be pushed through the fact side of an FK join — which is why annotating
/// the *scan* with the sample spec is statistically equivalent to sampling
/// the aggregate's input, while being enormously cheaper.

/// Returns a copy of `plan` with the scan of `table_name` annotated with
/// `spec` (every occurrence). NotFound if the table is never scanned.
Result<PlanPtr> InjectSample(const PlanPtr& plan, const std::string& table_name,
                             const SampleSpec& spec);

/// Returns a copy of `plan` with ALL sampling annotations removed — the
/// exact-execution twin used for fallbacks and ground-truth comparisons.
PlanPtr StripSamples(const PlanPtr& plan);

/// Names of all tables scanned by the plan, in scan order.
std::vector<std::string> ScannedTables(const PlanPtr& plan);

/// The SUM/COUNT scale-up factor implied by sampling annotations in `plan`:
/// the product of 1/rate over all sampled scans (each sampled table thins
/// the aggregate input independently).
double SampleScaleFactor(const PlanPtr& plan);

}  // namespace core
}  // namespace aqp

#endif  // AQP_CORE_REWRITER_H_
