#ifndef AQP_CORE_DRIFT_BASELINE_H_
#define AQP_CORE_DRIFT_BASELINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/memory_tracker.h"
#include "common/result.h"
#include "sketch/drift.h"
#include "storage/table.h"

namespace aqp {
namespace core {

/// Per-table drift signature: one ColumnDriftSketch per column, captured at
/// synopsis build time (the baseline, cached next to the sample) and again
/// later by the DriftMonitor (the current state). ScoreDrift compares a
/// pair and rolls the per-column scores up to one staleness number.
struct TableDriftBaseline {
  std::string table;
  uint64_t catalog_version = 0;
  uint64_t rows = 0;
  double built_unix_seconds = 0.0;  // Wall-clock capture time.
  std::vector<std::pair<std::string, sketch::ColumnDriftSketch>> columns;

  uint64_t ApproxBytes() const;
};

struct DriftBaselineOptions {
  sketch::DriftSketchOptions sketch;
  /// Scan at most this many leading rows (0 = all). The monitor uses this
  /// to bound re-scan cost on huge tables; build-time baselines scan all.
  uint64_t max_rows = 0;
};

/// Scans `table` once (typed column spans, morsel-sized cancellation
/// checks) and builds the per-column drift sketches. The sketch footprint
/// is charged to `tracker` for the duration of the build and released
/// before returning — the caller re-charges ApproxBytes() if it retains
/// the result (SynopsisCache folds it into the entry's byte accounting).
Result<TableDriftBaseline> BuildDriftBaseline(
    const Table& table, const std::string& name,
    uint64_t catalog_version, const DriftBaselineOptions& opts = {},
    MemoryTracker* tracker = nullptr,
    const CancellationToken* cancel = nullptr);

/// One column's contribution to a table-level drift report.
struct ColumnDriftEntry {
  std::string column;
  sketch::ColumnDriftScore score;
};

/// Table-level drift roll-up: per-column decompositions plus the component
/// maxima and the overall staleness score (max over columns — one badly
/// drifted column is enough to make a synopsis lie).
struct TableDriftReport {
  std::string table;
  double score = 0.0;
  double ks = 0.0;
  double domain_churn = 0.0;
  double hh_turnover = 0.0;
  double moment_shift = 0.0;
  std::vector<ColumnDriftEntry> columns;
  /// Name of the column with the highest score ("" when no columns).
  std::string worst_column;
};

/// Scores `current` against `baseline`, matching columns by name; columns
/// present in only one side score 1 (schema drift is total drift).
TableDriftReport ScoreDrift(const TableDriftBaseline& baseline,
                            const TableDriftBaseline& current);

}  // namespace core
}  // namespace aqp

#endif  // AQP_CORE_DRIFT_BASELINE_H_
