#ifndef AQP_CORE_ESTIMATE_H_
#define AQP_CORE_ESTIMATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "engine/aggregate.h"
#include "sampling/ht_estimator.h"
#include "sampling/sample.h"

namespace aqp {
namespace core {

/// Per-group, per-aggregate point estimates with estimator variances,
/// computed unit-aware (blocks stay blocks) from a design-carrying Sample.
struct GroupedEstimates {
  Table group_keys;  // One row per group; empty schema for global queries.
  /// estimates[a][g]: aggregate a of group g.
  std::vector<std::vector<PointEstimate>> estimates;
  size_t num_groups = 0;
};

/// Estimates each (linear) aggregate per group over the sampled population.
/// Aggregates must be SUM / COUNT / COUNT(*) / AVG; group_exprs may be empty
/// (one global group, present even if the sample is empty).
///
/// This is the estimation core of the approximate executor: the Sample's
/// rows are the query's aggregate input (already filtered/joined), its
/// weights and unit ids carry the design, and the group totals per sampling
/// unit drive Horvitz–Thompson totals and linearized AVG ratios exactly as
/// in sampling/ht_estimator.h, but for many groups at once.
Result<GroupedEstimates> EstimateGroupedAggregates(
    const Sample& sample, const std::vector<ExprPtr>& group_exprs,
    const std::vector<AggSpec>& aggs);

}  // namespace core
}  // namespace aqp

#endif  // AQP_CORE_ESTIMATE_H_
