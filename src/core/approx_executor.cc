#include "core/approx_executor.h"

#include <chrono>
#include <cmath>
#include <unordered_map>

#include "common/cancellation.h"
#include "common/check.h"
#include "common/memory_tracker.h"
#include "core/contract.h"
#include "core/estimate.h"
#include "core/missing_groups.h"
#include "core/result_assembly.h"
#include "obs/metrics.h"
#include "sampling/bernoulli.h"
#include "sampling/block.h"
#include "sql/parser.h"

namespace aqp {
namespace core {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

sql::SqlExprPtr ColumnExpr(std::string name) {
  auto e = std::make_shared<sql::SqlExpr>();
  e->kind = sql::SqlExpr::Kind::kColumn;
  e->column = std::move(name);
  return e;
}

// The pre-aggregation twin of the user query: selects the group keys, the
// aggregate arguments, and the sample-design columns, keeping FROM / JOIN /
// WHERE, dropping aggregation and everything after it.
sql::SelectStmt FlattenStatement(const sql::SelectStmt& stmt,
                                 const sql::BoundQuery& bound) {
  sql::SelectStmt flat;
  for (size_t g = 0; g < stmt.group_by.size(); ++g) {
    flat.items.push_back({stmt.group_by[g], "__g" + std::to_string(g)});
  }
  for (size_t a = 0; a < bound.aggregates.size(); ++a) {
    const sql::BoundAggregate& agg = bound.aggregates[a];
    if (agg.kind == AggKind::kCountStar) continue;
    // Re-parse is unnecessary: the bound aggregate already carries the
    // lowered engine expression, but the flattened statement needs SQL AST
    // items; we reference the original AST via the display text is fragile,
    // so instead we walk the original items to find the arg ASTs.
    flat.items.push_back({nullptr, "__arg" + std::to_string(a)});
  }
  flat.from = stmt.from;
  flat.from.sample = SampleSpec{};  // Sampling happens via table substitution.
  flat.joins = stmt.joins;
  for (sql::JoinClause& join : flat.joins) join.table.sample = SampleSpec{};
  flat.where = stmt.where;
  flat.items.push_back({ColumnExpr("__unit"), "__unit"});
  flat.items.push_back({ColumnExpr("__weight"), "__weight"});
  return flat;
}

// Finds the AST of each bound aggregate's argument by display text, walking
// the select items and HAVING.
void CollectAggAsts(const sql::SqlExprPtr& e,
                    std::unordered_map<std::string, sql::SqlExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == sql::SqlExpr::Kind::kAggCall) {
    out->emplace(e->ToString(), e);
    return;
  }
  for (const sql::SqlExprPtr& c : e->children) CollectAggAsts(c, out);
}

// Counts occurrences of each aggregate display inside one select item.
void CountAggOccurrences(const sql::SqlExprPtr& e,
                         std::unordered_map<std::string, int>* counts) {
  if (e == nullptr) return;
  if (e->kind == sql::SqlExpr::Kind::kAggCall) {
    (*counts)[e->ToString()]++;
    return;
  }
  for (const sql::SqlExprPtr& c : e->children) CountAggOccurrences(c, counts);
}

// Copies the sample's table and appends the design columns __unit / __weight.
Result<Table> WithDesignColumns(const Sample& sample) {
  Schema schema = sample.table.schema();
  schema.AddField({"__unit", DataType::kInt64});
  schema.AddField({"__weight", DataType::kDouble});
  std::vector<Column> cols;
  cols.reserve(schema.num_fields());
  for (size_t c = 0; c < sample.table.num_columns(); ++c) {
    cols.push_back(sample.table.column(c));
  }
  Column unit(DataType::kInt64);
  Column weight(DataType::kDouble);
  unit.Reserve(sample.num_rows());
  weight.Reserve(sample.num_rows());
  for (size_t i = 0; i < sample.num_rows(); ++i) {
    unit.AppendInt64(static_cast<int64_t>(sample.unit_ids[i]));
    weight.AppendDouble(sample.weights[i]);
  }
  cols.push_back(std::move(unit));
  cols.push_back(std::move(weight));
  return Table::Make(std::move(schema), std::move(cols));
}

// Rebuilds a design-carrying Sample from the flattened-query output (which
// has __unit and __weight columns), inheriting the design metadata of the
// base-table sample `design`.
Result<Sample> ReconstituteSample(Table result, const Sample& design) {
  Sample sample;
  AQP_ASSIGN_OR_RETURN(size_t unit_col, result.ColumnIndex("__unit"));
  AQP_ASSIGN_OR_RETURN(size_t weight_col, result.ColumnIndex("__weight"));
  sample.unit_ids.reserve(result.num_rows());
  sample.weights.reserve(result.num_rows());
  for (size_t i = 0; i < result.num_rows(); ++i) {
    sample.unit_ids.push_back(
        static_cast<uint32_t>(result.column(unit_col).Int64At(i)));
    sample.weights.push_back(result.column(weight_col).DoubleAt(i));
  }
  sample.num_units_sampled = design.num_units_sampled;
  sample.unit_sizes = design.unit_sizes;
  sample.num_units_population = design.num_units_population;
  sample.nominal_rate = design.nominal_rate;
  sample.population_rows = design.population_rows;
  sample.table = std::move(result);
  return sample;
}

}  // namespace

double MaxRelativeCiHalfWidth(
    const std::vector<std::vector<stats::ConfidenceInterval>>& cis) {
  double worst = 0.0;
  for (const auto& row : cis) {
    for (const stats::ConfidenceInterval& ci : row) {
      double r = ci.relative_half_width();
      if (std::isfinite(r)) worst = std::max(worst, r);
    }
  }
  return worst;
}

ApproxExecutor::ApproxExecutor(const Catalog* catalog, AqpOptions options)
    : catalog_(catalog), options_(options) {
  AQP_CHECK(catalog != nullptr);
}

Result<ApproxResult> ApproxExecutor::Execute(std::string_view sql,
                                             obs::QueryTrace* parent_trace) {
  ++invocation_;
  const Clock::time_point start = Clock::now();
  const bool instrumented = obs::Enabled();

  ApproxResult result;
  obs::ExecutionProfile& prof = result.profile;
  prof.query = std::string(sql);
  prof.executor = "online-two-stage";
  // An externally owned parent trace (service tier) takes precedence over
  // the profile's local trace so the submission gets one span tree; the
  // parent's Finish() stays with its owner.
  const bool external_trace = parent_trace != nullptr;
  obs::QueryTrace* tr =
      external_trace ? parent_trace : (instrumented ? &prof.trace : nullptr);

  obs::TraceSpan parse_span = obs::MaybeSpan(tr, "parse");
  AQP_ASSIGN_OR_RETURN(sql::SelectStmt stmt, sql::Parse(sql));
  parse_span.End();
  obs::TraceSpan bind_span = obs::MaybeSpan(tr, "bind");
  AQP_ASSIGN_OR_RETURN(sql::BoundQuery bound, sql::Bind(stmt, *catalog_));
  bind_span.End();

  if (stmt.error_spec.has_value()) {
    obs::ContractReport contract;
    contract.requested_error = stmt.error_spec->relative_error;
    contract.requested_confidence = stmt.error_spec->confidence;
    prof.contract = contract;
  }

  // Mirrors the scalar result fields into the profile and records the
  // query-level metrics; every exit path funnels through here.
  auto finish = [&]() {
    prof.approximated = result.approximated;
    prof.fallback_reason = result.fallback_reason;
    prof.sampled_table = result.sampled_table;
    prof.sampled_fraction = result.approximated ? result.final_rate : 1.0;
    prof.rows_scanned = result.exec_stats.rows_scanned;
    prof.blocks_read = result.exec_stats.blocks_read;
    prof.rows_joined = result.exec_stats.rows_joined;
    prof.pilot_seconds = result.pilot_seconds;
    prof.planning_seconds = result.planning_seconds;
    prof.final_seconds = result.final_seconds;
    prof.total_seconds = Seconds(start);
    if (result.exec_stats.parallel.morsels > 0) {
      obs::ParallelReport par;
      par.num_threads = options_.exec.ResolvedThreads();
      par.morsels = result.exec_stats.parallel.morsels;
      par.steals = result.exec_stats.parallel.steals;
      par.worker_rows = result.exec_stats.parallel.worker_items;
      prof.parallel = std::move(par);
    }
    prof.estimated_error = MaxRelativeCiHalfWidth(result.cis);
    if (prof.contract.has_value()) {
      prof.contract->achieved_error = prof.estimated_error;
    }
    if (tr != nullptr && !external_trace) prof.trace.Finish();
    if (instrumented) {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      static obs::Counter* queries = reg.GetCounter("aqp_queries_total");
      static obs::Counter* approx =
          reg.GetCounter("aqp_queries_approximated_total");
      static obs::Counter* fallbacks =
          reg.GetCounter("aqp_queries_fallback_total");
      static obs::LatencyHistogram* latency =
          reg.GetHistogram("aqp_query_seconds");
      static obs::LatencyHistogram* pilot_latency =
          reg.GetHistogram("aqp_pilot_seconds");
      queries->Increment();
      (result.approximated ? approx : fallbacks)->Increment();
      latency->Observe(prof.total_seconds);
      if (result.pilot_seconds > 0.0) {
        pilot_latency->Observe(result.pilot_seconds);
      }
    }
  };

  auto fallback = [&](std::string reason) -> Result<ApproxResult> {
    result.approximated = false;
    result.fallback_reason = std::move(reason);
    prof.executor = "exact";
    obs::TraceSpan exact_span = obs::MaybeSpan(tr, "exact-execute");
    AQP_ASSIGN_OR_RETURN(result.table,
                         aqp::Execute(bound.plan, *catalog_,
                                      &result.exec_stats, tr, options_.exec));
    exact_span.End();
    finish();
    return result;
  };

  if (!stmt.error_spec.has_value()) {
    return fallback("no error contract (WITH ERROR clause) given");
  }
  if (!bound.has_aggregates) {
    return fallback("query has no aggregates to approximate");
  }
  std::vector<AggKind> kinds;
  for (const sql::BoundAggregate& agg : bound.aggregates) {
    kinds.push_back(agg.kind);
  }
  if (!ContractCoversAggregates(kinds)) {
    return fallback(
        "non-linear aggregate (MIN/MAX/COUNT DISTINCT/VAR/STDDEV) cannot "
        "carry a sampling error contract");
  }
  if (stmt.having != nullptr) {
    return fallback("HAVING is answered exactly");
  }

  // Pick the largest scanned table above the sampling threshold.
  std::string target_table;
  uint64_t target_rows = 0;
  for (const sql::TableRef& ref : bound.tables) {
    AQP_ASSIGN_OR_RETURN(uint64_t rows, catalog_->Cardinality(ref.table));
    if (rows >= options_.min_table_rows && rows > target_rows) {
      target_rows = rows;
      target_table = ref.table;
    }
  }
  if (target_table.empty()) {
    return fallback("no table is large enough to benefit from sampling");
  }
  AQP_ASSIGN_OR_RETURN(std::shared_ptr<const Table> base,
                       catalog_->Get(target_table));
  prof.sampling_design =
      options_.method == SampleSpec::Method::kSystemBlock
          ? "system-block(block_size=" + std::to_string(options_.block_size) +
                ")"
          : "bernoulli-row";

  // Flattened (pre-aggregation) statement; aggregate-argument items need
  // their original ASTs.
  sql::SelectStmt flat = FlattenStatement(stmt, bound);
  {
    std::unordered_map<std::string, sql::SqlExprPtr> agg_asts;
    for (const sql::SelectItem& item : stmt.items) {
      CollectAggAsts(item.expr, &agg_asts);
    }
    CollectAggAsts(stmt.having, &agg_asts);
    size_t flat_idx = stmt.group_by.size();
    for (size_t a = 0; a < bound.aggregates.size(); ++a) {
      const sql::BoundAggregate& agg = bound.aggregates[a];
      if (agg.kind == AggKind::kCountStar) continue;
      auto it = agg_asts.find(agg.display);
      if (it == agg_asts.end() || it->second->children.empty()) {
        return Status::Internal("lost aggregate argument AST: " + agg.display);
      }
      flat.items[flat_idx].expr = it->second->children[0];
      ++flat_idx;
    }
  }

  // Estimation-side specs over the flattened output's column names.
  std::vector<ExprPtr> group_exprs;
  for (size_t g = 0; g < stmt.group_by.size(); ++g) {
    group_exprs.push_back(Col("__g" + std::to_string(g)));
  }
  std::vector<AggSpec> agg_specs;
  for (size_t a = 0; a < bound.aggregates.size(); ++a) {
    const sql::BoundAggregate& agg = bound.aggregates[a];
    ExprPtr arg = agg.kind == AggKind::kCountStar
                      ? nullptr
                      : Col("__arg" + std::to_string(a));
    agg_specs.push_back({agg.kind, arg, agg.internal_alias});
  }

  // One stage = sample -> substitute -> run flattened query -> estimate.
  auto run_stage =
      [&](const char* stage, double rate,
          uint64_t seed) -> Result<std::pair<GroupedEstimates, ExecStats>> {
    // Stage-boundary cancellation point: a deadline that fires between the
    // pilot and the final pass stops the query before the expensive stage.
    AQP_RETURN_IF_ERROR(CheckCancelled(options_.exec.cancel));
    obs::TraceSpan stage_span = obs::MaybeSpan(tr, stage);
    stage_span.AddAttr("rate", rate);
    obs::TraceSpan draw_span = obs::MaybeSpan(tr, "draw-sample");
    Sample sample;
    ParallelRunStats sampler_stats;
    if (options_.method == SampleSpec::Method::kSystemBlock) {
      AQP_ASSIGN_OR_RETURN(sample,
                           BlockSample(*base, rate, options_.block_size, seed,
                                       options_.exec, &sampler_stats));
    } else {
      AQP_ASSIGN_OR_RETURN(sample, BernoulliRowSample(*base, rate, seed,
                                                      options_.exec,
                                                      &sampler_stats));
    }
    draw_span.AddAttr("rows", static_cast<uint64_t>(sample.num_rows()));
    draw_span.AddAttr("units", static_cast<uint64_t>(sample.num_units_sampled));
    // The draw's gather is the stage's morselized row movement (the
    // vectorized engine path defers everything else zero-copy), so its
    // parallel attribution lives on this span.
    if (sampler_stats.morsels > 0) {
      draw_span.AddAttr("parallel_morsels", sampler_stats.morsels);
      draw_span.AddAttr("parallel_steals", sampler_stats.steals);
    }
    draw_span.End();
    AQP_ASSIGN_OR_RETURN(Table design_table, WithDesignColumns(sample));
    // The design-carrying sample copy is the stage's dominant allocation;
    // charge it against the query budget for the stage's lifetime so a
    // too-small budget trips here rather than in the OS allocator.
    AQP_ASSIGN_OR_RETURN(
        ScopedMemoryCharge stage_charge,
        ScopedMemoryCharge::Make(options_.exec.memory,
                                 design_table.ApproxBytes(), "stage sample"));
    Catalog staged = *catalog_;
    staged.RegisterOrReplace(target_table,
                             std::make_shared<Table>(std::move(design_table)));
    AQP_ASSIGN_OR_RETURN(sql::BoundQuery flat_bound, sql::Bind(flat, staged));
    ExecStats stats;
    stats.parallel.MergeFrom(sampler_stats);
    AQP_ASSIGN_OR_RETURN(Table flat_out,
                         aqp::Execute(flat_bound.plan, staged, &stats, tr,
                                      options_.exec));
    obs::TraceSpan estimate_span = obs::MaybeSpan(tr, "estimate");
    AQP_ASSIGN_OR_RETURN(Sample joined,
                         ReconstituteSample(std::move(flat_out), sample));
    AQP_ASSIGN_OR_RETURN(GroupedEstimates estimates,
                         EstimateGroupedAggregates(joined, group_exprs,
                                                   agg_specs));
    estimate_span.AddAttr("groups",
                          static_cast<uint64_t>(estimates.num_groups));
    return std::make_pair(std::move(estimates), stats);
  };

  // ---- Stage 1: pilot --------------------------------------------------
  Clock::time_point t0 = Clock::now();
  const uint64_t population_units =
      options_.method == SampleSpec::Method::kSystemBlock
          ? base->NumBlocks(options_.block_size)
          : base->num_rows();
  double pilot_rate = options_.pilot_rate;
  // The pilot itself must see enough units for its variance estimates to
  // mean anything.
  if (population_units > 0) {
    pilot_rate = std::max(
        pilot_rate, std::min(0.5, static_cast<double>(options_.min_units) /
                                      static_cast<double>(population_units)));
  }
  if (!stmt.group_by.empty()) {
    pilot_rate = std::max(
        pilot_rate,
        BlockRateForGroupCoverage(options_.min_group_rows,
                                  options_.method ==
                                          SampleSpec::Method::kSystemBlock
                                      ? options_.block_size
                                      : 1,
                                  /*delta=*/0.05));
    pilot_rate = std::min(pilot_rate, 0.5);
  }
  AQP_ASSIGN_OR_RETURN(
      auto pilot,
      run_stage("pilot", pilot_rate, options_.seed + invocation_ * 2));
  result.exec_stats = pilot.second;
  result.pilot_seconds = Seconds(t0);
  prof.pilot_rate = pilot_rate;
  prof.pilot_rows_scanned = pilot.second.rows_scanned;

  // ---- Stage 2: plan -----------------------------------------------------
  Clock::time_point t1 = Clock::now();
  obs::TraceSpan plan_span = obs::MaybeSpan(tr, "plan");
  size_t pilot_groups = std::max<size_t>(pilot.first.num_groups, 1);
  size_t num_estimates = pilot_groups * bound.aggregates.size();
  // Composite items split the error budget across their factors.
  int max_factors = 1;
  for (const sql::SelectItem& item : stmt.items) {
    std::unordered_map<std::string, int> counts;
    CountAggOccurrences(item.expr, &counts);
    int factors = 0;
    for (const auto& [display, c] : counts) factors += c;
    max_factors = std::max(max_factors, factors);
  }
  sql::ErrorSpec spec = *stmt.error_spec;
  PerEstimateTarget target = AllocateContract(spec, num_estimates);
  target.relative_error =
      AllocateCompositeError(target.relative_error, max_factors);

  PlanningInputs inputs;
  inputs.pilot = &pilot.first;
  inputs.pilot_rate = pilot_rate;
  inputs.target = target;
  inputs.max_rate = options_.max_rate;
  inputs.safety_factor = options_.safety_factor;
  inputs.min_units = options_.min_units;
  inputs.population_units = population_units;
  SamplingPlan plan = PlanSamplingRate(inputs);
  result.planning_seconds = Seconds(t1);
  prof.worst_required_rate = plan.worst_required_rate;
  plan_span.AddAttr("estimates", static_cast<uint64_t>(num_estimates));
  plan_span.AddAttr("planned_rate", plan.rate);
  plan_span.AddAttr("feasible", plan.feasible ? "true" : "false");
  plan_span.End();
  if (!plan.feasible) {
    return fallback("sampling plan infeasible: " + plan.reason);
  }

  // ---- Stage 3: final ----------------------------------------------------
  Clock::time_point t2 = Clock::now();
  AQP_ASSIGN_OR_RETURN(
      auto final_stage,
      run_stage("final", plan.rate, options_.seed + invocation_ * 2 + 1));
  const GroupedEstimates& estimates = final_stage.first;
  result.exec_stats.rows_scanned += final_stage.second.rows_scanned;
  result.exec_stats.blocks_read += final_stage.second.blocks_read;
  result.exec_stats.rows_joined += final_stage.second.rows_joined;
  result.exec_stats.parallel.MergeFrom(final_stage.second.parallel);

  // Materialize the estimates into the exact query's output shape with
  // per-cell confidence intervals.
  obs::TraceSpan assemble_span = obs::MaybeSpan(tr, "assemble");
  AQP_ASSIGN_OR_RETURN(AssembledResult assembled,
                       AssembleOutput(stmt, bound, estimates, *catalog_,
                                      target.confidence));
  assemble_span.End();
  result.table = std::move(assembled.table);
  result.cis = std::move(assembled.cis);

  result.approximated = true;
  result.final_rate = plan.rate;
  result.sampled_table = target_table;
  result.final_seconds = Seconds(t2);
  finish();
  return result;
}

}  // namespace core
}  // namespace aqp
