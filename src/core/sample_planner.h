#ifndef AQP_CORE_SAMPLE_PLANNER_H_
#define AQP_CORE_SAMPLE_PLANNER_H_

#include <string>
#include <vector>

#include "core/contract.h"
#include "core/estimate.h"

namespace aqp {
namespace core {

/// Inputs to rate planning: what the pilot saw, and the design parameters
/// under which the final sample will be drawn.
struct PlanningInputs {
  /// Pilot estimates (per aggregate per group), computed unit-aware from a
  /// pilot sample drawn at `pilot_rate`.
  const GroupedEstimates* pilot = nullptr;
  double pilot_rate = 0.0;
  /// Per-estimate contract target after Boole allocation.
  PerEstimateTarget target;
  /// Planner caps: rates above max_rate are declared infeasible (sampling
  /// overhead makes them slower than exact execution).
  double max_rate = 0.1;
  /// Multiplier on the required rate to absorb pilot-estimate noise.
  double safety_factor = 2.0;
  /// CLT hygiene: the final sample must be expected to contain at least
  /// `min_units` sampling units (the literature's "n >= 30" rule); the rate
  /// is floored at min_units / population_units when population_units > 0.
  uint64_t min_units = 30;
  uint64_t population_units = 0;
};

/// Outcome of rate planning.
struct SamplingPlan {
  bool feasible = false;
  double rate = 1.0;        // Final sampling rate when feasible.
  std::string reason;       // Why infeasible (diagnostic).
  double worst_required_rate = 0.0;  // Before capping, for diagnostics.
};

/// Chooses the smallest Bernoulli unit-sampling rate that makes every
/// (aggregate, group) estimate meet the per-estimate target, by inverting
/// the HT variance law:
///
///   Var_r(T_hat) ~ ((1 - r) / r) * S2,  with S2 estimated from the pilot as
///   S2_hat = (pilot_rate) * sum of w_u(w_u-1) y_u^2-style terms — i.e. the
///   pilot's variance estimate rescaled from pilot_rate to rate r:
///   Var_r = Var_pilot * ((1-r)/r) / ((1-p)/p).
///
/// Requiring z^2 * Var_r <= (eps * |T|)^2 and solving for r gives the
/// per-estimate required rate; the plan takes the max over estimates, then
/// applies the safety factor and the max_rate cap. Estimates with |T| == 0
/// (empty pilot groups) are skipped — group coverage is handled separately
/// via core/missing_groups.h.
SamplingPlan PlanSamplingRate(const PlanningInputs& inputs);

}  // namespace core
}  // namespace aqp

#endif  // AQP_CORE_SAMPLE_PLANNER_H_
