#ifndef AQP_CORE_MISSING_GROUPS_H_
#define AQP_CORE_MISSING_GROUPS_H_

#include <cstdint>
#include <vector>

namespace aqp {
namespace core {

/// Probability that BLOCK sampling at `rate` misses every block containing a
/// group of `group_size` rows spread over blocks of `block_size` rows: the
/// group occupies at least ceil(group_size / block_size) blocks, so the miss
/// probability is at most (1 - rate)^ceil(m/b). A group clustered into few
/// blocks is the worst case — exactly the statistical-efficiency tax of
/// block sampling on clustered layouts.
double BlockGroupMissProbability(uint64_t group_size, uint32_t block_size,
                                 double rate);

/// Minimum block sampling rate so any group with at least `group_size` rows
/// survives into the sample with probability >= 1 - delta.
double BlockRateForGroupCoverage(uint64_t group_size, uint32_t block_size,
                                 double delta);

/// Expected number of groups missed, given per-group sizes, under Bernoulli
/// row sampling at `rate` (sum of per-group miss probabilities).
double ExpectedMissedGroups(const std::vector<uint64_t>& group_sizes,
                            double rate);

}  // namespace core
}  // namespace aqp

#endif  // AQP_CORE_MISSING_GROUPS_H_
