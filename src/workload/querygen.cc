#include "workload/querygen.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/str_util.h"
#include "stats/descriptive.h"

namespace aqp {
namespace workload {

QueryGenerator::QueryGenerator(const Table& table, QueryGenOptions options)
    : table_(table), options_(std::move(options)) {}

std::vector<std::string> QueryGenerator::DriftedOrder(
    const std::vector<std::string>& candidates) const {
  std::vector<std::string> order = candidates;
  if (order.empty()) return order;
  // drift = 0 keeps the training order; drift = 1 rotates maximally
  // (size - 1 positions) rather than wrapping back to the identity.
  size_t shift = static_cast<size_t>(
      std::llround(options_.drift * static_cast<double>(order.size() - 1)));
  shift %= order.size();
  std::rotate(order.begin(), order.begin() + static_cast<int64_t>(shift),
              order.end());
  return order;
}

Result<std::vector<QuerySpec>> QueryGenerator::Generate(size_t n,
                                                        uint64_t seed) const {
  if (options_.numeric_columns.empty()) {
    return Status::InvalidArgument("no numeric columns to aggregate");
  }
  std::vector<std::string> agg_order = DriftedOrder(options_.numeric_columns);
  std::vector<std::string> pred_order =
      DriftedOrder(options_.predicate_columns);
  std::vector<std::string> group_order =
      DriftedOrder(options_.group_by_columns);

  Pcg32 rng(seed);
  ZipfGenerator agg_pick(agg_order.size(), options_.column_skew);
  std::unique_ptr<ZipfGenerator> pred_pick;
  if (!pred_order.empty()) {
    pred_pick = std::make_unique<ZipfGenerator>(pred_order.size(),
                                                options_.column_skew);
  }
  std::unique_ptr<ZipfGenerator> group_pick;
  if (!group_order.empty()) {
    group_pick = std::make_unique<ZipfGenerator>(group_order.size(),
                                                 options_.column_skew);
  }

  std::vector<QuerySpec> out;
  out.reserve(n);
  for (size_t q = 0; q < n; ++q) {
    QuerySpec spec;
    spec.aggregate_column = agg_order[agg_pick.Next(rng)];
    std::string agg_fn = (rng.NextUint32() % 2 == 0) ? "SUM" : "AVG";
    std::string select =
        "SELECT " + agg_fn + "(" + spec.aggregate_column + ") AS agg_value";
    std::string group_clause;
    if (group_pick != nullptr &&
        rng.NextDouble() < options_.group_by_probability) {
      spec.group_by_column = group_order[group_pick->Next(rng)];
      select = "SELECT " + spec.group_by_column + ", " + agg_fn + "(" +
               spec.aggregate_column + ") AS agg_value";
      group_clause = " GROUP BY " + spec.group_by_column;
    }
    std::string where_clause;
    if (pred_pick != nullptr &&
        rng.NextDouble() < options_.predicate_probability) {
      spec.predicate_column = pred_order[pred_pick->Next(rng)];
      // Calibrate "col <= q-quantile" to a random target selectivity.
      double sel = std::pow(10.0, -2.0 * rng.NextDouble());  // 1% .. 100%.
      spec.target_selectivity = sel;
      AQP_ASSIGN_OR_RETURN(size_t idx,
                           table_.ColumnIndex(spec.predicate_column));
      const Column& col = table_.column(idx);
      if (!IsNumeric(col.type())) {
        return Status::InvalidArgument("predicate column not numeric: " +
                                       spec.predicate_column);
      }
      std::vector<double> values;
      // Quantile from a cheap fixed-size probe of the column.
      size_t step = std::max<size_t>(1, table_.num_rows() / 10000);
      for (size_t i = 0; i < table_.num_rows(); i += step) {
        if (!col.IsNull(i)) values.push_back(col.NumericAt(i));
      }
      if (!values.empty()) {
        double threshold = stats::ExactQuantile(std::move(values), sel);
        where_clause = " WHERE " + spec.predicate_column +
                       " <= " + FormatDouble(threshold);
      }
    }
    spec.sql = select + " FROM " + options_.table + where_clause +
               group_clause;
    if (!options_.error_clause.empty()) {
      spec.sql += " " + options_.error_clause;
    }
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace workload
}  // namespace aqp
