#include "workload/datagen.h"

#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace aqp {
namespace workload {
namespace {

DataType SpecType(const ColumnSpec& spec) {
  switch (spec.dist) {
    case ColumnSpec::Dist::kSequential:
    case ColumnSpec::Dist::kUniformInt:
    case ColumnSpec::Dist::kZipfInt:
      return DataType::kInt64;
    case ColumnSpec::Dist::kCategorical:
      return DataType::kString;
    default:
      return DataType::kDouble;
  }
}

}  // namespace

Result<Table> GenerateTable(const std::vector<ColumnSpec>& specs, size_t rows,
                            uint64_t seed) {
  if (specs.empty()) return Status::InvalidArgument("no column specs");
  Schema schema;
  for (const ColumnSpec& spec : specs) {
    schema.AddField({spec.name, SpecType(spec)});
    if (spec.dist == ColumnSpec::Dist::kCategorical &&
        spec.categories.empty()) {
      return Status::InvalidArgument("categorical column " + spec.name +
                                     " has no categories");
    }
    if (spec.dist == ColumnSpec::Dist::kUniformInt &&
        spec.max_value < spec.min_value) {
      return Status::InvalidArgument("bad range for " + spec.name);
    }
  }
  Table table(schema);

  // One RNG stream per column keeps columns independent and layouts stable
  // when a column spec changes.
  std::vector<Pcg32> rngs;
  std::vector<std::unique_ptr<ZipfGenerator>> zipfs(specs.size());
  for (size_t c = 0; c < specs.size(); ++c) {
    rngs.emplace_back(seed, /*stream=*/c + 1);
    const ColumnSpec& spec = specs[c];
    if (spec.dist == ColumnSpec::Dist::kZipfInt) {
      zipfs[c] = std::make_unique<ZipfGenerator>(spec.cardinality,
                                                 spec.zipf_s);
    } else if (spec.dist == ColumnSpec::Dist::kCategorical) {
      zipfs[c] = std::make_unique<ZipfGenerator>(spec.categories.size(),
                                                 spec.zipf_s);
    }
  }

  for (size_t c = 0; c < specs.size(); ++c) {
    const ColumnSpec& spec = specs[c];
    Column& col = table.mutable_column(c);
    col.Reserve(rows);
    Pcg32& rng = rngs[c];
    for (size_t i = 0; i < rows; ++i) {
      switch (spec.dist) {
        case ColumnSpec::Dist::kSequential:
          col.AppendInt64(static_cast<int64_t>(i));
          break;
        case ColumnSpec::Dist::kUniformInt:
          col.AppendInt64(spec.min_value +
                          static_cast<int64_t>(rng.UniformUint64(
                              static_cast<uint64_t>(spec.max_value -
                                                    spec.min_value + 1))));
          break;
        case ColumnSpec::Dist::kZipfInt:
          col.AppendInt64(static_cast<int64_t>(zipfs[c]->Next(rng)));
          break;
        case ColumnSpec::Dist::kUniformDouble:
          col.AppendDouble(static_cast<double>(spec.min_value) +
                           rng.NextDouble() *
                               static_cast<double>(spec.max_value -
                                                   spec.min_value));
          break;
        case ColumnSpec::Dist::kNormal:
          col.AppendDouble(spec.mean + spec.stddev * rng.Gaussian());
          break;
        case ColumnSpec::Dist::kExponential:
          col.AppendDouble(rng.Exponential(spec.rate));
          break;
        case ColumnSpec::Dist::kPareto: {
          double u = rng.NextDouble() + 1e-12;
          col.AppendDouble(std::pow(u, -1.0 / spec.pareto_alpha));
          break;
        }
        case ColumnSpec::Dist::kCategorical:
          col.AppendString(spec.categories[zipfs[c]->Next(rng)]);
          break;
      }
    }
  }
  // Rebuild through Make so num_rows is consistent.
  std::vector<Column> cols;
  cols.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    cols.push_back(table.column(c));
  }
  return Table::Make(schema, std::move(cols));
}

Result<Catalog> GenerateStarSchema(const StarSchemaSpec& spec, uint64_t seed) {
  Catalog catalog;
  // Dimensions.
  for (size_t d = 0; d < spec.dim_sizes.size(); ++d) {
    Table dim(Schema({{"pk", DataType::kInt64},
                      {"attr", DataType::kString},
                      {"band", DataType::kInt64}}));
    for (uint64_t k = 0; k < spec.dim_sizes[d]; ++k) {
      AQP_RETURN_IF_ERROR(
          dim.AppendRow({Value(static_cast<int64_t>(k)),
                         Value("v" + std::to_string(k % 50)),
                         Value(static_cast<int64_t>(k % 10))}));
    }
    AQP_RETURN_IF_ERROR(catalog.Register(
        "dim_" + std::to_string(d),
        std::make_shared<Table>(std::move(dim))));
  }
  // Fact.
  std::vector<ColumnSpec> fact_specs;
  {
    ColumnSpec id;
    id.name = "id";
    id.dist = ColumnSpec::Dist::kSequential;
    fact_specs.push_back(id);
  }
  for (size_t d = 0; d < spec.dim_sizes.size(); ++d) {
    ColumnSpec fk;
    fk.name = "fk_" + std::to_string(d);
    fk.dist = ColumnSpec::Dist::kZipfInt;
    fk.cardinality = spec.dim_sizes[d];
    fk.zipf_s = spec.fk_skew;
    fact_specs.push_back(fk);
  }
  for (uint32_t m = 0; m < spec.num_measures; ++m) {
    ColumnSpec measure;
    measure.name = "measure_" + std::to_string(m);
    if (m % 2 == 0) {
      measure.dist = ColumnSpec::Dist::kExponential;
      measure.rate = 1.0;
    } else {
      measure.dist = ColumnSpec::Dist::kNormal;
      measure.mean = 100.0;
      measure.stddev = 20.0;
    }
    fact_specs.push_back(measure);
  }
  AQP_ASSIGN_OR_RETURN(Table fact,
                       GenerateTable(fact_specs, spec.fact_rows, seed));
  AQP_RETURN_IF_ERROR(
      catalog.Register("fact", std::make_shared<Table>(std::move(fact))));
  return catalog;
}

Result<Catalog> GenerateLineitemLike(size_t lineitem_rows, uint64_t seed) {
  Catalog catalog;
  const uint64_t num_orders = std::max<uint64_t>(lineitem_rows / 4, 1);
  static const char* kModes[] = {"AIR",  "RAIL", "SHIP",
                                 "TRUCK", "MAIL", "FOB"};
  static const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                      "4-NOT SPECIFIED", "5-LOW"};

  std::vector<ColumnSpec> li_specs;
  {
    ColumnSpec orderkey;
    orderkey.name = "orderkey";
    orderkey.dist = ColumnSpec::Dist::kUniformInt;
    orderkey.min_value = 0;
    orderkey.max_value = static_cast<int64_t>(num_orders) - 1;
    li_specs.push_back(orderkey);

    ColumnSpec suppkey;
    suppkey.name = "suppkey";
    suppkey.dist = ColumnSpec::Dist::kZipfInt;
    suppkey.cardinality = 1000;
    suppkey.zipf_s = 0.8;
    li_specs.push_back(suppkey);

    ColumnSpec quantity;
    quantity.name = "quantity";
    quantity.dist = ColumnSpec::Dist::kUniformInt;
    quantity.min_value = 1;
    quantity.max_value = 50;
    li_specs.push_back(quantity);

    ColumnSpec price;
    price.name = "extendedprice";
    price.dist = ColumnSpec::Dist::kPareto;
    price.pareto_alpha = 2.5;
    li_specs.push_back(price);

    ColumnSpec discount;
    discount.name = "discount";
    discount.dist = ColumnSpec::Dist::kUniformDouble;
    discount.min_value = 0;
    discount.max_value = 1;  // Scaled below via expression in queries (0-10%).
    li_specs.push_back(discount);

    ColumnSpec mode;
    mode.name = "shipmode";
    mode.dist = ColumnSpec::Dist::kCategorical;
    mode.zipf_s = 0.5;
    mode.categories.assign(std::begin(kModes), std::end(kModes));
    li_specs.push_back(mode);
  }
  AQP_ASSIGN_OR_RETURN(Table lineitem,
                       GenerateTable(li_specs, lineitem_rows, seed));

  std::vector<ColumnSpec> ord_specs;
  {
    ColumnSpec orderkey;
    orderkey.name = "orderkey";
    orderkey.dist = ColumnSpec::Dist::kSequential;
    ord_specs.push_back(orderkey);

    ColumnSpec custkey;
    custkey.name = "custkey";
    custkey.dist = ColumnSpec::Dist::kZipfInt;
    custkey.cardinality = 5000;
    custkey.zipf_s = 1.0;
    ord_specs.push_back(custkey);

    ColumnSpec priority;
    priority.name = "orderpriority";
    priority.dist = ColumnSpec::Dist::kCategorical;
    priority.zipf_s = 0.3;
    priority.categories.assign(std::begin(kPriorities),
                               std::end(kPriorities));
    ord_specs.push_back(priority);
  }
  AQP_ASSIGN_OR_RETURN(Table orders,
                       GenerateTable(ord_specs, num_orders, seed + 1));

  AQP_RETURN_IF_ERROR(catalog.Register(
      "lineitem", std::make_shared<Table>(std::move(lineitem))));
  AQP_RETURN_IF_ERROR(
      catalog.Register("orders", std::make_shared<Table>(std::move(orders))));
  return catalog;
}

}  // namespace workload
}  // namespace aqp
