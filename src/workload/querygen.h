#ifndef AQP_WORKLOAD_QUERYGEN_H_
#define AQP_WORKLOAD_QUERYGEN_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "storage/table.h"

namespace aqp {
namespace workload {

/// One generated aggregation query, both as SQL text and as structured
/// pieces experiments can introspect.
struct QuerySpec {
  std::string sql;
  std::string predicate_column;   // Empty if no predicate.
  std::string group_by_column;    // Empty if no grouping.
  std::string aggregate_column;
  double target_selectivity = 1.0;
};

/// Options controlling the random query mix over one table.
struct QueryGenOptions {
  std::string table = "fact";
  std::vector<std::string> numeric_columns;      // Aggregate candidates.
  std::vector<std::string> predicate_columns;    // Numeric filter candidates.
  std::vector<std::string> group_by_columns;     // Grouping candidates.
  double group_by_probability = 0.5;
  double predicate_probability = 0.8;
  /// Column popularity is Zipf(column_skew)-distributed over each candidate
  /// list; `drift` in [0, 1] rotates the popularity ranking by
  /// drift * list-size positions — 0 keeps the training workload, 1 is a
  /// completely shifted workload (the W1 -> W2 drift experiment).
  double column_skew = 1.0;
  double drift = 0.0;
  std::string error_clause;  // e.g. "WITH ERROR 5% CONFIDENCE 95%"; optional.
};

/// Generates a workload of aggregation queries over `table` (which must be
/// present so predicate thresholds can be calibrated to the requested
/// selectivity via its empirical quantiles).
class QueryGenerator {
 public:
  QueryGenerator(const Table& table, QueryGenOptions options);

  /// Generates `n` query specs, deterministic per seed.
  Result<std::vector<QuerySpec>> Generate(size_t n, uint64_t seed) const;

  /// The popularity-ordered candidate list after applying drift (exposed so
  /// experiments can verify the shift).
  std::vector<std::string> DriftedOrder(
      const std::vector<std::string>& candidates) const;

 private:
  const Table& table_;
  QueryGenOptions options_;
};

}  // namespace workload
}  // namespace aqp

#endif  // AQP_WORKLOAD_QUERYGEN_H_
