#ifndef AQP_WORKLOAD_DATAGEN_H_
#define AQP_WORKLOAD_DATAGEN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/catalog.h"
#include "storage/table.h"

namespace aqp {
namespace workload {

/// Distribution of one generated column.
struct ColumnSpec {
  enum class Dist {
    kSequential,     // 0, 1, 2, ... (row id).
    kUniformInt,     // Uniform integer in [min_value, max_value].
    kZipfInt,        // Zipf(zipf_s) rank over [0, cardinality).
    kUniformDouble,  // Uniform double in [min_value, max_value].
    kNormal,         // N(mean, stddev^2).
    kExponential,    // Exp(rate).
    kPareto,         // Heavy tail: u^(-1/pareto_alpha).
    kCategorical,    // Zipf(zipf_s)-weighted pick from `categories`.
  };

  std::string name;
  Dist dist = Dist::kUniformDouble;
  int64_t min_value = 0;
  int64_t max_value = 100;
  uint64_t cardinality = 100;  // For kZipfInt.
  double zipf_s = 1.0;
  double mean = 0.0;
  double stddev = 1.0;
  double rate = 1.0;
  double pareto_alpha = 1.5;
  std::vector<std::string> categories;
};

/// Generates `rows` rows with one column per spec. Deterministic per seed.
Result<Table> GenerateTable(const std::vector<ColumnSpec>& specs, size_t rows,
                            uint64_t seed);

/// A star schema: one fact table with FK columns referencing dimension
/// tables (FK skew controlled by zipf_s), measure columns on the fact.
struct StarSchemaSpec {
  size_t fact_rows = 100000;
  std::vector<uint64_t> dim_sizes = {100, 1000};
  double fk_skew = 0.5;       // Zipf exponent of FK popularity.
  uint32_t num_measures = 2;  // measure_0 ~ Exp(1), measure_1 ~ N(100, 20).
};

/// Tables: "fact" (id, fk_0.., measure_0..), "dim_<i>" (pk, attr, band).
/// dim attr is a label "v<k>"; band is pk % 10 (a low-cardinality rollup).
Result<Catalog> GenerateStarSchema(const StarSchemaSpec& spec, uint64_t seed);

/// TPC-H-flavoured pair: "lineitem" (orderkey, suppkey, quantity,
/// extendedprice, discount, shipmode) and "orders" (orderkey, custkey,
/// orderpriority). Sized by `lineitem_rows`; ~1 order per 4 lineitems.
Result<Catalog> GenerateLineitemLike(size_t lineitem_rows, uint64_t seed);

}  // namespace workload
}  // namespace aqp

#endif  // AQP_WORKLOAD_DATAGEN_H_
