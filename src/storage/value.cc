#include "storage/value.h"

#include "common/check.h"
#include "common/str_util.h"

namespace aqp {

std::string_view DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kBool:
      return "BOOL";
  }
  return "UNKNOWN";
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

double Value::AsDouble() const {
  if (is_int64()) return static_cast<double>(int64());
  AQP_CHECK(is_double()) << "AsDouble on non-numeric value " << ToString();
  return dbl();
}

DataType Value::type() const {
  AQP_CHECK(!is_null()) << "type() on NULL value";
  if (is_int64()) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  if (is_string()) return DataType::kString;
  return DataType::kBool;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(int64());
  if (is_double()) return FormatDouble(dbl());
  if (is_bool()) return boolean() ? "true" : "false";
  return str();
}

}  // namespace aqp
