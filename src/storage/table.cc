#include "storage/table.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace aqp {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) columns_.emplace_back(f.type);
}

Result<Table> Table::Make(Schema schema, std::vector<Column> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::InvalidArgument("schema/column count mismatch");
  }
  size_t rows = columns.empty() ? 0 : columns[0].size();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].type() != schema.field(i).type) {
      return Status::InvalidArgument("column " + schema.field(i).name +
                                     " type mismatch");
    }
    if (columns[i].size() != rows) {
      return Status::InvalidArgument("ragged columns: column " +
                                     schema.field(i).name);
    }
  }
  Table t(std::move(schema));
  t.columns_ = std::move(columns);
  t.num_rows_ = rows;
  return t;
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    AQP_RETURN_IF_ERROR(columns_[i].AppendValue(values[i]));
  }
  ++num_rows_;
  return Status::OK();
}

Status Table::Append(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("appending table with different arity");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (other.column(c).type() != columns_[c].type()) {
      return Status::InvalidArgument("appending table with mismatched types");
    }
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    for (size_t i = 0; i < other.num_rows(); ++i) {
      columns_[c].AppendFrom(other.column(c), i);
    }
  }
  num_rows_ += other.num_rows();
  return Status::OK();
}

void Table::AppendRowFrom(const Table& other, size_t i) {
  AQP_DCHECK(other.num_columns() == num_columns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendFrom(other.column(c), i);
  }
  ++num_rows_;
}

Table Table::Take(const std::vector<uint32_t>& indices) const {
  Table out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c] = columns_[c].Take(indices);
  }
  out.num_rows_ = indices.size();
  return out;
}

Table Table::Take(const std::vector<uint32_t>& indices, size_t num_threads,
                  ParallelRunStats* run_stats) const {
  // Always route through ParallelFor: it runs inline (same column order)
  // when one participant suffices, so the result is identical to the serial
  // overload while morsel accounting stays uniform across thread counts.
  Table out(schema_);
  ParallelRunStats rs = ThreadPool::Shared().ParallelFor(
      columns_.size(), /*morsel_items=*/1, num_threads,
      [&](size_t, size_t, size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          out.columns_[c] = columns_[c].Take(indices);
        }
      });
  out.num_rows_ = indices.size();
  if (run_stats != nullptr) run_stats->MergeFrom(rs);
  return out;
}

Table Table::TakeBatch(const std::vector<uint32_t>& indices) const {
  Table out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c] = columns_[c].TakeBatch(indices);
  }
  out.num_rows_ = indices.size();
  return out;
}

Table Table::TakeBatch(const std::vector<uint32_t>& indices,
                       size_t num_threads,
                       ParallelRunStats* run_stats) const {
  // Same ParallelFor routing as Take: inline when one participant suffices,
  // uniform morsel accounting either way.
  Table out(schema_);
  ParallelRunStats rs = ThreadPool::Shared().ParallelFor(
      columns_.size(), /*morsel_items=*/1, num_threads,
      [&](size_t, size_t, size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          out.columns_[c] = columns_[c].TakeBatch(indices);
        }
      });
  out.num_rows_ = indices.size();
  if (run_stats != nullptr) run_stats->MergeFrom(rs);
  return out;
}

Table Table::SliceBatch(size_t offset, size_t length) const {
  Table out(schema_);
  length = offset > num_rows_ ? 0 : std::min(length, num_rows_ - offset);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c] = columns_[c].SliceBatch(offset, length);
  }
  out.num_rows_ = length;
  return out;
}

Table Table::Slice(size_t offset, size_t length) const {
  Table out(schema_);
  length = offset > num_rows_ ? 0 : std::min(length, num_rows_ - offset);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c] = columns_[c].Slice(offset, length);
  }
  out.num_rows_ = length;
  return out;
}

Status Table::RenameColumns(const std::vector<std::string>& names) {
  if (names.size() != num_columns()) {
    return Status::InvalidArgument("rename arity mismatch");
  }
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    fields.push_back(Field{names[i], schema_.field(i).type});
  }
  schema_ = Schema(std::move(fields));
  return Status::OK();
}

size_t Table::NumBlocks(uint32_t block_size) const {
  AQP_CHECK(block_size > 0);
  return (num_rows_ + block_size - 1) / block_size;
}

std::pair<size_t, size_t> Table::BlockRange(size_t b,
                                            uint32_t block_size) const {
  size_t first = b * static_cast<size_t>(block_size);
  size_t last = std::min(first + block_size, num_rows_);
  AQP_CHECK(first <= num_rows_);
  return {first, last};
}

uint64_t Table::ApproxBytes() const {
  uint64_t bytes = 0;
  for (const Column& c : columns_) bytes += c.ApproxBytes();
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream out;
  for (size_t c = 0; c < num_columns(); ++c) {
    if (c > 0) out << " | ";
    out << schema_.field(c).name;
  }
  out << "\n";
  size_t limit = std::min(max_rows, num_rows_);
  for (size_t i = 0; i < limit; ++i) {
    for (size_t c = 0; c < num_columns(); ++c) {
      if (c > 0) out << " | ";
      out << columns_[c].GetValue(i).ToString();
    }
    out << "\n";
  }
  if (limit < num_rows_) {
    out << "... (" << num_rows_ - limit << " more rows)\n";
  }
  return out.str();
}

}  // namespace aqp
