#ifndef AQP_STORAGE_VALUE_H_
#define AQP_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace aqp {

/// Column data types supported by the engine.
enum class DataType {
  kInt64,
  kDouble,
  kString,
  kBool,
};

/// Human-readable type name ("INT64", "DOUBLE", ...).
std::string_view DataTypeName(DataType type);

/// True for INT64 and DOUBLE.
bool IsNumeric(DataType type);

/// A single dynamically-typed cell value; monostate represents SQL NULL.
class Value {
 public:
  /// NULL value.
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(bool v) : v_(v) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }

  int64_t int64() const { return std::get<int64_t>(v_); }
  double dbl() const { return std::get<double>(v_); }
  const std::string& str() const { return std::get<std::string>(v_); }
  bool boolean() const { return std::get<bool>(v_); }

  /// Numeric view: int64 and double cells as double. CHECK-fails otherwise.
  double AsDouble() const;

  /// The DataType of a non-null value. CHECK-fails on NULL.
  DataType type() const;

  /// SQL-ish rendering; NULL prints as "NULL", strings unquoted.
  std::string ToString() const;

  /// Deep equality (NULL == NULL here, unlike SQL three-valued logic; used
  /// for grouping and testing).
  bool operator==(const Value& other) const { return v_ == other.v_; }

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> v_;
};

}  // namespace aqp

#endif  // AQP_STORAGE_VALUE_H_
