#include "storage/schema.h"

#include "common/str_util.h"

namespace aqp {

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  // Pass 1: exact match.
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  // Pass 2: unqualified `name` against qualified fields "<qualifier>.<name>".
  if (name.find('.') == std::string::npos) {
    size_t found = fields_.size();
    int matches = 0;
    std::string suffix = "." + name;
    for (size_t i = 0; i < fields_.size(); ++i) {
      const std::string& f = fields_[i].name;
      if (f.size() > suffix.size() &&
          f.compare(f.size() - suffix.size(), suffix.size(), suffix) == 0) {
        found = i;
        ++matches;
      }
    }
    if (matches == 1) return found;
    if (matches > 1) {
      return Status::InvalidArgument("ambiguous column reference: " + name);
    }
  }
  return Status::NotFound("no column named " + name);
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(fields_.size());
  for (const Field& f : fields_) {
    parts.push_back(f.name + ":" + std::string(DataTypeName(f.type)));
  }
  return Join(parts, ", ");
}

}  // namespace aqp
