#ifndef AQP_STORAGE_CSV_H_
#define AQP_STORAGE_CSV_H_

#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace aqp {

/// Writes `table` as CSV with a header row. Strings containing the delimiter,
/// quotes, or newlines are quoted; NULL is written as an empty field.
Status WriteCsv(const Table& table, const std::string& path, char delim = ',');

/// Reads a CSV file with a header row into a table with the given schema;
/// header names must match the schema field names. Empty fields become NULL.
Result<Table> ReadCsv(const std::string& path, const Schema& schema,
                      char delim = ',');

}  // namespace aqp

#endif  // AQP_STORAGE_CSV_H_
