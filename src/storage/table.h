#ifndef AQP_STORAGE_TABLE_H_
#define AQP_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "storage/column.h"
#include "storage/schema.h"

namespace aqp {

/// Default block (page) size used by block sampling and the block view:
/// number of consecutive rows grouped into one storage block.
inline constexpr uint32_t kDefaultBlockSize = 1024;

/// In-memory columnar table: a schema plus one Column per field, all the
/// same length. This is the unit all operators, samplers, and synopses
/// consume and produce.
class Table {
 public:
  /// Empty zero-column table (useful as a placeholder before assignment).
  Table() = default;

  /// Empty table with the given schema (one empty column per field).
  explicit Table(Schema schema);

  /// Builds a table from parallel columns; lengths and types must match the
  /// schema.
  static Result<Table> Make(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& mutable_column(size_t i) { return columns_[i]; }

  /// Column lookup by (possibly qualified) name.
  Result<size_t> ColumnIndex(const std::string& name) const {
    return schema_.FieldIndex(name);
  }

  /// Appends one row; `values` must have one entry per column.
  Status AppendRow(const std::vector<Value>& values);

  /// Appends all rows of `other` (schemas must have identical types).
  Status Append(const Table& other);

  /// Appends row `i` of `other` (same column types, fast path for operators).
  void AppendRowFrom(const Table& other, size_t i);

  /// Gathers rows by index into a new table.
  Table Take(const std::vector<uint32_t>& indices) const;

  /// Parallel gather: columns are distributed over up to `num_threads`
  /// workers (each column is gathered whole, so the result is identical to
  /// the serial Take for every thread count). `run_stats`, when non-null,
  /// accumulates the parallel-run counters (items = columns here).
  Table Take(const std::vector<uint32_t>& indices, size_t num_threads,
             ParallelRunStats* run_stats = nullptr) const;

  /// Typed bulk gather — same result as Take without per-row type dispatch
  /// (vectorized path). The parallel overload distributes whole columns over
  /// workers, so the result is identical for every thread count.
  Table TakeBatch(const std::vector<uint32_t>& indices) const;
  Table TakeBatch(const std::vector<uint32_t>& indices, size_t num_threads,
                  ParallelRunStats* run_stats = nullptr) const;

  /// Contiguous sub-range of rows.
  Table Slice(size_t offset, size_t length) const;

  /// Same sub-range via typed bulk copies (vectorized path).
  Table SliceBatch(size_t offset, size_t length) const;

  /// Renames columns in-place (size must equal num_columns).
  Status RenameColumns(const std::vector<std::string>& names);

  /// --- Block (page) view -------------------------------------------------
  /// Number of blocks when rows are grouped `block_size` at a time.
  size_t NumBlocks(uint32_t block_size = kDefaultBlockSize) const;
  /// Row range [first, last) of block `b`.
  std::pair<size_t, size_t> BlockRange(
      size_t b, uint32_t block_size = kDefaultBlockSize) const;

  /// Approximate heap footprint in bytes (sum over columns) — what a
  /// governed query's MemoryTracker is charged when this table materializes.
  uint64_t ApproxBytes() const;

  /// Pretty-prints up to `max_rows` rows with a header, for examples/tests.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace aqp

#endif  // AQP_STORAGE_TABLE_H_
