#include "storage/column.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace aqp {

std::shared_ptr<const StringDictionary> StringDictionary::Build(
    const std::vector<std::string>& values,
    const std::vector<uint8_t>& valid) {
  auto dict = std::make_shared<StringDictionary>();
  std::vector<std::string> distinct;
  distinct.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (valid[i]) distinct.push_back(values[i]);
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  distinct.shrink_to_fit();
  dict->sorted_ = std::move(distinct);
  dict->codes_.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (!valid[i]) {
      dict->codes_[i] = kNullCode;
      continue;
    }
    auto it = std::lower_bound(dict->sorted_.begin(), dict->sorted_.end(),
                               values[i]);
    dict->codes_[i] = static_cast<uint32_t>(it - dict->sorted_.begin());
  }
  return dict;
}

bool StringDictionary::CodeOf(const std::string& s, uint32_t* code) const {
  auto it = std::lower_bound(sorted_.begin(), sorted_.end(), s);
  if (it == sorted_.end() || *it != s) return false;
  *code = static_cast<uint32_t>(it - sorted_.begin());
  return true;
}

uint32_t StringDictionary::LowerBound(const std::string& s) const {
  return static_cast<uint32_t>(
      std::lower_bound(sorted_.begin(), sorted_.end(), s) - sorted_.begin());
}

uint32_t StringDictionary::UpperBound(const std::string& s) const {
  return static_cast<uint32_t>(
      std::upper_bound(sorted_.begin(), sorted_.end(), s) - sorted_.begin());
}

uint64_t StringDictionary::ApproxBytes() const {
  uint64_t bytes = codes_.capacity() * sizeof(uint32_t);
  bytes += sorted_.capacity() * sizeof(std::string);
  for (const std::string& s : sorted_) {
    if (s.capacity() > sizeof(std::string)) bytes += s.capacity();
  }
  return bytes;
}

Column::Column(const Column& other)
    : type_(other.type_),
      ints_(other.ints_),
      doubles_(other.doubles_),
      strings_(other.strings_),
      bools_(other.bools_),
      valid_(other.valid_),
      null_count_(other.null_count_),
      dict_(other.dict_.load(std::memory_order_acquire)) {}

Column& Column::operator=(const Column& other) {
  if (this == &other) return *this;
  type_ = other.type_;
  ints_ = other.ints_;
  doubles_ = other.doubles_;
  strings_ = other.strings_;
  bools_ = other.bools_;
  valid_ = other.valid_;
  null_count_ = other.null_count_;
  dict_.store(other.dict_.load(std::memory_order_acquire),
              std::memory_order_release);
  return *this;
}

Column::Column(Column&& other) noexcept
    : type_(other.type_),
      ints_(std::move(other.ints_)),
      doubles_(std::move(other.doubles_)),
      strings_(std::move(other.strings_)),
      bools_(std::move(other.bools_)),
      valid_(std::move(other.valid_)),
      null_count_(other.null_count_),
      dict_(other.dict_.load(std::memory_order_acquire)) {}

Column& Column::operator=(Column&& other) noexcept {
  if (this == &other) return *this;
  type_ = other.type_;
  ints_ = std::move(other.ints_);
  doubles_ = std::move(other.doubles_);
  strings_ = std::move(other.strings_);
  bools_ = std::move(other.bools_);
  valid_ = std::move(other.valid_);
  null_count_ = other.null_count_;
  dict_.store(other.dict_.load(std::memory_order_acquire),
              std::memory_order_release);
  return *this;
}

Column Column::FromInt64(std::vector<int64_t> values) {
  Column c(DataType::kInt64);
  c.valid_.assign(values.size(), 1);
  c.ints_ = std::move(values);
  return c;
}

Column Column::FromDouble(std::vector<double> values) {
  Column c(DataType::kDouble);
  c.valid_.assign(values.size(), 1);
  c.doubles_ = std::move(values);
  return c;
}

Column Column::FromString(std::vector<std::string> values) {
  Column c(DataType::kString);
  c.valid_.assign(values.size(), 1);
  c.strings_ = std::move(values);
  return c;
}

Column Column::FromBool(std::vector<bool> values) {
  Column c(DataType::kBool);
  c.valid_.assign(values.size(), 1);
  c.bools_.reserve(values.size());
  for (bool b : values) c.bools_.push_back(b ? 1 : 0);
  return c;
}

double Column::NumericAt(size_t i) const {
  if (type_ == DataType::kInt64) return static_cast<double>(ints_[i]);
  AQP_CHECK(type_ == DataType::kDouble)
      << "NumericAt on " << DataTypeName(type_) << " column";
  return doubles_[i];
}

Value Column::GetValue(size_t i) const {
  AQP_DCHECK(i < size());
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[i]);
    case DataType::kDouble:
      return Value(doubles_[i]);
    case DataType::kString:
      return Value(strings_[i]);
    case DataType::kBool:
      return Value(bools_[i] != 0);
  }
  return Value::Null();
}

void Column::AppendInt64(int64_t v) {
  AQP_DCHECK(type_ == DataType::kInt64);
  ints_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendDouble(double v) {
  AQP_DCHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendString(std::string v) {
  AQP_DCHECK(type_ == DataType::kString);
  strings_.push_back(std::move(v));
  valid_.push_back(1);
}

void Column::AppendBool(bool v) {
  AQP_DCHECK(type_ == DataType::kBool);
  bools_.push_back(v ? 1 : 0);
  valid_.push_back(1);
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
    case DataType::kBool:
      bools_.push_back(0);
      break;
  }
  valid_.push_back(0);
  ++null_count_;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64()) break;
      AppendInt64(v.int64());
      return Status::OK();
    case DataType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.dbl());
        return Status::OK();
      }
      if (v.is_int64()) {  // Widen INT64 literals into DOUBLE columns.
        AppendDouble(static_cast<double>(v.int64()));
        return Status::OK();
      }
      break;
    case DataType::kString:
      if (!v.is_string()) break;
      AppendString(v.str());
      return Status::OK();
    case DataType::kBool:
      if (!v.is_bool()) break;
      AppendBool(v.boolean());
      return Status::OK();
  }
  return Status::InvalidArgument(
      "value " + v.ToString() + " does not fit column type " +
      std::string(DataTypeName(type_)));
}

void Column::AppendFrom(const Column& other, size_t i) {
  AQP_DCHECK(other.type_ == type_);
  if (other.IsNull(i)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(other.ints_[i]);
      break;
    case DataType::kDouble:
      AppendDouble(other.doubles_[i]);
      break;
    case DataType::kString:
      AppendString(other.strings_[i]);
      break;
    case DataType::kBool:
      AppendBool(other.bools_[i] != 0);
      break;
  }
}

Column Column::Take(const std::vector<uint32_t>& indices) const {
  Column out(type_);
  out.Reserve(indices.size());
  for (uint32_t i : indices) {
    AQP_DCHECK(i < size());
    out.AppendFrom(*this, i);
  }
  return out;
}

Column Column::Slice(size_t offset, size_t length) const {
  AQP_CHECK(offset <= size());
  length = std::min(length, size() - offset);
  Column out(type_);
  out.Reserve(length);
  for (size_t i = offset; i < offset + length; ++i) out.AppendFrom(*this, i);
  return out;
}

Column Column::TakeBatch(const std::vector<uint32_t>& indices) const {
  Column out(type_);
  const size_t n = indices.size();
  const uint32_t* idx = indices.data();
  out.valid_.resize(n);
  uint8_t* ov = out.valid_.data();
  if (null_count_ == 0) {
    std::fill(ov, ov + n, uint8_t{1});
  } else {
    const uint8_t* v = valid_.data();
    size_t nulls = 0;
    for (size_t i = 0; i < n; ++i) {
      ov[i] = v[idx[i]];
      nulls += ov[i] == 0 ? 1 : 0;
    }
    out.null_count_ = nulls;
  }
  switch (type_) {
    case DataType::kInt64: {
      out.ints_.resize(n);
      const int64_t* src = ints_.data();
      int64_t* dst = out.ints_.data();
      for (size_t i = 0; i < n; ++i) dst[i] = src[idx[i]];
      break;
    }
    case DataType::kDouble: {
      out.doubles_.resize(n);
      const double* src = doubles_.data();
      double* dst = out.doubles_.data();
      for (size_t i = 0; i < n; ++i) dst[i] = src[idx[i]];
      break;
    }
    case DataType::kString: {
      out.strings_.reserve(n);
      for (size_t i = 0; i < n; ++i) out.strings_.push_back(strings_[idx[i]]);
      break;
    }
    case DataType::kBool: {
      out.bools_.resize(n);
      const uint8_t* src = bools_.data();
      uint8_t* dst = out.bools_.data();
      for (size_t i = 0; i < n; ++i) dst[i] = src[idx[i]];
      break;
    }
  }
  return out;
}

Column Column::SliceBatch(size_t offset, size_t length) const {
  AQP_CHECK(offset <= size());
  length = std::min(length, size() - offset);
  Column out(type_);
  out.valid_.assign(valid_.begin() + offset, valid_.begin() + offset + length);
  if (null_count_ != 0) {
    size_t nulls = 0;
    for (uint8_t v : out.valid_) nulls += v == 0 ? 1 : 0;
    out.null_count_ = nulls;
  }
  switch (type_) {
    case DataType::kInt64:
      out.ints_.assign(ints_.begin() + offset,
                       ints_.begin() + offset + length);
      break;
    case DataType::kDouble:
      out.doubles_.assign(doubles_.begin() + offset,
                          doubles_.begin() + offset + length);
      break;
    case DataType::kString:
      out.strings_.assign(strings_.begin() + offset,
                          strings_.begin() + offset + length);
      break;
    case DataType::kBool:
      out.bools_.assign(bools_.begin() + offset,
                        bools_.begin() + offset + length);
      break;
  }
  return out;
}

std::shared_ptr<const StringDictionary> Column::EnsureDictionary() const {
  if (type_ != DataType::kString) return nullptr;
  auto cached = dict_.load(std::memory_order_acquire);
  if (cached != nullptr && cached->codes().size() == size()) return cached;
  auto built = StringDictionary::Build(strings_, valid_);
  // Concurrent builders race benignly: every build over the same rows yields
  // identical content, so last-store-wins is fine.
  dict_.store(built, std::memory_order_release);
  return built;
}

std::shared_ptr<const StringDictionary> Column::dictionary_if_built() const {
  auto cached = dict_.load(std::memory_order_acquire);
  if (cached != nullptr && cached->codes().size() == size()) return cached;
  return nullptr;
}

uint64_t Column::HashAt(size_t i, uint64_t seed) const {
  if (IsNull(i)) return Mix64(seed ^ 0xdeadbeefcafef00dULL);
  switch (type_) {
    case DataType::kInt64:
      return HashInt64(ints_[i], seed);
    case DataType::kDouble:
      return HashDouble(doubles_[i], seed);
    case DataType::kString:
      return HashString(strings_[i], seed);
    case DataType::kBool:
      return HashInt64(bools_[i] != 0 ? 1 : 0, seed ^ 0x5bd1e995);
  }
  return 0;
}

bool Column::SlotEquals(size_t i, const Column& other, size_t j) const {
  AQP_DCHECK(type_ == other.type_);
  bool a_null = IsNull(i);
  bool b_null = other.IsNull(j);
  if (a_null || b_null) return a_null && b_null;
  switch (type_) {
    case DataType::kInt64:
      return ints_[i] == other.ints_[j];
    case DataType::kDouble:
      return doubles_[i] == other.doubles_[j];
    case DataType::kString:
      return strings_[i] == other.strings_[j];
    case DataType::kBool:
      return bools_[i] == other.bools_[j];
  }
  return false;
}

void Column::Reserve(size_t n) {
  valid_.reserve(n);
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
    case DataType::kBool:
      bools_.reserve(n);
      break;
  }
}

uint64_t Column::ApproxBytes() const {
  uint64_t bytes = valid_.capacity();
  bytes += ints_.capacity() * sizeof(int64_t);
  bytes += doubles_.capacity() * sizeof(double);
  bytes += bools_.capacity();
  bytes += strings_.capacity() * sizeof(std::string);
  for (const std::string& s : strings_) {
    // Heap payload only; short strings live inside the std::string footprint
    // counted above.
    if (s.capacity() > sizeof(std::string)) bytes += s.capacity();
  }
  return bytes;
}

}  // namespace aqp
