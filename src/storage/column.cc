#include "storage/column.h"

#include "common/check.h"
#include "common/hash.h"

namespace aqp {

Column Column::FromInt64(std::vector<int64_t> values) {
  Column c(DataType::kInt64);
  c.valid_.assign(values.size(), 1);
  c.ints_ = std::move(values);
  return c;
}

Column Column::FromDouble(std::vector<double> values) {
  Column c(DataType::kDouble);
  c.valid_.assign(values.size(), 1);
  c.doubles_ = std::move(values);
  return c;
}

Column Column::FromString(std::vector<std::string> values) {
  Column c(DataType::kString);
  c.valid_.assign(values.size(), 1);
  c.strings_ = std::move(values);
  return c;
}

Column Column::FromBool(std::vector<bool> values) {
  Column c(DataType::kBool);
  c.valid_.assign(values.size(), 1);
  c.bools_.reserve(values.size());
  for (bool b : values) c.bools_.push_back(b ? 1 : 0);
  return c;
}

double Column::NumericAt(size_t i) const {
  if (type_ == DataType::kInt64) return static_cast<double>(ints_[i]);
  AQP_CHECK(type_ == DataType::kDouble)
      << "NumericAt on " << DataTypeName(type_) << " column";
  return doubles_[i];
}

Value Column::GetValue(size_t i) const {
  AQP_DCHECK(i < size());
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[i]);
    case DataType::kDouble:
      return Value(doubles_[i]);
    case DataType::kString:
      return Value(strings_[i]);
    case DataType::kBool:
      return Value(bools_[i] != 0);
  }
  return Value::Null();
}

void Column::AppendInt64(int64_t v) {
  AQP_DCHECK(type_ == DataType::kInt64);
  ints_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendDouble(double v) {
  AQP_DCHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
  valid_.push_back(1);
}

void Column::AppendString(std::string v) {
  AQP_DCHECK(type_ == DataType::kString);
  strings_.push_back(std::move(v));
  valid_.push_back(1);
}

void Column::AppendBool(bool v) {
  AQP_DCHECK(type_ == DataType::kBool);
  bools_.push_back(v ? 1 : 0);
  valid_.push_back(1);
}

void Column::AppendNull() {
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
    case DataType::kBool:
      bools_.push_back(0);
      break;
  }
  valid_.push_back(0);
  ++null_count_;
}

Status Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64()) break;
      AppendInt64(v.int64());
      return Status::OK();
    case DataType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.dbl());
        return Status::OK();
      }
      if (v.is_int64()) {  // Widen INT64 literals into DOUBLE columns.
        AppendDouble(static_cast<double>(v.int64()));
        return Status::OK();
      }
      break;
    case DataType::kString:
      if (!v.is_string()) break;
      AppendString(v.str());
      return Status::OK();
    case DataType::kBool:
      if (!v.is_bool()) break;
      AppendBool(v.boolean());
      return Status::OK();
  }
  return Status::InvalidArgument(
      "value " + v.ToString() + " does not fit column type " +
      std::string(DataTypeName(type_)));
}

void Column::AppendFrom(const Column& other, size_t i) {
  AQP_DCHECK(other.type_ == type_);
  if (other.IsNull(i)) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AppendInt64(other.ints_[i]);
      break;
    case DataType::kDouble:
      AppendDouble(other.doubles_[i]);
      break;
    case DataType::kString:
      AppendString(other.strings_[i]);
      break;
    case DataType::kBool:
      AppendBool(other.bools_[i] != 0);
      break;
  }
}

Column Column::Take(const std::vector<uint32_t>& indices) const {
  Column out(type_);
  out.Reserve(indices.size());
  for (uint32_t i : indices) {
    AQP_DCHECK(i < size());
    out.AppendFrom(*this, i);
  }
  return out;
}

Column Column::Slice(size_t offset, size_t length) const {
  AQP_CHECK(offset <= size());
  length = std::min(length, size() - offset);
  Column out(type_);
  out.Reserve(length);
  for (size_t i = offset; i < offset + length; ++i) out.AppendFrom(*this, i);
  return out;
}

uint64_t Column::HashAt(size_t i, uint64_t seed) const {
  if (IsNull(i)) return Mix64(seed ^ 0xdeadbeefcafef00dULL);
  switch (type_) {
    case DataType::kInt64:
      return HashInt64(ints_[i], seed);
    case DataType::kDouble:
      return HashDouble(doubles_[i], seed);
    case DataType::kString:
      return HashString(strings_[i], seed);
    case DataType::kBool:
      return HashInt64(bools_[i] != 0 ? 1 : 0, seed ^ 0x5bd1e995);
  }
  return 0;
}

bool Column::SlotEquals(size_t i, const Column& other, size_t j) const {
  AQP_DCHECK(type_ == other.type_);
  bool a_null = IsNull(i);
  bool b_null = other.IsNull(j);
  if (a_null || b_null) return a_null && b_null;
  switch (type_) {
    case DataType::kInt64:
      return ints_[i] == other.ints_[j];
    case DataType::kDouble:
      return doubles_[i] == other.doubles_[j];
    case DataType::kString:
      return strings_[i] == other.strings_[j];
    case DataType::kBool:
      return bools_[i] == other.bools_[j];
  }
  return false;
}

void Column::Reserve(size_t n) {
  valid_.reserve(n);
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
    case DataType::kBool:
      bools_.reserve(n);
      break;
  }
}

uint64_t Column::ApproxBytes() const {
  uint64_t bytes = valid_.capacity();
  bytes += ints_.capacity() * sizeof(int64_t);
  bytes += doubles_.capacity() * sizeof(double);
  bytes += bools_.capacity();
  bytes += strings_.capacity() * sizeof(std::string);
  for (const std::string& s : strings_) {
    // Heap payload only; short strings live inside the std::string footprint
    // counted above.
    if (s.capacity() > sizeof(std::string)) bytes += s.capacity();
  }
  return bytes;
}

}  // namespace aqp
