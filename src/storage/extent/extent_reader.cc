#include "storage/extent/extent_reader.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/bytes.h"
#include "common/crc32.h"
#include "gov/fault_injector.h"
#include "obs/metrics.h"
#include "storage/extent/codec.h"

namespace aqp {
namespace extent {

namespace {

void CountExtentRead(uint64_t bytes) {
  if (!obs::Enabled()) return;
  static obs::Counter* extents =
      obs::MetricsRegistry::Global().GetCounter("storage.extent.read");
  static obs::Counter* read_bytes =
      obs::MetricsRegistry::Global().GetCounter("storage.extent.bytes_read");
  extents->Increment();
  read_bytes->Increment(bytes);
}

void CountCorruption() {
  if (!obs::Enabled()) return;
  static obs::Counter* corrupt = obs::MetricsRegistry::Global().GetCounter(
      "storage.extent.corruption_detected");
  corrupt->Increment();
}

Status Corrupt(const std::string& path, const std::string& what) {
  CountCorruption();
  return Status::InvalidArgument("extent file " + path + ": " + what);
}

}  // namespace

ExtentReaderOptions ExtentReaderOptions::FromEnv() {
  ExtentReaderOptions o;
  if (const char* v = std::getenv("AQP_EXTENT_READ_BUFFER");
      v != nullptr && *v != '\0') {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v && parsed > 0) o.read_buffer_bytes = parsed;
  }
  return o;
}

ExtentReader::ExtentReader(std::string path, Options options, int fd,
                           uint64_t file_bytes)
    : path_(std::move(path)),
      options_(options),
      fd_(fd),
      file_bytes_(file_bytes) {}

ExtentReader::~ExtentReader() {
  if (fd_ >= 0) ::close(fd_);
}

Status ExtentReader::PreadFully(void* out, size_t len, uint64_t offset) const {
  char* p = static_cast<char*>(out);
  while (len > 0) {
    const size_t want =
        std::min<size_t>(len, std::max<uint64_t>(options_.read_buffer_bytes,
                                                 64 * 1024));
    const ssize_t n = ::pread(fd_, p, want, static_cast<off_t>(offset));
    if (n < 0) {
      return Status::Internal("pread failed on extent file: " + path_);
    }
    if (n == 0) {
      return Status::OutOfRange("extent file truncated mid-read: " + path_);
    }
    p += n;
    len -= static_cast<size_t>(n);
    offset += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Result<std::shared_ptr<const ExtentReader>> ExtentReader::Open(
    std::string path, Options options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("extent file not found: " + path);
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::Internal("cannot stat extent file: " + path);
  }
  std::shared_ptr<ExtentReader> reader(new ExtentReader(
      std::move(path), options, fd, static_cast<uint64_t>(end)));

  // §10: every structural check below runs before any data is served.
  if (reader->file_bytes_ < kFileHeaderBytes + kTrailerBytes) {
    return Corrupt(reader->path_, "too small for header + trailer (torn write?)");
  }
  // §2.1 header.
  char header_buf[kFileHeaderBytes];
  AQP_RETURN_IF_ERROR(
      reader->PreadFully(header_buf, sizeof(header_buf), 0));
  ByteReader header(std::string_view(header_buf, sizeof(header_buf)));
  AQP_ASSIGN_OR_RETURN(uint32_t magic, header.GetU32());
  AQP_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (magic != kFileMagic) {
    return Corrupt(reader->path_, "bad magic (not an extent file)");
  }
  if (version != kFormatVersion) {
    // §9: format versions are not forward-compatible; readers reject rather
    // than guess.
    return Status::FailedPrecondition(
        "extent file " + reader->path_ + ": unsupported format version " +
        std::to_string(version));
  }
  // §2.3 trailer.
  char trailer_buf[kTrailerBytes];
  AQP_RETURN_IF_ERROR(reader->PreadFully(
      trailer_buf, sizeof(trailer_buf), reader->file_bytes_ - kTrailerBytes));
  ByteReader trailer(std::string_view(trailer_buf, sizeof(trailer_buf)));
  AQP_ASSIGN_OR_RETURN(uint64_t footer_offset, trailer.GetU64());
  AQP_ASSIGN_OR_RETURN(uint64_t footer_size, trailer.GetU64());
  AQP_ASSIGN_OR_RETURN(uint32_t footer_crc, trailer.GetU32());
  AQP_ASSIGN_OR_RETURN(uint32_t trailer_magic, trailer.GetU32());
  if (trailer_magic != kTrailerMagic) {
    return Corrupt(reader->path_,
                   "bad trailer magic (torn write or truncation)");
  }
  if (footer_offset < kFileHeaderBytes ||
      footer_size > reader->file_bytes_ - kTrailerBytes ||
      footer_offset + footer_size != reader->file_bytes_ - kTrailerBytes) {
    return Corrupt(reader->path_, "footer bounds inconsistent with file size");
  }
  // §6 footer, CRC-checked as one unit (§7).
  std::string footer(footer_size, '\0');
  AQP_RETURN_IF_ERROR(
      reader->PreadFully(footer.data(), footer.size(), footer_offset));
  if (Crc32(footer.data(), footer.size()) != footer_crc) {
    return Corrupt(reader->path_, "footer CRC32 mismatch");
  }
  if (Status s = reader->ParseFooter(footer); !s.ok()) {
    CountCorruption();
    return s;
  }
  // Index bounds: no chunk may reach past the footer.
  uint64_t expected_row_start = 0;
  for (const ExtentMeta& e : reader->extents_) {
    if (e.file_offset < kFileHeaderBytes ||
        e.byte_size > footer_offset ||
        e.file_offset + e.byte_size > footer_offset) {
      return Corrupt(reader->path_, "extent index points outside data region");
    }
    if (e.row_start != expected_row_start || e.row_count == 0) {
      return Corrupt(reader->path_, "extent index row ranges inconsistent");
    }
    expected_row_start += e.row_count;
    if (e.chunks.size() != reader->schema_.num_fields()) {
      return Corrupt(reader->path_, "extent chunk count != schema width");
    }
    for (const ChunkMeta& c : e.chunks) {
      if (c.bytes < kChunkHeaderBytes || c.offset > e.byte_size ||
          c.offset + c.bytes > e.byte_size) {
        return Corrupt(reader->path_, "chunk bounds outside extent");
      }
    }
  }
  if (expected_row_start != reader->num_rows_) {
    return Corrupt(reader->path_, "extent rows do not sum to table rows");
  }
  return std::shared_ptr<const ExtentReader>(std::move(reader));
}

Status ExtentReader::ParseFooter(std::string_view footer) {
  ByteReader r(footer);
  AQP_ASSIGN_OR_RETURN(uint32_t num_fields, r.GetU32());
  if (num_fields == 0 || num_fields > 16384) {
    return Corrupt(path_, "implausible schema width in footer");
  }
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint32_t f = 0; f < num_fields; ++f) {
    AQP_ASSIGN_OR_RETURN(uint64_t name_len, GetVarint(&r));
    if (name_len > r.remaining()) {
      return Corrupt(path_, "field name overruns footer");
    }
    std::string name(name_len, '\0');
    AQP_RETURN_IF_ERROR(r.GetBytes(name.data(), name_len));
    AQP_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
    if (type > static_cast<uint8_t>(DataType::kBool)) {
      return Corrupt(path_, "unknown column type in footer");
    }
    fields.push_back(Field{std::move(name), static_cast<DataType>(type)});
  }
  schema_ = Schema(std::move(fields));
  AQP_ASSIGN_OR_RETURN(num_rows_, r.GetU64());
  AQP_ASSIGN_OR_RETURN(extent_target_rows_, r.GetU32());
  AQP_ASSIGN_OR_RETURN(uint32_t num_extents, r.GetU32());
  // Each index entry is >= 37 bytes; a count larger than the footer itself
  // is a corruption, not a reservation request.
  if (num_extents > footer.size()) {
    return Corrupt(path_, "implausible extent count in footer");
  }
  extents_.clear();
  extents_.reserve(num_extents);
  for (uint32_t i = 0; i < num_extents; ++i) {
    ExtentMeta e;
    AQP_ASSIGN_OR_RETURN(e.file_offset, r.GetU64());
    AQP_ASSIGN_OR_RETURN(e.byte_size, r.GetU64());
    AQP_ASSIGN_OR_RETURN(e.row_start, r.GetU64());
    AQP_ASSIGN_OR_RETURN(e.row_count, r.GetU32());
    AQP_ASSIGN_OR_RETURN(e.raw_bytes, r.GetU64());
    e.chunks.reserve(num_fields);
    for (uint32_t c = 0; c < num_fields; ++c) {
      ChunkMeta cm;
      AQP_ASSIGN_OR_RETURN(cm.offset, r.GetU64());
      AQP_ASSIGN_OR_RETURN(cm.bytes, r.GetU64());
      AQP_ASSIGN_OR_RETURN(uint8_t codec, r.GetU8());
      if (codec > static_cast<uint8_t>(Codec::kBytes)) {
        return Corrupt(path_, "unknown codec id in footer");
      }
      cm.codec = static_cast<Codec>(codec);
      AQP_ASSIGN_OR_RETURN(cm.zone.null_count, r.GetU64());
      AQP_ASSIGN_OR_RETURN(uint8_t has_bounds, r.GetU8());
      cm.zone.has_bounds = has_bounds != 0;
      AQP_ASSIGN_OR_RETURN(cm.zone.min, GetValue(&r));
      AQP_ASSIGN_OR_RETURN(cm.zone.max, GetValue(&r));
      if (cm.zone.has_bounds &&
          (cm.zone.min.is_null() || cm.zone.max.is_null())) {
        return Corrupt(path_, "zone map claims bounds but stores NULL");
      }
      e.chunks.push_back(std::move(cm));
    }
    extents_.push_back(std::move(e));
  }
  if (!r.exhausted()) {
    return Corrupt(path_, "trailing bytes after footer index");
  }
  return Status::OK();
}

Result<std::string> ExtentReader::ReadExtentBytes(size_t i) const {
  // Chaos site: an injected read fault surfaces exactly like a failed pread
  // — the caller's ladder degrades, nothing is partially decoded.
  if (Status fault = gov::FaultInjector::Global().MaybeFail("extent.read");
      !fault.ok()) {
    return fault;
  }
  const ExtentMeta& e = extents_[i];
  std::string buffer(e.byte_size, '\0');
  AQP_RETURN_IF_ERROR(PreadFully(buffer.data(), buffer.size(), e.file_offset));
  CountExtentRead(buffer.size());
  return buffer;
}

Result<Table> ExtentReader::ReadExtent(size_t i) const {
  if (i >= extents_.size()) {
    return Status::OutOfRange("extent index out of range");
  }
  const ExtentMeta& e = extents_[i];
  AQP_ASSIGN_OR_RETURN(std::string buffer, ReadExtentBytes(i));
  std::vector<Column> columns;
  columns.reserve(e.chunks.size());
  for (size_t c = 0; c < e.chunks.size(); ++c) {
    const ChunkMeta& cm = e.chunks[c];
    Result<Column> col = DecodeChunk(
        std::string_view(buffer).substr(cm.offset, cm.bytes),
        schema_.field(c).type, e.row_count);
    if (!col.ok()) {
      CountCorruption();
      return Status(col.status().code(),
                    "extent file " + path_ + " extent " + std::to_string(i) +
                        " column " + schema_.field(c).name + ": " +
                        col.status().message());
    }
    columns.push_back(std::move(col).value());
  }
  return Table::Make(schema_, std::move(columns));
}

Result<Column> ExtentReader::ReadColumnChunk(size_t i, size_t col) const {
  if (i >= extents_.size()) {
    return Status::OutOfRange("extent index out of range");
  }
  if (col >= schema_.num_fields()) {
    return Status::OutOfRange("column index out of range");
  }
  if (Status fault = gov::FaultInjector::Global().MaybeFail("extent.read");
      !fault.ok()) {
    return fault;
  }
  const ExtentMeta& e = extents_[i];
  const ChunkMeta& cm = e.chunks[col];
  std::string buffer(cm.bytes, '\0');
  AQP_RETURN_IF_ERROR(
      PreadFully(buffer.data(), buffer.size(), e.file_offset + cm.offset));
  CountExtentRead(buffer.size());
  Result<Column> out = DecodeChunk(buffer, schema_.field(col).type,
                                   e.row_count);
  if (!out.ok()) CountCorruption();
  return out;
}

Status ExtentReader::ValidateAll() const {
  for (size_t i = 0; i < extents_.size(); ++i) {
    AQP_ASSIGN_OR_RETURN(Table t, ReadExtent(i));
    (void)t;
  }
  return Status::OK();
}

}  // namespace extent
}  // namespace aqp
