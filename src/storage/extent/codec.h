#ifndef AQP_STORAGE_EXTENT_CODEC_H_
#define AQP_STORAGE_EXTENT_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/extent/format.h"
#include "storage/table.h"

/// Column-chunk encode/decode for the extent format (docs/STORAGE.md §3–§5).
/// Pure functions over in-memory buffers: no I/O, no locking — the writer's
/// flush thread and the reader's worker threads call these concurrently on
/// disjoint data. Encoding is canonical (NULL slots encode as zero/empty), so
/// encode(decode(chunk)) is byte-identical to chunk — the round-trip property
/// the storage tests pin down.

namespace aqp {
namespace extent {

// --- Primitives (docs/STORAGE.md §4.6) -------------------------------------

/// LEB128 unsigned varint (1–10 bytes).
void PutVarint(ByteWriter* w, uint64_t v);
Result<uint64_t> GetVarint(ByteReader* r);

/// ZigZag maps signed to unsigned so small-magnitude deltas varint-encode
/// short: 0,-1,1,-2,... -> 0,1,2,3,...
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// --- Byte-level RLE (docs/STORAGE.md §4.2) ---------------------------------

/// Encodes `n` bytes as a token stream: varint(len<<1 | is_run); a run token
/// is followed by 1 byte repeated `len` times, a literal token by `len`
/// verbatim bytes. Self-framing given the decoded length.
void RleEncode(const uint8_t* data, size_t n, ByteWriter* w);

/// Decodes exactly `n` bytes from `r`, appending to `out`.
Status RleDecode(ByteReader* r, size_t n, std::vector<uint8_t>* out);

// --- General LZ byte codec (docs/STORAGE.md §4.5) --------------------------

/// LZ77 with 16-bit offsets and greedy matching; sequence format in §4.5.
/// Appends the compressed stream to `out`.
void LzEncode(const uint8_t* data, size_t n, std::string* out);

/// Decompresses `in` into exactly `raw_len` bytes appended to `out`; any
/// malformed sequence (offset past start, overrun) is an error, never UB.
Status LzDecode(std::string_view in, size_t raw_len, std::string* out);

// --- Column chunks (docs/STORAGE.md §3) ------------------------------------

/// Serialized chunk (header §3.1 + payload) and the codec that won.
struct EncodedChunk {
  std::string bytes;
  Codec codec = Codec::kPlain;
  uint64_t raw_bytes = 0;  // Decoded in-memory size estimate of the range.
};

/// Encodes rows [begin, end) of `col` as one chunk. `choice` forces a codec
/// where eligible for the column's type; ineligible or kAuto choices fall
/// back to smallest-wins selection among eligible codecs (§4.6).
EncodedChunk EncodeChunk(const Column& col, size_t begin, size_t end,
                         CodecChoice choice = CodecChoice::kAuto);

/// Decodes one chunk back into a Column. Verifies the header's CRC32 over
/// the payload, the physical type against `type`, and the row count against
/// `expected_rows`; any mismatch is an error (§7, §10 — corrupt chunks are
/// reported, never partially decoded).
Result<Column> DecodeChunk(std::string_view chunk, DataType type,
                           uint32_t expected_rows);

/// Zone map over rows [begin, end) of `col` (§5). String bounds longer than
/// kZoneMapMaxStringBytes suppress has_bounds rather than truncate.
inline constexpr size_t kZoneMapMaxStringBytes = 64;
ZoneMap ComputeZoneMap(const Column& col, size_t begin, size_t end);

// --- Zone-map value serialization (docs/STORAGE.md §6.3) -------------------

void PutValue(ByteWriter* w, const Value& v);
Result<Value> GetValue(ByteReader* r);

// --- Whole-table blobs (docs/STORAGE.md §8.2) ------------------------------
// The synopsis sidecar embeds sample tables with the same chunk encoding the
// extent files use: schema, row count, then per-column chunk runs.

void WriteTableBlob(const Table& table, ByteWriter* w,
                    CodecChoice choice = CodecChoice::kAuto);
Result<Table> ReadTableBlob(ByteReader* r);

}  // namespace extent
}  // namespace aqp

#endif  // AQP_STORAGE_EXTENT_CODEC_H_
