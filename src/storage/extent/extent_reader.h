#ifndef AQP_STORAGE_EXTENT_EXTENT_READER_H_
#define AQP_STORAGE_EXTENT_EXTENT_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/extent/format.h"
#include "storage/table.h"

namespace aqp {
namespace extent {

/// Read side of the extent format (docs/STORAGE.md §2): Open validates the
/// trailer, footer CRC and every index entry's bounds (§10 — a torn or
/// truncated file fails here, before any data is served); ReadExtent preads
/// one extent's chunks into a buffer and decodes them into a Table, which is
/// exactly one morsel-aligned unit for the engine's scan paths.
///
/// Immutable after Open and safe for concurrent ReadExtent calls from the
/// morsel pool: all reads go through positional pread on a shared fd; no
/// seek state, no mutable caches.
struct ExtentReaderOptions {
  /// Upper bound on a single pread; extents larger than this are read in
  /// several syscalls into one buffer.
  uint64_t read_buffer_bytes = 4ull << 20;

  /// Options with AQP_EXTENT_READ_BUFFER overlaid
  /// (docs/OPERATIONS.md, Storage knobs).
  static ExtentReaderOptions FromEnv();
};

class ExtentReader {
 public:
  using Options = ExtentReaderOptions;

  /// Opens and validates `path`. Every failure mode (§10) maps to a status:
  /// truncated/torn file, bad magic, unsupported version, footer CRC
  /// mismatch, or an index entry pointing outside the file.
  static Result<std::shared_ptr<const ExtentReader>> Open(
      std::string path, Options options = Options());

  ~ExtentReader();
  ExtentReader(const ExtentReader&) = delete;
  ExtentReader& operator=(const ExtentReader&) = delete;

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }
  uint32_t extent_target_rows() const { return extent_target_rows_; }
  size_t num_extents() const { return extents_.size(); }
  const ExtentMeta& extent(size_t i) const { return extents_[i]; }
  const std::vector<ExtentMeta>& extents() const { return extents_; }
  const std::string& path() const { return path_; }
  uint64_t file_bytes() const { return file_bytes_; }

  /// Reads and decodes extent `i` into a Table (all columns). Chunk CRCs are
  /// verified during decode; corruption is an error, never partial data.
  Result<Table> ReadExtent(size_t i) const;

  /// Reads and decodes a single column of extent `i`.
  Result<Column> ReadColumnChunk(size_t i, size_t col) const;

  /// Full-file verification: decodes every chunk of every extent (CRC +
  /// structural checks) without keeping the data. What `aqpfile validate`
  /// runs.
  Status ValidateAll() const;

 private:
  ExtentReader(std::string path, Options options, int fd, uint64_t file_bytes);

  Status PreadFully(void* out, size_t len, uint64_t offset) const;
  /// Reads the raw bytes of extent `i` (one buffer, possibly several preads).
  Result<std::string> ReadExtentBytes(size_t i) const;
  Status ParseFooter(std::string_view footer);

  const std::string path_;
  const Options options_;
  int fd_ = -1;
  uint64_t file_bytes_ = 0;

  Schema schema_;
  uint64_t num_rows_ = 0;
  uint32_t extent_target_rows_ = kDefaultExtentRows;
  std::vector<ExtentMeta> extents_;
};

}  // namespace extent
}  // namespace aqp

#endif  // AQP_STORAGE_EXTENT_EXTENT_READER_H_
