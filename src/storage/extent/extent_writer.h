#ifndef AQP_STORAGE_EXTENT_EXTENT_WRITER_H_
#define AQP_STORAGE_EXTENT_EXTENT_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "storage/extent/format.h"
#include "storage/table.h"

namespace aqp {
namespace extent {

/// Streams a table into an extent file (docs/STORAGE.md §2): the caller
/// appends rows; whole extents are cut off and handed to a background flush
/// thread that encodes (codec selection, §4), checksums (§7) and writes them
/// — the DataSeries Sink pattern, so ingest overlaps compression and I/O.
/// Finish() drains the queue and writes the footer catalog + trailer.
///
/// The queue is bounded by `flush_queue_bytes` of decoded table data;
/// Append blocks when the flush thread falls behind (backpressure instead of
/// unbounded buffering). The first flush error is sticky: later Append and
/// Finish calls return it, and no footer is written — a reader then rejects
/// the file at Open (§10 torn-write handling).
///
/// Not thread-safe for concurrent Append; one producer, one internal flusher.
struct ExtentWriterOptions {
  /// Rows per extent (§3). Must be a positive multiple of 1024 so extent
  /// boundaries align with the engine's block view.
  uint32_t extent_rows = kDefaultExtentRows;
  /// Forced codec, or kAuto for smallest-wins per chunk (§4.6).
  CodecChoice codec = CodecChoice::kAuto;
  /// Backpressure bound on decoded bytes queued for flush.
  uint64_t flush_queue_bytes = 64ull << 20;
  /// When false, Append encodes and writes inline on the caller's thread
  /// (deterministic single-thread mode for tests and tools).
  bool background_flush = true;

  /// Options with AQP_EXTENT_ROWS / AQP_EXTENT_CODEC /
  /// AQP_EXTENT_FLUSH_BUFFER overlaid (docs/OPERATIONS.md, Storage knobs).
  static ExtentWriterOptions FromEnv();
};

class ExtentWriter {
 public:
  using Options = ExtentWriterOptions;

  /// Creates `path` (truncating any existing file) and writes the §2.1
  /// header. The schema is fixed for the file's lifetime.
  static Result<std::unique_ptr<ExtentWriter>> Create(
      std::string path, Schema schema, Options options = Options());

  /// Aborts (closes without a footer) if Finish was never called.
  ~ExtentWriter();

  ExtentWriter(const ExtentWriter&) = delete;
  ExtentWriter& operator=(const ExtentWriter&) = delete;

  /// Buffers `rows` (schema column types must match) and flushes every
  /// completed extent. Blocks on queue backpressure.
  Status Append(const Table& rows);

  /// Flushes the ragged tail extent, drains the background queue, writes
  /// footer + trailer (§6, §2.3) and fsyncs. Idempotent; the writer is
  /// unusable for Append afterwards.
  Status Finish();

  uint64_t rows_appended() const { return rows_appended_; }
  /// Total file bytes written so far (header + extents; + footer after
  /// Finish).
  uint64_t bytes_written() const;
  const std::string& path() const { return path_; }

 private:
  ExtentWriter(std::string path, Schema schema, Options options, int fd);

  void FlushLoop();
  /// Encodes and writes one extent table; updates extents_/offset. Called on
  /// the flush thread (or inline when background_flush is off).
  Status FlushExtent(const Table& rows);
  /// Hands one extent table to the flusher (or flushes inline).
  Status EmitExtent(Table rows);
  Status WriteFully(const void* data, size_t len);
  std::string SerializeFooter() const;

  const std::string path_;
  const Schema schema_;
  const Options options_;
  int fd_ = -1;

  Table pending_;  // Buffered rows not yet forming a whole extent.
  uint64_t rows_appended_ = 0;
  bool finished_ = false;

  // Flush-thread state. `extents_`/`file_offset_`/`status_` are owned by the
  // flusher while it runs; the producer only touches them under mu_ after
  // the drain in Finish (or inline when background_flush is off).
  std::thread flusher_;
  mutable std::mutex mu_;
  std::condition_variable cv_producer_;  // Queue has room / drained.
  std::condition_variable cv_flusher_;   // Queue has work / stop.
  std::deque<Table> queue_;
  uint64_t queued_bytes_ = 0;
  bool stop_ = false;
  Status status_;  // First flush error, sticky.

  std::vector<ExtentMeta> extents_;
  uint64_t file_offset_ = kFileHeaderBytes;
  uint64_t num_rows_flushed_ = 0;
};

/// Convenience one-shot: writes `table` to `path` atomically (via a
/// temporary file renamed into place on success — §10) and returns the final
/// file size in bytes.
Result<uint64_t> WriteTableToExtents(
    const std::string& path, const Table& table,
    ExtentWriter::Options options = ExtentWriter::Options());

}  // namespace extent
}  // namespace aqp

#endif  // AQP_STORAGE_EXTENT_EXTENT_WRITER_H_
