#include "storage/extent/codec.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "common/crc32.h"

namespace aqp {
namespace extent {

std::string_view CodecName(Codec c) {
  switch (c) {
    case Codec::kPlain: return "plain";
    case Codec::kRle: return "rle";
    case Codec::kDelta: return "delta";
    case Codec::kDict: return "dict";
    case Codec::kBytes: return "lz";
  }
  return "?";
}

CodecChoice ParseCodecChoice(std::string_view name) {
  if (name == "plain") return CodecChoice::kPlain;
  if (name == "rle") return CodecChoice::kRle;
  if (name == "delta") return CodecChoice::kDelta;
  if (name == "dict") return CodecChoice::kDict;
  if (name == "lz" || name == "bytes") return CodecChoice::kBytes;
  return CodecChoice::kAuto;
}

// --- Primitives ------------------------------------------------------------

void PutVarint(ByteWriter* w, uint64_t v) {
  while (v >= 0x80) {
    w->PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  w->PutU8(static_cast<uint8_t>(v));
}

Result<uint64_t> GetVarint(ByteReader* r) {
  uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    AQP_ASSIGN_OR_RETURN(uint8_t byte, r->GetU8());
    if (shift == 63 && (byte & 0xFE) != 0) {
      return Status::OutOfRange("varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  return Status::OutOfRange("varint longer than 10 bytes");
}

// --- Byte RLE --------------------------------------------------------------

void RleEncode(const uint8_t* data, size_t n, ByteWriter* w) {
  size_t i = 0;
  size_t lit_start = 0;  // Pending literal range [lit_start, i).
  auto flush_literals = [&](size_t end) {
    size_t pos = lit_start;
    while (pos < end) {
      // Literal token lengths are unbounded in the format; chunking keeps
      // any single memcpy modest.
      size_t len = std::min<size_t>(end - pos, 1u << 20);
      PutVarint(w, (static_cast<uint64_t>(len) << 1) | 0);
      w->PutBytes(data + pos, len);
      pos += len;
    }
  };
  while (i < n) {
    size_t run = 1;
    while (i + run < n && data[i + run] == data[i]) ++run;
    // A run token costs >= 2 bytes; only profitable for runs of 3+.
    if (run >= 3) {
      flush_literals(i);
      PutVarint(w, (static_cast<uint64_t>(run) << 1) | 1);
      w->PutU8(data[i]);
      i += run;
      lit_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(n);
}

Status RleDecode(ByteReader* r, size_t n, std::vector<uint8_t>* out) {
  size_t produced = 0;
  out->reserve(out->size() + n);
  while (produced < n) {
    AQP_ASSIGN_OR_RETURN(uint64_t token, GetVarint(r));
    const bool is_run = (token & 1) != 0;
    const uint64_t len = token >> 1;
    if (len == 0 || len > n - produced) {
      return Status::OutOfRange("RLE token overruns decoded length");
    }
    if (is_run) {
      AQP_ASSIGN_OR_RETURN(uint8_t b, r->GetU8());
      out->insert(out->end(), len, b);
    } else {
      size_t old = out->size();
      out->resize(old + len);
      AQP_RETURN_IF_ERROR(r->GetBytes(out->data() + old, len));
    }
    produced += len;
  }
  return Status::OK();
}

// --- LZ byte codec ---------------------------------------------------------

namespace {

inline uint32_t LzHash(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> 17;  // 15-bit table index.
}

constexpr size_t kLzTableSize = 1u << 15;
constexpr size_t kLzMaxOffset = 65535;
constexpr size_t kLzMinMatch = 4;

}  // namespace

void LzEncode(const uint8_t* data, size_t n, std::string* out) {
  ByteWriter w;
  std::vector<uint32_t> table(kLzTableSize, 0xFFFFFFFFu);
  size_t i = 0;
  size_t lit_start = 0;
  auto emit = [&](size_t lit_end, size_t match_len, size_t offset) {
    const size_t lit_len = lit_end - lit_start;
    const uint64_t lit_nib = lit_len < 15 ? lit_len : 15;
    // match_len == 0 marks the terminal literal-only sequence.
    const uint64_t match_code = match_len == 0 ? 0 : match_len - kLzMinMatch;
    const uint64_t match_nib = match_code < 15 ? match_code : 15;
    w.PutU8(static_cast<uint8_t>((lit_nib << 4) | match_nib));
    if (lit_nib == 15) PutVarint(&w, lit_len - 15);
    w.PutBytes(data + lit_start, lit_len);
    if (match_len == 0) return;
    w.PutU8(static_cast<uint8_t>(offset & 0xFF));
    w.PutU8(static_cast<uint8_t>(offset >> 8));
    if (match_nib == 15) PutVarint(&w, match_code - 15);
  };
  while (n >= kLzMinMatch + 1 && i + kLzMinMatch < n) {
    const uint32_t h = LzHash(data + i);
    const uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(i);
    if (cand != 0xFFFFFFFFu && i - cand <= kLzMaxOffset &&
        std::memcmp(data + cand, data + i, kLzMinMatch) == 0) {
      size_t len = kLzMinMatch;
      while (i + len < n && data[cand + len] == data[i + len]) ++len;
      emit(i, len, i - cand);
      i += len;
      lit_start = i;
    } else {
      ++i;
    }
  }
  lit_start = std::min(lit_start, n);
  // Terminal sequence: remaining literals, no match.
  {
    const size_t lit_len = n - lit_start;
    const uint64_t lit_nib = lit_len < 15 ? lit_len : 15;
    w.PutU8(static_cast<uint8_t>(lit_nib << 4));
    if (lit_nib == 15) PutVarint(&w, lit_len - 15);
    w.PutBytes(data + lit_start, lit_len);
  }
  out->append(w.buffer());
}

Status LzDecode(std::string_view in, size_t raw_len, std::string* out) {
  ByteReader r(in);
  const size_t base = out->size();
  out->reserve(base + raw_len);
  while (out->size() - base < raw_len) {
    AQP_ASSIGN_OR_RETURN(uint8_t token, r.GetU8());
    uint64_t lit_len = token >> 4;
    if (lit_len == 15) {
      AQP_ASSIGN_OR_RETURN(uint64_t ext, GetVarint(&r));
      lit_len += ext;
    }
    if (lit_len > raw_len - (out->size() - base)) {
      return Status::OutOfRange("LZ literals overrun decoded length");
    }
    if (lit_len > 0) {
      size_t old = out->size();
      out->resize(old + lit_len);
      AQP_RETURN_IF_ERROR(r.GetBytes(out->data() + old, lit_len));
    }
    if (out->size() - base == raw_len) break;  // Terminal sequence.
    AQP_ASSIGN_OR_RETURN(uint8_t off_lo, r.GetU8());
    AQP_ASSIGN_OR_RETURN(uint8_t off_hi, r.GetU8());
    const size_t offset = static_cast<size_t>(off_lo) |
                          (static_cast<size_t>(off_hi) << 8);
    uint64_t match_len = (token & 0xF);
    if (match_len == 15) {
      AQP_ASSIGN_OR_RETURN(uint64_t ext, GetVarint(&r));
      match_len += ext;
    }
    match_len += kLzMinMatch;
    if (offset == 0 || offset > out->size() - base) {
      return Status::OutOfRange("LZ match offset before stream start");
    }
    if (match_len > raw_len - (out->size() - base)) {
      return Status::OutOfRange("LZ match overruns decoded length");
    }
    // Byte-wise copy: overlapping matches (offset < match_len) replicate.
    size_t src = out->size() - offset;
    for (uint64_t k = 0; k < match_len; ++k) {
      out->push_back((*out)[src + k]);
    }
  }
  return Status::OK();
}

// --- Chunk encoding --------------------------------------------------------

namespace {

// Canonical §4.1 plain image of rows [begin, end): NULL slots encode as
// zero/empty regardless of the in-memory residue, so encoding is a pure
// function of (values, validity).
std::string PlainImage(const Column& col, size_t begin, size_t end) {
  ByteWriter w;
  switch (col.type()) {
    case DataType::kInt64:
      for (size_t i = begin; i < end; ++i) {
        w.PutI64(col.IsNull(i) ? 0 : col.Int64At(i));
      }
      break;
    case DataType::kDouble:
      for (size_t i = begin; i < end; ++i) {
        w.PutDouble(col.IsNull(i) ? 0.0 : col.DoubleAt(i));
      }
      break;
    case DataType::kBool:
      for (size_t i = begin; i < end; ++i) {
        w.PutU8(col.IsNull(i) ? 0 : (col.BoolAt(i) ? 1 : 0));
      }
      break;
    case DataType::kString:
      for (size_t i = begin; i < end; ++i) {
        if (col.IsNull(i)) {
          PutVarint(&w, 0);
        } else {
          const std::string& s = col.StringAt(i);
          PutVarint(&w, s.size());
          w.PutBytes(s.data(), s.size());
        }
      }
      break;
  }
  return w.Take();
}

// §4.3 delta image (INT64): zigzag varint of the first value then of each
// successive difference.
std::string DeltaImage(const Column& col, size_t begin, size_t end) {
  ByteWriter w;
  int64_t prev = 0;
  for (size_t i = begin; i < end; ++i) {
    const int64_t v = col.IsNull(i) ? 0 : col.Int64At(i);
    // Wrapping subtraction: delta arithmetic is mod 2^64, decode re-adds.
    const uint64_t delta =
        static_cast<uint64_t>(v) - static_cast<uint64_t>(prev);
    PutVarint(&w, ZigZagEncode(static_cast<int64_t>(delta)));
    prev = v;
  }
  return w.Take();
}

// §4.4 dictionary image (STRING): sorted distinct non-null values, then one
// varint rank per row (NULL rows write rank 0 and are masked by validity).
std::string DictImage(const Column& col, size_t begin, size_t end) {
  std::vector<std::string> uniques;
  uniques.reserve(64);
  for (size_t i = begin; i < end; ++i) {
    if (!col.IsNull(i)) uniques.push_back(col.StringAt(i));
  }
  std::sort(uniques.begin(), uniques.end());
  uniques.erase(std::unique(uniques.begin(), uniques.end()), uniques.end());
  ByteWriter w;
  PutVarint(&w, uniques.size());
  for (const std::string& s : uniques) {
    PutVarint(&w, s.size());
    w.PutBytes(s.data(), s.size());
  }
  for (size_t i = begin; i < end; ++i) {
    if (col.IsNull(i)) {
      PutVarint(&w, 0);
    } else {
      const std::string& s = col.StringAt(i);
      const size_t rank =
          std::lower_bound(uniques.begin(), uniques.end(), s) -
          uniques.begin();
      PutVarint(&w, rank);
    }
  }
  return w.Take();
}

// §4.2 as a data codec: byte-RLE over the plain image (fixed-width types).
std::string RleImage(const std::string& plain) {
  ByteWriter w;
  RleEncode(reinterpret_cast<const uint8_t*>(plain.data()), plain.size(), &w);
  return w.Take();
}

// §4.5: varint(raw_len) + LZ stream over the plain image.
std::string BytesImage(const std::string& plain) {
  ByteWriter w;
  PutVarint(&w, plain.size());
  std::string lz;
  LzEncode(reinterpret_cast<const uint8_t*>(plain.data()), plain.size(), &lz);
  w.PutBytes(lz.data(), lz.size());
  return w.Take();
}

bool Eligible(Codec c, DataType type) {
  switch (c) {
    case Codec::kPlain:
    case Codec::kBytes:
      return true;
    case Codec::kRle:
      return type != DataType::kString;
    case Codec::kDelta:
      return type == DataType::kInt64;
    case Codec::kDict:
      return type == DataType::kString;
  }
  return false;
}

}  // namespace

EncodedChunk EncodeChunk(const Column& col, size_t begin, size_t end,
                         CodecChoice choice) {
  const uint32_t rows = static_cast<uint32_t>(end - begin);
  const DataType type = col.type();

  // Validity subblock: present only when the range has NULLs.
  bool has_nulls = false;
  if (col.has_nulls()) {
    for (size_t i = begin; i < end && !has_nulls; ++i) {
      has_nulls = col.IsNull(i);
    }
  }
  ByteWriter validity;
  if (has_nulls) {
    RleEncode(col.validity() + begin, rows, &validity);
  }

  // Candidate data sections. Auto keeps the smallest; ties prefer the lower
  // codec id so the chosen encoding is deterministic (§4.6).
  const std::string plain = PlainImage(col, begin, end);
  std::vector<std::pair<Codec, std::string>> candidates;
  auto want = [&](Codec c) {
    if (!Eligible(c, type)) return false;
    if (choice == CodecChoice::kAuto) return true;
    return static_cast<uint8_t>(choice) == static_cast<uint8_t>(c);
  };
  if (want(Codec::kPlain)) candidates.emplace_back(Codec::kPlain, plain);
  if (want(Codec::kRle)) candidates.emplace_back(Codec::kRle, RleImage(plain));
  if (want(Codec::kDelta)) {
    candidates.emplace_back(Codec::kDelta, DeltaImage(col, begin, end));
  }
  if (want(Codec::kDict)) {
    candidates.emplace_back(Codec::kDict, DictImage(col, begin, end));
  }
  if (want(Codec::kBytes)) {
    candidates.emplace_back(Codec::kBytes, BytesImage(plain));
  }
  if (candidates.empty()) {
    // Forced codec ineligible for this type: fall back to plain (§4.6).
    candidates.emplace_back(Codec::kPlain, plain);
  }
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i].second.size() < candidates[best].second.size()) best = i;
  }

  // Assemble payload then the §3.1 header.
  std::string payload = validity.Take();
  payload += candidates[best].second;
  ByteWriter out;
  out.PutU8(static_cast<uint8_t>(candidates[best].first));
  out.PutU8(has_nulls ? 1 : 0);
  out.PutU8(static_cast<uint8_t>(type));
  out.PutU8(0);
  out.PutU32(rows);
  out.PutU64(payload.size());
  out.PutU32(Crc32(payload.data(), payload.size()));
  out.PutBytes(payload.data(), payload.size());

  EncodedChunk chunk;
  chunk.bytes = out.Take();
  chunk.codec = candidates[best].first;
  chunk.raw_bytes = plain.size() + rows;  // Values + validity bytes.
  return chunk;
}

namespace {

Result<Column> DecodePlainData(ByteReader* r, DataType type, uint32_t rows,
                               const std::vector<uint8_t>& valid) {
  Column col(type);
  col.Reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    switch (type) {
      case DataType::kInt64: {
        AQP_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
        if (valid[i]) {
          col.AppendInt64(v);
        } else {
          col.AppendNull();
        }
        break;
      }
      case DataType::kDouble: {
        AQP_ASSIGN_OR_RETURN(double v, r->GetDouble());
        if (valid[i]) {
          col.AppendDouble(v);
        } else {
          col.AppendNull();
        }
        break;
      }
      case DataType::kBool: {
        AQP_ASSIGN_OR_RETURN(uint8_t v, r->GetU8());
        if (valid[i]) {
          col.AppendBool(v != 0);
        } else {
          col.AppendNull();
        }
        break;
      }
      case DataType::kString: {
        AQP_ASSIGN_OR_RETURN(uint64_t len, GetVarint(r));
        if (len > r->remaining()) {
          return Status::OutOfRange("string length overruns chunk payload");
        }
        std::string s(len, '\0');
        AQP_RETURN_IF_ERROR(r->GetBytes(s.data(), len));
        if (valid[i]) {
          col.AppendString(std::move(s));
        } else {
          col.AppendNull();
        }
        break;
      }
    }
  }
  return col;
}

Result<Column> DecodeDeltaData(ByteReader* r, uint32_t rows,
                               const std::vector<uint8_t>& valid) {
  Column col(DataType::kInt64);
  col.Reserve(rows);
  int64_t prev = 0;
  for (uint32_t i = 0; i < rows; ++i) {
    AQP_ASSIGN_OR_RETURN(uint64_t zz, GetVarint(r));
    const int64_t v = static_cast<int64_t>(
        static_cast<uint64_t>(prev) +
        static_cast<uint64_t>(ZigZagDecode(zz)));
    prev = v;
    if (valid[i]) {
      col.AppendInt64(v);
    } else {
      col.AppendNull();
    }
  }
  return col;
}

Result<Column> DecodeDictData(ByteReader* r, uint32_t rows,
                              const std::vector<uint8_t>& valid) {
  AQP_ASSIGN_OR_RETURN(uint64_t num_unique, GetVarint(r));
  if (num_unique > r->remaining()) {
    return Status::OutOfRange("dictionary size overruns chunk payload");
  }
  std::vector<std::string> uniques;
  uniques.reserve(num_unique);
  for (uint64_t u = 0; u < num_unique; ++u) {
    AQP_ASSIGN_OR_RETURN(uint64_t len, GetVarint(r));
    if (len > r->remaining()) {
      return Status::OutOfRange("dictionary entry overruns chunk payload");
    }
    std::string s(len, '\0');
    AQP_RETURN_IF_ERROR(r->GetBytes(s.data(), len));
    uniques.push_back(std::move(s));
  }
  Column col(DataType::kString);
  col.Reserve(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    AQP_ASSIGN_OR_RETURN(uint64_t rank, GetVarint(r));
    if (!valid[i]) {
      col.AppendNull();
      continue;
    }
    if (rank >= uniques.size()) {
      return Status::OutOfRange("dictionary rank out of range");
    }
    col.AppendString(uniques[rank]);
  }
  return col;
}

}  // namespace

Result<Column> DecodeChunk(std::string_view chunk, DataType type,
                           uint32_t expected_rows) {
  ByteReader header(chunk);
  AQP_ASSIGN_OR_RETURN(uint8_t codec_id, header.GetU8());
  AQP_ASSIGN_OR_RETURN(uint8_t has_validity, header.GetU8());
  AQP_ASSIGN_OR_RETURN(uint8_t phys_type, header.GetU8());
  AQP_ASSIGN_OR_RETURN(uint8_t reserved, header.GetU8());
  AQP_ASSIGN_OR_RETURN(uint32_t rows, header.GetU32());
  AQP_ASSIGN_OR_RETURN(uint64_t payload_bytes, header.GetU64());
  AQP_ASSIGN_OR_RETURN(uint32_t crc, header.GetU32());
  if (codec_id > static_cast<uint8_t>(Codec::kBytes)) {
    return Status::InvalidArgument("unknown chunk codec id " +
                                   std::to_string(codec_id));
  }
  if (reserved != 0) {
    return Status::InvalidArgument("nonzero reserved byte in chunk header");
  }
  if (phys_type != static_cast<uint8_t>(type)) {
    return Status::InvalidArgument("chunk physical type does not match schema");
  }
  if (rows != expected_rows) {
    return Status::InvalidArgument("chunk row count does not match footer");
  }
  if (payload_bytes != chunk.size() - kChunkHeaderBytes) {
    return Status::OutOfRange("chunk payload length does not match header");
  }
  const std::string_view payload = chunk.substr(kChunkHeaderBytes);
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Status::InvalidArgument("chunk CRC32 mismatch (corrupt payload)");
  }

  ByteReader r(payload);
  std::vector<uint8_t> valid;
  if (has_validity) {
    AQP_RETURN_IF_ERROR(RleDecode(&r, rows, &valid));
  } else {
    valid.assign(rows, 1);
  }

  const Codec codec = static_cast<Codec>(codec_id);
  switch (codec) {
    case Codec::kPlain:
      return DecodePlainData(&r, type, rows, valid);
    case Codec::kRle: {
      if (type == DataType::kString) {
        return Status::InvalidArgument("RLE chunk on a STRING column");
      }
      const size_t width = type == DataType::kBool ? 1 : 8;
      std::vector<uint8_t> image;
      AQP_RETURN_IF_ERROR(RleDecode(&r, size_t{rows} * width, &image));
      ByteReader ir(std::string_view(
          reinterpret_cast<const char*>(image.data()), image.size()));
      return DecodePlainData(&ir, type, rows, valid);
    }
    case Codec::kDelta:
      if (type != DataType::kInt64) {
        return Status::InvalidArgument("delta chunk on a non-INT64 column");
      }
      return DecodeDeltaData(&r, rows, valid);
    case Codec::kDict:
      if (type != DataType::kString) {
        return Status::InvalidArgument("dict chunk on a non-STRING column");
      }
      return DecodeDictData(&r, rows, valid);
    case Codec::kBytes: {
      AQP_ASSIGN_OR_RETURN(uint64_t raw_len, GetVarint(&r));
      std::string image;
      std::string rest(r.remaining(), '\0');
      AQP_RETURN_IF_ERROR(r.GetBytes(rest.data(), rest.size()));
      AQP_RETURN_IF_ERROR(LzDecode(rest, raw_len, &image));
      ByteReader ir(image);
      return DecodePlainData(&ir, type, rows, valid);
    }
  }
  return Status::Internal("unreachable codec dispatch");
}

// --- Zone maps -------------------------------------------------------------

ZoneMap ComputeZoneMap(const Column& col, size_t begin, size_t end) {
  ZoneMap zone;
  bool seen = false;
  bool string_too_long = false;
  for (size_t i = begin; i < end; ++i) {
    if (col.IsNull(i)) {
      ++zone.null_count;
      continue;
    }
    switch (col.type()) {
      case DataType::kInt64: {
        const int64_t v = col.Int64At(i);
        if (!seen || v < zone.min.int64()) zone.min = Value(v);
        if (!seen || v > zone.max.int64()) zone.max = Value(v);
        break;
      }
      case DataType::kDouble: {
        const double v = col.DoubleAt(i);
        if (!seen || v < zone.min.dbl()) zone.min = Value(v);
        if (!seen || v > zone.max.dbl()) zone.max = Value(v);
        break;
      }
      case DataType::kBool: {
        const bool v = col.BoolAt(i);
        if (!seen || (!v && zone.min.boolean())) zone.min = Value(v);
        if (!seen || (v && !zone.max.boolean())) zone.max = Value(v);
        break;
      }
      case DataType::kString: {
        const std::string& v = col.StringAt(i);
        if (v.size() > kZoneMapMaxStringBytes) string_too_long = true;
        if (!seen || v < zone.min.str()) zone.min = Value(v);
        if (!seen || v > zone.max.str()) zone.max = Value(v);
        break;
      }
    }
    seen = true;
  }
  zone.has_bounds = seen && !string_too_long;
  if (!zone.has_bounds) {
    zone.min = Value::Null();
    zone.max = Value::Null();
  }
  return zone;
}

// --- Zone-map value serialization ------------------------------------------

void PutValue(ByteWriter* w, const Value& v) {
  if (v.is_null()) {
    w->PutU8(0);
  } else if (v.is_int64()) {
    w->PutU8(1);
    w->PutI64(v.int64());
  } else if (v.is_double()) {
    w->PutU8(2);
    w->PutDouble(v.dbl());
  } else if (v.is_string()) {
    w->PutU8(3);
    PutVarint(w, v.str().size());
    w->PutBytes(v.str().data(), v.str().size());
  } else {
    w->PutU8(4);
    w->PutU8(v.boolean() ? 1 : 0);
  }
}

Result<Value> GetValue(ByteReader* r) {
  AQP_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (tag) {
    case 0:
      return Value::Null();
    case 1: {
      AQP_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
      return Value(v);
    }
    case 2: {
      AQP_ASSIGN_OR_RETURN(double v, r->GetDouble());
      return Value(v);
    }
    case 3: {
      AQP_ASSIGN_OR_RETURN(uint64_t len, GetVarint(r));
      if (len > r->remaining()) {
        return Status::OutOfRange("serialized string value truncated");
      }
      std::string s(len, '\0');
      AQP_RETURN_IF_ERROR(r->GetBytes(s.data(), len));
      return Value(std::move(s));
    }
    case 4: {
      AQP_ASSIGN_OR_RETURN(uint8_t v, r->GetU8());
      return Value(v != 0);
    }
    default:
      return Status::InvalidArgument("unknown serialized value tag");
  }
}

// --- Whole-table blobs -----------------------------------------------------

void WriteTableBlob(const Table& table, ByteWriter* w, CodecChoice choice) {
  const Schema& schema = table.schema();
  w->PutU32(static_cast<uint32_t>(schema.num_fields()));
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    const Field& field = schema.field(f);
    PutVarint(w, field.name.size());
    w->PutBytes(field.name.data(), field.name.size());
    w->PutU8(static_cast<uint8_t>(field.type));
  }
  w->PutU64(table.num_rows());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    // One chunk run per extent-sized row range, so arbitrarily large tables
    // stay within the u32 chunk row count.
    size_t begin = 0;
    while (begin < table.num_rows() || (table.num_rows() == 0 && begin == 0)) {
      const size_t end =
          std::min<size_t>(begin + kDefaultExtentRows, table.num_rows());
      EncodedChunk chunk = EncodeChunk(table.column(c), begin, end, choice);
      PutVarint(w, chunk.bytes.size());
      w->PutBytes(chunk.bytes.data(), chunk.bytes.size());
      begin = end;
      if (table.num_rows() == 0) break;
    }
  }
}

Result<Table> ReadTableBlob(ByteReader* r) {
  AQP_ASSIGN_OR_RETURN(uint32_t num_fields, r->GetU32());
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint32_t f = 0; f < num_fields; ++f) {
    AQP_ASSIGN_OR_RETURN(uint64_t name_len, GetVarint(r));
    if (name_len > r->remaining()) {
      return Status::OutOfRange("field name overruns table blob");
    }
    std::string name(name_len, '\0');
    AQP_RETURN_IF_ERROR(r->GetBytes(name.data(), name_len));
    AQP_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
    if (type > static_cast<uint8_t>(DataType::kBool)) {
      return Status::InvalidArgument("unknown field type in table blob");
    }
    fields.push_back(Field{std::move(name), static_cast<DataType>(type)});
  }
  AQP_ASSIGN_OR_RETURN(uint64_t num_rows, r->GetU64());
  std::vector<Column> columns;
  columns.reserve(num_fields);
  for (uint32_t c = 0; c < num_fields; ++c) {
    Column col(fields[c].type);
    size_t decoded = 0;
    while (decoded < num_rows || (num_rows == 0 && decoded == 0)) {
      const uint32_t rows = static_cast<uint32_t>(
          std::min<uint64_t>(kDefaultExtentRows, num_rows - decoded));
      AQP_ASSIGN_OR_RETURN(uint64_t chunk_len, GetVarint(r));
      if (chunk_len > r->remaining() || chunk_len < kChunkHeaderBytes) {
        return Status::OutOfRange("chunk overruns table blob");
      }
      std::string chunk(chunk_len, '\0');
      AQP_RETURN_IF_ERROR(r->GetBytes(chunk.data(), chunk_len));
      AQP_ASSIGN_OR_RETURN(Column part,
                           DecodeChunk(chunk, fields[c].type, rows));
      if (decoded == 0 && rows == num_rows) {
        col = std::move(part);
      } else {
        for (size_t i = 0; i < part.size(); ++i) col.AppendFrom(part, i);
      }
      decoded += rows;
      if (num_rows == 0) break;
    }
    columns.push_back(std::move(col));
  }
  return Table::Make(Schema(std::move(fields)), std::move(columns));
}

}  // namespace extent
}  // namespace aqp
