#ifndef AQP_STORAGE_EXTENT_FORMAT_H_
#define AQP_STORAGE_EXTENT_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/value.h"

/// On-disk constants and structs for the extent columnar format. The
/// authoritative specification is docs/STORAGE.md; every struct below cites
/// the section it implements. Nothing in this header is written to disk via
/// memcpy-of-struct — all fields go through ByteWriter/ByteReader so the
/// layout is exactly what the spec says regardless of compiler padding.

namespace aqp {
namespace extent {

/// docs/STORAGE.md §2 — file magics and the current format version.
/// "AQPX" little-endian at offset 0; "AQPF" closes the trailer.
inline constexpr uint32_t kFileMagic = 0x58505141u;     // "AQPX"
inline constexpr uint32_t kTrailerMagic = 0x46505141u;  // "AQPF"
/// docs/STORAGE.md §8 — synopsis sidecar magic ("AQPS").
inline constexpr uint32_t kSynopsisMagic = 0x53505141u;  // "AQPS"
inline constexpr uint32_t kFormatVersion = 1;

/// docs/STORAGE.md §2.1 — fixed-size file header (16 bytes).
inline constexpr size_t kFileHeaderBytes = 16;
/// docs/STORAGE.md §2.3 — fixed-size trailer (24 bytes) at end of file.
inline constexpr size_t kTrailerBytes = 24;

/// docs/STORAGE.md §3.1 — chunk header (20 bytes) preceding every column
/// chunk payload.
inline constexpr size_t kChunkHeaderBytes = 20;

/// Default rows per extent. 65536 = 64 blocks of the engine's 1024-row
/// block view, and a multiple of the default 4096-row morsel, so extent
/// boundaries never split a morsel (docs/STORAGE.md §3).
inline constexpr uint32_t kDefaultExtentRows = 65536;

/// docs/STORAGE.md §4 — codec ids. Stored as u8 in every chunk header and in
/// the footer's chunk index; unknown ids must be rejected at read time.
enum class Codec : uint8_t {
  kPlain = 0,  // §4.1 raw fixed-width / length-prefixed values
  kRle = 1,    // §4.2 byte-level run-length encoding
  kDelta = 2,  // §4.3 zigzag varint deltas (INT64 only)
  kDict = 3,   // §4.4 order-preserving dictionary (STRING only)
  kBytes = 4,  // §4.5 general LZ byte codec over the §4.1 image
};

/// Writer-side codec choice: a concrete codec forces it for every eligible
/// chunk; kAuto encodes candidates and keeps the smallest (ties prefer the
/// lower codec id, so output is deterministic — docs/STORAGE.md §4.6).
enum class CodecChoice : uint8_t {
  kAuto = 255,
  kPlain = 0,
  kRle = 1,
  kDelta = 2,
  kDict = 3,
  kBytes = 4,
};

std::string_view CodecName(Codec c);

/// Parses a codec-choice knob value ("auto", "plain", "rle", "delta",
/// "dict", "lz"); returns kAuto for anything unrecognized.
CodecChoice ParseCodecChoice(std::string_view name);

/// docs/STORAGE.md §5 — per-(extent, column) zone map: null count plus
/// min/max bounds over non-null values. `has_bounds` is false when the
/// extent's column is all-NULL or when a STRING value exceeded the §5 bound
/// length cap (bounds are stored exactly or not at all; no truncated-prefix
/// bounds in format v1, which keeps pruning trivially sound).
struct ZoneMap {
  uint64_t null_count = 0;
  bool has_bounds = false;
  Value min;  // Non-null iff has_bounds.
  Value max;  // Non-null iff has_bounds.
};

/// docs/STORAGE.md §6.2 — one column chunk's entry in the footer's extent
/// index: where the chunk lives inside the extent, how it is coded, and its
/// zone map.
struct ChunkMeta {
  uint64_t offset = 0;  // Relative to the extent's file offset.
  uint64_t bytes = 0;   // Chunk header + payload.
  Codec codec = Codec::kPlain;
  ZoneMap zone;
};

/// docs/STORAGE.md §6.2 — one extent's entry in the footer index.
struct ExtentMeta {
  uint64_t file_offset = 0;   // Absolute offset of the extent's first chunk.
  uint64_t byte_size = 0;     // Sum of chunk bytes.
  uint64_t row_start = 0;     // First row covered (global row id).
  uint32_t row_count = 0;
  uint64_t raw_bytes = 0;     // Decoded (in-memory) size estimate.
  std::vector<ChunkMeta> chunks;  // One per schema column, schema order.
};

}  // namespace extent
}  // namespace aqp

#endif  // AQP_STORAGE_EXTENT_FORMAT_H_
